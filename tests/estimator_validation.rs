//! Integration-level validation of the estimator stack against analytic
//! Gaussian ground truth, including the cross-estimator comparisons the
//! paper reports in §5.3.

use sops::info::decomposition::{decompose, Grouping};
use sops::info::entropy::entropy_breakdown;
use sops::info::gaussian::{
    equicorrelated_cov, gaussian_entropy, gaussian_multi_information, sample_gaussian,
};
use sops::info::measure::{MeasureConfig, MeasureWorkspace};
use sops::info::{multi_information, BinningConfig, KdeConfig, KsgConfig, KsgVariant, SampleView};
use sops::math::Matrix;

#[test]
fn ksg_tracks_truth_across_sample_sizes() {
    let cov = equicorrelated_cov(3, 0.5);
    let truth = gaussian_multi_information(&cov, &[1, 1, 1]);
    let mut errs = Vec::new();
    for (m, seed) in [(250usize, 1u64), (500, 2), (1000, 3)] {
        let data = sample_gaussian(&cov, m, seed);
        let sizes = [1usize, 1, 1];
        let view = SampleView::new(&data, m, &sizes);
        let est = multi_information(&view, &KsgConfig::default());
        errs.push((est - truth).abs());
    }
    // All close; error at m=1000 below error-plus-slack at m=250.
    assert!(errs.iter().all(|&e| e < 0.3), "errors {errs:?}");
    assert!(
        errs[2] < errs[0] + 0.1,
        "no blow-up with more data: {errs:?}"
    );
}

#[test]
fn ksg_consistent_between_variants_on_coupled_data() {
    let cov = equicorrelated_cov(4, 0.5);
    let data = sample_gaussian(&cov, 900, 7);
    let sizes = [1usize, 1, 1, 1];
    let view = SampleView::new(&data, 900, &sizes);
    let v1 = multi_information(
        &view,
        &KsgConfig {
            variant: KsgVariant::Ksg1,
            ..KsgConfig::default()
        },
    );
    let v2 = multi_information(
        &view,
        &KsgConfig {
            variant: KsgVariant::Ksg2,
            ..KsgConfig::default()
        },
    );
    assert!((v1 - v2).abs() < 0.25, "KSG1 {v1} vs KSG2 {v2}");
}

#[test]
fn decomposition_identity_holds_on_block_gaussians() {
    // Two 2-d particles per group, correlation within and across groups.
    let mut cov = Matrix::identity(8);
    for (i, j, v) in [
        (0usize, 2usize, 0.55f64),
        (4, 6, 0.55),
        (0, 4, 0.3),
        (2, 6, 0.3),
    ] {
        cov[(i, j)] = v;
        cov[(j, i)] = v;
    }
    let data = sample_gaussian(&cov, 1200, 11);
    let sizes = [2usize, 2, 2, 2];
    let view = SampleView::new(&data, 1200, &sizes);
    let grouping = Grouping::from_labels(&[0, 0, 1, 1]);
    let d = decompose(&view, &grouping, &KsgConfig::default());
    let residual = (d.total - d.reconstructed_total()).abs();
    assert!(
        residual < 0.3,
        "Eq. 5 identity residual {residual}: total {} vs between {} + within {:?}",
        d.total,
        d.between,
        d.within
    );
    // Ground truth cross-check for the total.
    let truth = gaussian_multi_information(&cov, &[2, 2, 2, 2]);
    assert!(
        (d.total - truth).abs() < 0.3,
        "total {} vs truth {truth}",
        d.total
    );
}

#[test]
fn entropy_route_consistent_with_direct_multi_information() {
    let cov = equicorrelated_cov(3, 0.6);
    let data = sample_gaussian(&cov, 1500, 13);
    let sizes = [1usize, 1, 1];
    let view = SampleView::new(&data, 1500, &sizes);
    let breakdown = entropy_breakdown(&view, 4);
    // Marginal entropies match the standard-normal closed form.
    let h1 = gaussian_entropy(&Matrix::identity(1));
    for &h in &breakdown.marginals {
        assert!((h - h1).abs() < 0.1, "marginal {h} vs {h1}");
    }
    let via_entropy = breakdown.multi_information();
    let direct = multi_information(&view, &KsgConfig::default());
    assert!(
        (via_entropy - direct).abs() < 0.3,
        "Σh − h route {via_entropy} vs KSG {direct}"
    );
}

#[test]
fn paper_533_comparison_ksg_beats_baselines_in_high_dimension() {
    // §5.3: KSG shows less variance than KDE and binning overestimates in
    // high-d. Measure estimator spread over independent draws at d = 8,
    // all three families driven through one `MeasureWorkspace` — the
    // pipeline's own dispatch surface.
    let d = 8;
    let m = 400;
    let cov = equicorrelated_cov(d, 0.3);
    let truth = gaussian_multi_information(&cov, &vec![1; d]);
    let sizes = vec![1usize; d];

    let mut ws = MeasureWorkspace::new();
    let mut ksg_errs = Vec::new();
    let mut kde_errs = Vec::new();
    let mut bin_errs = Vec::new();
    for seed in 0..4u64 {
        let data = sample_gaussian(&cov, m, 100 + seed);
        let view = SampleView::new(&data, m, &sizes);
        ksg_errs
            .push(ws.multi_information(&view, &MeasureConfig::Ksg(KsgConfig::default())) - truth);
        kde_errs
            .push(ws.multi_information(&view, &MeasureConfig::Kde(KdeConfig::default())) - truth);
        bin_errs.push(
            ws.multi_information(&view, &MeasureConfig::Binned(BinningConfig::default())) - truth,
        );
    }
    let mean_abs = |v: &[f64]| v.iter().map(|e| e.abs()).sum::<f64>() / v.len() as f64;
    assert!(
        mean_abs(&ksg_errs) < mean_abs(&bin_errs),
        "KSG |err| {} must beat binning |err| {}",
        mean_abs(&ksg_errs),
        mean_abs(&bin_errs)
    );
    // Binning overestimates (positive bias), dramatically.
    assert!(
        bin_errs.iter().all(|&e| e > 1.0),
        "binning must overestimate in high-d: {bin_errs:?}"
    );
    // KSG is competitive with KDE on accuracy and beats it on runtime
    // (timing is covered by the Criterion `estimators` bench).
    assert!(mean_abs(&ksg_errs) < mean_abs(&kde_errs) + 0.2);
}

#[test]
fn literal_paper_formula_bias_is_the_documented_artifact() {
    // DESIGN.md #7: verbatim Eq. 18-20 carries a positive bias that grows
    // with observer count even on independent data.
    const SIZES2: [usize; 2] = [1, 1];
    const SIZES6: [usize; 6] = [1; 6];
    let data2 = sample_gaussian(&Matrix::identity(2), 800, 21);
    let data6 = sample_gaussian(&Matrix::identity(6), 800, 22);
    let paper = |data: &[f64], sizes: &'static [usize]| {
        multi_information(
            &SampleView::new(data, 800, sizes),
            &KsgConfig {
                variant: KsgVariant::Paper,
                ..KsgConfig::default()
            },
        )
    };
    let b2 = paper(&data2, &SIZES2);
    let b6 = paper(&data6, &SIZES6);
    assert!(b2 > 0.5, "n=2 bias {b2}");
    assert!(b6 > b2, "bias grows with n: {b2} -> {b6}");
}
