//! Contracts of the request broker (`sops_core::broker`): concurrent
//! identical requests collapse to one simulation pass, and nothing the
//! broker does changes a byte of the report.

use sops::core::report::sweep_json;
use sops::prelude::*;
use sops::sim::force::{ForceModel, LinearForce};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn small_scenario(seed: u64) -> ScenarioSpec {
    let k = PairMatrix::constant(2, 1.0);
    let mut r = PairMatrix::constant(2, 1.0);
    r.set(0, 1, 2.0);
    let pipeline = Pipeline::new(EnsembleSpec {
        model: Model::balanced(8, ForceModel::Linear(LinearForce::new(k, r)), f64::INFINITY),
        integrator: IntegratorConfig::default(),
        init_radius: 2.0,
        t_max: 8,
        samples: 16,
        seed,
        criterion: None,
    });
    let mut sc = ScenarioSpec::from_pipeline("attract", &pipeline);
    sc.eval_every = 4;
    sc
}

fn one_cell_plan(seed: u64) -> SweepPlan {
    SweepPlan {
        scenarios: vec![small_scenario(seed)],
        measures: vec![MeasureConfig::Gaussian],
        seeds: vec![],
        threads: 1,
        storage: EnsembleStorage::default(),
    }
}

/// Four identical concurrent requests → exactly one simulation pass.
///
/// The pass observer (a test hook that runs after the batching window
/// closes, before the simulation starts) parks the owning request until
/// the other three have arrived and coalesced, so the test is
/// deterministic: the "concurrent requests overlap" race is forced, not
/// hoped for.
#[test]
fn concurrent_identical_requests_share_one_simulation_pass() {
    let plan = one_cell_plan(21);
    let baseline = sweep_json(&run_sweep(&plan).expect("valid plan"), false);

    let broker = SweepBroker::new();
    let counters = broker.counters();
    let passes = Arc::new(AtomicU64::new(0));
    let (obs_counters, obs_passes) = (Arc::clone(&counters), Arc::clone(&passes));
    let broker = Arc::new(broker.with_pass_observer(move |_| {
        obs_passes.fetch_add(1, Ordering::SeqCst);
        // Hold the pass open until the three sibling requests have
        // joined this cell's in-flight slot (bounded: a lost sibling
        // must fail the assertions below, not hang the suite).
        let deadline = Instant::now() + Duration::from_secs(30);
        while obs_counters.cells_coalesced() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
    }));

    let barrier = Arc::new(Barrier::new(4));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let broker = Arc::clone(&broker);
        let plan = plan.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            sweep_json(&broker.run(&plan).expect("broker run"), false)
        }));
    }
    let bodies: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    assert_eq!(
        passes.load(Ordering::SeqCst),
        1,
        "four identical requests must trigger exactly one simulation pass"
    );
    let stats = broker.stats();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.sim_passes, 1);
    assert_eq!(stats.cells_computed, 1);
    assert_eq!(stats.cells_coalesced, 3);
    for body in &bodies {
        assert_eq!(body, &baseline, "broker responses must be byte-identical");
    }
}

/// Same-ensemble requests for *different* measures batch into one
/// simulation pass.
///
/// Deterministic construction: request A owns two ensembles. The pass
/// observer parks A's *first* pass, during which request B claims a
/// different measure on A's still-pending *second* ensemble — so B's
/// cell batches onto A's job and rides its simulation. Two ensembles,
/// three cells, exactly two passes.
#[test]
fn same_ensemble_requests_batch_measures_into_one_pass() {
    let plan_a = SweepPlan {
        scenarios: vec![small_scenario(31), small_scenario(32)],
        measures: vec![MeasureConfig::Gaussian],
        seeds: vec![],
        threads: 1,
        storage: EnsembleStorage::default(),
    };
    let mut plan_b = one_cell_plan(32);
    plan_b.measures = vec![MeasureConfig::Binned(sops::info::BinningConfig::default())];
    let expect_a = sweep_json(&run_sweep(&plan_a).expect("valid plan"), false);
    let expect_b = sweep_json(&run_sweep(&plan_b).expect("valid plan"), false);

    let broker = SweepBroker::new();
    let counters = broker.counters();
    let first_pass_started = Arc::new(AtomicU64::new(0));
    let (obs_counters, obs_started) = (Arc::clone(&counters), Arc::clone(&first_pass_started));
    let broker = Arc::new(broker.with_pass_observer(move |_| {
        obs_started.store(1, Ordering::SeqCst);
        // Hold the running pass open until B has batched onto the other
        // (still pending) ensemble job (bounded so a logic bug fails the
        // assertions instead of hanging the suite).
        let deadline = Instant::now() + Duration::from_secs(30);
        while obs_counters.cells_coalesced() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
    }));

    let a = {
        let broker = Arc::clone(&broker);
        std::thread::spawn(move || sweep_json(&broker.run(&plan_a).expect("request A"), false))
    };
    // B starts only once A's first pass is parked — at that point A has
    // already claimed both ensembles, so B's claim must batch.
    while first_pass_started.load(Ordering::SeqCst) == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let got_b = sweep_json(&broker.run(&plan_b).expect("request B"), false);
    let got_a = a.join().unwrap();

    let stats = broker.stats();
    assert_eq!(
        stats.sim_passes, 2,
        "B's measure must ride A's second ensemble pass, not start a third"
    );
    assert_eq!(stats.cells_coalesced, 1);
    assert_eq!(stats.cells_computed, 3);
    assert_eq!(got_a, expect_a);
    assert_eq!(got_b, expect_b);
}

/// Sequential identical requests through a cached broker: the second is
/// served entirely from disk, with zero additional passes.
#[test]
fn cached_broker_serves_repeat_requests_without_simulating() {
    let dir = std::env::temp_dir().join("sops_broker_repeat_cache");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Arc::new(CellCache::open(dir).expect("temp cache dir"));
    let broker = SweepBroker::new().with_cache(cache);
    let plan = one_cell_plan(55);

    let first = sweep_json(&broker.run(&plan).expect("first"), false);
    let second_report = broker.run(&plan).expect("second");
    assert_eq!(sweep_json(&second_report, false), first);
    assert_eq!(second_report.cells[0].provenance, CellProvenance::Cached);

    let stats = broker.stats();
    assert_eq!(stats.sim_passes, 1);
    assert_eq!(stats.cells_cached, 1);
    assert_eq!(stats.cache.expect("cached broker").hits, 1);
}
