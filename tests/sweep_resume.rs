//! Fault-tolerance contracts of the checkpointing sweep layer
//! (`sops_core::checkpoint` + `sops_core::scenario`):
//!
//! * **bit-identical resume** — a sweep killed at *any* ensemble
//!   boundary and resumed through its checkpoint produces the same
//!   report, bit for bit, as an uninterrupted run, for evaluation
//!   worker counts 1 and 8 (the serialized `sweep.json` artifact is
//!   byte-identical too);
//! * **panic quarantine** — an injected panicking estimator cell is
//!   recorded as `CellStatus::Failed` while every other cell completes
//!   intact, the sweep returns `Ok`, and the quarantined cells survive a
//!   checkpoint round-trip as-is (no recompute, no crash);
//! * **simulation quarantine** — a panicking *simulation* quarantines
//!   the whole ensemble with a `simulation …` reason, other ensembles
//!   unaffected;
//! * **corruption rejection** — a torn (truncated mid-token) checkpoint
//!   and a wrong-fingerprint checkpoint are rejected with typed
//!   `SweepError`s, and recomputing from scratch afterwards (the CLI's
//!   `--resume` fallback) still yields the uninterrupted result.

use sops::prelude::*;
use sops::sim::force::{ForceLaw, ForceModel, LinearForce};
use std::path::PathBuf;

/// A small 2-type attracting system that visibly organizes.
fn small_scenario(name: &str, seed: u64) -> ScenarioSpec {
    let k = PairMatrix::constant(2, 1.0);
    let mut r = PairMatrix::constant(2, 1.0);
    r.set(0, 1, 2.0);
    let pipeline = Pipeline::new(EnsembleSpec {
        model: Model::balanced(8, ForceModel::Linear(LinearForce::new(k, r)), f64::INFINITY),
        integrator: IntegratorConfig::default(),
        init_radius: 2.0,
        t_max: 20,
        samples: 40,
        seed,
        criterion: None,
    });
    let mut sc = ScenarioSpec::from_pipeline(name, &pipeline);
    sc.eval_every = 10;
    sc
}

/// 2 scenarios × 2 seeds × 2 measures = 4 ensembles, 8 cells.
fn resume_plan(threads: usize) -> SweepPlan {
    SweepPlan {
        scenarios: vec![small_scenario("attract", 42), small_scenario("other", 43)],
        measures: vec![
            MeasureConfig::Ksg(KsgConfig {
                k: 3,
                ..KsgConfig::default()
            }),
            MeasureConfig::Gaussian,
        ],
        seeds: vec![5, 6],
        threads,
        storage: EnsembleStorage::default(),
    }
}

/// Fresh scratch directory per test (tests run in parallel).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sops_sweep_resume_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_cells_bit_identical(a: &SweepReport, b: &SweepReport) {
    assert_eq!(a.cells.len(), b.cells.len());
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        let tag = format!("{}/{}#{}", ca.scenario, ca.measure_label, ca.seed);
        assert_eq!(ca.scenario, cb.scenario, "{tag}");
        assert_eq!(ca.measure_label, cb.measure_label, "{tag}");
        assert_eq!(ca.seed, cb.seed, "{tag}");
        assert_eq!(ca.status, cb.status, "{tag}");
        assert_eq!(ca.result.mi.times, cb.result.mi.times, "{tag}");
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&ca.result.mi.values),
            bits(&cb.result.mi.values),
            "{tag}"
        );
        assert_eq!(
            bits(&ca.result.mean_icp_cost),
            bits(&cb.result.mean_icp_cost),
            "{tag}"
        );
        assert_eq!(
            ca.result.equilibrated_fraction.to_bits(),
            cb.result.equilibrated_fraction.to_bits(),
            "{tag}"
        );
    }
}

/// The headline invariant: for every prefix of completed ensembles —
/// i.e. a kill at any ensemble boundary — resuming through the saved
/// checkpoint reproduces the uninterrupted report bit for bit, and the
/// serialized `sweep.json` byte for byte, for worker counts 1 and 8.
#[test]
fn kill_at_any_boundary_and_resume_is_bit_identical() {
    for threads in [1usize, 8] {
        let dir = scratch(&format!("boundary_t{threads}"));
        let path = dir.join("sweep_checkpoint.json");
        let plan = resume_plan(threads);
        let n_measures = plan.measures.len();

        let reference = run_sweep(&plan).expect("valid plan");
        let ref_json = dir.join("reference_sweep.json");
        sops::core::report::write_sweep_json(&ref_json, &reference).unwrap();
        let ref_bytes = std::fs::read(&ref_json).unwrap();

        let n_ensembles = reference.cells.len() / n_measures;
        for prefix in 0..=n_ensembles {
            // Simulate a run killed after `prefix` completed ensembles:
            // the checkpoint on disk holds exactly their cells.
            let mut partial = SweepCheckpoint::new(&plan).expect("serializable plan");
            partial.record(&reference.cells[..prefix * n_measures]);
            partial.save(&path, &plan).unwrap();

            // Resume: load from disk into a fresh runner.
            let mut resumed_ckpt = SweepCheckpoint::load(&path, &plan).unwrap();
            assert_eq!(resumed_ckpt.cells().len(), prefix * n_measures);
            let resumed = SweepRunner::new()
                .run_with_checkpoint(&plan, &mut resumed_ckpt, &path)
                .expect("valid plan");

            assert_cells_bit_identical(&reference, &resumed);
            let out = dir.join(format!("resumed_{prefix}.json"));
            sops::core::report::write_sweep_json(&out, &resumed).unwrap();
            assert_eq!(
                std::fs::read(&out).unwrap(),
                ref_bytes,
                "threads {threads}, prefix {prefix}: sweep.json diverged"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// An estimator that panics on every cell (KSG with k ≥ samples) is
/// quarantined per cell: the sweep completes with `Ok`, the healthy
/// measure's cells are intact, and the failed cells survive a
/// checkpoint round-trip unchanged instead of crashing the resume.
#[test]
fn panicking_estimator_is_quarantined_and_resumes_as_is() {
    let dir = scratch("quarantine");
    let path = dir.join("sweep_checkpoint.json");
    let mut plan = resume_plan(1);
    plan.measures[0] = MeasureConfig::Ksg(KsgConfig {
        k: 1000, // >= samples: panics in the KSG estimator
        ..KsgConfig::default()
    });

    let mut ckpt = SweepCheckpoint::new(&plan).expect("serializable plan");
    let report = SweepRunner::new()
        .run_with_checkpoint(&plan, &mut ckpt, &path)
        .expect("quarantine must not abort the sweep");
    assert_eq!(report.cells.len(), 8);
    assert!(report.has_failures());
    for cell in &report.cells {
        if cell.measure_label == "ksg" {
            match &cell.status {
                CellStatus::Failed { reason } => {
                    assert!(reason.contains("attempt"), "{reason}")
                }
                ok => panic!("ksg cell unexpectedly {ok:?}"),
            }
            assert!(cell.result.mi.values.is_empty());
        } else {
            assert_eq!(cell.status, CellStatus::Ok, "{}", cell.measure_label);
            assert!(cell.result.mi.values.iter().all(|v| v.is_finite()));
        }
    }
    // Healthy cells bit-match a clean single-measure sweep of the same
    // ensembles (quarantine must not perturb the survivors).
    let clean_plan = SweepPlan {
        measures: vec![MeasureConfig::Gaussian],
        ..plan.clone()
    };
    let clean = run_sweep(&clean_plan).expect("valid plan");
    for (poisoned, clean_cell) in report
        .cells
        .iter()
        .filter(|c| c.measure_label == "gaussian")
        .zip(&clean.cells)
    {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&poisoned.result.mi.values),
            bits(&clean_cell.result.mi.values)
        );
    }

    // Resume from the saved checkpoint: the failed cells are restored
    // as-is (status, reason and empty payload), not recomputed.
    let mut resumed_ckpt = SweepCheckpoint::load(&path, &plan).unwrap();
    let resumed = SweepRunner::new()
        .run_with_checkpoint(&plan, &mut resumed_ckpt, &path)
        .expect("valid plan");
    assert_cells_bit_identical(&report, &resumed);
    std::fs::remove_dir_all(&dir).ok();
}

/// A panicking *simulation* (a force law that detonates mid-sweep — the
/// spec itself passes `EnsembleSpec::check`, so the failure only
/// surfaces inside `run_ensemble`) quarantines every cell of that
/// ensemble with a `simulation …` reason; the other scenario's ensembles
/// are unaffected.
#[test]
fn panicking_simulation_quarantines_the_whole_ensemble() {
    #[derive(Debug)]
    struct Grenade;
    impl ForceLaw for Grenade {
        fn types(&self) -> usize {
            2
        }
        fn scale(&self, _: usize, _: usize, _: f64) -> f64 {
            panic!("force law detonated")
        }
        fn preferred_distance(&self, _: usize, _: usize) -> Option<f64> {
            None
        }
    }
    let mut plan = resume_plan(1);
    plan.scenarios[1].ensemble.model = Model::balanced(
        8,
        ForceModel::Custom(std::sync::Arc::new(Grenade)),
        f64::INFINITY,
    );

    let report = run_sweep(&plan).expect("quarantine must not abort the sweep");
    assert_eq!(report.cells.len(), 8);
    for cell in &report.cells {
        if cell.scenario == "other" {
            match &cell.status {
                CellStatus::Failed { reason } => {
                    assert!(reason.starts_with("simulation"), "{reason}");
                    assert!(reason.contains("force law detonated"), "{reason}");
                }
                ok => panic!("cell of broken scenario unexpectedly {ok:?}"),
            }
        } else {
            assert_eq!(cell.status, CellStatus::Ok, "{}", cell.scenario);
        }
    }
}

/// An *invalid* ensemble spec is no longer a quarantined panic: the plan
/// is rejected up front with a typed `SweepError::InvalidPlan` naming
/// the offending scenario (the PR 7 error spine, extended to the
/// simulation-side validators).
#[test]
fn invalid_integrator_is_a_typed_plan_error_not_a_quarantine() {
    let mut plan = resume_plan(1);
    plan.scenarios[1].ensemble.integrator.dt = 0.0;
    let err = run_sweep(&plan).expect_err("dt == 0 must be rejected up front");
    match &err {
        SweepError::InvalidPlan(reason) => {
            assert!(reason.contains("other"), "{reason}");
            assert!(reason.contains("dt must be positive"), "{reason}");
        }
        other => panic!("expected InvalidPlan, got {other}"),
    }
    // The same spine catches a degenerate sample axis.
    let mut plan = resume_plan(1);
    plan.scenarios[0].ensemble.samples = 0;
    let err = run_sweep(&plan).expect_err("zero samples must be rejected up front");
    assert!(
        matches!(&err, SweepError::InvalidPlan(r) if r.contains("at least one sample")),
        "{err}"
    );
}

/// Torn and drifted checkpoints are rejected with typed errors — and
/// the CLI's fallback (recompute from scratch) still reproduces the
/// uninterrupted result afterwards.
#[test]
fn corrupted_or_drifted_checkpoints_are_rejected_then_recomputed() {
    let dir = scratch("corruption");
    let path = dir.join("sweep_checkpoint.json");
    let plan = resume_plan(1);

    let reference = run_sweep(&plan).expect("valid plan");
    let mut ckpt = SweepCheckpoint::new(&plan).unwrap();
    ckpt.record(&reference.cells);
    ckpt.save(&path, &plan).unwrap();

    // Truncate mid-token: torn write → typed parse error.
    let full = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &full[..full.len() * 2 / 3]).unwrap();
    let err = SweepCheckpoint::load(&path, &plan).unwrap_err();
    assert!(matches!(err, SweepError::Parse { .. }), "{err}");

    // Same bytes, drifted plan → fingerprint mismatch.
    std::fs::write(&path, &full).unwrap();
    let mut drifted = plan.clone();
    drifted.scenarios[0].ensemble.t_max += 1;
    let err = SweepCheckpoint::load(&path, &drifted).unwrap_err();
    assert!(
        matches!(err, SweepError::FingerprintMismatch { .. }),
        "{err}"
    );

    // The CLI fallback after either rejection: start a fresh checkpoint
    // and recompute — bit-identical to the uninterrupted run.
    let mut fresh = SweepCheckpoint::new(&plan).unwrap();
    let recomputed = SweepRunner::new()
        .run_with_checkpoint(&plan, &mut fresh, &path)
        .expect("valid plan");
    assert_cells_bit_identical(&reference, &recomputed);
    std::fs::remove_dir_all(&dir).ok();
}
