//! Property-based integration tests of the shape-reduction stack:
//! random configurations, random elements of the invariance group
//! `ISO⁺(2) × S*_n`, and the requirement that reduction undoes them.

use proptest::prelude::*;
use sops::prelude::*;
use sops::shape::ensemble::{reduce_configurations, ReduceConfig};
use sops::shape::{icp_align, match_types, RigidTransform};

fn arb_cloud(n: usize) -> impl Strategy<Value = Vec<Vec2>> {
    proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), n..=n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Vec2::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reduction_undoes_group_elements(
        cloud in arb_cloud(12),
        angle in -3.1..3.1f64,
        tx in -15.0..15.0f64,
        ty in -15.0..15.0f64,
        shuffle_seed in 0..u64::MAX
    ) {
        // Skip degenerate nearly-coincident clouds where the optimal
        // correspondence is ambiguous.
        let mut min_dist = f64::INFINITY;
        for i in 0..cloud.len() {
            for j in (i + 1)..cloud.len() {
                min_dist = min_dist.min(cloud[i].dist(cloud[j]));
            }
        }
        prop_assume!(min_dist > 0.5);

        let types: Vec<u16> = (0..cloud.len()).map(|i| (i % 3) as u16).collect();
        // Build sample 1 = transformed + same-type-shuffled copy of sample 0.
        let t = RigidTransform { rotation: angle, translation: Vec2::new(tx, ty) };
        let mut rng = SplitMix64::new(shuffle_seed);
        let mut moved: Vec<Vec2> = cloud.iter().map(|&p| t.apply(p)).collect();
        for ty_id in 0..3u16 {
            let idx: Vec<usize> = (0..types.len()).filter(|&i| types[i] == ty_id).collect();
            let mut perm = idx.clone();
            for i in (1..perm.len()).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                perm.swap(i, j);
            }
            let snapshot = moved.clone();
            for (a, b) in idx.iter().zip(&perm) {
                moved[*a] = snapshot[*b];
            }
        }
        let views: Vec<&[Vec2]> = vec![&cloud, &moved];
        let reduced = reduce_configurations(&views, &types, &ReduceConfig::default());
        for i in 0..cloud.len() {
            let d = reduced.configs[0][i].dist(reduced.configs[1][i]);
            prop_assert!(d < 1e-4, "particle {i} off by {d}");
        }
    }

    #[test]
    fn icp_cost_zero_for_exact_copies(
        cloud in arb_cloud(10),
        angle in -3.1..3.1f64
    ) {
        let types: Vec<u16> = vec![0; cloud.len()];
        let t = RigidTransform { rotation: angle, translation: Vec2::new(1.0, -2.0) };
        let moved: Vec<Vec2> = cloud.iter().map(|&p| t.inverse().apply(p)).collect();
        let res = icp_align(&cloud, &moved, &types, &Default::default());
        prop_assert!(res.cost < 1e-9, "cost {}", res.cost);
    }

    #[test]
    fn matching_total_cost_is_optimal_vs_identity(
        cloud in arb_cloud(8),
        other in arb_cloud(8)
    ) {
        let types: Vec<u16> = vec![0; 8];
        let perm = match_types(&cloud, &other, &types);
        let matched: f64 = perm
            .iter()
            .enumerate()
            .map(|(i, &j)| cloud[i].dist_sq(other[j]))
            .sum();
        let identity: f64 = cloud
            .iter()
            .zip(&other)
            .map(|(a, b)| a.dist_sq(*b))
            .sum();
        prop_assert!(matched <= identity + 1e-9);
    }

    #[test]
    fn mi_estimate_finite_on_arbitrary_ensembles(
        seed in 0..u64::MAX,
        m in 20..60usize
    ) {
        // Random data through the whole estimator stack never produces
        // NaN/inf.
        let mut rng = SplitMix64::new(seed);
        let data: Vec<f64> = (0..m * 6).map(|_| rng.next_range(-100.0, 100.0)).collect();
        let sizes = [2usize, 2, 2];
        let view = SampleView::new(&data, m, &sizes);
        let mi = sops::info::multi_information(&view, &KsgConfig { k: 3, ..KsgConfig::default() });
        prop_assert!(mi.is_finite());
    }
}
