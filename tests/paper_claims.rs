//! Smoke-scale verification of the paper's headline qualitative claims
//! (§6, §7). Full-scale versions live in the `sops-repro` binary and
//! EXPERIMENTS.md; these run in seconds and guard the claims in CI.

use sops::core::figures;
use sops::core::RunOptions;
use sops::prelude::*;

fn fast_opts(seed: u64) -> RunOptions {
    RunOptions {
        fast: true,
        seed,
        threads: 0,
        out_dir: None,
    }
}

#[test]
fn claim_multi_type_collectives_self_organize() {
    // §6: "Simulations with l = 3 to 5 types ... almost always show
    // quantifiable self-organization reflected in multi-information."
    let data = figures::fig4::run(&fast_opts(101));
    assert!(
        data.mi.increase() > 1.0,
        "fig4 system must organize: {:?}",
        data.mi.values
    );
}

#[test]
fn claim_single_type_f1_rings_organize() {
    // §6: F1 with one type and r_c > 2 r forms concentric rings with
    // "a relatively high amount ... of self-organization".
    let data = figures::fig5::run(&fast_opts(102));
    assert!(
        data.mi.increase() > 1.0,
        "fig5 rings must organize: {:?}",
        data.mi.values
    );
}

#[test]
fn claim_single_type_f2_grid_organizes_weakly() {
    // §6: the single-type F2 regular grid shows very low
    // self-organization compared to structured collectives.
    let law = ForceModel::Gaussian(GaussianForce::from_preferred_distance(
        PairMatrix::constant(1, 3.0),
        &PairMatrix::constant(1, 2.0),
    ));
    let spec = EnsembleSpec {
        model: Model::balanced(16, law, 6.0),
        integrator: IntegratorConfig {
            dt: 0.05,
            substeps: 2,
            noise_variance: 0.0025,
            max_step: 0.5,
            ..IntegratorConfig::default()
        },
        init_radius: 3.0,
        t_max: 60,
        samples: 80,
        seed: 103,
        criterion: None,
    };
    let mut p = Pipeline::new(spec);
    p.eval_every = 60;
    let grid = run_pipeline(&p);

    let rings = figures::fig5::run(&fast_opts(103));
    assert!(
        grid.mi.increase() < rings.mi.increase(),
        "F2 grid ΔI {:.2} must be below F1 ring ΔI {:.2}",
        grid.mi.increase(),
        rings.mi.increase()
    );
}

#[test]
fn claim_long_range_interaction_organizes_more() {
    // §7.2: decreasing r_c decreases observable self-organization.
    let data = figures::fig9::run(&fast_opts(104));
    let first = data.curves.first().unwrap();
    let last = data.curves.last().unwrap();
    assert!(last.final_value() > first.final_value() + 0.5);
}

#[test]
fn claim_fewer_types_compensate_for_locality() {
    // §7.2: at fixed small r_c, fewer types ⇒ more self-organization.
    let data = figures::fig10::run(&fast_opts(105));
    let five = data.final_value(5, 10.0).unwrap();
    let twenty = data.final_value(20, 10.0).unwrap();
    assert!(five > twenty);
}

#[test]
fn claim_decomposition_settles_while_total_rises() {
    // §6.1.1 / Fig 11: relative contributions settle after the early
    // phase even though the total multi-information still grows.
    let data = figures::fig11::run(&fast_opts(106));
    assert!(data.total.last().unwrap() > data.total.first().unwrap());
    if let Some((early, late)) = data.settling() {
        assert!(
            late < early * 1.5,
            "late-phase spread {late} should not exceed early spread {early} much"
        );
    }
}

#[test]
fn claim_emergent_structures_under_local_interactions() {
    // §7.2 / Fig 12: few types + limited r_c produce layered structures.
    let data = figures::fig12::run(&fast_opts(107));
    assert!(data.panels.iter().all(|p| p.stratification > 0.3));
}
