//! Cross-crate invariance tests: the measurement must not depend on the
//! shape-irrelevant degrees of freedom the paper factors out (§4.2) —
//! global rigid motions and same-type permutations of the samples.

use sops::prelude::*;
use sops::shape::ensemble::{reduce_configurations, ReduceConfig};
use sops::shape::RigidTransform;

fn organized_ensemble(samples: usize) -> (Vec<Vec<Vec2>>, Vec<u16>) {
    // Simulate a small organizing system and take its final slice.
    let k = PairMatrix::constant(2, 1.0);
    let mut r = PairMatrix::constant(2, 1.0);
    r.set(0, 1, 2.5);
    let model = Model::balanced(
        10,
        ForceModel::Linear(LinearForce::new(k, r)),
        f64::INFINITY,
    );
    let types = model.types().to_vec();
    let spec = EnsembleSpec {
        model,
        integrator: IntegratorConfig::default(),
        init_radius: 2.0,
        t_max: 40,
        samples,
        seed: 17,
        criterion: None,
    };
    let ensemble = run_ensemble(&spec, 0);
    let slice: Vec<Vec<Vec2>> = ensemble
        .at_time(40)
        .into_iter()
        .map(|s| s.to_vec())
        .collect();
    (slice, types)
}

fn mi_of_slice(slice: &[Vec<Vec2>], types: &[u16]) -> f64 {
    let views: Vec<&[Vec2]> = slice.iter().map(|s| s.as_slice()).collect();
    let reduced = reduce_configurations(&views, types, &ReduceConfig::default());
    let data = sops::shape::ensemble::flatten_reduced(&reduced);
    let sizes = vec![2usize; types.len()];
    let view = SampleView::new(&data, slice.len(), &sizes);
    sops::info::multi_information(&view, &KsgConfig::default())
}

#[test]
fn mi_invariant_under_per_sample_rigid_motions() {
    let (slice, types) = organized_ensemble(80);
    let base = mi_of_slice(&slice, &types);

    // Give every sample its own random rotation + translation.
    let mut rng = SplitMix64::new(99);
    let transformed: Vec<Vec<Vec2>> = slice
        .iter()
        .map(|sample| {
            let t = RigidTransform {
                rotation: rng.next_range(-3.0, 3.0),
                translation: Vec2::new(rng.next_range(-20.0, 20.0), rng.next_range(-20.0, 20.0)),
            };
            sample.iter().map(|&p| t.apply(p)).collect()
        })
        .collect();
    let moved = mi_of_slice(&transformed, &types);
    // The reduction is exact up to ICP ambiguity: per-sample restart
    // grids are orientation-dependent, so near-symmetric samples can land
    // in different alignment optima after a rigid motion. The residual is
    // estimator-level noise, well below the signal (ΔI of several bits).
    assert!(
        (base - moved).abs() < 0.7,
        "rigid motions must not change the measured organization: {base:.3} vs {moved:.3}"
    );
}

#[test]
fn mi_invariant_under_same_type_shuffles() {
    let (slice, types) = organized_ensemble(80);
    let base = mi_of_slice(&slice, &types);

    // Shuffle particles within each type, per sample.
    let mut rng = SplitMix64::new(5);
    let shuffled: Vec<Vec<Vec2>> = slice
        .iter()
        .map(|sample| {
            let mut out = sample.clone();
            for t in 0..2u16 {
                let idx: Vec<usize> = (0..types.len()).filter(|&i| types[i] == t).collect();
                let mut perm = idx.clone();
                for i in (1..perm.len()).rev() {
                    let j = rng.next_below(i as u64 + 1) as usize;
                    perm.swap(i, j);
                }
                for (a, b) in idx.iter().zip(&perm) {
                    out[*a] = sample[*b];
                }
            }
            out
        })
        .collect();
    let moved = mi_of_slice(&shuffled, &types);
    assert!(
        (base - moved).abs() < 0.7,
        "same-type shuffles must not change the measurement: {base:.3} vs {moved:.3}"
    );
}

#[test]
fn reduction_centres_and_preserves_distances() {
    let (slice, types) = organized_ensemble(20);
    let views: Vec<&[Vec2]> = slice.iter().map(|s| s.as_slice()).collect();
    let reduced = reduce_configurations(&views, &types, &ReduceConfig::default());
    for (orig, red) in slice.iter().zip(&reduced.configs) {
        // Centred up to the ICP fit translation (nearest-neighbour
        // correspondences are not always bijective, so the matched-target
        // centroid can sit slightly off the reference centroid).
        assert!(Vec2::centroid(red).norm() < 0.5);
        // Pairwise distance *multisets* are preserved (reduction is a
        // rigid motion + permutation of the original sample).
        let mut d_orig: Vec<f64> = Vec::new();
        let mut d_red: Vec<f64> = Vec::new();
        for i in 0..orig.len() {
            for j in (i + 1)..orig.len() {
                d_orig.push(orig[i].dist(orig[j]));
                d_red.push(red[i].dist(red[j]));
            }
        }
        d_orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d_red.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in d_orig.iter().zip(&d_red) {
            assert!(
                (a - b).abs() < 1e-6,
                "distance multiset changed: {a} vs {b}"
            );
        }
    }
}

#[test]
fn observer_mode_kmeans_tracks_per_particle_trend() {
    // The §5.3.1 approximation must agree with per-particle observers on
    // the *direction* of the effect (organization present).
    let k = PairMatrix::constant(2, 1.0);
    let mut r = PairMatrix::constant(2, 1.0);
    r.set(0, 1, 2.5);
    let model = Model::balanced(
        12,
        ForceModel::Linear(LinearForce::new(k, r)),
        f64::INFINITY,
    );
    let spec = EnsembleSpec {
        model,
        integrator: IntegratorConfig::default(),
        init_radius: 2.0,
        t_max: 30,
        samples: 60,
        seed: 31,
        criterion: None,
    };
    let mut per_particle = Pipeline::new(spec.clone());
    per_particle.eval_every = 30;
    let mut kmeans = Pipeline::new(spec);
    kmeans.eval_every = 30;
    kmeans.observers = ObserverMode::TypeMeans { k_per_type: 2 };

    let a = run_pipeline(&per_particle);
    let b = run_pipeline(&kmeans);
    assert!(a.mi.increase() > 0.3, "per-particle: {:?}", a.mi.values);
    assert!(b.mi.increase() > 0.1, "k-means approx: {:?}", b.mi.values);
}
