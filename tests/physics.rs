//! Physical sanity of the particle model across crates: conservation
//! properties, analytic two-body equilibria, equilibrium detection, and
//! the qualitative behaviours §6 builds on.

use sops::prelude::*;
use sops::sim::force::ForceLaw;

#[test]
fn newtons_third_law_holds_for_symmetric_interactions() {
    // Total drift force of an isolated system vanishes (the paper's
    // symmetric matrices make pair forces equal and opposite), so the
    // centroid is preserved by the deterministic dynamics.
    let k = PairMatrix::constant(2, 2.0);
    let mut r = PairMatrix::constant(2, 1.0);
    r.set(0, 1, 2.0);
    let model = Model::balanced(9, ForceModel::Linear(LinearForce::new(k, r)), f64::INFINITY);
    let mut sim = Simulation::with_disc_init(
        model.clone(),
        IntegratorConfig::default().deterministic(),
        2.0,
        3,
    );
    let c0 = Vec2::centroid(sim.positions());
    for _ in 0..200 {
        sim.step();
    }
    let c1 = Vec2::centroid(sim.positions());
    assert!(
        c0.dist(c1) < 1e-6,
        "centroid drifted {c0:?} -> {c1:?} without noise"
    );
}

#[test]
fn two_body_equilibrium_at_preferred_distance_any_type_pair() {
    // Cross-type pair must settle exactly at r_{01}.
    let k = PairMatrix::constant(2, 1.5);
    let mut r = PairMatrix::constant(2, 1.0);
    r.set(0, 1, 3.0);
    let model = Model::new(
        vec![0, 1],
        ForceModel::Linear(LinearForce::new(k, r)),
        f64::INFINITY,
    );
    let mut sim = Simulation::from_initial(
        model,
        IntegratorConfig::default().deterministic(),
        vec![Vec2::new(-0.6, 0.0), Vec2::new(0.6, 0.0)],
        0,
    );
    for _ in 0..2000 {
        sim.step();
    }
    let sep = sim.positions()[0].dist(sim.positions()[1]);
    assert!((sep - 3.0).abs() < 1e-3, "separation {sep}, want 3.0");
}

#[test]
fn gaussian_collective_expands_monotonically() {
    // F2 is soft repulsion: the radius of gyration grows from a crowded
    // start (the "still slowly expanding" observation of §6).
    let law = ForceModel::Gaussian(GaussianForce::uniform(3.0, 4.0));
    let model = Model::balanced(20, law, f64::INFINITY);
    let mut sim =
        Simulation::with_disc_init(model, IntegratorConfig::default().deterministic(), 1.0, 5);
    let rg = |pos: &[Vec2]| {
        let c = Vec2::centroid(pos);
        (pos.iter().map(|p| p.dist_sq(c)).sum::<f64>() / pos.len() as f64).sqrt()
    };
    let mut last = rg(sim.positions());
    for _ in 0..5 {
        for _ in 0..40 {
            sim.step();
        }
        let now = rg(sim.positions());
        assert!(
            now >= last - 1e-9,
            "collective must not contract: {last} -> {now}"
        );
        last = now;
    }
}

#[test]
fn cutoff_decouples_distant_clusters() {
    // Two pairs far beyond the cut-off evolve as independent two-body
    // systems; their centroids stay put deterministically.
    let law = ForceModel::Linear(LinearForce::uniform(1.0, 1.0));
    let model = Model::new(vec![0, 0, 0, 0], law, 3.0);
    let initial = vec![
        Vec2::new(-50.0, 0.0),
        Vec2::new(-48.0, 0.0),
        Vec2::new(50.0, 0.0),
        Vec2::new(48.5, 0.0),
    ];
    let mut sim = Simulation::from_initial(
        model,
        IntegratorConfig::default().deterministic(),
        initial,
        0,
    );
    for _ in 0..500 {
        sim.step();
    }
    let pos = sim.positions();
    // Left pair settled at separation 1, centred at -49.
    assert!((pos[0].dist(pos[1]) - 1.0).abs() < 1e-3);
    assert!((Vec2::centroid(&pos[0..2]).x + 49.0).abs() < 1e-6);
    // Right pair likewise, independently.
    assert!((pos[2].dist(pos[3]) - 1.0).abs() < 1e-3);
    assert!((Vec2::centroid(&pos[2..4]).x - 49.25).abs() < 1e-6);
}

#[test]
fn asymmetric_interactions_are_rejected_by_pairmatrix() {
    // §4.1 considers only symmetric matrices (asymmetric preferences are
    // unstable); the type system enforces this at construction.
    let result = std::panic::catch_unwind(|| PairMatrix::from_full(2, &[1.0, 2.0, 3.0, 1.0]));
    assert!(result.is_err(), "asymmetric matrix must be rejected");
}

#[test]
fn equilibrium_detection_matches_force_freeze() {
    let law = ForceModel::Linear(LinearForce::uniform(1.0, 1.0));
    let model = Model::balanced(6, law, f64::INFINITY);
    let mut sim = Simulation::with_disc_init(
        model.clone(),
        IntegratorConfig::default().deterministic(),
        1.5,
        9,
    );
    let criterion = EquilibriumCriterion {
        threshold: 1e-4,
        patience: 5,
    };
    let (steps, reached) = sim.run_to_equilibrium(criterion, 5000);
    assert!(reached, "deterministic attracting system equilibrates");
    assert!(steps < 5000);
    assert!(sim.total_force_norm() < 1e-4);
}

#[test]
fn noise_level_sets_equilibrium_jitter_scale() {
    // With noise, positions fluctuate around equilibrium; the drift force
    // fluctuation should scale with the noise amplitude.
    let measure = |variance: f64| -> f64 {
        let law = ForceModel::Linear(LinearForce::uniform(1.0, 1.0));
        let model = Model::balanced(6, law, f64::INFINITY);
        let cfg = IntegratorConfig {
            noise_variance: variance,
            ..IntegratorConfig::default()
        };
        let mut sim = Simulation::with_disc_init(model.clone(), cfg, 1.5, 11);
        for _ in 0..600 {
            sim.step();
        }
        // Average late-time force norm.
        let mut acc = 0.0;
        for _ in 0..100 {
            acc += sim.step();
        }
        acc / 100.0
    };
    let quiet = measure(0.0025);
    let loud = measure(0.25);
    assert!(
        loud > 3.0 * quiet,
        "10x noise std should raise residual forces: quiet {quiet}, loud {loud}"
    );
}

#[test]
fn f1_preferred_distance_is_a_stable_fixed_point() {
    // Perturb a pair slightly off r and verify restoring drift on both
    // sides — the defining property of the preferred distance.
    let law = LinearForce::uniform(1.0, 2.0);
    let below = law.scale(0, 0, 1.8);
    let above = law.scale(0, 0, 2.2);
    assert!(below < 0.0, "compressed pair must repel");
    assert!(above > 0.0, "stretched pair must attract");
}
