//! Contracts of the content-addressed cell cache
//! (`sops_core::cache`): caching is invisible in the results.
//!
//! * `sweep.json` bytes are identical for an uncached run, a cold-cache
//!   run (every cell computed then stored), a warm-cache run (every
//!   cell served from disk) and a broker run over the same cache — for
//!   evaluation worker counts 1 and 8, property-tested over seeds;
//! * a partially warm cache computes exactly the missing cells and
//!   still reproduces the uncached bytes;
//! * provenance labels the reuse without ever entering the canonical
//!   JSON.

use proptest::prelude::*;
use sops::core::report::sweep_json;
use sops::prelude::*;
use sops::sim::force::{ForceModel, LinearForce};
use std::sync::Arc;

/// A small 2-type attracting system that visibly organizes.
fn small_scenario(name: &str, seed: u64, samples: usize, t_max: usize) -> ScenarioSpec {
    let k = PairMatrix::constant(2, 1.0);
    let mut r = PairMatrix::constant(2, 1.0);
    r.set(0, 1, 2.0);
    let pipeline = Pipeline::new(EnsembleSpec {
        model: Model::balanced(8, ForceModel::Linear(LinearForce::new(k, r)), f64::INFINITY),
        integrator: IntegratorConfig::default(),
        init_radius: 2.0,
        t_max,
        samples,
        seed,
        criterion: None,
    });
    let mut sc = ScenarioSpec::from_pipeline(name, &pipeline);
    sc.eval_every = 4;
    sc
}

fn small_plan(seed: u64, threads: usize, measures: Vec<MeasureConfig>) -> SweepPlan {
    SweepPlan {
        scenarios: vec![
            small_scenario("attract", seed, 16, 8),
            small_scenario("attract_b", seed + 1, 16, 8),
        ],
        measures,
        seeds: vec![],
        threads,
        storage: EnsembleStorage::default(),
    }
}

fn fresh_cache(name: &str) -> CellCache {
    let dir = std::env::temp_dir().join(format!("sops_sweep_cache_test_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    CellCache::open(dir).expect("temp cache dir")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The acceptance property: uncached, cold-cache, warm-cache and
    /// broker-over-cache runs of the same plan produce byte-identical
    /// canonical `sweep.json`, at 1 and 8 evaluation workers.
    #[test]
    fn cache_and_broker_never_change_a_byte(seed in 0u64..1000) {
        let measures = vec![
            MeasureConfig::Gaussian,
            MeasureConfig::Ksg(KsgConfig { k: 3, ..KsgConfig::default() }),
        ];
        for threads in [1usize, 8] {
            let plan = small_plan(seed, threads, measures.clone());
            let uncached = sweep_json(&run_sweep(&plan).expect("valid plan"), false);

            let cache = fresh_cache(&format!("prop_{seed}_{threads}"));
            let mut runner = SweepRunner::new();
            let cold_report = runner.run_with_cache(&plan, &cache).expect("cold run");
            prop_assert!(cold_report
                .cells
                .iter()
                .all(|c| c.provenance == CellProvenance::Computed));
            prop_assert_eq!(&sweep_json(&cold_report, false), &uncached);

            let warm_report = runner.run_with_cache(&plan, &cache).expect("warm run");
            prop_assert!(warm_report
                .cells
                .iter()
                .all(|c| c.provenance == CellProvenance::Cached));
            prop_assert_eq!(&sweep_json(&warm_report, false), &uncached);

            let broker = SweepBroker::new().with_cache(Arc::new(cache));
            let broker_report = broker.run(&plan).expect("broker run");
            prop_assert!(broker_report
                .cells
                .iter()
                .all(|c| c.provenance == CellProvenance::Cached));
            prop_assert_eq!(&sweep_json(&broker_report, false), &uncached);
            prop_assert_eq!(broker.counters().sim_passes(), 0);
        }
    }
}

/// A cache warmed with a subset of the measure axis serves that subset
/// and computes only the rest — and the assembled report still equals
/// the uncached superset run byte for byte.
#[test]
fn partially_warm_cache_computes_only_the_missing_cells() {
    let gaussian = vec![MeasureConfig::Gaussian];
    let both = vec![
        MeasureConfig::Gaussian,
        MeasureConfig::Ksg(KsgConfig {
            k: 3,
            ..KsgConfig::default()
        }),
    ];
    let cache = fresh_cache("partial");
    let mut runner = SweepRunner::new();

    // Warm only the Gaussian column (2 scenarios × 1 measure).
    runner
        .run_with_cache(&small_plan(7, 2, gaussian), &cache)
        .expect("warm-up");
    assert_eq!(cache.len(), 2);

    let superset = small_plan(7, 2, both);
    let uncached = sweep_json(&run_sweep(&superset).expect("valid plan"), false);
    let report = runner.run_with_cache(&superset, &cache).expect("mixed run");
    assert_eq!(sweep_json(&report, false), uncached);
    for cell in &report.cells {
        let expected = if cell.measure_label == "gaussian" {
            CellProvenance::Cached
        } else {
            CellProvenance::Computed
        };
        assert_eq!(
            cell.provenance, expected,
            "{}/{}",
            cell.scenario, cell.measure_label
        );
    }
    // The KSG column was backfilled: everything is on disk now.
    assert_eq!(cache.len(), 4);
    let stats = cache.stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.stores, 4);
}

/// Provenance is metadata: it shows up in the opt-in serve JSON and
/// never in the canonical writer's bytes.
#[test]
fn provenance_is_opt_in_metadata() {
    let plan = small_plan(11, 1, vec![MeasureConfig::Gaussian]);
    let cache = fresh_cache("metadata");
    let mut runner = SweepRunner::new();
    runner.run_with_cache(&plan, &cache).expect("cold");
    let warm = runner.run_with_cache(&plan, &cache).expect("warm");
    let canonical = sweep_json(&warm, false);
    assert!(!canonical.contains("provenance"), "{canonical}");
    assert!(!canonical.contains("cached"), "{canonical}");
    let annotated = sweep_json(&warm, true);
    assert!(
        annotated.contains("\"provenance\": \"cached\", \"cached\": true"),
        "{annotated}"
    );
}
