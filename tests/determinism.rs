//! End-to-end determinism: the full pipeline must be bit-reproducible in
//! its seed and independent of thread scheduling — the property that
//! makes every number in EXPERIMENTS.md regenerable.

use sops::prelude::*;

fn spec(seed: u64) -> EnsembleSpec {
    let k = PairMatrix::constant(3, 1.0);
    let r = PairMatrix::from_full(3, &[2.5, 5.0, 4.0, 5.0, 2.5, 2.0, 4.0, 2.0, 3.5]);
    EnsembleSpec {
        model: Model::balanced(12, ForceModel::Linear(LinearForce::new(k, r)), 5.0),
        integrator: IntegratorConfig::default(),
        init_radius: 3.0,
        t_max: 25,
        samples: 50,
        seed,
        criterion: None,
    }
}

/// Every field of the result, compared at the bit level — `f64` equality
/// would hide sign/NaN drift.
fn assert_bit_identical(a: &PipelineResult, b: &PipelineResult, what: &str) {
    assert_eq!(a.mi.times, b.mi.times, "{what}: eval times");
    assert_eq!(
        a.mi.values.len(),
        b.mi.values.len(),
        "{what}: series length"
    );
    for (i, (x, y)) in a.mi.values.iter().zip(&b.mi.values).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: mi[{i}] {x} vs {y}");
    }
    assert_eq!(
        a.mean_icp_cost.len(),
        b.mean_icp_cost.len(),
        "{what}: icp cost series length"
    );
    for (i, (x, y)) in a.mean_icp_cost.iter().zip(&b.mean_icp_cost).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: icp_cost[{i}] {x} vs {y}");
    }
    assert_eq!(
        a.equilibrated_fraction.to_bits(),
        b.equilibrated_fraction.to_bits(),
        "{what}: equilibrated fraction"
    );
}

#[test]
fn pipeline_bitwise_reproducible() {
    let mut p = Pipeline::new(spec(2024));
    p.eval_every = 5;
    let a = run_pipeline(&p);
    let b = run_pipeline(&p);
    assert_bit_identical(&a, &b, "same seed, two runs");
}

#[test]
fn pipeline_bitwise_identical_across_explicit_and_auto_threads() {
    // threads = 0 resolves to the machine's parallelism; the result must
    // still be bit-identical to a single-threaded run — the parallel
    // ensemble writes into per-index slots with per-index derived seeds,
    // so scheduling must never leak into the numbers.
    let mut p1 = Pipeline::new(spec(0xD17E_4311));
    p1.eval_every = 5;
    p1.threads = 1;
    let mut p_auto = p1.clone();
    p_auto.threads = 0;
    let a = run_pipeline(&p1);
    let b = run_pipeline(&p_auto);
    assert_bit_identical(&a, &b, "threads=1 vs threads=0");
}

#[test]
fn pipeline_independent_of_thread_count() {
    let mut p1 = Pipeline::new(spec(7));
    p1.eval_every = 5;
    p1.threads = 1;
    let mut p8 = p1.clone();
    p8.threads = 8;
    let a = run_pipeline(&p1);
    let b = run_pipeline(&p8);
    assert_bit_identical(&a, &b, "threads=1 vs threads=8");
}

#[test]
fn different_seeds_give_different_but_similar_results() {
    let mut p1 = Pipeline::new(spec(1));
    p1.eval_every = 25;
    let mut p2 = Pipeline::new(spec(2));
    p2.eval_every = 25;
    let a = run_pipeline(&p1);
    let b = run_pipeline(&p2);
    // Different realizations...
    assert_ne!(a.mi.values, b.mi.values);
    // ...of the same physics: both organize.
    assert!(a.mi.increase() > 0.3, "{:?}", a.mi.values);
    assert!(b.mi.increase() > 0.3, "{:?}", b.mi.values);
}

#[test]
fn ensembles_reproducible_across_thread_counts() {
    let e1 = run_ensemble(&spec(55), 1);
    let e8 = run_ensemble(&spec(55), 8);
    for (a, b) in e1.runs.iter().zip(&e8.runs) {
        assert_eq!(a.frames, b.frames, "trajectories must be identical");
        assert_eq!(a.force_norms, b.force_norms);
    }
}

#[test]
fn environment_thread_override_is_respected() {
    // SOPS_THREADS only affects scheduling, never results.
    std::env::set_var("SOPS_THREADS", "2");
    let a = run_ensemble(&spec(3), 0);
    std::env::remove_var("SOPS_THREADS");
    let b = run_ensemble(&spec(3), 4);
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_eq!(x.frames, y.frames);
    }
}
