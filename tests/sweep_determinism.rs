//! Contracts of the one-pass sweep engine (`sops_core::scenario`):
//!
//! * every grid cell of a `SweepReport` is **bit-identical** to the
//!   equivalent standalone `run_pipeline` call, for evaluation worker
//!   counts 1 and 8 (the pipeline is literally a one-cell sweep, so this
//!   pins the fan-out itself: sharing one reduction/observer pass across
//!   measures, and one `MeasureWorkspace` across estimator families, must
//!   not perturb any estimate);
//! * a warmed-up `SweepRunner` performs zero steady-state allocations in
//!   its evaluation machinery across a 100-cell workload
//!   (buffer-capacity stability, mirroring
//!   `crates/sops-info/tests/workspace_measure.rs`).

use sops::prelude::*;
use sops::sim::force::{ForceModel, LinearForce};

/// A small 2-type attracting system that visibly organizes.
fn small_scenario(name: &str, seed: u64, samples: usize, t_max: usize) -> ScenarioSpec {
    let k = PairMatrix::constant(2, 1.0);
    let mut r = PairMatrix::constant(2, 1.0);
    r.set(0, 1, 2.0);
    let pipeline = Pipeline::new(EnsembleSpec {
        model: Model::balanced(8, ForceModel::Linear(LinearForce::new(k, r)), f64::INFINITY),
        integrator: IntegratorConfig::default(),
        init_radius: 2.0,
        t_max,
        samples,
        seed,
        criterion: None,
    });
    let mut sc = ScenarioSpec::from_pipeline(name, &pipeline);
    sc.eval_every = 10;
    sc
}

fn measure_axis() -> Vec<MeasureConfig> {
    vec![
        MeasureConfig::Ksg(KsgConfig {
            k: 3,
            ..KsgConfig::default()
        }),
        MeasureConfig::Kde(sops::info::KdeConfig::default()),
        MeasureConfig::Binned(sops::info::BinningConfig::default()),
        MeasureConfig::Gaussian,
    ]
}

/// The acceptance contract: the sweep grid equals the same cells run as
/// independent single-measure pipelines, bitwise, for worker counts 1
/// and 8 — and the two worker counts agree with each other.
#[test]
fn sweep_report_bit_matches_single_pipeline_sequence() {
    let scenarios = vec![
        small_scenario("attract", 42, 40, 20),
        small_scenario("attract_other_seed", 43, 40, 20),
    ];
    let measures = measure_axis();
    let mut reports = Vec::new();
    for threads in [1usize, 8] {
        let plan = SweepPlan {
            scenarios: scenarios.clone(),
            measures: measures.clone(),
            seeds: vec![],
            threads,
            storage: EnsembleStorage::default(),
        };
        let report = run_sweep(&plan).expect("valid plan");
        assert_eq!(report.cells.len(), scenarios.len() * measures.len());

        // The equivalent sequence of standalone runs, same worker count.
        for cell in &report.cells {
            let sc = scenarios.iter().find(|s| s.name == cell.scenario).unwrap();
            let mut p = sc.pipeline(cell.measure);
            p.threads = threads;
            let standalone = run_pipeline(&p);
            assert_eq!(standalone.mi.times, cell.result.mi.times);
            for (a, b) in standalone.mi.values.iter().zip(&cell.result.mi.values) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}/{} threads={threads}: {a} vs {b}",
                    cell.scenario,
                    cell.measure.label()
                );
            }
            for (a, b) in standalone
                .mean_icp_cost
                .iter()
                .zip(&cell.result.mean_icp_cost)
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(
                standalone.equilibrated_fraction.to_bits(),
                cell.result.equilibrated_fraction.to_bits()
            );
        }
        reports.push(report);
    }

    // Worker count must not change a single bit anywhere in the grid.
    for (a, b) in reports[0].cells.iter().zip(&reports[1].cells) {
        assert_eq!(a.scenario, b.scenario);
        for (x, y) in a.result.mi.values.iter().zip(&b.result.mi.values) {
            assert_eq!(x.to_bits(), y.to_bits(), "threads 1 vs 8 diverged");
        }
    }
}

/// 100-cell capacity test: once the runner has seen the workload shapes,
/// driving many more grid cells through it must not grow any internal
/// buffer (the sweep sibling of the `workspace_measure.rs` contract).
/// Like that suite, the check runs on one evaluation worker: with
/// several racing workers the *signature* is claim-schedule-dependent
/// (which worker warmed which engine), even though capacities still only
/// ever grow to the bounded workload.
#[test]
fn warm_sweep_runner_does_not_allocate() {
    let plan = SweepPlan {
        scenarios: vec![small_scenario("a", 7, 24, 8), small_scenario("b", 8, 24, 8)],
        measures: measure_axis(),
        seeds: vec![],
        threads: 1,
        storage: EnsembleStorage::default(),
    };
    assert_eq!(plan.cell_count(), 8);
    let mut runner = SweepRunner::new();
    // Warm-up: two passes so every estimator family's scratch reaches its
    // steady-state capacity for this workload.
    runner.run(&plan).expect("valid plan");
    runner.run(&plan).expect("valid plan");
    let warm = runner.capacity_signature();

    // 13 more passes × 8 cells > 100 cells through the warm runner.
    for _ in 0..13 {
        runner.run(&plan).expect("valid plan");
        assert_eq!(
            runner.capacity_signature(),
            warm,
            "warm SweepRunner must not grow any internal buffer"
        );
    }
}

/// The one-pass engine and the registry compose: builtin scenarios at
/// smoke scale produce a full grid with the expected separation between
/// organizing scenarios and the null control.
#[test]
fn builtin_registry_sweep_separates_null_control() {
    let registry = ScenarioRegistry::builtin();
    let scenarios: Vec<ScenarioSpec> = registry
        .iter()
        .map(|sc| sc.clone().with_scale(60, 20))
        .collect();
    let plan = SweepPlan::new(scenarios, vec![MeasureConfig::default()]);
    let report = run_sweep(&plan).expect("valid plan");
    assert_eq!(report.cells.len(), 3);
    let sorting = report.get("cell_sorting", "ksg", None).unwrap();
    let null = report.get("mixing_null", "ksg", None).unwrap();
    assert!(
        sorting.result.mi.increase() > 1.0,
        "cell sorting must organize: ΔI = {}",
        sorting.result.mi.increase()
    );
    assert!(
        null.result.mi.increase() < 0.5 * sorting.result.mi.increase(),
        "null control must not: ΔI = {} vs {}",
        null.result.mi.increase(),
        sorting.result.mi.increase()
    );
}
