//! Contracts of the seed-axis statistics layer (`sops_core::summary`,
//! `sops_core::baseline`) on real sweeps:
//!
//! * the `SweepSummary` built from a multi-seed sweep is **bit-identical**
//!   for evaluation worker counts 1 and 8 — every aggregate (mean, std,
//!   SE, t-CI, bootstrap CI, permutation p) is deterministic;
//! * at smoke scale, `cell_sorting` is significant against the
//!   `mixing_null` control and the control is not significant against
//!   itself (p = 1 by construction);
//! * the baseline gate round-trips: save → check passes on the unmodified
//!   tree, a ΔI perturbed beyond the stored seed-axis CI fails;
//! * the satellite fixes stay fixed at the public-API level: degenerate
//!   `MiSeries::slope` is 0 (not NaN) and duplicate sweep grid cells are
//!   rejected.

use sops::prelude::*;

/// Builtin scenarios at smoke scale over a shared seed axis, KSG only.
fn smoke_plan(seeds: Vec<u64>, threads: usize) -> SweepPlan {
    let registry = ScenarioRegistry::builtin();
    let scenarios: Vec<ScenarioSpec> = registry
        .select(&["cell_sorting", "mixing_null"])
        .unwrap()
        .into_iter()
        .map(|sc| sc.with_scale(60, 20))
        .collect();
    SweepPlan {
        scenarios,
        measures: vec![MeasureConfig::default()],
        seeds,
        threads,
        storage: EnsembleStorage::default(),
    }
}

#[test]
fn summary_is_bit_identical_across_worker_counts() {
    let mut summaries = Vec::new();
    let mut baselines = Vec::new();
    for threads in [1usize, 8] {
        let plan = smoke_plan(vec![1, 2, 3, 4], threads);
        let report = run_sweep(&plan).expect("valid plan");
        let summary = SweepSummary::from_report(&report);
        baselines.push(SweepBaseline::from_sweep(&report, &summary).to_json());
        summaries.push(summary);
    }
    let (a, b) = (&summaries[0], &summaries[1]);
    assert_eq!(a.groups.len(), b.groups.len());
    for (ga, gb) in a.groups.iter().zip(&b.groups) {
        assert_eq!(ga.scenario, gb.scenario);
        assert_eq!(ga.measure, gb.measure);
        assert_eq!(ga.seeds, gb.seeds);
        for (x, y) in [
            (ga.mean, gb.mean),
            (ga.std, gb.std),
            (ga.se, gb.se),
            (ga.ci.lo, gb.ci.lo),
            (ga.ci.hi, gb.ci.hi),
            (ga.boot.lo, gb.boot.lo),
            (ga.boot.hi, gb.boot.hi),
        ] {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{}/{}: threads 1 vs 8 diverged ({x} vs {y})",
                ga.scenario,
                ga.measure
            );
        }
        assert_eq!(
            ga.p_vs_null.map(f64::to_bits),
            gb.p_vs_null.map(f64::to_bits),
            "{}/{}: permutation p diverged",
            ga.scenario,
            ga.measure
        );
    }
    // The serialized baseline — the artifact the CI gate compares — is
    // byte-identical too.
    assert_eq!(baselines[0], baselines[1]);
}

#[test]
fn cell_sorting_is_significant_and_the_null_is_not() {
    let plan = smoke_plan(vec![1, 2, 3, 4, 5, 6], 0);
    let report = run_sweep(&plan).expect("valid plan");
    let summary = SweepSummary::from_report(&report);

    let sorting = summary.get("cell_sorting", "ksg").unwrap();
    let null = summary.get("mixing_null", "ksg").unwrap();
    assert_eq!(sorting.n(), 6);
    assert!(
        sorting.mean > 1.0,
        "cell sorting must organize on average: ΔI = {}",
        sorting.mean
    );
    // The CI is a genuine interval around the mean at this scale.
    assert!(sorting.ci.contains(sorting.mean));
    assert!(sorting.ci.half_width() > 0.0);
    assert_eq!(
        sorting.significant(summary.alpha),
        Some(true),
        "cell_sorting vs mixing_null: p = {:?}",
        sorting.p_vs_null
    );
    // The null scenario is compared against itself: p = 1 exactly, never
    // significant.
    assert_eq!(null.p_vs_null, Some(1.0));
    assert_eq!(null.significant(summary.alpha), Some(false));
    // The grid renders both verdicts.
    let grid = summary.grid_table();
    assert!(grid.contains('*'), "{grid}");
    assert!(grid.contains("mixing_null"), "{grid}");
}

#[test]
fn baseline_round_trips_and_gates_drift() {
    let plan = smoke_plan(vec![1, 2, 3, 4], 0);
    let report = run_sweep(&plan).expect("valid plan");
    let summary = SweepSummary::from_report(&report);
    let baseline = SweepBaseline::from_sweep(&report, &summary);

    // Save → read → check on the unmodified tree passes.
    let dir = std::env::temp_dir().join("sops_seed_axis_baseline_test");
    let path = dir.join("BASELINE_sweep.json");
    baseline.write(&path).unwrap();
    let read_back = SweepBaseline::read(&path).unwrap();
    assert_eq!(read_back.to_json(), baseline.to_json());
    assert!(read_back.check(&report, &summary).is_empty());
    std::fs::remove_dir_all(&dir).ok();

    // A ΔI perturbed beyond the stored seed-axis CI fails the gate.
    let mut drifted = read_back.clone();
    let cell = drifted
        .cells
        .iter_mut()
        .find(|c| c.scenario == "cell_sorting")
        .unwrap();
    let tolerance = drifted
        .groups
        .iter()
        .find(|g| g.scenario == "cell_sorting")
        .unwrap()
        .ci_half;
    cell.delta_mi += 10.0 * tolerance.max(1e-3);
    let violations = drifted.check(&report, &summary);
    assert!(
        violations.iter().any(|v| v.contains("cell_sorting")),
        "{violations:?}"
    );
}

#[test]
fn degenerate_mi_series_slope_is_zero() {
    // Regression: a single recorded step used to yield slope = NaN.
    let single = MiSeries {
        times: vec![5],
        values: vec![1.25],
    };
    assert_eq!(single.slope(), 0.0);
    assert_eq!(single.increase(), 0.0);
    let empty = MiSeries {
        times: vec![],
        values: vec![],
    };
    assert_eq!(empty.slope(), 0.0);
}

#[test]
fn duplicate_seed_axis_cells_are_rejected() {
    // Regression: a duplicated seed used to silently run the same grid
    // cell twice (skewing any per-(scenario, measure) aggregate). Now a
    // typed error instead of a panic.
    let plan = smoke_plan(vec![1, 2, 1], 0);
    let err = run_sweep(&plan).unwrap_err();
    assert!(
        matches!(err, SweepError::DuplicateCell { seed: 1, .. }),
        "{err}"
    );
    assert!(err.to_string().contains("duplicate grid cell"), "{err}");
}
