//! Streaming-vs-retained contracts of the out-of-core ensemble layer
//! (`sops_sim::streaming` threaded through the sweep engine):
//!
//! * **bit-identity** — a sweep run under `EnsembleStorage::Streaming`
//!   (in-memory and spill-forced) produces cells bit-identical to the
//!   retained-trajectory reference, for worker counts 1 and 8 and for
//!   dense and sparse evaluation schedules (property-tested over random
//!   grid shapes);
//! * **bounded steady state** — a warmed-up `SweepRunner` driving a
//!   spill-forced streaming workload does not grow any internal buffer
//!   (the capacity-signature contract extended to the streaming eval
//!   loop's staging buffers).

use proptest::prelude::*;
use sops::prelude::*;
use sops::sim::force::{ForceModel, LinearForce};

/// A small 2-type attracting system that visibly organizes.
fn small_scenario(name: &str, seed: u64, samples: usize, t_max: usize) -> ScenarioSpec {
    let k = PairMatrix::constant(2, 1.0);
    let mut r = PairMatrix::constant(2, 1.0);
    r.set(0, 1, 2.0);
    let pipeline = Pipeline::new(EnsembleSpec {
        model: Model::balanced(8, ForceModel::Linear(LinearForce::new(k, r)), f64::INFINITY),
        integrator: IntegratorConfig::default(),
        init_radius: 2.0,
        t_max,
        samples,
        seed,
        criterion: None,
    });
    ScenarioSpec::from_pipeline(name, &pipeline)
}

fn plan(
    samples: usize,
    t_max: usize,
    eval_every: usize,
    threads: usize,
    storage: EnsembleStorage,
) -> SweepPlan {
    let mut sc = small_scenario("attract", 42, samples, t_max);
    sc.eval_every = eval_every;
    SweepPlan {
        scenarios: vec![sc],
        measures: vec![
            MeasureConfig::Ksg(KsgConfig {
                k: 3,
                ..KsgConfig::default()
            }),
            MeasureConfig::Gaussian,
            MeasureConfig::Strided {
                family: StridedFamily::Ksg(KsgConfig {
                    k: 3,
                    ..KsgConfig::default()
                }),
                every: 3,
            },
        ],
        seeds: vec![],
        threads,
        storage,
    }
}

fn assert_reports_bit_identical(a: &SweepReport, b: &SweepReport, tag: &str) {
    assert_eq!(a.cells.len(), b.cells.len(), "{tag}");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.status, cb.status, "{tag}");
        assert_eq!(ca.result.mi.times, cb.result.mi.times, "{tag}");
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&ca.result.mi.values),
            bits(&cb.result.mi.values),
            "{tag}/{}",
            ca.measure_label
        );
        assert_eq!(
            bits(&ca.result.mean_icp_cost),
            bits(&cb.result.mean_icp_cost),
            "{tag}/{}",
            ca.measure_label
        );
        assert_eq!(
            ca.result.equilibrated_fraction.to_bits(),
            cb.result.equilibrated_fraction.to_bits(),
            "{tag}/{}",
            ca.measure_label
        );
    }
}

/// The ISSUE's explicit grid: dense and sparse schedules × threads 1/8 ×
/// {in-memory streaming, spill forced by a 1-byte budget}, all
/// bit-identical to the retained reference.
#[test]
fn streaming_matches_retained_across_schedules_threads_and_spill() {
    for &(samples, t_max, every) in &[(40usize, 20usize, 1usize), (40, 20, 10)] {
        for &threads in &[1usize, 8] {
            let reference = run_sweep(&plan(
                samples,
                t_max,
                every,
                threads,
                EnsembleStorage::Retained,
            ))
            .expect("valid plan");
            for &budget in &[usize::MAX, 1] {
                let streamed = run_sweep(&plan(
                    samples,
                    t_max,
                    every,
                    threads,
                    EnsembleStorage::Streaming {
                        max_resident_bytes: budget,
                    },
                ))
                .expect("valid plan");
                assert_reports_bit_identical(
                    &reference,
                    &streamed,
                    &format!("every={every} threads={threads} budget={budget}"),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random grid shapes: any (samples, horizon, cadence, worker count,
    /// spill budget) agrees bit-for-bit with the retained reference.
    #[test]
    fn streaming_matches_retained_for_random_grids(
        samples in 25usize..40,
        t_max in 6usize..20,
        every in 1usize..12,
        threads in 1usize..9,
        spill in 0usize..2
    ) {
        let spill = spill == 1;
        let budget = if spill { 1 } else { usize::MAX };
        let reference =
            run_sweep(&plan(samples, t_max, every, threads, EnsembleStorage::Retained))
                .expect("valid plan");
        let streamed = run_sweep(&plan(
            samples,
            t_max,
            every,
            threads,
            EnsembleStorage::Streaming { max_resident_bytes: budget },
        ))
        .expect("valid plan");
        assert_reports_bit_identical(
            &reference,
            &streamed,
            &format!("m={samples} T={t_max} every={every} threads={threads} spill={spill}"),
        );
    }
}

/// Zero-allocation steady state of the streaming evaluation loop: after
/// a warm-up pass over a spill-forced plan, repeated sweeps must not
/// grow any internal runner buffer — the staging buffer and slice vector
/// of the streaming view materialization included.
#[test]
fn warm_streaming_runner_does_not_allocate() {
    let plan = plan(
        30,
        16,
        4,
        1,
        EnsembleStorage::Streaming {
            max_resident_bytes: 1, // force the spill path every run
        },
    );
    let mut runner = SweepRunner::new();
    runner.run(&plan).expect("valid plan");
    runner.run(&plan).expect("valid plan");
    let warm = runner.capacity_signature();
    for _ in 0..6 {
        runner.run(&plan).expect("valid plan");
        assert_eq!(
            runner.capacity_signature(),
            warm,
            "warm streaming SweepRunner must not grow any internal buffer"
        );
    }
}
