//! The umbrella crate's public surface: every `sops::prelude` re-export
//! must resolve and be constructible, and the quickstart example's logic
//! must run end-to-end (at smoke scale — fewer samples and steps than
//! `examples/quickstart.rs`, same structure).

use sops::core::report::{self, Series};
use sops::prelude::*;

/// Touch every name the prelude exports. This is a compile-time guarantee
/// first (an unresolved re-export fails the build) and a runtime sanity
/// check second.
#[test]
fn every_prelude_export_resolves() {
    // sops-math
    let v = Vec2::new(3.0, 4.0);
    assert_eq!(v.norm(), 5.0);
    let m = Matrix::identity(3);
    assert_eq!(m.as_slice().len(), 9);
    let pm = PairMatrix::constant(2, 1.5);
    assert_eq!(pm.get(0, 1), 1.5);
    let mut rng = SplitMix64::new(9);
    let _ = rng.next_u64();

    // sops-sim
    let k = PairMatrix::constant(2, 1.0);
    let r = PairMatrix::constant(2, 2.0);
    let linear = ForceModel::Linear(LinearForce::new(k.clone(), r.clone()));
    let sigma = PairMatrix::constant(2, 1.0);
    let tau = PairMatrix::constant(2, 2.0);
    let _gaussian = ForceModel::Gaussian(GaussianForce::new(k, sigma, tau));
    let model = Model::balanced(8, linear, f64::INFINITY);
    let integrator = IntegratorConfig::default();
    let criterion = EquilibriumCriterion::default();
    let spec = EnsembleSpec {
        model: model.clone(),
        integrator,
        init_radius: 2.0,
        t_max: 5,
        samples: 3,
        seed: 7,
        criterion: Some(criterion),
    };
    let ensemble = run_ensemble(&spec, 1);
    assert_eq!(ensemble.runs.len(), 3);
    let mut sim = Simulation::with_disc_init(model, IntegratorConfig::default(), 2.0, 11);
    let traj = sim.run(3, None);
    assert!(!traj.last().is_empty());

    // sops-shape
    let icp_cfg = IcpConfig::default();
    let pts: Vec<Vec2> = (0..6)
        .map(|i| Vec2::new(i as f64, (i * i) as f64 * 0.1))
        .collect();
    let types = vec![0u16; 6];
    let res = icp_align(&pts, &pts, &types, &icp_cfg);
    assert!(res.cost < 1e-9, "self-alignment cost {}", res.cost);
    let _t: RigidTransform = res.transform;

    // sops-info
    let ksg = KsgConfig::default();
    let _ = KsgVariant::Ksg1;
    let _ = KnnMode::Auto;
    let data: Vec<f64> = (0..40).map(|i| (i as f64 * 0.73).sin()).collect();
    let view = SampleView::new(&data, 20, &[1, 1]);
    let mi = sops::info::multi_information(&view, &ksg);
    assert!(mi.is_finite());
    // The persistent engine is the same estimator, bit for bit.
    let mut ws = InfoWorkspace::new();
    assert_eq!(ws.multi_information(&view, &ksg).to_bits(), mi.to_bits());

    // sops-core
    let _ = ObserverMode::PerParticle;
    let _ = ObserverMode::TypeMeans { k_per_type: 2 };
    let _ = RunOptions::default();
    let empty = MiSeries {
        times: Vec::new(),
        values: Vec::new(),
    };
    assert_eq!(empty.increase(), 0.0);
}

/// The quickstart example end-to-end at smoke scale: simulate a two-type
/// collective, factor out the shape symmetries, estimate the
/// multi-information series, and render the report.
#[test]
fn quickstart_logic_runs_end_to_end() {
    let force_scale = PairMatrix::constant(2, 1.0);
    let mut preferred = PairMatrix::constant(2, 1.0);
    preferred.set(0, 1, 2.5);
    let law = ForceModel::Linear(LinearForce::new(force_scale, preferred));
    let model = Model::balanced(12, law, f64::INFINITY);

    let spec = EnsembleSpec {
        model,
        integrator: IntegratorConfig::default(),
        init_radius: 2.5,
        t_max: 20,
        samples: 30,
        seed: 42,
        criterion: Some(EquilibriumCriterion::default()),
    };

    let mut pipeline = Pipeline::new(spec);
    pipeline.eval_every = 10;
    let result: PipelineResult = run_pipeline(&pipeline);

    assert_eq!(result.mi.times.len(), result.mi.values.len());
    assert!(!result.mi.values.is_empty());
    assert!(result.mi.values.iter().all(|v| v.is_finite()));
    assert!(result.mi.increase().is_finite());
    assert!((0.0..=1.0).contains(&result.equilibrated_fraction));

    // The reporting path the example prints.
    let xs: Vec<f64> = result.mi.times.iter().map(|&t| t as f64).collect();
    let series = Series::from_xy("I(W1..Wn) [bits]", &xs, &result.mi.values);
    let chart = report::line_chart("multi-information over time", &[series], 60, 14);
    assert!(chart.contains("multi-information over time"));

    // evaluate_ensemble on a reused ensemble must agree with run_pipeline.
    let ensemble = run_ensemble(&pipeline.ensemble, pipeline.threads);
    let reused = evaluate_ensemble(&ensemble, &pipeline);
    assert_eq!(result.mi.values, reused.mi.values);
}
