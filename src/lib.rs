//! # sops — Self-Organizing Particle Systems
//!
//! A Rust reproduction of Harder & Polani, *"Self-organizing particle
//! systems"*, Advances in Complex Systems 16, 1250089 (2012): an
//! information-theoretic measure of self-organization (increase of
//! multi-information between observer variables) applied to interacting
//! particle collectives that mimic differential cell adhesion.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`sim`] — the particle model: force-scaling families `F¹`/`F²`,
//!   Euler–Maruyama integration, equilibrium detection, parallel
//!   ensembles.
//! * [`shape`] — factoring out the shape symmetries `ISO⁺(2) × S*_n`:
//!   2-D rigid fits, type-aware ICP, Hungarian permutation reduction.
//! * [`info`] — estimators: KSG multi-information (paper Eq. 18–20 and
//!   the two Kraskov variants), KDE and shrinkage-binning baselines,
//!   Kozachenko–Leonenko entropy, the Eq. 5 decomposition.
//! * [`core`] — the end-to-end pipeline, the scenario registry and
//!   one-pass sweep engine (one ensemble fanned over many measures), and
//!   the per-figure reproduction generators.
//! * [`math`], [`spatial`], [`cluster`], [`par`] — numeric, spatial,
//!   clustering and parallelism substrates.
//!
//! ## Quickstart
//!
//! ```
//! use sops::prelude::*;
//!
//! // 12 particles of 2 types, F1 law, preferred distances forcing
//! // same-type clustering.
//! let k = PairMatrix::constant(2, 1.0);
//! let mut r = PairMatrix::constant(2, 1.0);
//! r.set(0, 1, 2.5);
//! let model = Model::balanced(12, ForceModel::Linear(LinearForce::new(k, r)), f64::INFINITY);
//!
//! let spec = EnsembleSpec {
//!     model,
//!     integrator: IntegratorConfig::default(),
//!     init_radius: 2.0,
//!     t_max: 20,
//!     samples: 40,
//!     seed: 1,
//!     criterion: None,
//! };
//! let mut pipeline = Pipeline::new(spec);
//! pipeline.eval_every = 10;
//! let result = run_pipeline(&pipeline);
//! // Self-organization = the multi-information series rises.
//! assert!(result.mi.values.iter().all(|v| v.is_finite()));
//! ```

pub use sops_cluster as cluster;
pub use sops_core as core;
pub use sops_info as info;
pub use sops_math as math;
pub use sops_par as par;
pub use sops_shape as shape;
pub use sops_sim as sim;
pub use sops_spatial as spatial;

/// The most common imports in one place.
pub mod prelude {
    pub use sops_core::{
        evaluate_ensemble, run_pipeline, run_sweep, BrokerStats, CacheStats, CellCache,
        CellProvenance, CellStatus, EnsembleStorage, MiSeries, ObserverMode, Pipeline,
        PipelineResult, RetryPolicy, RunOptions, ScenarioRegistry, ScenarioSpec, SummaryConfig,
        SweepBaseline, SweepBroker, SweepCell, SweepCheckpoint, SweepError, SweepPlan, SweepReport,
        SweepRunner, SweepSummary,
    };
    pub use sops_info::{
        InfoWorkspace, KnnMode, KsgConfig, KsgVariant, MeasureConfig, MeasureWorkspace, SampleView,
        StridedFamily,
    };
    pub use sops_math::{Matrix, PairMatrix, SplitMix64, Vec2};
    pub use sops_shape::{icp_align, IcpConfig, RigidTransform};
    pub use sops_sim::{
        run_ensemble, run_streaming_ensemble, EnsembleFrames, EnsembleSpec, EquilibriumCriterion,
        ForceModel, ForceWorkspace, GaussianForce, IntegratorConfig, LinearForce, Model,
        Simulation, StreamingConfig, StreamingEnsemble,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_resolve() {
        use crate::prelude::*;
        let v = Vec2::new(1.0, 2.0);
        assert_eq!(v.x, 1.0);
        let m = PairMatrix::constant(2, 1.0);
        assert_eq!(m.types(), 2);
        let _ = KsgConfig::default();
        let _ = IcpConfig::default();
        let _ = IntegratorConfig::default();
    }
}
