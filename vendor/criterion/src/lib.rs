//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace must build with no network access and no crates.io cache,
//! so the real criterion cannot be a dependency. This crate keeps the same
//! bench-authoring surface — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`bench_with_input`](BenchmarkGroup::bench_with_input),
//! [`Bencher::iter`], [`BenchmarkId`], [`criterion_group!`] and
//! [`criterion_main!`] — so the `benches/` files compile unchanged, and it
//! actually measures: each benchmark is warmed up, then timed over batches
//! until a time budget is exhausted, and the median per-iteration time is
//! printed as
//!
//! ```text
//! bench group/id ... median 12.345 µs/iter (n = 2048)
//! ```
//!
//! There are no statistical comparisons, plots, or saved baselines. The
//! numbers are honest wall-clock medians, good enough for spotting
//! order-of-magnitude regressions in CI logs and for the ablation sweeps in
//! `crates/sops-bench`.
//!
//! Two harness flags (passed after `--`, e.g. `cargo bench --bench
//! simulation -- --quick --save-json`) extend the real criterion's CLI:
//!
//! * `--quick` — shrink warm-up/measure budgets ~6× for CI smoke runs;
//! * `--save-json[=PATH]` — after all groups run, write every result as
//!   machine-readable JSON (default path `BENCH_<bench-name>.json`, the
//!   bench name derived from the executable). Each entry carries the
//!   full benchmark id, the median ns/iter and the iteration count, so
//!   the perf trajectory is diffable across commits.

use std::hint::black_box as std_black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results collected by every benchmark run in this process, in execution
/// order: `(full id, median seconds/iter, total iterations, peak RSS in
/// bytes observed right after the benchmark finished)`.
static RESULTS: Mutex<Vec<(String, f64, u64, u64)>> = Mutex::new(Vec::new());

/// `--quick` mode: reduced time budgets for CI smoke runs.
static QUICK: AtomicBool = AtomicBool::new(false);

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Whether `--quick` was requested — benches with giant fixtures can
/// downscale them for smoke runs (the JSON's `quick` flag already keeps
/// such numbers out of full-run comparisons).
pub fn is_quick() -> bool {
    QUICK.load(Ordering::Relaxed)
}

/// Top-level harness handle; one per `criterion_group!` function list.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 50,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into().id, 50, &mut f);
        self
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches collected per benchmark (clamped
    /// to at least 10; a wall-clock ceiling still applies).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into().id, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into().id, self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifier for a single benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    /// Median seconds per iteration, filled in by `iter`.
    median: f64,
    iters: u64,
    /// Number of timed batches to collect (the group's `sample_size`).
    sample_size: usize,
}

/// Time budgets per benchmark: a short warm-up, then up to `sample_size`
/// timed batches capped by a wall-clock ceiling (so one slow bench cannot
/// stall a whole suite).
const WARM_UP: Duration = Duration::from_millis(80);
const MEASURE: Duration = Duration::from_millis(400);

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let quick = QUICK.load(Ordering::Relaxed);
        let (warm_up, measure, sample_size) = if quick {
            (WARM_UP / 6, MEASURE / 6, self.sample_size.min(10))
        } else {
            (WARM_UP, MEASURE, self.sample_size)
        };
        // Warm-up: also sizes the batch so each timed batch is ~1ms.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warm_up {
            std_black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.001 / per_iter.max(1e-12)) as u64).clamp(1, 1 << 20);

        let mut samples = Vec::new();
        let measure_start = Instant::now();
        let mut total_iters: u64 = 0;
        while samples.len() < sample_size
            && (samples.is_empty() || measure_start.elapsed() < measure)
        {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
            total_iters += batch;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median = samples[samples.len() / 2];
        self.iters = total_iters;
    }
}

fn run_one(group: &str, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut b = Bencher {
        median: 0.0,
        iters: 0,
        sample_size,
    };
    f(&mut b);
    let (scaled, unit) = scale_seconds(b.median);
    println!(
        "bench {full} ... median {scaled:.3} {unit}/iter (n = {})",
        b.iters
    );
    RESULTS.lock().expect("criterion: results poisoned").push((
        full,
        b.median,
        b.iters,
        peak_rss_bytes(),
    ));
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where the kernel does not expose it
/// (non-Linux). The high-water mark is monotone over the process
/// lifetime, so the per-result snapshots attribute growth to the first
/// benchmark that caused it — memory-sensitive groups should order their
/// lean cases before their hungry ones.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kib: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kib * 1024;
                }
            }
        }
    }
    0
}

/// Parses the harness flags out of the process arguments. Returns the
/// JSON output path if `--save-json` was requested; unknown flags (e.g.
/// cargo's own `--bench`) are ignored, matching real criterion's
/// tolerance. Called by [`criterion_main!`] before any group runs.
pub fn parse_harness_args() -> Option<PathBuf> {
    let mut save: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            QUICK.store(true, Ordering::Relaxed);
        } else if arg == "--save-json" {
            save = Some(default_json_path());
        } else if let Some(path) = arg.strip_prefix("--save-json=") {
            save = Some(PathBuf::from(path));
        }
    }
    save
}

/// `BENCH_<bench-name>.json` in the working directory, the bench name
/// taken from the executable stem minus cargo's trailing `-<hash>`.
fn default_json_path() -> PathBuf {
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    let name = match stem.rsplit_once('-') {
        Some((head, tail)) if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) => {
            head.to_string()
        }
        _ => stem,
    };
    PathBuf::from(format!("BENCH_{name}.json"))
}

/// The worker count the OS grants this process, or 0 when it cannot be
/// determined. Recorded in the JSON so thread-scaling numbers (e.g. the
/// flat `ensemble/1|4|8` medians from a 1-core container) carry the
/// context needed to read them: a `parallelism` of 1 means every worker
/// count time-slices one core and flat scaling is expected, not a bug.
fn detected_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0)
}

/// Serializes every collected result. `quick` runs are flagged so a
/// perf-tracking consumer never compares smoke numbers against full ones;
/// the machine's available parallelism and the process-wide peak RSS are
/// recorded alongside (both 0 where undetectable). Each result carries
/// the high-water mark observed when it finished, so a memory-tiered
/// group that runs its lean cases first shows each tier's footprint.
/// Old baselines without `peak_rss_bytes` stay loadable: consumers
/// (`bench_regression`) read only `name` and `median_ns`.
fn results_to_json(results: &[(String, f64, u64, u64)]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"quick\": {},\n  \"parallelism\": {},\n  \"peak_rss_bytes\": {},\n  \"results\": [\n",
        QUICK.load(Ordering::Relaxed),
        detected_parallelism(),
        peak_rss_bytes()
    ));
    for (i, (name, median, iters, rss)) in results.iter().enumerate() {
        let escaped: String = name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        out.push_str(&format!(
            "    {{\"name\": \"{escaped}\", \"median_ns\": {:.3}, \"iters\": {iters}, \
             \"peak_rss_bytes\": {rss}}}{}\n",
            median * 1e9,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes collected results to `path` if saving was requested. Called by
/// [`criterion_main!`] after every group has run.
pub fn save_results(path: Option<PathBuf>) {
    let Some(path) = path else { return };
    let results = RESULTS.lock().expect("criterion: results poisoned");
    let json = results_to_json(&results);
    match std::fs::write(&path, json) {
        Ok(()) => println!("bench results saved to {}", path.display()),
        Err(e) => eprintln!("criterion: failed to write {}: {e}", path.display()),
    }
}

fn scale_seconds(s: f64) -> (f64, &'static str) {
    if s >= 1.0 {
        (s, "s")
    } else if s >= 1e-3 {
        (s * 1e3, "ms")
    } else if s >= 1e-6 {
        (s * 1e6, "µs")
    } else {
        (s * 1e9, "ns")
    }
}

/// Mirror of `criterion_group!`: defines a function that runs every listed
/// benchmark function against one [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion_main!`, extended with the harness flags: parses
/// `--quick` / `--save-json` up front and writes the JSON results file
/// after all groups have run.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let save = $crate::parse_harness_args();
            $($group();)+
            $crate::save_results(save);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("m10").id, "m10");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn json_serialization_shape() {
        let results = vec![
            (
                "net_forces/cutoff_grid/512".to_string(),
                34.459e-6,
                810u64,
                7_340_032u64,
            ),
            ("with \"quote\"".to_string(), 1.5e-9, 2, 8_388_608),
        ];
        let json = results_to_json(&results);
        assert!(json.contains("\"name\": \"net_forces/cutoff_grid/512\""));
        assert!(json.contains("\"median_ns\": 34459.000"));
        assert!(json.contains("\"iters\": 810"));
        assert!(json.contains("\"peak_rss_bytes\": 7340032"));
        assert!(json.contains("\"peak_rss_bytes\": 8388608"));
        assert!(json.contains("with \\\"quote\\\""));
        assert!(json.contains("\"results\": ["));
        // Exactly one separating comma between the two entries.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn json_handles_empty_results() {
        let json = results_to_json(&[]);
        assert!(json.contains("\"results\": [\n  ]"));
    }

    #[test]
    fn json_records_parallelism_and_peak_rss() {
        let json = results_to_json(&[]);
        let n = detected_parallelism();
        assert!(json.contains(&format!("\"parallelism\": {n},")));
        // Top-level peak RSS sits next to parallelism; on Linux it is a
        // real, nonzero high-water mark.
        assert!(json.contains("\"peak_rss_bytes\": "));
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes() > 0, "VmHWM should be readable on Linux");
        }
    }

    #[test]
    fn scale_picks_sane_units() {
        assert_eq!(scale_seconds(2.0).1, "s");
        assert_eq!(scale_seconds(2e-3).1, "ms");
        assert_eq!(scale_seconds(2e-6).1, "µs");
        assert_eq!(scale_seconds(2e-9).1, "ns");
    }
}
