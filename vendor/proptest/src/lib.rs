//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This workspace must build with no network access and no crates.io cache,
//! so the real proptest cannot be a dependency. This crate implements the
//! subset of its API that the workspace's property tests use, with the same
//! names and call shapes:
//!
//! * [`Strategy`](strategy::Strategy) implemented for `Range` /
//!   `RangeInclusive` of the primitive numeric types, tuples of strategies,
//!   and [`collection::vec`], plus `prop_map` adapters.
//! * The [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], [`prop_assume!`] and [`prop_compose!`] macros.
//! * [`ProptestConfig`](test_runner::Config) with `with_cases`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the case index and the
//!   generated-input seed, not a minimized counterexample.
//! * **Deterministic seeding.** Cases are derived from a fixed per-test
//!   seed (FNV-1a of the test's module path and name), so runs are
//!   bit-reproducible — there is no `PROPTEST_` environment handling.
//! * Default case count is 64 (the real crate's is 256); tests that set
//!   `ProptestConfig::with_cases(n)` get exactly `n` cases.

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (re-exported from the
    /// prelude as `ProptestConfig`). Only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed; the test panics.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// SplitMix64 generator driving all strategies. One instance per case,
    /// seeded from the test's name hash and the case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(base: u64, case: u64) -> Self {
            let mut rng = TestRng {
                state: base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            // Decorrelate nearby case indices.
            rng.next_u64();
            rng.next_u64();
            rng
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Stable per-test seed: FNV-1a over the fully qualified test name.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Mirror of `proptest::strategy::Strategy`: something that can draw a
    /// value from a [`TestRng`]. Unlike the real crate there is no value
    /// tree / shrinking layer.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }
    }

    /// Strategies are generated through `&self`, so a reference is as good
    /// as the strategy itself (the real crate has the same impl).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Mirror of `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            debug_assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }

    /// Strategy backed by a generation closure; the return type of
    /// [`fn_strategy`] and the expansion target of `prop_compose!`.
    pub struct FnStrategy<F>(F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    pub fn fn_strategy<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
        FnStrategy(f)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length. Mirrors
    /// `proptest::collection::SizeRange` conversions for the shapes the
    /// workspace uses: exact `usize`, `lo..hi` and `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128 + 1;
            let n = self.size.lo + (rng.next_u64() as u128 % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };
}

/// Mirror of `proptest::proptest!`: expands each `fn name(pat in strategy,
/// ...) { body }` item into a `#[test]`-able function that runs
/// `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let base = $crate::test_runner::seed_for(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                // A rejected case (prop_assume!) is retried with fresh
                // inputs rather than silently skipped; if rejections swamp
                // the budget the test aborts instead of passing vacuously
                // (mirrors real proptest's "too many global rejects").
                let max_attempts = config.cases as u64 * 16;
                let mut passed: u32 = 0;
                let mut attempt: u64 = 0;
                while passed < config.cases {
                    if attempt >= max_attempts {
                        panic!(
                            "proptest: too many prop_assume! rejections \
                             ({} attempts, only {}/{} cases passed, seed {:#x})",
                            attempt, passed, config.cases, base
                        );
                    }
                    let mut rng = $crate::test_runner::TestRng::new(base, attempt);
                    attempt += 1;
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $arg =
                                    $crate::strategy::Strategy::generate(&($strat), &mut rng);
                            )*
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => continue,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest case {}/{} failed (seed {:#x}): {}",
                            passed + 1, config.cases, base, msg
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Mirror of `proptest::prop_assert!`: on failure, aborts the current case
/// with a [`TestCaseError::Fail`](test_runner::TestCaseError).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Mirror of `proptest::prop_assume!`: rejects (skips) the current case
/// when the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Mirror of `proptest::prop_compose!`: builds a named strategy function
/// out of one or two stages of `pat in strategy` bindings (the second
/// stage may reference values drawn in the first).
#[macro_export]
macro_rules! prop_compose {
    (
        $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
            ($($p1:pat in $s1:expr),* $(,)?)
            $(($($p2:pat in $s2:expr),* $(,)?))?
            -> $ret:ty $body:block
    ) => {
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::fn_strategy(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $p1 = $crate::strategy::Strategy::generate(&($s1), rng);)*
                $($(let $p2 = $crate::strategy::Strategy::generate(&($s2), rng);)*)?
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1, 0);
        for _ in 0..1000 {
            let x = (-2.0..3.0f64).generate(&mut rng);
            assert!((-2.0..3.0).contains(&x));
            let n = (1..5usize).generate(&mut rng);
            assert!((1..5).contains(&n));
            let m = (2..=2usize).generate(&mut rng);
            assert_eq!(m, 2);
            let s = (0..u64::MAX).generate(&mut rng);
            assert!(s < u64::MAX);
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::new(2, 0);
        let strat = crate::collection::vec((-1.0..1.0f64, -1.0..1.0f64), 3..7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let mapped = (0..10u64).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(mapped.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(-5.0..5.0f64, 10);
        let a = strat.generate(&mut TestRng::new(7, 3));
        let b = strat.generate(&mut TestRng::new(7, 3));
        assert_eq!(a, b);
    }

    prop_compose! {
        fn arb_pair(limit: usize)(n in 1..limit)(
            v in crate::collection::vec(0.0..1.0f64, n)
        ) -> (usize, Vec<f64>) {
            (n, v)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0.0..1.0f64, n in 1..10usize) {
            prop_assume!(n > 0);
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }

        #[test]
        fn composed_strategy_is_consistent(pair in arb_pair(20)) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }
    }
}
