//! Extending the model with a user-defined force law.
//!
//! The paper studies two force-scaling families, but the measurement
//! machinery is model-agnostic (§7: "the approach seems to be in general
//! transferable to other discrete-time dynamical systems"). This example
//! plugs a Lennard-Jones-style law into the pipeline and measures its
//! self-organization exactly like the built-in families.
//!
//! ```text
//! cargo run --release --example custom_force_law
//! ```

use sops::prelude::*;
use sops::sim::force::ForceLaw;

/// A Lennard-Jones-like force scaling: steep short-range repulsion, a
/// preferred distance `r`, and attraction decaying as a power law.
///
/// `F(x) = k ((r/x)^3 − (r/x)^6)` — positive (attractive) for `x > r`,
/// negative for `x < r`, vanishing at long range (unlike the paper's F1,
/// whose attraction grows unboundedly).
struct LennardJonesish {
    k: f64,
    r: PairMatrix,
}

impl ForceLaw for LennardJonesish {
    fn types(&self) -> usize {
        self.r.types()
    }

    fn scale(&self, a: usize, b: usize, x: f64) -> f64 {
        let q = self.r.get(a, b) / x;
        let q3 = q * q * q;
        self.k * (q3 - q3 * q3)
    }

    fn preferred_distance(&self, a: usize, b: usize) -> Option<f64> {
        Some(self.r.get(a, b))
    }
}

fn main() {
    // Two types; same-type bonds shorter than cross-type bonds.
    let r = PairMatrix::from_full(2, &[1.2, 2.4, 2.4, 1.2]);
    let law = ForceModel::custom(LennardJonesish { k: 6.0, r });
    let model = Model::balanced(24, law, 6.0);

    let spec = EnsembleSpec {
        model,
        integrator: IntegratorConfig {
            dt: 0.05,
            substeps: 4,
            noise_variance: 0.0025,
            max_step: 0.25,
            ..IntegratorConfig::default()
        },
        init_radius: 2.5,
        t_max: 120,
        samples: 120,
        seed: 77,
        criterion: None,
    };
    let mut pipeline = Pipeline::new(spec);
    pipeline.eval_every = 20;
    let result = run_pipeline(&pipeline);

    println!("custom Lennard-Jones-like law through the standard pipeline:");
    for (t, v) in result.mi.times.iter().zip(&result.mi.values) {
        println!("  t = {t:3}  I = {v:6.2} bits");
    }
    println!(
        "\nΔI = {:.2} bits — the measurement machinery needs nothing from the\n\
         force law beyond the ForceLaw trait (model-agnostic, as §7 claims).",
        result.mi.increase()
    );
    assert!(result.mi.increase() > 0.5);
}
