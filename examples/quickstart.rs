//! Quickstart: simulate a small two-type collective and measure its
//! self-organization as the increase of multi-information over time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sops::core::report::{self, Series};
use sops::prelude::*;

fn main() {
    // 1. Define the physics: two particle types under the F1 force law.
    //    Same-type pairs prefer distance 1.0, cross-type pairs 2.5 —
    //    the "smaller diagonal" rule of §4.1 that makes types cluster.
    let force_scale = PairMatrix::constant(2, 1.0);
    let mut preferred = PairMatrix::constant(2, 1.0);
    preferred.set(0, 1, 2.5);
    let law = ForceModel::Linear(LinearForce::new(force_scale, preferred));

    // 16 particles, alternating types, unbounded interaction radius.
    let model = Model::balanced(16, law, f64::INFINITY);

    // 2. Describe the experiment: 120 independent runs ("samples"), each
    //    60 recorded steps from a uniform disc of radius 2.5.
    let spec = EnsembleSpec {
        model,
        integrator: IntegratorConfig::default(),
        init_radius: 2.5,
        t_max: 60,
        samples: 120,
        seed: 42,
        criterion: Some(EquilibriumCriterion::default()),
    };

    // 3. Run the measurement pipeline: simulate, factor out translation /
    //    rotation / same-type permutation, estimate multi-information.
    let mut pipeline = Pipeline::new(spec);
    pipeline.eval_every = 5;
    let result = run_pipeline(&pipeline);

    // 4. Report.
    let xs: Vec<f64> = result.mi.times.iter().map(|&t| t as f64).collect();
    let series = Series::from_xy("I(W1..Wn) [bits]", &xs, &result.mi.values);
    println!(
        "{}",
        report::line_chart("multi-information over time", &[series], 60, 14)
    );
    println!(
        "self-organization ΔI = {:.2} bits (I rose from {:.2} to {:.2})",
        result.mi.increase(),
        result.mi.values.first().unwrap(),
        result.mi.values.last().unwrap()
    );
    println!(
        "{:.0}% of runs reached force equilibrium",
        100.0 * result.equilibrated_fraction
    );
    if result.mi.increase() > 0.5 {
        println!("=> the collective self-organizes (rising multi-information).");
    } else {
        println!("=> no significant self-organization detected.");
    }
}
