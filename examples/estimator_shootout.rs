//! Estimator comparison — reproduces the paper's §5.3 methodology notes,
//! driving every estimator family through the unified `Estimator` trait.
//!
//! One `MeasureWorkspace` owns a persistent engine per family; each
//! selection is a `MeasureConfig` dispatched polymorphically — exactly
//! how the pipeline's evaluation workers run. On analytic Gaussian
//! ground truth:
//!
//! * the calibrated KSG variants track the truth closely and cheaply;
//! * the literal Eq. 18–20 transcription carries a large positive bias
//!   (why this library defaults to KSG1 — DESIGN.md #7);
//! * the KDE baseline is orders of magnitude slower ("multiple orders of
//!   magnitudes slower", §5.3);
//! * the shrinkage binning baseline explodes in high dimension and
//!   saturates ("overestimated the multi-information in higher
//!   dimension ... almost no change in information could be seen", §5.3);
//! * the Gaussian plug-in is exact here (the data *is* Gaussian) and
//!   nearly free — but blind to any non-linear structure.
//!
//! ```text
//! cargo run --release --example estimator_shootout
//! ```

use sops::info::gaussian::{equicorrelated_cov, gaussian_multi_information, sample_gaussian};
use sops::info::measure::{MeasureConfig, MeasureWorkspace};
use sops::info::{BinningConfig, KdeConfig, KsgConfig, KsgVariant, SampleView};
use std::time::Instant;

fn main() {
    let m = 800;
    let mut ws = MeasureWorkspace::new();
    let selections: Vec<(&str, MeasureConfig)> = vec![
        (
            "KSG1",
            MeasureConfig::Ksg(KsgConfig {
                k: 4,
                variant: KsgVariant::Ksg1,
                ..KsgConfig::default()
            }),
        ),
        (
            "KSG2",
            MeasureConfig::Ksg(KsgConfig {
                k: 4,
                variant: KsgVariant::Ksg2,
                ..KsgConfig::default()
            }),
        ),
        (
            "Paper (lit.)",
            MeasureConfig::Ksg(KsgConfig {
                k: 4,
                variant: KsgVariant::Paper,
                ..KsgConfig::default()
            }),
        ),
        ("KDE", MeasureConfig::Kde(KdeConfig::default())),
        (
            "binning(JS)",
            MeasureConfig::Binned(BinningConfig::default()),
        ),
        ("discrete", MeasureConfig::DiscretePlugin { bins: 8 }),
        ("gaussian", MeasureConfig::Gaussian),
    ];

    println!("m = {m} samples per case; truth from the Gaussian closed form");
    println!("every row runs through MeasureWorkspace::estimator_mut(&cfg) — one trait, one engine per family\n");
    for (label, d, rho) in [
        ("2 observers, rho=0.6", 2usize, 0.6),
        ("4 observers, rho=0.4", 4, 0.4),
        ("10 observers, rho=0.3", 10, 0.3),
    ] {
        let cov = equicorrelated_cov(d, rho);
        let truth = gaussian_multi_information(&cov, &vec![1; d]);
        let data = sample_gaussian(&cov, m, 2012);
        let sizes = vec![1usize; d];
        let view = SampleView::new(&data, m, &sizes);

        println!("== {label}: truth = {truth:.3} bits");
        for (name, cfg) in &selections {
            let t = Instant::now();
            let estimator = ws.estimator_mut(cfg);
            estimator.prepare(&view);
            let est = estimator.estimate();
            println!(
                "  {name:<14} {est:>8.3} bits   (err {:+.3}, {:?})",
                est - truth,
                t.elapsed()
            );
        }
        println!();
    }
    println!(
        "takeaways: KSG1/KSG2 are calibrated; the literal paper formula over-counts;\n\
         KDE pays a large constant factor; binning saturates once the joint\n\
         histogram goes sparse; the Gaussian plug-in is exact only because this\n\
         data is Gaussian — matching every §5.3 claim."
    );
}
