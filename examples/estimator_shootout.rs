//! Estimator comparison — reproduces the paper's §5.3 methodology notes.
//!
//! On analytic Gaussian ground truth:
//! * the calibrated KSG variants track the truth closely and cheaply;
//! * the literal Eq. 18–20 transcription carries a large positive bias
//!   (why this library defaults to KSG1 — DESIGN.md #7);
//! * the KDE baseline is orders of magnitude slower ("multiple orders of
//!   magnitudes slower", §5.3);
//! * the shrinkage binning baseline explodes in high dimension and
//!   saturates ("overestimated the multi-information in higher
//!   dimension ... almost no change in information could be seen", §5.3).
//!
//! ```text
//! cargo run --release --example estimator_shootout
//! ```

use sops::info::binning::{multi_information_binned, BinningConfig};
use sops::info::gaussian::{equicorrelated_cov, gaussian_multi_information, sample_gaussian};
use sops::info::kde::{multi_information_kde, KdeConfig};
use sops::info::{multi_information, KsgConfig, KsgVariant, SampleView};
use std::time::Instant;

fn main() {
    let m = 800;
    println!("m = {m} samples per case; truth from the Gaussian closed form\n");
    for (label, d, rho) in [
        ("2 observers, rho=0.6", 2usize, 0.6),
        ("4 observers, rho=0.4", 4, 0.4),
        ("10 observers, rho=0.3", 10, 0.3),
    ] {
        let cov = equicorrelated_cov(d, rho);
        let truth = gaussian_multi_information(&cov, &vec![1; d]);
        let data = sample_gaussian(&cov, m, 2012);
        let sizes = vec![1usize; d];
        let view = SampleView::new(&data, m, &sizes);

        println!("== {label}: truth = {truth:.3} bits");
        for variant in [KsgVariant::Ksg1, KsgVariant::Ksg2, KsgVariant::Paper] {
            let t = Instant::now();
            let est = multi_information(
                &view,
                &KsgConfig {
                    k: 4,
                    variant,
                    ..KsgConfig::default()
                },
            );
            println!(
                "  {variant:<14?} {est:>8.3} bits   (err {:+.3}, {:?})",
                est - truth,
                t.elapsed()
            );
        }
        let t = Instant::now();
        let kde = multi_information_kde(&view, &KdeConfig::default());
        println!(
            "  {:<14} {kde:>8.3} bits   (err {:+.3}, {:?})",
            "KDE",
            kde - truth,
            t.elapsed()
        );
        let t = Instant::now();
        let binned = multi_information_binned(&view, &BinningConfig::default());
        println!(
            "  {:<14} {binned:>8.3} bits   (err {:+.3}, {:?})",
            "binning(JS)",
            binned - truth,
            t.elapsed()
        );
        println!();
    }
    println!(
        "takeaways: KSG1/KSG2 are calibrated; the literal paper formula over-counts;\n\
         KDE pays a large constant factor; binning saturates once the joint\n\
         histogram goes sparse — matching every §5.3 claim."
    );
}
