//! Ring formation in a single-type collective (the Figs. 5 & 7 system).
//!
//! With the F1 law and an unbounded cut-off, 20 identical particles
//! settle into two concentric regular polygons. The outer ring aligns
//! tightly across independent runs, while the inner ring's rotation
//! stays a genuine degree of freedom — visible in the per-particle
//! cross-sample dispersion after shape reduction.
//!
//! ```text
//! cargo run --release --example ring_formation
//! ```

use sops::core::{metrics, report};
use sops::prelude::*;
use sops::shape::ensemble::{reduce_configurations, ReduceConfig};

fn main() {
    let law = ForceModel::Linear(LinearForce::uniform(1.0, 2.0));
    let model = Model::balanced(20, law, f64::INFINITY);
    let types = model.types().to_vec();
    let integrator = IntegratorConfig {
        dt: 0.02,
        substeps: 2,
        noise_variance: 0.0025,
        max_step: 0.5,
        ..IntegratorConfig::default()
    };

    // Watch one run form its rings.
    let mut sim = Simulation::with_disc_init(model.clone(), integrator, 4.0, 3);
    let traj = sim.run(250, None);
    let final_cfg = traj.last().to_vec();
    println!(
        "{}",
        report::scatter_plot("single run at t = 250", &final_cfg, &types, 48, 18)
    );
    let rings = metrics::ring_decomposition(&final_cfg, 4.0);
    println!("detected radial rings (innermost first):");
    for ring in &rings {
        println!(
            "  {} particles at mean radius {:.2}",
            ring.len(),
            metrics::ring_radius(&final_cfg, ring)
        );
    }

    // Ensemble: align all final configurations and measure which ring
    // pins down the shape.
    let spec = EnsembleSpec {
        model,
        integrator,
        init_radius: 4.0,
        t_max: 250,
        samples: 150,
        seed: 5,
        criterion: None,
    };
    let ensemble = run_ensemble(&spec, 0);
    let slice = ensemble.at_time(250);
    let reduced = reduce_configurations(&slice, &types, &ReduceConfig::default());
    let dispersion = metrics::cross_sample_dispersion(&reduced.configs);

    let reference = &reduced.configs[0];
    let rings = metrics::ring_decomposition(reference, 4.0);
    println!("\ncross-sample dispersion per ring (after ICP alignment):");
    for ring in &rings {
        let mean_disp: f64 = ring.iter().map(|&i| dispersion[i]).sum::<f64>() / ring.len() as f64;
        println!(
            "  radius {:.2}: dispersion {:.3} ({} particles)",
            metrics::ring_radius(reference, ring),
            mean_disp,
            ring.len()
        );
    }
    println!(
        "\nthe outer ring anchors the alignment; the inner ring's rotation is a free\n\
         degree of freedom — exactly the structure the paper's Fig. 7 overlay shows."
    );
}
