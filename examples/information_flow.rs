//! Information flow between individual particles — the paper's §7.3
//! future-work direction, implemented with transfer entropy.
//!
//! For a strongly coupled three-particle collective during its organizing
//! transient, the past of a neighbour carries real information about a
//! particle's future beyond its own past (positive transfer entropy).
//! Decouple the particles (cut-off below their separation) and the flow
//! vanishes.
//!
//! ```text
//! cargo run --release --example information_flow
//! ```

use sops::core::dynamics::{particle_transfer_entropy, transfer_matrix, TransferConfig};
use sops::prelude::*;

fn ensemble(cutoff: f64) -> sops::sim::Ensemble {
    let law = ForceModel::Linear(LinearForce::new(
        PairMatrix::constant(1, 5.0),
        PairMatrix::constant(1, 2.0),
    ));
    let spec = EnsembleSpec {
        model: Model::balanced(3, law, cutoff),
        integrator: IntegratorConfig::default(),
        init_radius: 2.0,
        t_max: 10,
        samples: 800,
        seed: 2012,
        criterion: None,
    };
    run_ensemble(&spec, 0)
}

fn main() {
    let cfg = TransferConfig {
        lag: 3,
        k: 4,
        threads: 0,
    };

    println!("transfer entropy across 800 runs, T(b→a) = I(Z_a(t+3); Z_b(t) | Z_a(t))\n");

    let coupled = ensemble(f64::INFINITY);
    let te = particle_transfer_entropy(&coupled, 0, 1, 1, &cfg);
    println!("coupled collective  : T(1→0) = {te:.3} bits");

    let decoupled = ensemble(0.05);
    let te0 = particle_transfer_entropy(&decoupled, 0, 1, 1, &cfg);
    println!("decoupled (rc=0.05) : T(1→0) = {te0:.3} bits");

    println!("\nfull pairwise transfer matrix of the coupled system at t = 1:");
    let m = transfer_matrix(&coupled, 1, &cfg);
    print!("        ");
    for b in 0..m.len() {
        print!("  from {b}");
    }
    println!();
    for (a, row) in m.iter().enumerate() {
        print!("  to {a} :");
        for v in row {
            print!(" {v:>7.3}");
        }
        println!();
    }
    println!(
        "\ninteraction carries information (paper §7.3): every off-diagonal entry of\n\
         the coupled system is positive, and all flow dies with the interactions."
    );
}
