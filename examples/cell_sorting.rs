//! Differential adhesion / cell sorting: the biological motivation of the
//! paper's introduction.
//!
//! Mixed cells of two tissue types un-mix purely through differential
//! adhesion (Steinberg's sorting-out). Here: two particle types whose
//! same-type preferred distance is smaller than the cross-type one. The
//! demo tracks the type-separation metric and renders snapshots of the
//! sorting process, then verifies the multi-information measure agrees
//! that organization happened.
//!
//! ```text
//! cargo run --release --example cell_sorting
//! ```

use sops::core::{metrics, report};
use sops::prelude::*;

fn main() {
    // Adhesion model: "cells" of the same tissue stick closer (r = 1.2)
    // than cells of different tissues (r = 3.0); k scales the force.
    let force_scale = PairMatrix::constant(2, 1.0);
    let preferred = PairMatrix::from_full(2, &[1.2, 3.0, 3.0, 1.2]);
    let law = ForceModel::Linear(LinearForce::new(force_scale, preferred));
    let model = Model::balanced(40, law, 6.0);
    let types = model.types().to_vec();

    // One long run for the visual story.
    let mut sim = Simulation::with_disc_init(
        model.clone(),
        IntegratorConfig {
            dt: 0.05,
            substeps: 2,
            noise_variance: 0.0025,
            max_step: 0.5,
            ..IntegratorConfig::default()
        },
        3.0,
        7,
    );
    let traj = sim.run(300, Some(EquilibriumCriterion::default()));

    println!("cell sorting by differential adhesion (two tissue types)\n");
    for &t in &[0usize, 30, 100, 300] {
        let cfg = &traj.frames[t];
        let sep = metrics::type_separation(cfg, &types, 2);
        println!(
            "{}",
            report::scatter_plot(
                &format!("t = {t:3}  (tissue separation {sep:.2})"),
                cfg,
                &types,
                52,
                16
            )
        );
    }
    let sep0 = metrics::type_separation(&traj.frames[0], &types, 2);
    let sep_end = metrics::type_separation(traj.last(), &types, 2);
    println!("tissue separation grew {sep0:.2} → {sep_end:.2}");
    if let Some(step) = traj.equilibrium_step {
        println!("equilibrium criterion met at step {step}");
    }

    // Cross-check with the information-theoretic measure on an ensemble.
    let spec = EnsembleSpec {
        model,
        integrator: IntegratorConfig {
            dt: 0.05,
            substeps: 2,
            noise_variance: 0.0025,
            max_step: 0.5,
            ..IntegratorConfig::default()
        },
        init_radius: 3.0,
        t_max: 100,
        samples: 120,
        seed: 11,
        criterion: None,
    };
    let mut pipeline = Pipeline::new(spec);
    pipeline.eval_every = 20;
    let result = run_pipeline(&pipeline);
    println!(
        "\nmulti-information agrees: I = {:?} bits over t = {:?}",
        result
            .mi
            .values
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        result.mi.times
    );
    assert!(
        result.mi.increase() > 0.5,
        "sorting should register as self-organization"
    );
    println!(
        "ΔI = {:.2} bits — sorting is self-organization.",
        result.mi.increase()
    );
}
