//! Using the library as a *measurement instrument*: compare how much
//! self-organization different interaction structures produce.
//!
//! Reruns the paper's central comparison (§6.1) on a small scale: the
//! same 20 particles organize differently depending on (a) the cut-off
//! radius and (b) the number of distinct types. Long-range interaction
//! or few types ⇒ strong self-organization; short-range with all-distinct
//! types ⇒ weak.
//!
//! ```text
//! cargo run --release --example measure_self_organization
//! ```

use sops::prelude::*;
use sops::sim::force::random_preferred_distances;

fn measure(types: usize, cutoff: f64, seed: u64) -> f64 {
    let r = random_preferred_distances(types, 2.0, 8.0, seed);
    let law = ForceModel::Linear(LinearForce::new(PairMatrix::constant(types, 1.0), r));
    let spec = EnsembleSpec {
        model: Model::balanced(20, law, cutoff),
        integrator: IntegratorConfig {
            dt: 0.05,
            substeps: 2,
            noise_variance: 0.0025,
            max_step: 0.5,
            ..IntegratorConfig::default()
        },
        init_radius: 5.0,
        t_max: 80,
        samples: 100,
        seed: seed ^ 0xABCD,
        criterion: None,
    };
    let mut pipeline = Pipeline::new(spec);
    pipeline.eval_every = 80; // endpoints only: ΔI
    run_pipeline(&pipeline).mi.increase()
}

fn main() {
    println!("self-organization ΔI (bits) of 20 particles, one random draw per cell\n");
    println!("{:>12} {:>10} {:>10} {:>10}", "", "rc=5", "rc=15", "rc=inf");
    for &types in &[5usize, 20] {
        let row: Vec<f64> = [5.0, 15.0, f64::INFINITY]
            .iter()
            .map(|&rc| measure(types, rc, 1000 + types as u64))
            .collect();
        println!(
            "{:>12} {:>10.2} {:>10.2} {:>10.2}",
            format!("l={types}"),
            row[0],
            row[1],
            row[2]
        );
    }
    println!(
        "\nreading: ΔI grows with the interaction radius (information must spread\n\
         to organize, §7.2), and fewer types organize more under local limits\n\
         because same-type clusters restore long-range structural interaction."
    );
}
