//! The scenario × measure sweep as a library call: fan one simulated
//! ensemble per scenario over several estimator families in a single
//! evaluation pass.
//!
//! The one-pass engine simulates each registry scenario exactly once;
//! per evaluated time step the shape reduction and the observer matrix
//! are built once and every selected measure runs on that shared
//! prepared state. Running the same grid as repeated `run_pipeline`
//! calls would re-simulate and re-reduce everything per measure — same
//! bits, k× the work (see the `sweep` bench group).
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```

use sops::core::report;
use sops::prelude::*;

fn main() {
    // The built-in gallery at smoke scale: two organizing systems and
    // the stays-mixed null control.
    let registry = ScenarioRegistry::builtin();
    let scenarios: Vec<ScenarioSpec> = registry
        .iter()
        .map(|sc| sc.clone().with_scale(100, 40))
        .collect();
    for sc in &scenarios {
        println!("{:<16} {}", sc.name, sc.description);
    }

    // The measure axis: the paper's estimator (KSG) against the §5.3
    // baselines. One ensemble per scenario feeds all four.
    let measures = vec![
        MeasureConfig::default(),
        MeasureConfig::Kde(sops::info::KdeConfig::default()),
        MeasureConfig::Binned(sops::info::BinningConfig::default()),
        MeasureConfig::Gaussian,
    ];

    let plan = SweepPlan::new(scenarios, measures);
    println!(
        "\nrunning {} cells over {} ensembles (each simulated once)…\n",
        plan.cell_count(),
        plan.ensemble_count()
    );
    let report = run_sweep(&plan).expect("valid plan");
    println!("{}", report.grid_table());

    // Every cell carries the full series, not just ΔI.
    let ksg = report.get("cell_sorting", "ksg", None).unwrap();
    println!(
        "{}",
        report::line_chart(
            "cell_sorting / ksg — I(t) in bits",
            &[report::Series::from_xy(
                "ksg",
                &ksg.result
                    .mi
                    .times
                    .iter()
                    .map(|&t| t as f64)
                    .collect::<Vec<_>>(),
                &ksg.result.mi.values,
            )],
            52,
            12,
        )
    );

    let null = report.get("mixing_null", "ksg", None).unwrap();
    assert!(
        ksg.result.mi.increase() > 1.0 && null.result.mi.increase() < 1.0,
        "organizing scenarios must separate from the null control"
    );
    println!(
        "ΔI: cell_sorting {:.2} bits vs mixing_null {:.2} bits — the measure\n\
         separates organization from mixing, the paper's central claim.",
        ksg.result.mi.increase(),
        null.result.mi.increase()
    );
}
