//! The model: particle types + force law + interaction cut-off.

use crate::force::{ForceLaw, ForceModel};
use crate::workspace::ForceWorkspace;
use sops_math::Vec2;

/// Distance below which the force-scaling argument is clamped, guarding
/// `F¹`'s `r/x` pole when two particles coincide numerically.
pub(crate) const MIN_DISTANCE: f64 = 1e-9;

/// When the cut-off is finite, the cell-grid neighbour list is used above
/// this particle count; below it the direct `O(n²)` loop is faster.
const GRID_THRESHOLD: usize = 64;

/// A particle system: each particle's fixed type, the force-scaling law
/// and the interaction cut-off radius `r_c`.
#[derive(Debug, Clone)]
pub struct Model {
    types: Vec<u16>,
    law: ForceModel,
    cutoff: f64,
}

impl Model {
    /// Builds a model.
    ///
    /// `types[i]` is the type of particle `i` and must be `< law.types()`.
    /// `cutoff` may be `f64::INFINITY` for unbounded interactions.
    ///
    /// # Panics
    ///
    /// Panics on an empty particle list, an out-of-range type id, or a
    /// non-positive cut-off.
    pub fn new(types: Vec<u16>, law: ForceModel, cutoff: f64) -> Self {
        assert!(!types.is_empty(), "Model: need at least one particle");
        let l = law.types();
        assert!(
            types.iter().all(|&t| (t as usize) < l),
            "Model: particle type out of range (law has {l} types)"
        );
        assert!(cutoff > 0.0, "Model: cut-off must be positive");
        Model { types, law, cutoff }
    }

    /// A model with `n` particles split as evenly as possible across the
    /// law's `l` types (types assigned round-robin: 0, 1, …, l−1, 0, …).
    pub fn balanced(n: usize, law: ForceModel, cutoff: f64) -> Self {
        let l = law.types();
        let types = (0..n).map(|i| (i % l) as u16).collect();
        Model::new(types, law, cutoff)
    }

    /// Number of particles `n`.
    pub fn particles(&self) -> usize {
        self.types.len()
    }

    /// Number of types `l` the force law distinguishes.
    pub fn type_count(&self) -> usize {
        self.law.types()
    }

    /// Type of particle `i`.
    #[inline]
    pub fn type_of(&self, i: usize) -> usize {
        self.types[i] as usize
    }

    /// All particle types.
    pub fn types(&self) -> &[u16] {
        &self.types
    }

    /// The force law.
    pub fn law(&self) -> &ForceModel {
        &self.law
    }

    /// Interaction cut-off radius `r_c` (possibly infinite).
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Number of particles of each type, indexed by type id.
    pub fn type_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.type_count()];
        for &t in &self.types {
            h[t as usize] += 1;
        }
        h
    }

    /// Particle count at or above which (with a finite cut-off) the
    /// cell-grid half sweep is used instead of the direct `O(n²)` loop.
    pub fn grid_threshold() -> usize {
        GRID_THRESHOLD
    }

    /// Drift term of Eq. 6 for every particle: `f_i = Σ_j −F(‖Δz_ij‖) Δz_ij`
    /// over neighbours within the cut-off, written into `out`.
    ///
    /// Convenience entry point that spins up a fresh [`ForceWorkspace`]
    /// per call. Anything evaluating forces repeatedly (the integrator,
    /// benchmarks, analysis sweeps) should hold a workspace and call
    /// [`ForceWorkspace::net_forces_into`] so grid and scratch buffers are
    /// reused across calls.
    pub fn net_forces(&self, positions: &[Vec2], out: &mut Vec<Vec2>) {
        ForceWorkspace::new().net_forces_into(self, positions, out);
    }

    /// Sum of per-particle force norms `Σ_i ‖f_i‖₂` — the equilibrium
    /// indicator of §4.1 ("the sum of the L2 norm of the sum of all forces
    /// acting on each particle").
    ///
    /// Scratch space comes from the caller's workspace, so repeated
    /// equilibrium checks allocate nothing ([`crate::Simulation`] exposes
    /// this as `total_force_norm()` against its own workspace).
    pub fn total_force_norm(&self, positions: &[Vec2], ws: &mut ForceWorkspace) -> f64 {
        ws.total_force_norm(self, positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::{GaussianForce, LinearForce};
    use sops_math::PairMatrix;

    fn two_particle_model(law: ForceModel, cutoff: f64) -> Model {
        Model::new(vec![0, 0], law, cutoff)
    }

    #[test]
    fn attraction_above_preferred_distance() {
        let m = two_particle_model(
            ForceModel::Linear(LinearForce::uniform(1.0, 1.0)),
            f64::INFINITY,
        );
        let pos = [Vec2::new(-2.0, 0.0), Vec2::new(2.0, 0.0)];
        let mut f = Vec::new();
        m.net_forces(&pos, &mut f);
        // Separation 4 > r = 1: particles pull together.
        assert!(f[0].x > 0.0, "left particle pulled right, got {:?}", f[0]);
        assert!(f[1].x < 0.0);
        // Newton's third law.
        assert!((f[0] + f[1]).norm() < 1e-12);
    }

    #[test]
    fn repulsion_below_preferred_distance() {
        let m = two_particle_model(
            ForceModel::Linear(LinearForce::uniform(1.0, 2.0)),
            f64::INFINITY,
        );
        let pos = [Vec2::new(-0.25, 0.0), Vec2::new(0.25, 0.0)];
        let mut f = Vec::new();
        m.net_forces(&pos, &mut f);
        assert!(f[0].x < 0.0, "left particle pushed left");
        assert!(f[1].x > 0.0);
    }

    #[test]
    fn gaussian_law_repels_at_all_ranges() {
        let m = two_particle_model(
            ForceModel::Gaussian(GaussianForce::uniform(2.0, 4.0)),
            f64::INFINITY,
        );
        for sep in [0.5, 1.0, 2.0, 4.0] {
            let pos = [Vec2::new(-sep / 2.0, 0.0), Vec2::new(sep / 2.0, 0.0)];
            let mut f = Vec::new();
            m.net_forces(&pos, &mut f);
            assert!(f[0].x <= 1e-12, "separation {sep}: {:?}", f[0]);
        }
    }

    #[test]
    fn cutoff_silences_distant_pairs() {
        let m = two_particle_model(ForceModel::Linear(LinearForce::uniform(1.0, 1.0)), 3.0);
        let pos = [Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0)];
        let mut f = Vec::new();
        m.net_forces(&pos, &mut f);
        assert_eq!(f[0], Vec2::ZERO);
        assert_eq!(f[1], Vec2::ZERO);
        // Equilibrium indicator is exactly zero for the decoupled pair.
        let mut ws = ForceWorkspace::new();
        assert_eq!(m.total_force_norm(&pos, &mut ws), 0.0);
    }

    #[test]
    fn grid_path_matches_direct_path() {
        // Build a model big enough to trigger the grid path, then compare
        // against a clone forced down the direct path via infinite cutoff
        // with manual distance filtering... instead: compare grid path with
        // a brute-force recomputation here.
        let n = 100;
        let law = ForceModel::Linear(LinearForce::uniform(0.5, 1.0));
        let cutoff = 2.5;
        let m = Model::balanced(n, law.clone(), cutoff);
        let mut rng = sops_math::SplitMix64::new(99);
        let pos: Vec<Vec2> = (0..n)
            .map(|_| Vec2::new(rng.next_range(-8.0, 8.0), rng.next_range(-8.0, 8.0)))
            .collect();
        let mut fast = Vec::new();
        m.net_forces(&pos, &mut fast);

        // Brute force reference.
        let mut slow = vec![Vec2::ZERO; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let delta = pos[i] - pos[j];
                let d = delta.norm();
                if d <= cutoff {
                    slow[i] -= delta * law.scale(0, 0, d.max(1e-9));
                }
            }
        }
        for i in 0..n {
            assert!(
                (fast[i] - slow[i]).norm() < 1e-9,
                "particle {i}: {:?} vs {:?}",
                fast[i],
                slow[i]
            );
        }
    }

    #[test]
    fn balanced_assignment_round_robin() {
        let law = ForceModel::Linear(LinearForce::new(
            PairMatrix::constant(3, 1.0),
            PairMatrix::constant(3, 1.0),
        ));
        let m = Model::balanced(8, law, 5.0);
        assert_eq!(m.types(), &[0, 1, 2, 0, 1, 2, 0, 1]);
        assert_eq!(m.type_histogram(), vec![3, 3, 2]);
        assert_eq!(m.type_count(), 3);
    }

    #[test]
    #[should_panic(expected = "type out of range")]
    fn rejects_bad_type_ids() {
        let law = ForceModel::Linear(LinearForce::uniform(1.0, 1.0));
        Model::new(vec![0, 1], law, 1.0);
    }

    #[test]
    fn coincident_particles_do_not_produce_nan() {
        let m = two_particle_model(
            ForceModel::Linear(LinearForce::uniform(1.0, 1.0)),
            f64::INFINITY,
        );
        let pos = [Vec2::new(1.0, 1.0), Vec2::new(1.0, 1.0)];
        let mut f = Vec::new();
        m.net_forces(&pos, &mut f);
        assert!(f[0].is_finite() && f[1].is_finite());
    }
}
