//! Initial conditions (paper §5.1).
//!
//! Particles are initialized "with a uniform distribution on a disc of
//! fixed radius" centred at the origin. The paper argues (§4.2) that this
//! choice keeps the ensemble rotation- and permutation-invariant while
//! avoiding the impractically sparse sampling a translation-invariant
//! initialization over all of ℝ² would require.

use sops_math::{SplitMix64, Vec2};

/// Samples `n` points uniformly (by area) on the disc of radius `radius`
/// centred at the origin.
///
/// Uses the inverse-CDF radius transform `r = R √u`, which is exact.
pub fn uniform_disc(n: usize, radius: f64, rng: &mut SplitMix64) -> Vec<Vec2> {
    assert!(radius > 0.0, "uniform_disc: radius must be positive");
    (0..n)
        .map(|_| {
            let r = radius * rng.next_f64().sqrt();
            let theta = rng.next_f64() * std::f64::consts::TAU;
            Vec2::from_polar(r, theta)
        })
        .collect()
}

/// Places `n` points on a regular grid inside a disc — a deterministic
/// initial condition used by tests and by the Fig. 3 regular-grid
/// diagnostics.
pub fn hex_grid_in_disc(n: usize, spacing: f64) -> Vec<Vec2> {
    assert!(spacing > 0.0);
    // Spiral outward over hexagonal lattice sites until n are collected.
    let mut pts = vec![Vec2::ZERO];
    let mut ring = 1;
    'outer: while pts.len() < n {
        // Hex ring `ring` has 6*ring sites.
        for i in 0..(6 * ring) {
            let side = i / ring;
            let offset = (i % ring) as f64;
            let corner = Vec2::from_polar(
                ring as f64 * spacing,
                std::f64::consts::FRAC_PI_3 * side as f64,
            );
            let next_corner = Vec2::from_polar(
                ring as f64 * spacing,
                std::f64::consts::FRAC_PI_3 * (side as f64 + 1.0),
            );
            let p = corner + (next_corner - corner) * (offset / ring as f64);
            pts.push(p);
            if pts.len() == n {
                break 'outer;
            }
        }
        ring += 1;
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disc_points_inside_radius() {
        let mut rng = SplitMix64::new(3);
        let pts = uniform_disc(5000, 4.0, &mut rng);
        assert_eq!(pts.len(), 5000);
        assert!(pts.iter().all(|p| p.norm() <= 4.0 + 1e-12));
    }

    #[test]
    fn disc_is_uniform_by_area() {
        // Under area-uniformity, the fraction inside radius R/2 is 1/4.
        let mut rng = SplitMix64::new(17);
        let pts = uniform_disc(40_000, 2.0, &mut rng);
        let inner = pts.iter().filter(|p| p.norm() <= 1.0).count();
        let frac = inner as f64 / pts.len() as f64;
        assert!(
            (frac - 0.25).abs() < 0.01,
            "inner-disc fraction {frac}, want ~0.25"
        );
    }

    #[test]
    fn disc_is_isotropic() {
        let mut rng = SplitMix64::new(23);
        let pts = uniform_disc(40_000, 1.0, &mut rng);
        let mean = Vec2::centroid(&pts);
        assert!(
            mean.norm() < 0.02,
            "centroid {mean:?} should be near origin"
        );
        let right = pts.iter().filter(|p| p.x > 0.0).count() as f64;
        assert!((right / pts.len() as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn disc_reproducible_per_seed() {
        let a = uniform_disc(10, 1.0, &mut SplitMix64::new(7));
        let b = uniform_disc(10, 1.0, &mut SplitMix64::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn hex_grid_count_and_spacing() {
        let pts = hex_grid_in_disc(19, 1.0); // center + 2 full rings = 1+6+12
        assert_eq!(pts.len(), 19);
        // Nearest-neighbour distance of interior sites is the spacing.
        let mut min_d = f64::INFINITY;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                min_d = min_d.min(pts[i].dist(pts[j]));
            }
        }
        assert!((min_d - 1.0).abs() < 1e-9, "min spacing {min_d}");
    }
}
