//! Parallel ensembles of independent simulation runs (paper §5.1).
//!
//! Estimating multi-information at time `t` requires the distribution of
//! configurations across `m` independent runs of the same experiment
//! (Eq. 17: `z = (z̄₁, …, z̄_m)`). Runs are embarrassingly parallel; each
//! gets its RNG seed *derived* from the master seed and its sample index,
//! so the ensemble is bit-identical no matter how many threads execute it.

use crate::integrator::IntegratorConfig;
use crate::model::Model;
use crate::sim::{EquilibriumCriterion, Simulation, Trajectory};
use sops_math::rng::derive_seed;
use sops_math::Vec2;

/// Everything needed to run one ensemble experiment.
#[derive(Debug, Clone)]
pub struct EnsembleSpec {
    /// The particle system.
    pub model: Model,
    /// Integration parameters.
    pub integrator: IntegratorConfig,
    /// Radius of the uniform-disc initial distribution.
    pub init_radius: f64,
    /// Number of recorded steps per run (`t_max`; paper: 100–250).
    pub t_max: usize,
    /// Number of independent runs (`m`; paper: 500–1000).
    pub samples: usize,
    /// Master seed; sample `s` uses `derive_seed(seed, s)`.
    pub seed: u64,
    /// Optional equilibrium bookkeeping per run.
    pub criterion: Option<EquilibriumCriterion>,
}

impl EnsembleSpec {
    /// Typed validation: `Err` carries the first violated constraint, in
    /// the same wording [`EnsembleSpec::validate`] panics with. Sweep
    /// entry points surface this as `SweepError::InvalidPlan` up front
    /// instead of quarantining the panic per ensemble.
    pub fn check(&self) -> Result<(), String> {
        self.integrator.check()?;
        if self.init_radius.is_nan() || self.init_radius <= 0.0 {
            return Err("EnsembleSpec: init radius".into());
        }
        if self.t_max == 0 {
            return Err("EnsembleSpec: t_max must be >= 1".into());
        }
        if self.samples == 0 {
            return Err("EnsembleSpec: need at least one sample".into());
        }
        Ok(())
    }

    /// Validates the specification; called by [`run_ensemble`].
    pub fn validate(&self) {
        if let Err(reason) = self.check() {
            panic!("{reason}");
        }
    }
}

/// The collected runs of one experiment.
#[derive(Debug, Clone)]
pub struct Ensemble {
    /// Per-sample trajectories, index = sample id.
    pub runs: Vec<Trajectory>,
}

impl Ensemble {
    /// Number of samples `m`.
    pub fn samples(&self) -> usize {
        self.runs.len()
    }

    /// Number of recorded frames per run (`t_max + 1`), 0 if empty.
    pub fn frames(&self) -> usize {
        self.runs.first().map_or(0, |r| r.len())
    }

    /// Number of particles, 0 if empty.
    pub fn particles(&self) -> usize {
        self.runs
            .first()
            .and_then(|r| r.frames.first())
            .map_or(0, |f| f.len())
    }

    /// The cross-sample slice at time `t`: `slice[s]` is sample `s`'s
    /// configuration at recorded step `t` — the raw material for the
    /// per-time-step statistics of §5.2.
    ///
    /// Allocates a fresh vector per call; loops over many time steps (the
    /// sweep evaluation pass) should hold a buffer and use
    /// [`Ensemble::at_time_into`] instead.
    pub fn at_time(&self, t: usize) -> Vec<&[Vec2]> {
        let mut out = Vec::new();
        self.at_time_into(t, &mut out);
        out
    }

    /// Writes the cross-sample slice at time `t` into `out` (cleared
    /// first), reusing its capacity — the allocation-free form of
    /// [`Ensemble::at_time`] for callers that visit many time steps with
    /// one buffer.
    pub fn at_time_into<'a>(&'a self, t: usize, out: &mut Vec<&'a [Vec2]>) {
        out.clear();
        out.extend(self.runs.iter().map(|r| r.frames[t].as_slice()));
    }

    /// Fraction of runs that satisfied the equilibrium criterion.
    pub fn equilibrated_fraction(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs
            .iter()
            .filter(|r| r.equilibrium_step.is_some())
            .count() as f64
            / self.runs.len() as f64
    }
}

/// Runs the ensemble on up to `threads` worker threads (pass 0 to use the
/// default; see `sops_par::default_threads`).
///
/// Each sample owns a private [`crate::ForceWorkspace`], so its grid and
/// scratch buffers are allocated once at the start of the run and reused
/// across every substep; the inner force sweep stays sequential because
/// the sample-level parallelism here already saturates the cores.
pub fn run_ensemble(spec: &EnsembleSpec, threads: usize) -> Ensemble {
    spec.validate();
    let threads = if threads == 0 {
        sops_par::default_threads()
    } else {
        threads
    };
    let runs = sops_par::parallel_map(spec.samples, threads, |s| {
        let sample_seed = derive_seed(spec.seed, s as u64);
        let mut sim = Simulation::with_disc_init(
            spec.model.clone(),
            spec.integrator,
            spec.init_radius,
            sample_seed,
        );
        sim.run(spec.t_max, spec.criterion)
    });
    Ensemble { runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::{ForceModel, LinearForce};

    fn spec(samples: usize, t_max: usize) -> EnsembleSpec {
        EnsembleSpec {
            model: Model::balanced(
                6,
                ForceModel::Linear(LinearForce::uniform(1.0, 1.0)),
                f64::INFINITY,
            ),
            integrator: IntegratorConfig::default(),
            init_radius: 2.0,
            t_max,
            samples,
            seed: 1234,
            criterion: None,
        }
    }

    #[test]
    fn ensemble_shape() {
        let e = run_ensemble(&spec(10, 15), 4);
        assert_eq!(e.samples(), 10);
        assert_eq!(e.frames(), 16);
        assert_eq!(e.particles(), 6);
        assert_eq!(e.at_time(0).len(), 10);
        assert_eq!(e.at_time(15)[3].len(), 6);
    }

    #[test]
    fn at_time_into_reuses_capacity_and_matches_at_time() {
        let e = run_ensemble(&spec(12, 8), 4);
        let mut buf: Vec<&[sops_math::Vec2]> = Vec::new();
        e.at_time_into(3, &mut buf);
        assert_eq!(buf, e.at_time(3));
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        for t in 0..=8 {
            e.at_time_into(t, &mut buf);
            assert_eq!(buf, e.at_time(t));
        }
        assert_eq!(buf.capacity(), cap, "no growth across time steps");
        assert_eq!(buf.as_ptr(), ptr, "no reallocation across time steps");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let a = run_ensemble(&spec(8, 10), 1);
        let b = run_ensemble(&spec(8, 10), 8);
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra.frames, rb.frames);
        }
    }

    #[test]
    fn samples_are_distinct() {
        let e = run_ensemble(&spec(4, 5), 2);
        for s in 1..e.samples() {
            assert_ne!(
                e.runs[0].frames[0], e.runs[s].frames[0],
                "initial conditions must differ across samples"
            );
        }
    }

    #[test]
    fn master_seed_changes_everything() {
        let mut s2 = spec(3, 5);
        s2.seed = 999;
        let a = run_ensemble(&spec(3, 5), 2);
        let b = run_ensemble(&s2, 2);
        assert_ne!(a.runs[0].frames[0], b.runs[0].frames[0]);
    }

    #[test]
    fn equilibrated_fraction_with_loose_criterion() {
        let mut s = spec(5, 400);
        s.integrator = s.integrator.deterministic();
        s.criterion = Some(EquilibriumCriterion {
            threshold: 0.05,
            patience: 3,
        });
        let e = run_ensemble(&s, 4);
        assert!(
            e.equilibrated_fraction() > 0.99,
            "deterministic attracting collectives equilibrate: {}",
            e.equilibrated_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        run_ensemble(&spec(0, 5), 1);
    }
}
