//! Stochastic integration of the overdamped dynamics (paper §4.1).
//!
//! One *recorded* step of length `dt` is split into `substeps` internal
//! substeps. Two schemes are provided:
//!
//! * [`Scheme::EulerMaruyama`] (the paper's choice):
//!   `z ← z + h·f(z) + √h·σ_w·ξ`, strong order 0.5;
//! * [`Scheme::Heun`] (stochastic Heun / improved Euler): drift handled
//!   by the two-stage predictor–corrector
//!   `z ← z + h/2·(f(z) + f(z + h·f(z))) + √h·σ_w·ξ`, which is weak
//!   order 2 in the drift for additive noise — the `integrator` tests
//!   verify its deterministic convergence advantage.
//!
//! `σ_w = √noise_variance` (the paper's `w ~ N(0, 0.05)`; see DESIGN.md
//! #1 for the variance-vs-std reading). The per-substep *drift*
//! displacement is clamped to `max_step` to keep `F¹`'s `1/x` pole from
//! catapulting particles in the rare event that two of them nearly
//! coincide — the clamp engages only in that regime and is configurable
//! (and benchmarked) as an ablation.

use crate::model::Model;
use crate::workspace::ForceWorkspace;
use sops_math::{SplitMix64, Vec2};

/// The stochastic integration scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheme {
    /// The paper's scheme (Eq. 6 solved "using Euler–Maruyama
    /// integration").
    #[default]
    EulerMaruyama,
    /// Stochastic Heun: two drift evaluations per substep, weak order 2
    /// in the drift for the additive noise used here.
    Heun,
}

/// Integration parameters for one recorded time step.
#[derive(Debug, Clone, Copy)]
pub struct IntegratorConfig {
    /// Length of one recorded time step (the paper's unit of `t`).
    pub dt: f64,
    /// Internal substeps per recorded step.
    pub substeps: usize,
    /// Noise variance per unit time; the paper uses 0.05.
    pub noise_variance: f64,
    /// Per-substep cap on the *drift* displacement norm of any particle.
    pub max_step: f64,
    /// Integration scheme.
    pub scheme: Scheme,
}

impl Default for IntegratorConfig {
    fn default() -> Self {
        IntegratorConfig {
            dt: 0.1,
            substeps: 4,
            noise_variance: crate::DEFAULT_NOISE_VARIANCE,
            max_step: 0.5,
            scheme: Scheme::EulerMaruyama,
        }
    }
}

impl IntegratorConfig {
    /// Typed validation: `Err` carries the first violated constraint, in
    /// the same wording [`IntegratorConfig::validate`] panics with. Sweep
    /// entry points surface this as `SweepError::InvalidPlan` instead of
    /// unwinding.
    pub fn check(&self) -> Result<(), String> {
        if !(self.dt > 0.0 && self.dt.is_finite()) {
            return Err("dt must be positive".into());
        }
        if self.substeps == 0 {
            return Err("substeps must be >= 1".into());
        }
        if self.noise_variance.is_nan() || self.noise_variance < 0.0 {
            return Err("noise variance must be non-negative".into());
        }
        if self.max_step.is_nan() || self.max_step <= 0.0 {
            return Err("max_step must be positive".into());
        }
        Ok(())
    }

    /// Validates the configuration; called by [`crate::Simulation`].
    pub fn validate(&self) {
        if let Err(reason) = self.check() {
            panic!("{reason}");
        }
    }

    /// A noiseless copy — used by deterministic tests and by the
    /// equilibrium analysis, where noise would mask vanishing drift.
    pub fn deterministic(mut self) -> Self {
        self.noise_variance = 0.0;
        self
    }
}

/// Advances `positions` by one recorded step. All scratch (force buffers,
/// the cell grid, Heun predictor/corrector state) lives in `ws` and is
/// reused across calls — a warmed-up step allocates nothing.
///
/// Returns the drift force-norm sum `Σ_i ‖f_i‖₂` measured at the *start*
/// of the step, which the caller feeds to equilibrium detection.
pub fn step(
    model: &Model,
    cfg: &IntegratorConfig,
    positions: &mut [Vec2],
    ws: &mut ForceWorkspace,
    rng: &mut SplitMix64,
) -> f64 {
    let h = cfg.dt / cfg.substeps as f64;
    let noise_scale = (cfg.noise_variance * h).sqrt();
    let mut first_force_norm = 0.0;
    for sub in 0..cfg.substeps {
        ws.compute(model, positions);
        if sub == 0 {
            first_force_norm = ws.forces().iter().map(|f| f.norm()).sum();
        }
        match cfg.scheme {
            Scheme::EulerMaruyama => {
                for (z, f) in positions.iter_mut().zip(ws.forces()) {
                    let drift = (*f * h).clamp_norm(cfg.max_step);
                    *z += drift + sample_noise(noise_scale, rng);
                }
            }
            Scheme::Heun => {
                // Predictor: full Euler drift step.
                ws.predict(positions, h, cfg.max_step);
                // Corrector: average the drift at both ends; noise is
                // added once (additive noise needs no derivative terms).
                ws.compute_corrector(model);
                for ((z, f0), f1) in positions
                    .iter_mut()
                    .zip(ws.forces())
                    .zip(ws.corrector_forces())
                {
                    let drift = ((*f0 + *f1) * (0.5 * h)).clamp_norm(cfg.max_step);
                    *z += drift + sample_noise(noise_scale, rng);
                }
            }
        }
    }
    first_force_norm
}

#[inline]
fn sample_noise(noise_scale: f64, rng: &mut SplitMix64) -> Vec2 {
    if noise_scale > 0.0 {
        Vec2::new(
            noise_scale * rng.next_standard_normal(),
            noise_scale * rng.next_standard_normal(),
        )
    } else {
        Vec2::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::{ForceModel, LinearForce};

    fn pair_model(k: f64, r: f64) -> Model {
        Model::new(
            vec![0, 0],
            ForceModel::Linear(LinearForce::uniform(k, r)),
            f64::INFINITY,
        )
    }

    #[test]
    fn two_attracting_particles_approach_preferred_distance() {
        let model = pair_model(1.0, 1.0);
        let cfg = IntegratorConfig::default().deterministic();
        let mut pos = vec![Vec2::new(-2.0, 0.0), Vec2::new(2.0, 0.0)];
        let mut ws = ForceWorkspace::new();
        let mut rng = SplitMix64::new(0);
        for _ in 0..500 {
            step(&model, &cfg, &mut pos, &mut ws, &mut rng);
        }
        let sep = pos[0].dist(pos[1]);
        assert!(
            (sep - 1.0).abs() < 1e-3,
            "separation {sep} should settle at r = 1"
        );
    }

    #[test]
    fn repelling_pair_separates_to_preferred_distance() {
        let model = pair_model(1.0, 2.0);
        let cfg = IntegratorConfig::default().deterministic();
        let mut pos = vec![Vec2::new(-0.2, 0.0), Vec2::new(0.2, 0.0)];
        let mut ws = ForceWorkspace::new();
        let mut rng = SplitMix64::new(0);
        for _ in 0..1000 {
            step(&model, &cfg, &mut pos, &mut ws, &mut rng);
        }
        let sep = pos[0].dist(pos[1]);
        assert!((sep - 2.0).abs() < 1e-3, "separation {sep}");
    }

    #[test]
    fn force_norm_decreases_toward_equilibrium() {
        let model = pair_model(1.0, 1.0);
        let cfg = IntegratorConfig::default().deterministic();
        let mut pos = vec![Vec2::new(-3.0, 0.0), Vec2::new(3.0, 0.0)];
        let mut ws = ForceWorkspace::new();
        let mut rng = SplitMix64::new(0);
        let early = step(&model, &cfg, &mut pos, &mut ws, &mut rng);
        for _ in 0..300 {
            step(&model, &cfg, &mut pos, &mut ws, &mut rng);
        }
        let late = step(&model, &cfg, &mut pos, &mut ws, &mut rng);
        assert!(late < early * 1e-3, "early {early}, late {late}");
    }

    #[test]
    fn noise_moves_isolated_particle_diffusively() {
        // A single particle feels no force; its displacement over many
        // steps should have variance ~ noise_variance * elapsed_time per
        // coordinate.
        let model = Model::new(
            vec![0],
            ForceModel::Linear(LinearForce::uniform(1.0, 1.0)),
            f64::INFINITY,
        );
        let cfg = IntegratorConfig {
            dt: 0.1,
            substeps: 1,
            noise_variance: 0.05,
            max_step: 0.5,
            scheme: Scheme::EulerMaruyama,
        };
        let trials = 2000;
        let steps = 50;
        let mut sum_sq = 0.0;
        for t in 0..trials {
            let mut rng = SplitMix64::new(t);
            let mut pos = vec![Vec2::ZERO];
            let mut ws = ForceWorkspace::new();
            for _ in 0..steps {
                step(&model, &cfg, &mut pos, &mut ws, &mut rng);
            }
            sum_sq += pos[0].x * pos[0].x;
        }
        let var = sum_sq / trials as f64;
        let expected = 0.05 * cfg.dt * steps as f64; // = 0.25
        assert!(
            (var - expected).abs() < 0.15 * expected,
            "empirical {var} vs expected {expected}"
        );
    }

    #[test]
    fn deterministic_copy_disables_noise() {
        let cfg = IntegratorConfig::default().deterministic();
        assert_eq!(cfg.noise_variance, 0.0);
        let model = pair_model(1.0, 1.0);
        let mut a = vec![Vec2::new(-2.0, 0.0), Vec2::new(2.0, 0.0)];
        let mut b = a.clone();
        let mut wa = ForceWorkspace::new();
        let mut wb = ForceWorkspace::new();
        step(&model, &cfg, &mut a, &mut wa, &mut SplitMix64::new(1));
        step(&model, &cfg, &mut b, &mut wb, &mut SplitMix64::new(999));
        assert_eq!(a, b, "noiseless integration ignores the RNG");
    }

    #[test]
    fn max_step_bounds_drift_displacement() {
        // Enormous force scale; displacement must still be bounded by
        // max_step per substep.
        let model = pair_model(1e9, 1.0);
        let cfg = IntegratorConfig {
            dt: 0.1,
            substeps: 1,
            noise_variance: 0.0,
            max_step: 0.3,
            scheme: Scheme::EulerMaruyama,
        };
        let mut pos = vec![Vec2::new(-5.0, 0.0), Vec2::new(5.0, 0.0)];
        let before = pos.clone();
        let mut ws = ForceWorkspace::new();
        step(&model, &cfg, &mut pos, &mut ws, &mut SplitMix64::new(0));
        for (p, q) in pos.iter().zip(&before) {
            assert!(p.dist(*q) <= 0.3 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "substeps")]
    fn validate_rejects_zero_substeps() {
        IntegratorConfig {
            substeps: 0,
            ..IntegratorConfig::default()
        }
        .validate();
    }
}

#[cfg(test)]
mod heun_tests {
    use super::*;
    use crate::force::{ForceModel, LinearForce};

    fn pair_model(k: f64, r: f64) -> Model {
        Model::new(
            vec![0, 0],
            ForceModel::Linear(LinearForce::uniform(k, r)),
            f64::INFINITY,
        )
    }

    /// Deterministic endpoint of a stiff two-body relaxation after fixed
    /// wall-clock time, at the given scheme and substep count.
    fn endpoint(scheme: Scheme, substeps: usize) -> f64 {
        let model = pair_model(4.0, 1.0);
        let cfg = IntegratorConfig {
            dt: 0.2,
            substeps,
            noise_variance: 0.0,
            max_step: 10.0,
            scheme,
        };
        let mut pos = vec![Vec2::new(-2.0, 0.0), Vec2::new(2.0, 0.0)];
        let mut ws = ForceWorkspace::new();
        let mut rng = SplitMix64::new(0);
        // Two recorded steps only: the comparison happens mid-transient,
        // where truncation error has not yet been absorbed by the
        // attracting fixed point.
        for _ in 0..2 {
            step(&model, &cfg, &mut pos, &mut ws, &mut rng);
        }
        pos[0].dist(pos[1])
    }

    #[test]
    fn heun_converges_faster_than_euler_on_stiff_drift() {
        // Reference: very fine Heun integration (higher order, so the
        // most accurate proxy for the continuum solution).
        let reference = endpoint(Scheme::Heun, 4096);
        let euler_err = (endpoint(Scheme::EulerMaruyama, 4) - reference).abs();
        let heun_err = (endpoint(Scheme::Heun, 4) - reference).abs();
        assert!(
            heun_err < 0.25 * euler_err,
            "Heun error {heun_err} should be well below Euler error {euler_err}"
        );
    }

    #[test]
    fn heun_self_converges_quickly() {
        // O(h²) drift error: 32 vs 4096 substeps already agree tightly.
        let fine = endpoint(Scheme::Heun, 4096);
        let heun = endpoint(Scheme::Heun, 32);
        assert!(
            (heun - fine).abs() < 1e-3,
            "heun {heun} vs reference {fine}"
        );
    }

    #[test]
    fn schemes_agree_in_the_small_step_limit() {
        // Euler's O(h) error at h = dt/4096 bounds the gap.
        let a = endpoint(Scheme::EulerMaruyama, 4096);
        let b = endpoint(Scheme::Heun, 4096);
        assert!((a - b).abs() < 2e-4, "{a} vs {b}");
    }

    #[test]
    fn heun_noise_statistics_match_euler() {
        // Additive noise: both schemes must produce the same diffusion for
        // a force-free particle.
        let model = Model::new(
            vec![0],
            ForceModel::Linear(LinearForce::uniform(1.0, 1.0)),
            f64::INFINITY,
        );
        let measure = |scheme: Scheme| -> f64 {
            let cfg = IntegratorConfig {
                dt: 0.1,
                substeps: 1,
                noise_variance: 0.05,
                max_step: 0.5,
                scheme,
            };
            let trials = 4000;
            let mut sum_sq = 0.0;
            for t in 0..trials {
                let mut rng = SplitMix64::new(t);
                let mut pos = vec![Vec2::ZERO];
                let mut ws = ForceWorkspace::new();
                for _ in 0..20 {
                    step(&model, &cfg, &mut pos, &mut ws, &mut rng);
                }
                sum_sq += pos[0].norm_sq();
            }
            sum_sq / trials as f64
        };
        let em = measure(Scheme::EulerMaruyama);
        let heun = measure(Scheme::Heun);
        assert!(
            (em - heun).abs() < 0.1 * em,
            "diffusion mismatch: EM {em} vs Heun {heun}"
        );
    }
}
