//! Force-scaling functions `F¹` and `F²` (paper Eq. 7–8).
//!
//! # Sign convention
//!
//! The equation of motion is `ż_i = Σ −F(‖Δz_ij‖) Δz_ij` with
//! `Δz_ij = z_i − z_j`. A positive `F` therefore moves particle `i`
//! *toward* `j` (attraction); a negative `F` repels.
//!
//! * `F¹(x) = k (1 − r/x)` is negative below the preferred distance `r`
//!   (repulsion) and positive above it (attraction growing toward `k·x` for
//!   large separations — the paper's "long range attraction ... only cut
//!   off by the radius r_c").
//! * `F²(x) = k ((1/σ²) e^{−x²/(2σ)} − e^{−x²/(2τ)})` with the paper's
//!   `σ = 1 ≤ τ` is ≤ 0 everywhere: a finite-range soft *repulsion* that
//!   vanishes at contact and beyond a few `√τ`. This is exactly what makes
//!   single-type F² collectives relax into a regular, slowly expanding
//!   disc-shaped grid (paper §6/§7.1). The "preferred distance" `r_{αβ}`
//!   quoted for F² experiments is realized here as the repulsion *range*
//!   via the mapping `τ = r²/2` (DESIGN.md, pinned interpretation #3).

use sops_math::{PairMatrix, SplitMix64};

/// A per-type-pair force-scaling function.
///
/// Implementations must be symmetric in the type pair — the paper only
/// considers symmetric interaction matrices (asymmetric preferences lead
/// to unstable or cycling dynamics, §4.1).
pub trait ForceLaw {
    /// Number of particle types the law is parameterized for.
    fn types(&self) -> usize;

    /// The scaling `F_{αβ}(x)` at inter-particle distance `x > 0`.
    fn scale(&self, a: usize, b: usize, x: f64) -> f64;

    /// The preferred (zero-force or reference) distance `r_{αβ}` if the
    /// law defines one.
    fn preferred_distance(&self, a: usize, b: usize) -> Option<f64>;
}

/// `F¹_{αβ}(x) = k_{αβ} (1 − r_{αβ}/x)` — Eq. 7.
///
/// Zero at `x = r`, repulsive below (diverging as `x → 0`), attractive
/// above with unbounded growth; the cut-off radius of the [`crate::Model`]
/// is the only thing limiting the attraction range.
#[derive(Debug, Clone)]
pub struct LinearForce {
    /// Force scale `k_{αβ}`; paper range `[1, 10]`.
    pub k: PairMatrix,
    /// Preferred distance `r_{αβ}`.
    pub r: PairMatrix,
}

impl LinearForce {
    /// Builds the law, checking matching type counts.
    pub fn new(k: PairMatrix, r: PairMatrix) -> Self {
        assert_eq!(k.types(), r.types(), "LinearForce: k and r type mismatch");
        LinearForce { k, r }
    }

    /// Uniform parameters for a single-type collective (Figs. 5, 7).
    pub fn uniform(k: f64, r: f64) -> Self {
        LinearForce::new(PairMatrix::constant(1, k), PairMatrix::constant(1, r))
    }
}

impl ForceLaw for LinearForce {
    fn types(&self) -> usize {
        self.k.types()
    }

    #[inline]
    fn scale(&self, a: usize, b: usize, x: f64) -> f64 {
        self.k.get(a, b) * (1.0 - self.r.get(a, b) / x)
    }

    fn preferred_distance(&self, a: usize, b: usize) -> Option<f64> {
        Some(self.r.get(a, b))
    }
}

/// `F²_{αβ}(x) = k_{αβ} ((1/σ²_{αβ}) e^{−x²/(2σ_{αβ})} − e^{−x²/(2τ_{αβ})})`
/// — Eq. 8, implemented literally.
///
/// With the paper's `σ = 1` and `τ ∈ [1, 10]` this is a soft finite-range
/// repulsion (see module docs). The constructor
/// [`GaussianForce::from_preferred_distance`] derives `τ = r²/2` so the
/// repulsion range tracks the quoted `r_{αβ}` radii.
#[derive(Debug, Clone)]
pub struct GaussianForce {
    /// Force scale `k_{αβ}`.
    pub k: PairMatrix,
    /// First Gaussian width parameter `σ_{αβ}` (paper: 1 throughout).
    pub sigma: PairMatrix,
    /// Second Gaussian width parameter `τ_{αβ}`; paper range `[1, 10]`.
    pub tau: PairMatrix,
}

impl GaussianForce {
    /// Builds the law, checking matching type counts.
    pub fn new(k: PairMatrix, sigma: PairMatrix, tau: PairMatrix) -> Self {
        assert_eq!(k.types(), sigma.types(), "GaussianForce: k/sigma mismatch");
        assert_eq!(k.types(), tau.types(), "GaussianForce: k/tau mismatch");
        GaussianForce { k, sigma, tau }
    }

    /// Builds the law from preferred-distance radii `r_{αβ}` with the
    /// paper's `σ = 1`, mapping `τ_{αβ} = r_{αβ}²/2` (DESIGN.md #3).
    pub fn from_preferred_distance(k: PairMatrix, r: &PairMatrix) -> Self {
        let types = k.types();
        assert_eq!(types, r.types(), "GaussianForce: k/r mismatch");
        let tau = r.map(|v| 0.5 * v * v);
        GaussianForce::new(k, PairMatrix::constant(types, 1.0), tau)
    }

    /// Uniform parameters for a single-type collective (Fig. 3 right).
    pub fn uniform(k: f64, tau: f64) -> Self {
        GaussianForce::new(
            PairMatrix::constant(1, k),
            PairMatrix::constant(1, 1.0),
            PairMatrix::constant(1, tau),
        )
    }
}

impl ForceLaw for GaussianForce {
    fn types(&self) -> usize {
        self.k.types()
    }

    #[inline]
    fn scale(&self, a: usize, b: usize, x: f64) -> f64 {
        let sigma = self.sigma.get(a, b);
        let tau = self.tau.get(a, b);
        let x2 = x * x;
        self.k.get(a, b)
            * ((-x2 / (2.0 * sigma)).exp() / (sigma * sigma) - (-x2 / (2.0 * tau)).exp())
    }

    fn preferred_distance(&self, a: usize, b: usize) -> Option<f64> {
        // Inverse of the tau = r²/2 mapping.
        Some((2.0 * self.tau.get(a, b)).sqrt())
    }
}

/// Force families usable by [`crate::Model`].
///
/// The two paper families are first-class variants (enum dispatch keeps
/// the hot loop monomorphic); `Custom` opens the model to user-defined
/// laws (e.g. Lennard-Jones-like potentials — see the
/// `custom_force_law` example) behind an `Arc` so the model stays
/// `Clone + Send + Sync` for the parallel ensemble runner.
#[derive(Clone)]
pub enum ForceModel {
    /// `F¹` — Eq. 7.
    Linear(LinearForce),
    /// `F²` — Eq. 8.
    Gaussian(GaussianForce),
    /// Any user-provided law.
    Custom(std::sync::Arc<dyn ForceLaw + Send + Sync>),
}

impl std::fmt::Debug for ForceModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForceModel::Linear(l) => f.debug_tuple("Linear").field(l).finish(),
            ForceModel::Gaussian(g) => f.debug_tuple("Gaussian").field(g).finish(),
            ForceModel::Custom(c) => f
                .debug_struct("Custom")
                .field("types", &c.types())
                .finish_non_exhaustive(),
        }
    }
}

impl ForceModel {
    /// Wraps a user-defined law.
    pub fn custom(law: impl ForceLaw + Send + Sync + 'static) -> Self {
        ForceModel::Custom(std::sync::Arc::new(law))
    }
}

impl ForceLaw for ForceModel {
    fn types(&self) -> usize {
        match self {
            ForceModel::Linear(f) => f.types(),
            ForceModel::Gaussian(f) => f.types(),
            ForceModel::Custom(f) => f.types(),
        }
    }

    #[inline]
    fn scale(&self, a: usize, b: usize, x: f64) -> f64 {
        match self {
            ForceModel::Linear(f) => f.scale(a, b, x),
            ForceModel::Gaussian(f) => f.scale(a, b, x),
            ForceModel::Custom(f) => f.scale(a, b, x),
        }
    }

    fn preferred_distance(&self, a: usize, b: usize) -> Option<f64> {
        match self {
            ForceModel::Linear(f) => f.preferred_distance(a, b),
            ForceModel::Gaussian(f) => f.preferred_distance(a, b),
            ForceModel::Custom(f) => f.preferred_distance(a, b),
        }
    }
}

/// Draws a random symmetric preferred-distance matrix with entries uniform
/// in `[lo, hi]` — the random type generation protocol of Figs. 8–10.
pub fn random_preferred_distances(types: usize, lo: f64, hi: f64, seed: u64) -> PairMatrix {
    let mut rng = SplitMix64::new(seed);
    PairMatrix::from_fn(types, |_, _| rng.next_range(lo, hi))
}

/// Draws a random symmetric force-scale matrix `k_{αβ}` with entries
/// uniform in `[lo, hi]` (paper range `[1, 10]`).
pub fn random_force_scales(types: usize, lo: f64, hi: f64, seed: u64) -> PairMatrix {
    let mut rng = SplitMix64::new(seed);
    PairMatrix::from_fn(types, |_, _| rng.next_range(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_sign_structure() {
        let f = LinearForce::uniform(2.0, 1.5);
        // Below preferred distance: repulsion (negative).
        assert!(f.scale(0, 0, 0.5) < 0.0);
        // At preferred distance: zero.
        assert!(f.scale(0, 0, 1.5).abs() < 1e-12);
        // Above: attraction, growing.
        assert!(f.scale(0, 0, 3.0) > 0.0);
        assert!(f.scale(0, 0, 6.0) > f.scale(0, 0, 3.0));
        assert_eq!(f.preferred_distance(0, 0), Some(1.5));
    }

    #[test]
    fn f1_diverges_repulsively_at_contact() {
        let f = LinearForce::uniform(1.0, 1.0);
        assert!(f.scale(0, 0, 1e-6) < -1e5);
    }

    #[test]
    fn f2_literal_formula_is_repulsive_for_tau_above_sigma() {
        // sigma = 1, tau = 4: F2(x) = e^{-x²/2} - e^{-x²/8} <= 0.
        let f = GaussianForce::uniform(1.0, 4.0);
        for i in 1..100 {
            let x = i as f64 * 0.1;
            assert!(
                f.scale(0, 0, x) <= 1e-15,
                "F2({x}) = {} not repulsive",
                f.scale(0, 0, x)
            );
        }
        // Vanishes at contact and far away.
        assert!(f.scale(0, 0, 1e-9).abs() < 1e-9);
        assert!(f.scale(0, 0, 50.0).abs() < 1e-12);
    }

    #[test]
    fn f2_range_scales_with_preferred_distance() {
        let k = PairMatrix::constant(1, 1.0);
        let small =
            GaussianForce::from_preferred_distance(k.clone(), &PairMatrix::constant(1, 1.0));
        let large = GaussianForce::from_preferred_distance(k, &PairMatrix::constant(1, 4.0));
        // At x = 3 the short-range law has (essentially) decayed while the
        // long-range one is still pushing.
        assert!(small.scale(0, 0, 3.0).abs() < large.scale(0, 0, 3.0).abs());
        // tau mapping round-trips through preferred_distance.
        assert!((large.preferred_distance(0, 0).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn f2_peak_repulsion_strength_scales_with_k() {
        let weak = GaussianForce::uniform(1.0, 4.0);
        let strong = GaussianForce::uniform(5.0, 4.0);
        let x = 1.5;
        assert!((strong.scale(0, 0, x) - 5.0 * weak.scale(0, 0, x)).abs() < 1e-12);
    }

    #[test]
    fn force_model_enum_dispatch() {
        let lin = ForceModel::Linear(LinearForce::uniform(1.0, 2.0));
        let gau = ForceModel::Gaussian(GaussianForce::uniform(1.0, 2.0));
        assert_eq!(lin.types(), 1);
        assert_eq!(gau.types(), 1);
        assert!(lin.scale(0, 0, 4.0) > 0.0);
        assert!(gau.scale(0, 0, 1.0) < 0.0);
    }

    #[test]
    fn multi_type_lookup_is_symmetric() {
        let k = PairMatrix::from_full(2, &[1.0, 3.0, 3.0, 2.0]);
        let r = PairMatrix::from_full(2, &[1.0, 2.0, 2.0, 1.5]);
        let f = LinearForce::new(k, r);
        for x in [0.5, 1.0, 2.5, 7.0] {
            assert_eq!(f.scale(0, 1, x), f.scale(1, 0, x));
        }
    }

    #[test]
    fn custom_law_dispatch() {
        struct Spring;
        impl ForceLaw for Spring {
            fn types(&self) -> usize {
                1
            }
            fn scale(&self, _a: usize, _b: usize, x: f64) -> f64 {
                x - 1.5 // linear spring toward separation 1.5
            }
            fn preferred_distance(&self, _a: usize, _b: usize) -> Option<f64> {
                Some(1.5)
            }
        }
        let law = ForceModel::custom(Spring);
        assert_eq!(law.types(), 1);
        assert!(law.scale(0, 0, 1.0) < 0.0);
        assert!(law.scale(0, 0, 2.0) > 0.0);
        assert_eq!(law.preferred_distance(0, 0), Some(1.5));
        let cloned = law.clone();
        assert_eq!(cloned.scale(0, 0, 3.0), law.scale(0, 0, 3.0));
        assert!(format!("{law:?}").contains("Custom"));
    }

    #[test]
    fn random_matrices_respect_ranges_and_seeds() {
        let a = random_preferred_distances(5, 2.0, 8.0, 42);
        assert!(a.min_value() >= 2.0 && a.max_value() <= 8.0);
        let b = random_preferred_distances(5, 2.0, 8.0, 42);
        assert_eq!(a, b, "same seed, same matrix");
        let c = random_preferred_distances(5, 2.0, 8.0, 43);
        assert_ne!(a, c, "different seed, different matrix");
        let k = random_force_scales(3, 1.0, 10.0, 7);
        assert!(k.min_value() >= 1.0 && k.max_value() <= 10.0);
    }
}
