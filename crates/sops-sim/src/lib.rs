//! The interacting particle model of Harder & Polani (2012), §4.1 and §5.1.
//!
//! `n` particles with fixed types move in the plane under overdamped
//! ("strong friction limit") dynamics:
//!
//! ```text
//! ż_i = Σ_{j ∈ N_rc(i)}  −F_{αβ}(‖Δz_ij‖₂) Δz_ij  +  w,    Δz_ij = z_i − z_j
//! ```
//!
//! with `w ~ N(0, 0.05)` additive white Gaussian noise, integrated by the
//! Euler–Maruyama scheme. `F_{αβ}` is a *force-scaling* function of the
//! inter-particle distance, parameterized per unordered type pair: positive
//! values attract, negative values repel (see [`force`] for the sign
//! derivation). Interactions are cut off at radius `r_c`; `r_c = ∞` is the
//! long-range regime of the paper's Figs. 9–10.
//!
//! Crate layout:
//!
//! * [`force`] — the two force-scaling families `F¹` (linear, long-range
//!   attraction) and `F²` (difference of Gaussians), plus random matrix
//!   generators used by the sweep experiments.
//! * [`model`] — particle types + force law + cut-off bundled as a
//!   [`Model`].
//! * [`integrator`] — Euler–Maruyama stepping with substeps and a
//!   displacement clamp for the `1/x` singularity of `F¹`.
//! * [`workspace`] — the persistent, allocation-free force-evaluation
//!   engine: in-place grid rebuilds, a cell-sorted Newton's-third-law
//!   half sweep, and deterministic chunked parallelism.
//! * [`sim`] — a single simulation run producing a [`Trajectory`];
//!   equilibrium and limit-cycle detection (§4.1, §6).
//! * [`init`] — the uniform-disc initial distribution (§5.1).
//! * [`ensemble`] — `m` independent runs in parallel with derived seeds
//!   (bit-reproducible regardless of thread count).
//! * [`streaming`] — out-of-core ensembles that retain only scheduled
//!   snapshot frames (optionally spilled to disk), bit-identical to the
//!   retained trajectories at the same times.

pub mod ensemble;
pub mod force;
pub mod init;
pub mod integrator;
pub mod model;
pub mod sim;
pub mod streaming;
pub mod workspace;

pub use ensemble::{run_ensemble, Ensemble, EnsembleSpec};
pub use force::{ForceLaw, ForceModel, GaussianForce, LinearForce};
pub use integrator::IntegratorConfig;
pub use model::Model;
pub use sim::{EquilibriumCriterion, Simulation, Trajectory};
pub use streaming::{
    run_streaming_ensemble, EnsembleFrames, SpillStore, StreamingConfig, StreamingEnsemble,
};
pub use workspace::ForceWorkspace;

/// Default noise level: the paper's `w ~ N(0, 0.05)` read as *variance* per
/// unit time (std ≈ 0.2236). See DESIGN.md, pinned interpretation #1.
pub const DEFAULT_NOISE_VARIANCE: f64 = 0.05;
