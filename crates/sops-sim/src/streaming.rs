//! Out-of-core ensembles: stream evaluated snapshots instead of
//! retaining whole trajectories.
//!
//! [`crate::ensemble::run_ensemble`] materializes every run's full
//! trajectory — `m × (t_max + 1) × n` positions — before the evaluation
//! pass reads the handful of scheduled steps it actually needs. That is
//! fine at lab scale and wasteful at 10⁵–10⁶ particles: the sweep's
//! evaluation schedule names `k ≪ t_max` frames, so the retained storage
//! is `O(t_max)` where `O(k)` suffices.
//!
//! [`run_streaming_ensemble`] runs each sample forward with the *exact*
//! stepping loop of [`crate::Simulation::run`] (same seed derivation,
//! same RNG draw order, same equilibrium bookkeeping) but copies out only
//! the frames named by the caller's retained-time list — the sweep's
//! `eval_schedule`, plus whatever extra lag steps the dynamics layer
//! needs. The result is **bit-identical** to slicing a retained
//! [`Ensemble`] at the same times, for any worker count, with peak memory
//! `O(m · k · n)` instead of `O(m · t_max · n)`.
//!
//! When even the retained frames exceed a configured resident budget
//! ([`StreamingConfig::max_resident_bytes`]), the store spills to an
//! anonymous temporary file ([`SpillStore`]): each worker writes its
//! sample's frames at fixed offsets as they are produced, and the
//! evaluation pass reads one cross-sample time slice at a time into a
//! reused buffer. Spilled round trips are raw `f64` bytes ([`Vec2`] is
//! `repr(C)`), so they are bit-exact by construction.
//!
//! [`EnsembleFrames`] is the unifying read view: evaluation code written
//! against it runs unchanged over a retained [`Ensemble`] or a
//! [`StreamingEnsemble`], which is how the sweep engine keeps one
//! evaluation path for both storage modes.

use crate::ensemble::{Ensemble, EnsembleSpec};
use crate::sim::Simulation;
use sops_math::rng::derive_seed;
use sops_math::Vec2;
use std::sync::atomic::{AtomicU64, Ordering};

/// Size of one stored position in bytes (`Vec2` = two `f64`s, `repr(C)`).
const VEC2_BYTES: usize = std::mem::size_of::<Vec2>();

/// Storage policy of [`run_streaming_ensemble`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingConfig {
    /// Resident-memory budget for the retained frames, in bytes. When
    /// `samples × retained_times × particles × 16` exceeds this, the
    /// store spills to a temporary file; a tiny budget (e.g. 1) forces
    /// the spill path, which the bit-identity tests use.
    pub max_resident_bytes: usize,
}

impl Default for StreamingConfig {
    /// 1 GiB of resident frames — far above every lab-scale scenario, so
    /// spill engages only when a dense schedule meets a huge collective.
    fn default() -> Self {
        StreamingConfig {
            max_resident_bytes: 1 << 30,
        }
    }
}

/// Disambiguates spill files across concurrent ensembles in one process.
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Frame chunks spilled to an unlinked temporary file, sample-major:
/// frame `fi` of sample `s` lives at byte offset
/// `(s · k + fi) · n · 16` for `k` retained times and `n` particles.
///
/// The file is unlinked immediately after creation, so the kernel
/// reclaims it when the store drops — even if the process is killed
/// mid-sweep (the fault-tolerance layer's crash model).
#[derive(Debug)]
pub struct SpillStore {
    file: std::fs::File,
    frame_len: usize,
    frames_per_sample: usize,
}

impl SpillStore {
    /// Creates a store for `samples × frames_per_sample` frames of
    /// `frame_len` positions each, preallocated and unlinked.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure — inside a sweep the panic-isolation layer
    /// quarantines the ensemble instead of aborting the run.
    pub fn create(samples: usize, frames_per_sample: usize, frame_len: usize) -> Self {
        let path = std::env::temp_dir().join(format!(
            "sops-spill-{}-{}.bin",
            std::process::id(),
            SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("SpillStore: create {}: {e}", path.display()));
        // Unlink right away: the fd keeps the storage alive and the
        // kernel cleans up on drop or crash.
        std::fs::remove_file(&path)
            .unwrap_or_else(|e| panic!("SpillStore: unlink {}: {e}", path.display()));
        let total = (samples * frames_per_sample * frame_len * VEC2_BYTES) as u64;
        file.set_len(total)
            .unwrap_or_else(|e| panic!("SpillStore: preallocate {total} bytes: {e}"));
        SpillStore {
            file,
            frame_len,
            frames_per_sample,
        }
    }

    fn offset(&self, sample: usize, frame: usize) -> u64 {
        debug_assert!(frame < self.frames_per_sample);
        ((sample * self.frames_per_sample + frame) * self.frame_len * VEC2_BYTES) as u64
    }

    /// Writes one frame at its fixed offset. Offsets are disjoint per
    /// (sample, frame), so concurrent writers need no further
    /// coordination (`write_all_at` takes `&self`).
    pub fn write_frame(&self, sample: usize, frame: usize, positions: &[Vec2]) {
        assert_eq!(positions.len(), self.frame_len, "SpillStore: frame size");
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file
                .write_all_at(vec2_bytes(positions), self.offset(sample, frame))
                .unwrap_or_else(|e| panic!("SpillStore: write s{sample}/f{frame}: {e}"));
        }
        #[cfg(not(unix))]
        {
            let _ = (sample, frame);
            unreachable!("SpillStore is only constructed on unix");
        }
    }

    /// Reads one frame back into `out` (bit-exact round trip).
    pub fn read_frame(&self, sample: usize, frame: usize, out: &mut [Vec2]) {
        assert_eq!(out.len(), self.frame_len, "SpillStore: frame size");
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file
                .read_exact_at(vec2_bytes_mut(out), self.offset(sample, frame))
                .unwrap_or_else(|e| panic!("SpillStore: read s{sample}/f{frame}: {e}"));
        }
        #[cfg(not(unix))]
        {
            let _ = (sample, frame);
            unreachable!("SpillStore is only constructed on unix");
        }
    }
}

/// `&[Vec2]` as its raw byte image. Sound: `Vec2` is `repr(C)` with two
/// `f64` fields — no padding, every bit pattern valid.
#[cfg(unix)]
fn vec2_bytes(v: &[Vec2]) -> &[u8] {
    // SAFETY: see above; length in bytes is exact.
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), std::mem::size_of_val(v)) }
}

/// `&mut [Vec2]` as its raw byte image (see [`vec2_bytes`]).
#[cfg(unix)]
fn vec2_bytes_mut(v: &mut [Vec2]) -> &mut [u8] {
    // SAFETY: as in `vec2_bytes`; any byte pattern is a valid Vec2.
    unsafe { std::slice::from_raw_parts_mut(v.as_mut_ptr().cast::<u8>(), std::mem::size_of_val(v)) }
}

/// Where a [`StreamingEnsemble`] keeps its retained frames.
#[derive(Debug)]
enum FrameStore {
    /// One flat sample-major buffer: frame `fi` of sample `s` occupies
    /// `[(s·k + fi)·n .. (s·k + fi + 1)·n]`.
    Memory(Vec<Vec2>),
    /// Spilled to an unlinked temporary file.
    Spill(SpillStore),
}

/// An ensemble that retained only the frames named at simulation time —
/// the out-of-core counterpart of [`Ensemble`].
///
/// Positions at the retained times are bit-identical to the retained
/// trajectory's frames at the same times ([`run_streaming_ensemble`]
/// replays the exact stepping loop); asking for a non-retained time is a
/// caller bug and panics.
#[derive(Debug)]
pub struct StreamingEnsemble {
    /// Retained time steps, strictly increasing.
    times: Vec<usize>,
    samples: usize,
    particles: usize,
    /// Per-sample equilibrium bookkeeping, identical to the retained
    /// run's [`crate::Trajectory::equilibrium_step`].
    equilibrium_steps: Vec<Option<usize>>,
    store: FrameStore,
}

impl StreamingEnsemble {
    /// Number of samples `m`.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of particles `n`.
    pub fn particles(&self) -> usize {
        self.particles
    }

    /// The retained time steps, strictly increasing.
    pub fn times(&self) -> &[usize] {
        &self.times
    }

    /// `true` when the frames live in a spill file rather than memory.
    pub fn is_spilled(&self) -> bool {
        matches!(self.store, FrameStore::Spill(_))
    }

    /// Resident bytes held by the frame store (0 when spilled).
    pub fn resident_bytes(&self) -> usize {
        match &self.store {
            FrameStore::Memory(data) => data.len() * VEC2_BYTES,
            FrameStore::Spill(_) => 0,
        }
    }

    /// Fraction of runs that satisfied the equilibrium criterion —
    /// bit-identical to [`Ensemble::equilibrated_fraction`].
    pub fn equilibrated_fraction(&self) -> f64 {
        if self.equilibrium_steps.is_empty() {
            return 0.0;
        }
        self.equilibrium_steps
            .iter()
            .filter(|s| s.is_some())
            .count() as f64
            / self.equilibrium_steps.len() as f64
    }

    /// Index of recorded step `t` in the retained-time list.
    ///
    /// # Panics
    ///
    /// Panics if `t` was not retained — the schedule handed to
    /// [`run_streaming_ensemble`] must cover every time the evaluation
    /// will visit.
    fn frame_index(&self, t: usize) -> usize {
        self.times
            .binary_search(&t)
            .unwrap_or_else(|_| panic!("StreamingEnsemble: step {t} was not retained"))
    }

    /// Writes the cross-sample slice at retained time `t` into `out`
    /// (cleared first) — the [`Ensemble::at_time_into`] counterpart.
    ///
    /// In-memory stores serve slices directly; spilled stores load the
    /// time slice into `buf` (capacity reused across calls) and slice
    /// that, so a warmed-up evaluation loop allocates nothing either way.
    pub fn at_time_into<'a>(&'a self, t: usize, buf: &'a mut Vec<Vec2>, out: &mut Vec<&'a [Vec2]>) {
        out.clear();
        let fi = self.frame_index(t);
        let n = self.particles;
        match &self.store {
            FrameStore::Memory(data) => {
                let k = self.times.len();
                out.extend(
                    (0..self.samples).map(|s| &data[(s * k + fi) * n..(s * k + fi + 1) * n]),
                );
            }
            FrameStore::Spill(spill) => {
                buf.resize(self.samples * n, Vec2::default());
                for (s, chunk) in buf.chunks_exact_mut(n).enumerate() {
                    spill.read_frame(s, fi, chunk);
                }
                out.extend(buf.chunks_exact(n));
            }
        }
    }
}

/// Normalizes a retained-time request: sorted, deduplicated, bounded by
/// the horizon.
fn normalize_times(times: &[usize], t_max: usize) -> Vec<usize> {
    let mut out = times.to_vec();
    out.sort_unstable();
    out.dedup();
    assert!(!out.is_empty(), "run_streaming_ensemble: no retained times");
    assert!(
        *out.last().unwrap() <= t_max,
        "run_streaming_ensemble: retained time {} beyond horizon {t_max}",
        out.last().unwrap()
    );
    out
}

/// Runs each sample forward with the exact loop of
/// [`crate::Simulation::run`], emitting only the retained frames to
/// `sink(frame_index, positions)`. Returns the equilibrium step, if any.
fn stream_one(
    spec: &EnsembleSpec,
    sample: usize,
    times: &[usize],
    mut sink: impl FnMut(usize, &[Vec2]),
) -> Option<usize> {
    let sample_seed = derive_seed(spec.seed, sample as u64);
    let mut sim = Simulation::with_disc_init(
        spec.model.clone(),
        spec.integrator,
        spec.init_radius,
        sample_seed,
    );
    let mut next = 0usize;
    if times[next] == 0 {
        sink(next, sim.positions());
        next += 1;
    }
    let mut equilibrium_step = None;
    let mut below = 0usize;
    for t in 0..spec.t_max {
        let fnorm = sim.step();
        if let Some(c) = spec.criterion {
            if fnorm < c.threshold {
                below += 1;
                if below >= c.patience && equilibrium_step.is_none() {
                    equilibrium_step = Some(t + 1);
                }
            } else {
                below = 0;
            }
        }
        if next < times.len() && times[next] == t + 1 {
            sink(next, sim.positions());
            next += 1;
        }
    }
    debug_assert_eq!(next, times.len(), "all retained times visited");
    equilibrium_step
}

/// Runs the ensemble out-of-core: every sample is stepped through the
/// full horizon (identical RNG stream and equilibrium bookkeeping to
/// [`crate::ensemble::run_ensemble`]) but only the frames at `times` are
/// kept — in memory while they fit `cfg.max_resident_bytes`, spilled to
/// an unlinked temp file otherwise.
///
/// Bit-identity contract: for any worker count, the retained frames and
/// the equilibrated fraction equal those of the retained-trajectory run
/// sliced at the same times.
pub fn run_streaming_ensemble(
    spec: &EnsembleSpec,
    times: &[usize],
    threads: usize,
    cfg: &StreamingConfig,
) -> StreamingEnsemble {
    spec.validate();
    let times = normalize_times(times, spec.t_max);
    let threads = if threads == 0 {
        sops_par::default_threads()
    } else {
        threads
    };
    let n = spec.model.particles();
    let k = times.len();
    let resident = spec.samples * k * n * VEC2_BYTES;
    let spill = cfg!(unix) && resident > cfg.max_resident_bytes;
    if spill {
        let store = SpillStore::create(spec.samples, k, n);
        let equilibrium_steps = sops_par::parallel_map(spec.samples, threads, |s| {
            stream_one(spec, s, &times, |fi, frame| store.write_frame(s, fi, frame))
        });
        StreamingEnsemble {
            times,
            samples: spec.samples,
            particles: n,
            equilibrium_steps,
            store: FrameStore::Spill(store),
        }
    } else {
        let per_sample = sops_par::parallel_map(spec.samples, threads, |s| {
            let mut frames: Vec<Vec2> = Vec::with_capacity(k * n);
            let eq = stream_one(spec, s, &times, |_fi, frame| {
                frames.extend_from_slice(frame);
            });
            (frames, eq)
        });
        let mut data = Vec::with_capacity(spec.samples * k * n);
        let mut equilibrium_steps = Vec::with_capacity(spec.samples);
        for (frames, eq) in per_sample {
            data.extend_from_slice(&frames);
            equilibrium_steps.push(eq);
        }
        StreamingEnsemble {
            times,
            samples: spec.samples,
            particles: n,
            equilibrium_steps,
            store: FrameStore::Memory(data),
        }
    }
}

/// A borrowed read view over either ensemble storage: evaluation code
/// written against this enum runs unchanged on retained trajectories and
/// streamed snapshot stores.
#[derive(Debug, Clone, Copy)]
pub enum EnsembleFrames<'e> {
    /// The classic full-trajectory ensemble.
    Retained(&'e Ensemble),
    /// A snapshot store retaining only scheduled frames.
    Streaming(&'e StreamingEnsemble),
}

impl<'e> EnsembleFrames<'e> {
    /// Number of samples `m`.
    pub fn samples(&self) -> usize {
        match self {
            EnsembleFrames::Retained(e) => e.samples(),
            EnsembleFrames::Streaming(s) => s.samples(),
        }
    }

    /// Number of particles `n`.
    pub fn particles(&self) -> usize {
        match self {
            EnsembleFrames::Retained(e) => e.particles(),
            EnsembleFrames::Streaming(s) => s.particles(),
        }
    }

    /// Fraction of runs that satisfied the equilibrium criterion.
    pub fn equilibrated_fraction(&self) -> f64 {
        match self {
            EnsembleFrames::Retained(e) => e.equilibrated_fraction(),
            EnsembleFrames::Streaming(s) => s.equilibrated_fraction(),
        }
    }

    /// `true` when time `t` can be served: retained ensembles cover every
    /// recorded step, streaming ensembles only their schedule.
    pub fn covers(&self, t: usize) -> bool {
        match self {
            EnsembleFrames::Retained(e) => t < e.frames(),
            EnsembleFrames::Streaming(s) => s.times().binary_search(&t).is_ok(),
        }
    }

    /// Writes the cross-sample slice at time `t` into `out` (cleared
    /// first). `buf` is the spill staging buffer — untouched for
    /// in-memory storage, reused (capacity-stable) for spilled frames.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not covered (see [`EnsembleFrames::covers`]).
    pub fn at_time_into<'a>(&'a self, t: usize, buf: &'a mut Vec<Vec2>, out: &mut Vec<&'a [Vec2]>) {
        match self {
            EnsembleFrames::Retained(e) => e.at_time_into(t, out),
            EnsembleFrames::Streaming(s) => s.at_time_into(t, buf, out),
        }
    }
}

/// Recycles a cross-sample slice vector's allocation across borrow
/// scopes: the returned vector is empty, carries a fresh lifetime, and
/// reuses the input's pointer and capacity.
///
/// Evaluation loops that hold one slice vector across many
/// [`EnsembleFrames::at_time_into`] calls need this: each call borrows
/// the staging buffer anew, so the references stored last step must be
/// provably gone first. Clearing alone does not end the borrow region —
/// consuming the vector does.
pub fn recycle_slice_vec<'a, 'b>(mut v: Vec<&'a [Vec2]>) -> Vec<&'b [Vec2]> {
    v.clear();
    // SAFETY: the vector is empty, so no `&'a` value survives; only the
    // allocation (pointer + capacity) is reused under the new lifetime.
    unsafe { std::mem::transmute::<Vec<&'a [Vec2]>, Vec<&'b [Vec2]>>(v) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::run_ensemble;
    use crate::force::{ForceModel, LinearForce};
    use crate::integrator::IntegratorConfig;
    use crate::model::Model;
    use crate::sim::EquilibriumCriterion;

    fn spec(samples: usize, t_max: usize) -> EnsembleSpec {
        EnsembleSpec {
            model: Model::balanced(
                6,
                ForceModel::Linear(LinearForce::uniform(1.0, 1.0)),
                f64::INFINITY,
            ),
            integrator: IntegratorConfig::default(),
            init_radius: 2.0,
            t_max,
            samples,
            seed: 1234,
            criterion: None,
        }
    }

    fn assert_matches_retained(spec: &EnsembleSpec, times: &[usize], cfg: &StreamingConfig) {
        let retained = run_ensemble(spec, 4);
        for threads in [1usize, 8] {
            let streamed = run_streaming_ensemble(spec, times, threads, cfg);
            let frames = EnsembleFrames::Streaming(&streamed);
            for &t in streamed.times() {
                let mut buf = Vec::new();
                let mut out = Vec::new();
                frames.at_time_into(t, &mut buf, &mut out);
                let reference = retained.at_time(t);
                assert_eq!(out.len(), reference.len());
                for (a, b) in out.iter().zip(&reference) {
                    assert_eq!(a, b, "t={t}, threads={threads}");
                }
            }
            assert_eq!(
                streamed.equilibrated_fraction().to_bits(),
                retained.equilibrated_fraction().to_bits()
            );
        }
    }

    #[test]
    fn memory_store_matches_retained_frames() {
        let s = spec(10, 24);
        let cfg = StreamingConfig::default();
        assert_matches_retained(&s, &[0, 6, 12, 18, 24], &cfg);
        assert_matches_retained(&s, &(0..=24).collect::<Vec<_>>(), &cfg);
    }

    #[test]
    fn spill_store_matches_retained_frames() {
        let s = spec(8, 20);
        // A 1-byte budget forces the spill path.
        let cfg = StreamingConfig {
            max_resident_bytes: 1,
        };
        let streamed = run_streaming_ensemble(&s, &[0, 10, 20], 4, &cfg);
        assert!(streamed.is_spilled());
        assert_eq!(streamed.resident_bytes(), 0);
        assert_matches_retained(&s, &[0, 10, 20], &cfg);
    }

    #[test]
    fn equilibrium_bookkeeping_matches_retained() {
        let mut s = spec(5, 400);
        s.integrator = s.integrator.deterministic();
        s.criterion = Some(EquilibriumCriterion {
            threshold: 0.05,
            patience: 3,
        });
        let retained = run_ensemble(&s, 4);
        let streamed = run_streaming_ensemble(&s, &[0, 400], 4, &StreamingConfig::default());
        assert_eq!(
            streamed.equilibrium_steps,
            retained
                .runs
                .iter()
                .map(|r| r.equilibrium_step)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn times_are_normalized() {
        let s = spec(3, 10);
        let e = run_streaming_ensemble(&s, &[10, 0, 5, 5, 0], 1, &StreamingConfig::default());
        assert_eq!(e.times(), &[0, 5, 10]);
        assert!(EnsembleFrames::Streaming(&e).covers(5));
        assert!(!EnsembleFrames::Streaming(&e).covers(3));
    }

    #[test]
    fn spill_view_is_capacity_stable() {
        let s = spec(6, 12);
        let cfg = StreamingConfig {
            max_resident_bytes: 1,
        };
        let streamed = run_streaming_ensemble(&s, &[0, 4, 8, 12], 2, &cfg);
        let frames = EnsembleFrames::Streaming(&streamed);
        let mut buf: Vec<Vec2> = Vec::new();
        let mut storage: Vec<&[Vec2]> = Vec::new();
        let mut warm = (0usize, 0usize, 0usize, 0usize);
        for round in 0..4 {
            for &t in streamed.times() {
                let mut out = recycle_slice_vec(storage);
                frames.at_time_into(t, &mut buf, &mut out);
                assert_eq!(out.len(), streamed.samples());
                storage = recycle_slice_vec(out);
            }
            let state = (
                buf.capacity(),
                buf.as_ptr() as usize,
                storage.capacity(),
                storage.as_ptr() as usize,
            );
            if round == 0 {
                warm = state;
            } else {
                assert_eq!(state, warm, "round {round}: buffers grew or moved");
            }
        }
    }

    #[test]
    #[should_panic(expected = "was not retained")]
    fn unretained_time_panics() {
        let s = spec(2, 8);
        let e = run_streaming_ensemble(&s, &[0, 8], 1, &StreamingConfig::default());
        let mut buf = Vec::new();
        let mut out = Vec::new();
        e.at_time_into(3, &mut buf, &mut out);
    }

    #[test]
    #[should_panic(expected = "beyond horizon")]
    fn time_beyond_horizon_rejected() {
        let s = spec(2, 8);
        run_streaming_ensemble(&s, &[0, 9], 1, &StreamingConfig::default());
    }
}
