//! A single simulation run: trajectory recording, equilibrium detection
//! and limit-cycle diagnostics.

use crate::integrator::{step, IntegratorConfig};
use crate::model::Model;
use crate::workspace::ForceWorkspace;
use sops_math::{SplitMix64, Vec2};

/// The paper's stopping criterion (§4.1): the collective "is considered to
/// be in equilibrium, if for several time steps the sum of the L2 norm of
/// the sum of all forces acting on each particle is below a specific
/// threshold".
#[derive(Debug, Clone, Copy)]
pub struct EquilibriumCriterion {
    /// Threshold on `Σ_i ‖f_i‖₂` (drift forces only, noise excluded).
    pub threshold: f64,
    /// Number of consecutive recorded steps the indicator must stay below
    /// the threshold.
    pub patience: usize,
}

impl Default for EquilibriumCriterion {
    fn default() -> Self {
        EquilibriumCriterion {
            threshold: 0.5,
            patience: 10,
        }
    }
}

/// The recorded output of one simulation run — the sample `z̄ = (z⁽¹⁾, …,
/// z⁽ᵗᵐᵃˣ⁾)` of paper Eq. 15.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// `frames[t][i]` is the position of particle `i` at recorded step `t`
    /// (including the initial configuration at `t = 0`).
    pub frames: Vec<Vec<Vec2>>,
    /// Drift force-norm sum at the start of each recorded step (one entry
    /// per *transition*, so `force_norms.len() == frames.len() - 1`).
    pub force_norms: Vec<f64>,
    /// First recorded step at which the equilibrium criterion held, if any.
    pub equilibrium_step: Option<usize>,
}

impl Trajectory {
    /// Number of recorded frames (`t_max + 1` including `t = 0`).
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` if no frames were recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The final configuration.
    pub fn last(&self) -> &[Vec2] {
        self.frames.last().expect("Trajectory: no frames")
    }

    /// Detects an approximate limit cycle in the recorded tail (paper §6
    /// observes periodic dynamics that never satisfy the equilibrium
    /// criterion).
    ///
    /// Scans lags `1..=max_period` over the last `window` frames and
    /// returns the smallest lag whose mean per-particle displacement is
    /// below `tol`, ignoring lag-independent drift by comparing against the
    /// lag-1 baseline. A system at rest reports period 1 (a fixed point).
    pub fn detect_period(&self, window: usize, max_period: usize, tol: f64) -> Option<usize> {
        let t = self.frames.len();
        if t < window + max_period || window == 0 {
            return None;
        }
        let start = t - window;
        for lag in 1..=max_period {
            let mut acc = 0.0;
            let mut count = 0usize;
            for f in start..t - lag {
                let a = &self.frames[f];
                let b = &self.frames[f + lag];
                acc += a.iter().zip(b).map(|(p, q)| p.dist(*q)).sum::<f64>() / a.len() as f64;
                count += 1;
            }
            if count > 0 && acc / (count as f64) < tol {
                return Some(lag);
            }
        }
        None
    }
}

/// A running simulation bundling model, integrator configuration, state,
/// RNG and the persistent force-evaluation workspace (grid, scratch and
/// accumulator buffers reused across every substep — a warmed-up
/// [`Simulation::step`] allocates nothing).
#[derive(Debug, Clone)]
pub struct Simulation {
    model: Model,
    cfg: IntegratorConfig,
    positions: Vec<Vec2>,
    workspace: ForceWorkspace,
    rng: SplitMix64,
    time_step: usize,
}

impl Simulation {
    /// Creates a simulation from an explicit initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration size does not match the model or the
    /// integrator configuration is invalid.
    pub fn from_initial(
        model: Model,
        cfg: IntegratorConfig,
        initial: Vec<Vec2>,
        seed: u64,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            initial.len(),
            model.particles(),
            "Simulation: initial configuration size mismatch"
        );
        Simulation {
            model,
            cfg,
            positions: initial,
            workspace: ForceWorkspace::new(),
            rng: SplitMix64::new(seed),
            time_step: 0,
        }
    }

    /// Creates a simulation with the paper's uniform-disc initial
    /// distribution of the given radius.
    pub fn with_disc_init(
        model: Model,
        cfg: IntegratorConfig,
        disc_radius: f64,
        seed: u64,
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        let initial = crate::init::uniform_disc(model.particles(), disc_radius, &mut rng);
        let mut sim = Simulation::from_initial(model, cfg, initial, 0);
        // Continue with the same stream so init and dynamics share one
        // seed but never reuse draws.
        sim.rng = rng;
        sim
    }

    /// The model being simulated.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Current particle positions.
    pub fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    /// Recorded steps taken so far.
    pub fn time_step(&self) -> usize {
        self.time_step
    }

    /// The persistent force-evaluation workspace.
    pub fn workspace(&self) -> &ForceWorkspace {
        &self.workspace
    }

    /// Sets the worker-thread count of the force sweep (0 = default).
    /// Scheduling only — the trajectory is bit-identical for any count.
    /// Leave at 1 (the default) when running inside a parallel ensemble,
    /// which already saturates cores across samples.
    pub fn set_force_threads(&mut self, threads: usize) {
        self.workspace.set_threads(threads);
    }

    /// Drift force-norm sum `Σ_i ‖f_i‖₂` at the current configuration,
    /// computed in the simulation's own workspace without allocating.
    pub fn total_force_norm(&mut self) -> f64 {
        self.workspace
            .total_force_norm(&self.model, &self.positions)
    }

    /// Advances one recorded step; returns the drift force-norm sum at the
    /// start of the step.
    pub fn step(&mut self) -> f64 {
        self.time_step += 1;
        step(
            &self.model,
            &self.cfg,
            &mut self.positions,
            &mut self.workspace,
            &mut self.rng,
        )
    }

    /// Runs `t_max` recorded steps, collecting every frame (including the
    /// initial one) and applying the equilibrium criterion if given.
    ///
    /// The run always completes all `t_max` steps — the paper's analyses
    /// need fixed-length ensembles — but the first step satisfying the
    /// criterion is recorded in [`Trajectory::equilibrium_step`].
    pub fn run(&mut self, t_max: usize, criterion: Option<EquilibriumCriterion>) -> Trajectory {
        let mut frames = Vec::with_capacity(t_max + 1);
        let mut force_norms = Vec::with_capacity(t_max);
        frames.push(self.positions.clone());
        let mut equilibrium_step = None;
        let mut below = 0usize;
        for t in 0..t_max {
            let fnorm = self.step();
            force_norms.push(fnorm);
            frames.push(self.positions.clone());
            if let Some(c) = criterion {
                if fnorm < c.threshold {
                    below += 1;
                    if below >= c.patience && equilibrium_step.is_none() {
                        equilibrium_step = Some(t + 1);
                    }
                } else {
                    below = 0;
                }
            }
        }
        Trajectory {
            frames,
            force_norms,
            equilibrium_step,
        }
    }

    /// Runs until the equilibrium criterion holds or `max_steps` elapse,
    /// without recording intermediate frames. Returns the number of steps
    /// taken and whether equilibrium was reached.
    pub fn run_to_equilibrium(
        &mut self,
        criterion: EquilibriumCriterion,
        max_steps: usize,
    ) -> (usize, bool) {
        let mut below = 0usize;
        for t in 0..max_steps {
            let fnorm = self.step();
            if fnorm < criterion.threshold {
                below += 1;
                if below >= criterion.patience {
                    return (t + 1, true);
                }
            } else {
                below = 0;
            }
        }
        (max_steps, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::{ForceModel, GaussianForce, LinearForce};

    fn small_model(n: usize) -> Model {
        Model::balanced(
            n,
            ForceModel::Linear(LinearForce::uniform(1.0, 1.0)),
            f64::INFINITY,
        )
    }

    #[test]
    fn run_records_all_frames() {
        let mut sim =
            Simulation::with_disc_init(small_model(5), IntegratorConfig::default(), 2.0, 42);
        let traj = sim.run(20, None);
        assert_eq!(traj.len(), 21);
        assert_eq!(traj.force_norms.len(), 20);
        assert_eq!(traj.last().len(), 5);
        assert!(!traj.is_empty());
    }

    #[test]
    fn same_seed_reproduces_trajectory() {
        let make = || {
            Simulation::with_disc_init(small_model(8), IntegratorConfig::default(), 3.0, 7)
                .run(30, None)
        };
        let a = make();
        let b = make();
        for (fa, fb) in a.frames.iter().zip(&b.frames) {
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = Simulation::with_disc_init(small_model(8), IntegratorConfig::default(), 3.0, 1)
            .run(5, None);
        let b = Simulation::with_disc_init(small_model(8), IntegratorConfig::default(), 3.0, 2)
            .run(5, None);
        assert_ne!(a.frames[0], b.frames[0], "different initial conditions");
    }

    #[test]
    fn attracting_collective_reaches_equilibrium() {
        let cfg = IntegratorConfig::default().deterministic();
        let mut sim = Simulation::with_disc_init(small_model(6), cfg, 2.0, 11);
        let (steps, reached) = sim.run_to_equilibrium(
            EquilibriumCriterion {
                threshold: 1e-3,
                patience: 5,
            },
            5000,
        );
        assert!(reached, "no equilibrium after {steps} steps");
        // Once in equilibrium, all pair distances should be near the
        // preferred distance or a packing compatible with it.
        let final_norm = sim.total_force_norm();
        assert!(final_norm < 1e-3);
    }

    #[test]
    fn equilibrium_step_recorded_in_run() {
        let cfg = IntegratorConfig::default().deterministic();
        let mut sim = Simulation::with_disc_init(small_model(4), cfg, 1.5, 3);
        let traj = sim.run(
            800,
            Some(EquilibriumCriterion {
                threshold: 1e-3,
                patience: 5,
            }),
        );
        let eq = traj.equilibrium_step.expect("should equilibrate");
        assert!(eq >= 5, "patience must elapse first");
        assert!(eq < 800);
    }

    #[test]
    fn noisy_system_does_not_report_spurious_equilibrium_with_tight_threshold() {
        // With noise, positions jitter; drift forces at a noisy packing
        // stay above an extremely tight threshold.
        let mut sim =
            Simulation::with_disc_init(small_model(10), IntegratorConfig::default(), 2.0, 5);
        let traj = sim.run(
            100,
            Some(EquilibriumCriterion {
                threshold: 1e-12,
                patience: 3,
            }),
        );
        assert!(traj.equilibrium_step.is_none());
    }

    #[test]
    fn fixed_point_detected_as_period_one() {
        let cfg = IntegratorConfig::default().deterministic();
        let mut sim = Simulation::with_disc_init(small_model(4), cfg, 1.5, 9);
        let traj = sim.run(600, None);
        let period = traj.detect_period(50, 5, 1e-6);
        assert_eq!(period, Some(1));
    }

    #[test]
    fn expanding_gaussian_collective_has_no_tight_period() {
        // Pure repulsion keeps expanding; no approximate period at tight
        // tolerance within the recorded horizon.
        let model = Model::balanced(
            12,
            ForceModel::Gaussian(GaussianForce::uniform(5.0, 4.0)),
            f64::INFINITY,
        );
        let cfg = IntegratorConfig::default().deterministic();
        let mut sim = Simulation::with_disc_init(model, cfg, 1.0, 13);
        let traj = sim.run(80, None);
        assert_eq!(traj.detect_period(30, 5, 1e-9), None);
    }

    #[test]
    fn trajectory_too_short_for_period_detection() {
        let mut sim =
            Simulation::with_disc_init(small_model(3), IntegratorConfig::default(), 1.0, 21);
        let traj = sim.run(5, None);
        assert_eq!(traj.detect_period(10, 5, 1e-3), None);
    }
}
