//! The persistent, allocation-free force-evaluation engine.
//!
//! [`crate::Model::net_forces`] is the simulator's hottest kernel: it runs
//! once per substep per particle system, thousands of times per ensemble.
//! The naive implementation rebuilt a [`CellGrid`] from scratch each call
//! (three allocations plus a full point clone), evaluated every
//! interacting pair twice, and the Heun corrector allocated two more
//! vectors per recorded step. [`ForceWorkspace`] removes all of that:
//!
//! * **Buffer reuse** — the grid is [rebuilt in place](CellGrid::rebuild)
//!   and every scratch vector (cell-sorted coordinate lanes, per-chunk
//!   accumulators, hit batches, force outputs, Heun predictor state)
//!   lives in the workspace, so a warmed-up `step()` performs zero heap
//!   allocations.
//! * **SoA lanes + branchless hit compaction** — positions are gathered
//!   into cell order as separate x/y slices during the grid rebuild
//!   ([`CellGrid::rebuild_lanes`] fuses the scatter and the gather into
//!   one pass); each candidate row computes `d²` from the coordinate
//!   lanes and compacts the cut-off survivors into a per-chunk
//!   [`HitBatch`] with a single branchless store per candidate (the old
//!   per-pair `d² ≤ r²` branch was data-random and mispredict-bound).
//!   The row traversal itself stays *scalar*: at this workload's typical
//!   4–8-candidate rows a hand-SIMD masked-load/compress-store kernel
//!   measured ~10% slower (see the `x86` module doc), so explicit
//!   512-bit code is reserved for the long contiguous streams below.
//! * **Batched hit evaluation** — the expensive per-hit tail
//!   (`√d²`, clamp, law scaling) runs over the whole batch as contiguous
//!   lanes (one `vsqrtpd`/`vdivpd` stream instead of serial scalar
//!   latency chains); the batch replays hits in exactly the order the
//!   scalar kernel visited them, so results are bit-identical to the
//!   pre-SoA code (`tests/workspace_forces.rs` pins this against a
//!   frozen copy of the old kernel).
//! * **Deterministic parallelism** — the cell range is split into
//!   [`FORCE_CHUNKS`] fixed, thread-count-independent spans. Each chunk
//!   scatters into its own accumulator (indexed in *cell order*, so a
//!   chunk only ever touches its own span plus one cell row below) and
//!   the accumulators are reduced in chunk order, so the result is
//!   bit-identical for any worker count. Touched-range tracking keeps
//!   the zero + reduce cost proportional to each span instead of `8 n`.
//!   The end-to-end determinism suite (`tests/determinism.rs`) relies on
//!   this.
//!
//! Small systems (`n <` [`Model::grid_threshold`]) and unbounded cut-offs
//! take the direct `O(n²)` pair loop (monomorphized per law family),
//! which already halves via Newton's third law and touches no grid state.

use crate::force::{ForceLaw, ForceModel};
use crate::model::Model;
use sops_math::Vec2;
use sops_spatial::CellGrid;

/// Number of fixed cell spans the half sweep is partitioned into.
///
/// The partition — not the thread count — defines the floating-point
/// accumulation order, so this is a compile-time constant: results are
/// bit-identical whether the spans run on 1 thread or 8.
pub const FORCE_CHUNKS: usize = 8;

/// Hit-batch capacity. A batch is flushed (distance + law lanes, then the
/// ordered Newton-3 scatter) whenever the next candidate row might not
/// fit, and once at the end of each chunk's sweep — flush boundaries
/// never affect the scatter order, only how much contiguous lane work
/// each `√`/`scale` pass gets.
const HIT_CAP: usize = 4096;

/// One chunk's compacted cut-off survivors, stored as parallel lanes.
/// The candidate kernel writes both pair indices and `d²` at the
/// compacted position and advances the live length branchlessly on the
/// cut-off mask. The flush then works on contiguous hits-only lanes,
/// recovering each row's `a` run by scanning the `a`-index lane for
/// equal-value runs (hits are pushed row by row, so runs are contiguous)
/// and re-deriving the pair deltas from the coordinate lanes
/// (`xa − xs[b]` is the identical floating-point op either way, so
/// nothing is lost by not storing them).
///
/// The batch deliberately has no `len` field: the sweep keeps the live
/// length (and the run count) in locals and borrows every lane as a
/// local slice up front. Indexing through `&mut self` fields instead
/// would force LLVM to reload each `Vec`'s data pointer and bounds after
/// every store (a store through one field may alias another field's
/// metadata), which measured ~2× on the whole kernel.
#[derive(Debug, Clone)]
struct HitBatch {
    /// Cell-order index of particle `b` per hit.
    bidx: Vec<u32>,
    /// Cell-order index of particle `a` per hit (constant within a row,
    /// so the lane is a sequence of equal-value runs).
    aidx: Vec<u32>,
    /// `d²` at push time, rewritten in place to the clamped `√d²` by the
    /// flush.
    x: Vec<f64>,
    /// Law scaling per hit, plus gathered per-hit types and linear-law
    /// parameters (multi-type laws only).
    f: Vec<f64>,
    ta: Vec<u16>,
    tb: Vec<u16>,
    kbuf: Vec<f64>,
    rbuf: Vec<f64>,
}

impl HitBatch {
    fn new() -> Self {
        HitBatch {
            bidx: Vec::new(),
            aidx: Vec::new(),
            x: Vec::new(),
            f: Vec::new(),
            ta: Vec::new(),
            tb: Vec::new(),
            kbuf: Vec::new(),
            rbuf: Vec::new(),
        }
    }

    /// Sizes every lane to `HIT_CAP` (idempotent once warm).
    fn prepare(&mut self) {
        self.bidx.resize(HIT_CAP, 0);
        self.aidx.resize(HIT_CAP, 0);
        self.x.resize(HIT_CAP, 0.0);
        self.f.resize(HIT_CAP, 0.0);
        self.ta.resize(HIT_CAP, 0);
        self.tb.resize(HIT_CAP, 0);
        self.kbuf.resize(HIT_CAP, 0.0);
        self.rbuf.resize(HIT_CAP, 0.0);
    }

    fn capacity_signature(&self, sig: &mut Vec<usize>) {
        sig.push(self.bidx.capacity());
        sig.push(self.aidx.capacity());
        sig.push(self.x.capacity());
        sig.push(self.f.capacity());
        sig.push(self.ta.capacity());
        sig.push(self.tb.capacity());
        sig.push(self.kbuf.capacity());
        sig.push(self.rbuf.capacity());
    }
}

/// Per-chunk sweep state: a cell-order force accumulator plus the hit
/// batch that feeds it. The accumulator is all-zero between calls; the
/// sweep records the index range it scattered into so the reduce and the
/// re-zero touch only that span.
#[derive(Debug, Clone)]
struct ForceChunk {
    /// Force accumulator in *cell-order* index space (`acc[j]` belongs to
    /// particle `order[j]`).
    acc: Vec<Vec2>,
    /// Touched range `[lo, hi)` of `acc` from the last sweep.
    lo: usize,
    hi: usize,
    hits: HitBatch,
}

impl ForceChunk {
    fn new() -> Self {
        ForceChunk {
            acc: Vec::new(),
            lo: 0,
            hi: 0,
            hits: HitBatch::new(),
        }
    }

    fn prepare(&mut self, n: usize) {
        // `acc` is kept all-zero between calls (the reduce re-zeroes the
        // touched range), so only a size change needs a full clear.
        if self.acc.len() != n {
            self.acc.clear();
            self.acc.resize(n, Vec2::ZERO);
        }
        self.lo = 0;
        self.hi = 0;
        self.hits.prepare();
    }

    fn capacity_signature(&self, sig: &mut Vec<usize>) {
        sig.push(self.acc.capacity());
        self.hits.capacity_signature(sig);
    }
}

/// Reusable buffers for force evaluation and integration.
///
/// Owned by [`crate::Simulation`] (one per independent run) and threaded
/// through [`crate::integrator::step`]. Create one explicitly to drive
/// [`Model`] force evaluations without a full simulation:
///
/// ```
/// use sops_sim::{ForceModel, ForceWorkspace, LinearForce, Model};
/// use sops_math::Vec2;
///
/// let model = Model::balanced(
///     3,
///     ForceModel::Linear(LinearForce::uniform(1.0, 1.0)),
///     f64::INFINITY,
/// );
/// let mut ws = ForceWorkspace::new();
/// let mut out = Vec::new();
/// let pos = [Vec2::new(0.0, 0.0), Vec2::new(2.0, 0.0), Vec2::new(4.0, 0.0)];
/// ws.net_forces_into(&model, &pos, &mut out);
/// assert_eq!(out.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ForceWorkspace {
    /// Worker threads for the chunked cell sweep (1 = sequential; the
    /// result is identical either way).
    threads: usize,
    grid: CellGrid,
    /// Cell-ordered coordinate lanes (`sorted_x[k] =
    /// positions[grid.order()[k]].x`) — the SoA layout the chunked
    /// distance kernel reads.
    sorted_x: Vec<f64>,
    sorted_y: Vec<f64>,
    /// Particle types in the same cell order.
    sorted_types: Vec<u16>,
    /// Per-chunk sweep state, reduced in chunk order for
    /// thread-count-independent results.
    chunks: Vec<ForceChunk>,
    /// Primary force output of the last [`ForceWorkspace::compute`].
    forces: Vec<Vec2>,
    /// Heun corrector-stage forces.
    forces2: Vec<Vec2>,
    /// Heun predictor positions.
    predicted: Vec<Vec2>,
}

impl Default for ForceWorkspace {
    fn default() -> Self {
        ForceWorkspace::new()
    }
}

impl ForceWorkspace {
    /// An empty workspace with a sequential sweep. Buffers grow to the
    /// workload size on first use and are reused afterwards.
    pub fn new() -> Self {
        ForceWorkspace::with_threads(1)
    }

    /// An empty workspace whose cell sweep runs on up to `threads` worker
    /// threads (pass 0 for [`sops_par::default_threads`]). The thread
    /// count affects scheduling only — never the numbers.
    pub fn with_threads(threads: usize) -> Self {
        let threads = if threads == 0 {
            sops_par::default_threads()
        } else {
            threads
        };
        ForceWorkspace {
            threads,
            grid: CellGrid::build(&[], 1.0),
            sorted_x: Vec::new(),
            sorted_y: Vec::new(),
            sorted_types: Vec::new(),
            chunks: vec![ForceChunk::new(); FORCE_CHUNKS],
            forces: Vec::new(),
            forces2: Vec::new(),
            predicted: Vec::new(),
        }
    }

    /// Sets the worker-thread count for the cell sweep (0 = default).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = if threads == 0 {
            sops_par::default_threads()
        } else {
            threads
        };
    }

    /// The configured sweep worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Computes the drift forces into the workspace's primary buffer;
    /// read them back with [`ForceWorkspace::forces`].
    pub fn compute(&mut self, model: &Model, positions: &[Vec2]) {
        let ForceWorkspace {
            threads,
            grid,
            sorted_x,
            sorted_y,
            sorted_types,
            chunks,
            forces,
            ..
        } = self;
        compute_into(
            model,
            positions,
            grid,
            sorted_x,
            sorted_y,
            sorted_types,
            chunks,
            *threads,
            forces,
        );
    }

    /// Computes the drift forces into a caller-provided buffer (cleared
    /// and resized). Allocation-free once the workspace is warm.
    pub fn net_forces_into(&mut self, model: &Model, positions: &[Vec2], out: &mut Vec<Vec2>) {
        let ForceWorkspace {
            threads,
            grid,
            sorted_x,
            sorted_y,
            sorted_types,
            chunks,
            ..
        } = self;
        compute_into(
            model,
            positions,
            grid,
            sorted_x,
            sorted_y,
            sorted_types,
            chunks,
            *threads,
            out,
        );
    }

    /// The forces written by the last [`ForceWorkspace::compute`].
    pub fn forces(&self) -> &[Vec2] {
        &self.forces
    }

    /// Sum of per-particle force norms `Σ_i ‖f_i‖₂` — the equilibrium
    /// indicator of paper §4.1 — without allocating.
    pub fn total_force_norm(&mut self, model: &Model, positions: &[Vec2]) -> f64 {
        self.compute(model, positions);
        self.forces.iter().map(|f| f.norm()).sum()
    }

    /// Heun predictor: `predicted = z + clamp(f·h)` from the forces of the
    /// last [`ForceWorkspace::compute`].
    pub(crate) fn predict(&mut self, positions: &[Vec2], h: f64, max_step: f64) {
        self.predicted.clear();
        self.predicted.extend(
            positions
                .iter()
                .zip(&self.forces)
                .map(|(z, f)| *z + (*f * h).clamp_norm(max_step)),
        );
    }

    /// Heun corrector stage: forces at the predicted positions, into the
    /// secondary buffer; read back with [`ForceWorkspace::corrector_forces`].
    pub(crate) fn compute_corrector(&mut self, model: &Model) {
        let ForceWorkspace {
            threads,
            grid,
            sorted_x,
            sorted_y,
            sorted_types,
            chunks,
            forces2,
            predicted,
            ..
        } = self;
        compute_into(
            model,
            predicted,
            grid,
            sorted_x,
            sorted_y,
            sorted_types,
            chunks,
            *threads,
            forces2,
        );
    }

    /// The forces written by the last [`ForceWorkspace::compute_corrector`].
    pub(crate) fn corrector_forces(&self) -> &[Vec2] {
        &self.forces2
    }

    /// Capacities of every internal buffer. A warmed-up workspace driving
    /// a bounded workload must keep this signature constant — the
    /// zero-allocation contract tested in `tests/workspace_forces.rs`.
    pub fn capacity_signature(&self) -> Vec<usize> {
        let mut sig = vec![
            self.sorted_x.capacity(),
            self.sorted_y.capacity(),
            self.sorted_types.capacity(),
            self.forces.capacity(),
            self.forces2.capacity(),
            self.predicted.capacity(),
        ];
        for chunk in &self.chunks {
            chunk.capacity_signature(&mut sig);
        }
        sig.extend(self.grid.capacity_signature());
        sig
    }
}

/// The engine core, taking split borrows so callers can route any
/// workspace buffer (primary, corrector) as the output.
#[allow(clippy::too_many_arguments)]
fn compute_into(
    model: &Model,
    positions: &[Vec2],
    grid: &mut CellGrid,
    sorted_x: &mut Vec<f64>,
    sorted_y: &mut Vec<f64>,
    sorted_types: &mut Vec<u16>,
    chunks: &mut [ForceChunk],
    threads: usize,
    out: &mut Vec<Vec2>,
) {
    let n = positions.len();
    assert_eq!(n, model.particles(), "net_forces: position count mismatch");
    let cutoff = model.cutoff();
    let law = model.law();
    if !cutoff.is_finite() || n < Model::grid_threshold() {
        out.clear();
        out.resize(n, Vec2::ZERO);
        let r2 = if cutoff.is_finite() {
            cutoff * cutoff
        } else {
            f64::INFINITY
        };
        // Monomorphize the direct loop per law family so the per-pair
        // scaling call inlines without the enum match.
        match law {
            ForceModel::Linear(l) => direct_sweep(l, model.types(), positions, r2, out),
            ForceModel::Gaussian(g) => direct_sweep(g, model.types(), positions, r2, out),
            ForceModel::Custom(c) => direct_sweep(c.as_ref(), model.types(), positions, r2, out),
        }
        return;
    }
    // The chunk reduce assigns on first touch (see below), so `out` only
    // needs its length fixed — stale contents are fully overwritten.
    if out.len() != n {
        out.clear();
        out.resize(n, Vec2::ZERO);
    }

    // Grid path: rebuild in place with the SoA coordinate lanes gathered
    // by the same counting-sort scatter pass, then half sweep the lanes.
    grid.rebuild_lanes(positions, cutoff, sorted_x, sorted_y);
    let order = grid.order();
    let types = model.types();
    sorted_types.clear();
    // A type-blind law never reads the type lane (`scale_lanes` hoists
    // the two parameters), so skip the gather entirely.
    let type_blind = matches!(law, ForceModel::Linear(l) if l.k.types() == 1);
    if !type_blind {
        sorted_types.extend(order.iter().map(|&i| types[i as usize]));
    }
    for chunk in chunks.iter_mut() {
        chunk.prepare(n);
    }

    let ncells = grid.cells();
    let (nx, ny) = grid.shape();
    let r2 = cutoff * cutoff;
    let nchunks = chunks.len();
    let grid = &*grid;
    let xs = &sorted_x[..];
    let ys = &sorted_y[..];
    let ts = &sorted_types[..];

    // Each chunk sweeps a fixed span of cells into its own accumulator;
    // the partition depends only on the grid shape, never on `threads`.
    sops_par::parallel_chunks_mut(chunks, nchunks, threads, |c, bufs| {
        let chunk = &mut bufs[0];
        let clo = c * ncells / nchunks;
        let chi = (c + 1) * ncells / nchunks;
        sweep_span(grid, clo, chi, nx, ny, xs, ys, ts, r2, law, chunk);
    });

    // Ordered reduction: per particle, chunk 0 + chunk 1 + … — the same
    // floating-point order for every thread count. Only each chunk's
    // touched cell-order span carries non-zero entries; entries outside
    // it are exactly +0.0, whose addition the scalar reduce performed as
    // a bitwise no-op (no accumulator here is ever −0.0), so skipping
    // them leaves every output bit unchanged. The chunk spans tile the
    // cell range, so every cell-order index is covered and the first
    // chunk to touch an index *assigns* (`v` is bitwise `0.0 + v`
    // because, again, no accumulator is ever −0.0) — `out` needs no
    // zeroing pass.
    let mut covered = 0usize;
    for chunk in chunks.iter_mut() {
        let (lo, hi) = (chunk.lo, chunk.hi);
        // Split at the already-covered boundary so neither loop carries a
        // per-element branch: below it this chunk overlaps its
        // predecessors (+=), above it it is the first writer (=).
        let mid = hi.min(covered.max(lo));
        for (&p, &a) in order[lo..mid].iter().zip(&chunk.acc[lo..mid]) {
            out[p as usize] += a;
        }
        for (&p, &a) in order[mid..hi].iter().zip(&chunk.acc[mid..hi]) {
            out[p as usize] = a;
        }
        // Restore the all-zero invariant for the next call while the
        // span is still cache-hot.
        chunk.acc[lo..hi].fill(Vec2::ZERO);
        chunk.lo = 0;
        chunk.hi = 0;
        covered = covered.max(hi);
    }
}

/// Direct `O(n²)` Newton-3 loop (unbounded cut-off / small systems),
/// monomorphized over the law family. `fi` keeps particle `i`'s row
/// accumulation in a register — the same additions in the same order as
/// `out[i] -= …` per pair, without the store-to-load chain.
fn direct_sweep<L: ForceLaw + ?Sized>(
    law: &L,
    types: &[u16],
    positions: &[Vec2],
    r2: f64,
    out: &mut [Vec2],
) {
    let n = positions.len();
    for i in 0..n {
        let ti = types[i] as usize;
        let zi = positions[i];
        let mut fi = out[i];
        for j in (i + 1)..n {
            let delta = zi - positions[j];
            let d2 = delta.norm_sq();
            if d2 > r2 {
                continue;
            }
            let x = d2.sqrt().max(crate::model::MIN_DISTANCE);
            let f = law.scale(ti, types[j] as usize, x);
            let contrib = delta * f;
            fi -= contrib;
            out[j] += contrib;
        }
        out[i] = fi;
    }
}

/// Sweeps cells `clo..chi` into the chunk's accumulator.
///
/// Per occupied cell, each particle `a` interacts with two fused
/// CSR-contiguous candidate ranges: `a+1 .. end(E)` (rest of its own
/// cell, then the east neighbour — adjacent in cell order) and
/// `start(SW) .. end(SE)` (the three south-row neighbours, adjacent in
/// cell order). This visits exactly the half-neighbourhood pair set of
/// the scalar kernel, and although rows interleave differently than the
/// old per-neighbour-cell loops, every individual accumulator sees its
/// updates in the same order (per fixed `a`, candidates stay in
/// within→E→SW→S→SE ascending-`b` order; per fixed `b`, contributing
/// `a`s stay ascending) — so the result is bit-identical while the
/// per-segment overhead amortizes over ranges 2–3× longer.
#[allow(clippy::too_many_arguments)]
fn sweep_span(
    grid: &CellGrid,
    clo: usize,
    chi: usize,
    nx: usize,
    ny: usize,
    xs: &[f64],
    ys: &[f64],
    ts: &[u16],
    r2: f64,
    law: &ForceModel,
    chunk: &mut ForceChunk,
) {
    if clo >= chi {
        return;
    }
    let ForceChunk { acc, lo, hi, hits } = chunk;
    let acc = acc.as_mut_slice();
    // Borrow every batch lane as a local slice once; the live length and
    // run count live in registers. See the `HitBatch` doc for why this
    // (rather than indexing through the struct) is load-bearing.
    let bidx = hits.bidx.as_mut_slice();
    let aidx = hits.aidx.as_mut_slice();
    let d2v = hits.x.as_mut_slice();
    let fv = hits.f.as_mut_slice();
    let tav = hits.ta.as_mut_slice();
    let tbv = hits.tb.as_mut_slice();
    let kbuf = hits.kbuf.as_mut_slice();
    let rbuf = hits.rbuf.as_mut_slice();
    // The sweep-entry assert the unsafe candidate kernel relies on: cell
    // bounds index `grid.order`, so every candidate index is
    // `< grid.len()`, and the flush discipline keeps `len + row_len ≤
    // HIT_CAP` — together these bound every unchecked access in
    // `push_row`.
    assert!(
        xs.len() >= grid.len()
            && ys.len() >= grid.len()
            && bidx.len() >= HIT_CAP
            && aidx.len() >= HIT_CAP
            && d2v.len() >= HIT_CAP,
        "sweep_span: lane buffers too small for this grid"
    );
    let mut len = 0usize;
    macro_rules! flush {
        () => {
            if len > 0 {
                flush_batch(
                    len, bidx, aidx, d2v, fv, tav, tbv, kbuf, rbuf, xs, ys, ts, law, acc,
                );
                len = 0;
            }
        };
    }
    let mut cx = clo % nx;
    let mut cy = clo / nx;
    for cell in clo..chi {
        let (a0, a1) = grid.cell_bounds(cell);
        if a0 < a1 {
            let east = cx + 1 < nx;
            let south = cy + 1 < ny;
            // Fused forward ranges (CSR keeps adjacent cells adjacent):
            // own-cell tail + east, and the full south row SW..SE.
            let e1 = if east {
                grid.cell_bounds(cell + 1).1
            } else {
                a1
            };
            let (s0, s1) = if south {
                let sw = if cx > 0 { cell + nx - 1 } else { cell + nx };
                let se = if east { cell + nx + 1 } else { cell + nx };
                (grid.cell_bounds(sw).0, grid.cell_bounds(se).1)
            } else {
                (0, 0)
            };
            for a in a0..a1 {
                let row_len = (e1 - (a + 1)) + (s1 - s0);
                if len + row_len > HIT_CAP {
                    flush!();
                    if row_len > HIT_CAP {
                        // A single row larger than the whole batch
                        // (pathological occupancy): walk it in
                        // batch-sized pieces with a flush between each.
                        // Flush boundaries never change the op order, so
                        // placement is free.
                        let (xa, ya) = (xs[a], ys[a]);
                        for (b0, b1) in [(a + 1, e1), (s0, s1)] {
                            let mut b = b0;
                            while b < b1 {
                                let take = (b1 - b).min(HIT_CAP - len);
                                if take == 0 {
                                    flush!();
                                    continue;
                                }
                                let piece = len;
                                // SAFETY: `take ≤ HIT_CAP − len` and the
                                // sweep-entry assert bounds the lanes.
                                len = unsafe {
                                    push_row(xa, ya, b, b + take, xs, ys, r2, bidx, d2v, len)
                                };
                                for slot in &mut aidx[piece..len] {
                                    *slot = a as u32;
                                }
                                b += take;
                            }
                        }
                        continue;
                    }
                }
                let (xa, ya) = (xs[a], ys[a]);
                let row_start = len;
                // SAFETY: the flush above guarantees `len + row_len ≤
                // HIT_CAP` and the sweep-entry assert bounds the lanes.
                len = unsafe { push_row(xa, ya, a + 1, e1, xs, ys, r2, bidx, d2v, len) };
                len = unsafe { push_row(xa, ya, s0, s1, xs, ys, r2, bidx, d2v, len) };
                // `a` is constant per row: survivors get their `a` index
                // in one short post-row fill instead of a third
                // compress-store inside the candidate kernel.
                for slot in &mut aidx[row_start..len] {
                    *slot = a as u32;
                }
            }
        }
        cx += 1;
        if cx == nx {
            cx = 0;
            cy += 1;
        }
    }
    if len > 0 {
        flush_batch(
            len, bidx, aidx, d2v, fv, tav, tbv, kbuf, rbuf, xs, ys, ts, law, acc,
        );
    }
    // Everything this span scatters to lies between the first particle of
    // its first cell and the last particle of its last south-east
    // neighbour — record that window for the touched-range reduce.
    *lo = grid.cell_bounds(clo).0;
    let last = (chi - 1 + nx + 1).min(grid.cells() - 1);
    *hi = grid.cell_bounds(last).1;
}

/// Runtime-detected AVX-512 versions of the hot lane kernels.
///
/// Everything here is bit-identical to the portable fall-backs: the
/// distance kernel uses separate multiply and add (never FMA — the
/// fused rounding would change bits), compress-stores preserve the
/// ascending candidate order, and the `√`/`scale` passes are the same
/// element-wise expressions the autovectorizer widens to 512-bit under
/// the granted target features. Vector lane width never reorders any
/// floating-point *accumulation* — those all happen in the scalar
/// scatter — so results match the portable path exactly.
#[cfg(target_arch = "x86_64")]
mod x86 {
    /// One cached CPUID check for the subsets the wide kernels need
    /// (`avx512f` for 8-lane f64 + f64 compress-store, `avx512vl` for
    /// the 256-bit u32 compress-store).
    #[inline]
    pub fn wide_available() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
    }

    /// `x[i] = max(√x[i], floor)` with 512-bit `vsqrtpd` streams.
    ///
    /// # Safety
    ///
    /// Caller must have verified [`wide_available`].
    #[target_feature(enable = "avx512f,avx512vl")]
    pub unsafe fn sqrt_clamp(x: &mut [f64], floor: f64) {
        for xi in x {
            *xi = xi.sqrt().max(floor);
        }
    }

    /// `fv[i] = k[i]·(1 − r[i]/x[i])` with 512-bit `vdivpd` streams —
    /// the multi-type linear family over per-hit gathered parameters.
    ///
    /// # Safety
    ///
    /// Caller must have verified [`wide_available`].
    #[target_feature(enable = "avx512f,avx512vl")]
    pub unsafe fn linear_scale(fv: &mut [f64], x: &[f64], k: &[f64], r: &[f64]) {
        for (i, fo) in fv.iter_mut().enumerate() {
            *fo = k[i] * (1.0 - r[i] / x[i]);
        }
    }

    /// Fused `√`+clamp+linear-scale stream for the type-blind fast path:
    /// `fv[i] = k·(1 − r/max(√d2[i], floor))`, skipping the intermediate
    /// write-back of the clamped distance (nothing downstream reads it).
    /// Same per-element op sequence as the two separate passes, so the
    /// result is bit-identical.
    ///
    /// # Safety
    ///
    /// Caller must have verified [`wide_available`].
    #[target_feature(enable = "avx512f,avx512vl")]
    pub unsafe fn sqrt_linear_scale(fv: &mut [f64], d2: &[f64], k: f64, r: f64, floor: f64) {
        for (fo, &d2i) in fv.iter_mut().zip(d2) {
            let xi = d2i.sqrt().max(floor);
            *fo = k * (1.0 - r / xi);
        }
    }
}

/// The candidate kernel: particle `a` at `(xa, ya)` against the
/// cell-order coordinate lanes `b0..b1`. Computes `d²` lane-wise over
/// the two SoA slices and appends survivors branchlessly
/// (`len += (d² ≤ r²)` after an unconditional compacted store) in
/// ascending `b` order — the old per-pair `d² ≤ r²` branch was
/// data-random and mispredict-bound. The compacted store position is
/// data-dependent, so its bounds check cannot be hoisted by the
/// compiler; the caller's invariants replace it.
///
/// # Safety
///
/// Caller guarantees `b1 ≤ xs.len() = ys.len()` (row bounds come from
/// `cell_bounds`, which never exceeds the point count — asserted once
/// per sweep) and `len + (b1 − b0) ≤ bidx.len() = d2v.len()` (the sweep
/// flushes before any row that might not fit its `HIT_CAP` lanes).
#[allow(clippy::too_many_arguments)]
#[inline]
unsafe fn push_row(
    xa: f64,
    ya: f64,
    b0: usize,
    b1: usize,
    xs: &[f64],
    ys: &[f64],
    r2: f64,
    bidx: &mut [u32],
    d2v: &mut [f64],
    mut len: usize,
) -> usize {
    debug_assert!(b1 <= xs.len() && b1 <= ys.len());
    debug_assert!(len + (b1 - b0) <= bidx.len() && len + (b1 - b0) <= d2v.len());
    for b in b0..b1 {
        // SAFETY: `b < b1 ≤ xs.len() = ys.len()`; `len` grows by at most
        // one per candidate, so the capacity precondition bounds every
        // store.
        unsafe {
            let dx = xa - *xs.get_unchecked(b);
            let dy = ya - *ys.get_unchecked(b);
            let d2 = dx * dx + dy * dy;
            *bidx.get_unchecked_mut(len) = b as u32;
            *d2v.get_unchecked_mut(len) = d2;
            len += (d2 <= r2) as usize;
        }
    }
    len
}

/// Evaluates and scatters a batch of `h` hits: distance lanes (`√d²`,
/// clamp), law lanes, then the Newton-3 scatter replaying hits in push
/// (= pair visit) order — the floating-point op sequence per particle is
/// exactly the scalar kernel's (each row's `acc[a]` run, recovered as an
/// equal-value run of the `a`-index lane, accumulates in a register,
/// performing the same subtractions in the same order). The pair deltas
/// are re-derived from the coordinate lanes (`xa − xs[b]`, bit-identical
/// to the push-time value) so the hot compaction loop stores three small
/// lanes per candidate and nothing else.
#[allow(clippy::too_many_arguments)]
fn flush_batch(
    h: usize,
    bidx: &[u32],
    aidx: &[u32],
    d2v: &mut [f64],
    fv: &mut [f64],
    tav: &mut [u16],
    tbv: &mut [u16],
    kbuf: &mut [f64],
    rbuf: &mut [f64],
    xs: &[f64],
    ys: &[f64],
    ts: &[u16],
    law: &ForceModel,
    acc: &mut [Vec2],
) {
    #[cfg(target_arch = "x86_64")]
    let wide = x86::wide_available();
    #[cfg(not(target_arch = "x86_64"))]
    let wide = false;
    // Type-blind linear fast path: one fused √+clamp+scale stream,
    // without the intermediate distance write-back (nothing after the
    // scale reads it). Bit-identical: same per-element op sequence.
    let mut fused = false;
    if let ForceModel::Linear(l) = law {
        if l.k.types() == 1 {
            let k = l.k.get(0, 0);
            let r = l.r.get(0, 0);
            let floor = crate::model::MIN_DISTANCE;
            #[cfg(target_arch = "x86_64")]
            if wide {
                // SAFETY: `wide` certifies the target features.
                unsafe { x86::sqrt_linear_scale(&mut fv[..h], &d2v[..h], k, r, floor) };
                fused = true;
            }
            if !fused {
                for (fo, &d2i) in fv[..h].iter_mut().zip(&d2v[..h]) {
                    let xi = d2i.sqrt().max(floor);
                    *fo = k * (1.0 - r / xi);
                }
                fused = true;
            }
        }
    }
    if !fused {
        // Distance lanes — one contiguous √/clamp stream.
        #[cfg(target_arch = "x86_64")]
        if wide {
            // SAFETY: `wide` certifies the target features.
            unsafe { x86::sqrt_clamp(&mut d2v[..h], crate::model::MIN_DISTANCE) };
        }
        if !wide {
            for xi in &mut d2v[..h] {
                *xi = xi.sqrt().max(crate::model::MIN_DISTANCE);
            }
        }
        // Law lanes.
        scale_lanes(law, h, bidx, aidx, d2v, fv, tav, tbv, kbuf, rbuf, ts, wide);
    }
    // Ordered Newton-3 scatter. Row runs are contiguous in the `a` lane,
    // so `acc[a]` accumulates in a register across each run — the same
    // op order as per-row scattering.
    let bidx = &bidx[..h];
    let aidx = &aidx[..h];
    let fv = &fv[..h];
    let mut i = 0usize;
    while i < h {
        let a = aidx[i] as usize;
        let (xa, ya) = (xs[a], ys[a]);
        let mut fax = acc[a].x;
        let mut fay = acc[a].y;
        loop {
            let b = bidx[i] as usize;
            let cx = (xa - xs[b]) * fv[i];
            let cy = (ya - ys[b]) * fv[i];
            fax -= cx;
            fay -= cy;
            acc[b].x += cx;
            acc[b].y += cy;
            i += 1;
            if i >= h || aidx[i] as usize != a {
                break;
            }
        }
        acc[a] = Vec2::new(fax, fay);
    }
}

/// Lane-wise [`ForceLaw::scale`] over a hit batch: fills
/// `fv[i] = scale(ta[i], tb[i], x[i])` with the same floating-point
/// expression as the per-pair call, so results are bit-identical. The
/// linear family evaluates as contiguous lanes (type-blind laws hoist
/// the two parameters; multi-type gathers them per hit first); the
/// Gaussian and custom families stay scalar per hit (`exp` has no lane
/// form) but still skip the per-pair enum dispatch.
#[allow(clippy::too_many_arguments)]
fn scale_lanes(
    law: &ForceModel,
    h: usize,
    bidx: &[u32],
    aidx: &[u32],
    x: &[f64],
    fv: &mut [f64],
    tav: &mut [u16],
    tbv: &mut [u16],
    kbuf: &mut [f64],
    rbuf: &mut [f64],
    ts: &[u16],
    wide: bool,
) {
    #[cfg(not(target_arch = "x86_64"))]
    let _ = wide;
    let x = &x[..h];
    let fv = &mut fv[..h];
    // Typed laws (the type-blind linear family takes the fused
    // √+scale stream in `flush_batch` and never reaches here): gather
    // both particle types per hit through the index lanes, then
    // evaluate as lanes.
    let bidx = &bidx[..h];
    let aidx = &aidx[..h];
    let tav = &mut tav[..h];
    let tbv = &mut tbv[..h];
    for i in 0..h {
        tav[i] = ts[aidx[i] as usize];
        tbv[i] = ts[bidx[i] as usize];
    }
    match law {
        ForceModel::Linear(l) => {
            let kbuf = &mut kbuf[..h];
            let rbuf = &mut rbuf[..h];
            for i in 0..h {
                let (a, b) = (tav[i] as usize, tbv[i] as usize);
                kbuf[i] = l.k.get(a, b);
                rbuf[i] = l.r.get(a, b);
            }
            #[cfg(target_arch = "x86_64")]
            if wide {
                // SAFETY: `wide` certifies the target features.
                unsafe { x86::linear_scale(fv, x, kbuf, rbuf) };
                return;
            }
            for i in 0..h {
                fv[i] = kbuf[i] * (1.0 - rbuf[i] / x[i]);
            }
        }
        ForceModel::Gaussian(g) => {
            for i in 0..h {
                fv[i] = g.scale(tav[i] as usize, tbv[i] as usize, x[i]);
            }
        }
        ForceModel::Custom(c) => {
            for i in 0..h {
                fv[i] = c.scale(tav[i] as usize, tbv[i] as usize, x[i]);
            }
        }
    }
}
