//! The persistent, allocation-free force-evaluation engine.
//!
//! [`crate::Model::net_forces`] is the simulator's hottest kernel: it runs
//! once per substep per particle system, thousands of times per ensemble.
//! The naive implementation rebuilt a [`CellGrid`] from scratch each call
//! (three allocations plus a full point clone), evaluated every
//! interacting pair twice, and the Heun corrector allocated two more
//! vectors per recorded step. [`ForceWorkspace`] removes all of that:
//!
//! * **Buffer reuse** — the grid is [rebuilt in place](CellGrid::rebuild)
//!   and every scratch vector (cell-sorted positions/types, per-chunk
//!   accumulators, force outputs, Heun predictor state) lives in the
//!   workspace, so a warmed-up `step()` performs zero heap allocations.
//! * **Cell-sorted half sweep** — positions are gathered into cell order
//!   once per evaluation, then each cell interacts with itself and its
//!   *forward* half-neighbourhood (E, SW, S, SE). Every pair is evaluated
//!   exactly once and the force-scaling — symmetric by the [`ForceLaw`]
//!   contract — is scattered to both particles with opposite signs
//!   (Newton's third law), halving law evaluations versus the old
//!   per-particle gather while reading positions contiguously.
//! * **Deterministic parallelism** — the cell range is split into
//!   [`FORCE_CHUNKS`] fixed, thread-count-independent spans. Each chunk
//!   scatters into its own accumulator and the accumulators are reduced
//!   in chunk order, so the result is bit-identical for any worker count
//!   (`sops_par::parallel_chunks_mut` schedules the spans; with 1 worker
//!   it degenerates to the same sequential sweep). The end-to-end
//!   determinism suite (`tests/determinism.rs`) relies on this.
//!
//! Small systems (`n <` [`Model::grid_threshold`]) and unbounded cut-offs
//! take the direct `O(n²)` pair loop, which already halves via Newton's
//! third law and touches no grid state.

use crate::force::ForceLaw;
use crate::model::Model;
use sops_math::Vec2;
use sops_spatial::CellGrid;

/// Number of fixed cell spans the half sweep is partitioned into.
///
/// The partition — not the thread count — defines the floating-point
/// accumulation order, so this is a compile-time constant: results are
/// bit-identical whether the spans run on 1 thread or 8.
pub const FORCE_CHUNKS: usize = 8;

/// Reusable buffers for force evaluation and integration.
///
/// Owned by [`crate::Simulation`] (one per independent run) and threaded
/// through [`crate::integrator::step`]. Create one explicitly to drive
/// [`Model`] force evaluations without a full simulation:
///
/// ```
/// use sops_sim::{ForceModel, ForceWorkspace, LinearForce, Model};
/// use sops_math::Vec2;
///
/// let model = Model::balanced(
///     3,
///     ForceModel::Linear(LinearForce::uniform(1.0, 1.0)),
///     f64::INFINITY,
/// );
/// let mut ws = ForceWorkspace::new();
/// let mut out = Vec::new();
/// let pos = [Vec2::new(0.0, 0.0), Vec2::new(2.0, 0.0), Vec2::new(4.0, 0.0)];
/// ws.net_forces_into(&model, &pos, &mut out);
/// assert_eq!(out.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ForceWorkspace {
    /// Worker threads for the chunked cell sweep (1 = sequential; the
    /// result is identical either way).
    threads: usize,
    grid: CellGrid,
    /// Positions gathered into cell order (`sorted_pos[k] =
    /// positions[grid.order()[k]]`).
    sorted_pos: Vec<Vec2>,
    /// Particle types in the same cell order.
    sorted_types: Vec<u16>,
    /// Per-chunk force accumulators in *original* index space, reduced in
    /// chunk order for thread-count-independent results.
    chunks: Vec<Vec<Vec2>>,
    /// Primary force output of the last [`ForceWorkspace::compute`].
    forces: Vec<Vec2>,
    /// Heun corrector-stage forces.
    forces2: Vec<Vec2>,
    /// Heun predictor positions.
    predicted: Vec<Vec2>,
}

impl Default for ForceWorkspace {
    fn default() -> Self {
        ForceWorkspace::new()
    }
}

impl ForceWorkspace {
    /// An empty workspace with a sequential sweep. Buffers grow to the
    /// workload size on first use and are reused afterwards.
    pub fn new() -> Self {
        ForceWorkspace::with_threads(1)
    }

    /// An empty workspace whose cell sweep runs on up to `threads` worker
    /// threads (pass 0 for [`sops_par::default_threads`]). The thread
    /// count affects scheduling only — never the numbers.
    pub fn with_threads(threads: usize) -> Self {
        let threads = if threads == 0 {
            sops_par::default_threads()
        } else {
            threads
        };
        ForceWorkspace {
            threads,
            grid: CellGrid::build(&[], 1.0),
            sorted_pos: Vec::new(),
            sorted_types: Vec::new(),
            chunks: vec![Vec::new(); FORCE_CHUNKS],
            forces: Vec::new(),
            forces2: Vec::new(),
            predicted: Vec::new(),
        }
    }

    /// Sets the worker-thread count for the cell sweep (0 = default).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = if threads == 0 {
            sops_par::default_threads()
        } else {
            threads
        };
    }

    /// The configured sweep worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Computes the drift forces into the workspace's primary buffer;
    /// read them back with [`ForceWorkspace::forces`].
    pub fn compute(&mut self, model: &Model, positions: &[Vec2]) {
        let ForceWorkspace {
            threads,
            grid,
            sorted_pos,
            sorted_types,
            chunks,
            forces,
            ..
        } = self;
        compute_into(
            model,
            positions,
            grid,
            sorted_pos,
            sorted_types,
            chunks,
            *threads,
            forces,
        );
    }

    /// Computes the drift forces into a caller-provided buffer (cleared
    /// and resized). Allocation-free once the workspace is warm.
    pub fn net_forces_into(&mut self, model: &Model, positions: &[Vec2], out: &mut Vec<Vec2>) {
        let ForceWorkspace {
            threads,
            grid,
            sorted_pos,
            sorted_types,
            chunks,
            ..
        } = self;
        compute_into(
            model,
            positions,
            grid,
            sorted_pos,
            sorted_types,
            chunks,
            *threads,
            out,
        );
    }

    /// The forces written by the last [`ForceWorkspace::compute`].
    pub fn forces(&self) -> &[Vec2] {
        &self.forces
    }

    /// Sum of per-particle force norms `Σ_i ‖f_i‖₂` — the equilibrium
    /// indicator of paper §4.1 — without allocating.
    pub fn total_force_norm(&mut self, model: &Model, positions: &[Vec2]) -> f64 {
        self.compute(model, positions);
        self.forces.iter().map(|f| f.norm()).sum()
    }

    /// Heun predictor: `predicted = z + clamp(f·h)` from the forces of the
    /// last [`ForceWorkspace::compute`].
    pub(crate) fn predict(&mut self, positions: &[Vec2], h: f64, max_step: f64) {
        self.predicted.clear();
        self.predicted.extend(
            positions
                .iter()
                .zip(&self.forces)
                .map(|(z, f)| *z + (*f * h).clamp_norm(max_step)),
        );
    }

    /// Heun corrector stage: forces at the predicted positions, into the
    /// secondary buffer; read back with [`ForceWorkspace::corrector_forces`].
    pub(crate) fn compute_corrector(&mut self, model: &Model) {
        let ForceWorkspace {
            threads,
            grid,
            sorted_pos,
            sorted_types,
            chunks,
            forces2,
            predicted,
            ..
        } = self;
        compute_into(
            model,
            predicted,
            grid,
            sorted_pos,
            sorted_types,
            chunks,
            *threads,
            forces2,
        );
    }

    /// The forces written by the last [`ForceWorkspace::compute_corrector`].
    pub(crate) fn corrector_forces(&self) -> &[Vec2] {
        &self.forces2
    }

    /// Capacities of every internal buffer. A warmed-up workspace driving
    /// a bounded workload must keep this signature constant — the
    /// zero-allocation contract tested in `tests/workspace_forces.rs`.
    pub fn capacity_signature(&self) -> Vec<usize> {
        let mut sig = vec![
            self.sorted_pos.capacity(),
            self.sorted_types.capacity(),
            self.forces.capacity(),
            self.forces2.capacity(),
            self.predicted.capacity(),
        ];
        sig.extend(self.chunks.iter().map(Vec::capacity));
        sig.extend(self.grid.capacity_signature());
        sig
    }
}

/// The engine core, taking split borrows so callers can route any
/// workspace buffer (primary, corrector) as the output.
#[allow(clippy::too_many_arguments)]
fn compute_into(
    model: &Model,
    positions: &[Vec2],
    grid: &mut CellGrid,
    sorted_pos: &mut Vec<Vec2>,
    sorted_types: &mut Vec<u16>,
    chunks: &mut [Vec<Vec2>],
    threads: usize,
    out: &mut Vec<Vec2>,
) {
    let n = positions.len();
    assert_eq!(n, model.particles(), "net_forces: position count mismatch");
    out.clear();
    out.resize(n, Vec2::ZERO);
    let cutoff = model.cutoff();
    let law = model.law();
    if !cutoff.is_finite() || n < Model::grid_threshold() {
        // Direct pair loop, exploiting Newton's third law: the symmetric
        // force-scaling makes pair contributions equal and opposite.
        let r2 = if cutoff.is_finite() {
            cutoff * cutoff
        } else {
            f64::INFINITY
        };
        for i in 0..n {
            let ti = model.type_of(i);
            let zi = positions[i];
            for j in (i + 1)..n {
                let delta = zi - positions[j];
                let d2 = delta.norm_sq();
                if d2 > r2 {
                    continue;
                }
                let x = d2.sqrt().max(crate::model::MIN_DISTANCE);
                let f = law.scale(ti, model.type_of(j), x);
                let contrib = delta * f;
                out[i] -= contrib;
                out[j] += contrib;
            }
        }
        return;
    }

    // Grid path: rebuild in place, gather into cell order, half sweep.
    grid.rebuild(positions, cutoff);
    let order = grid.order();
    let types = model.types();
    sorted_pos.clear();
    sorted_pos.extend(order.iter().map(|&i| positions[i as usize]));
    sorted_types.clear();
    sorted_types.extend(order.iter().map(|&i| types[i as usize]));
    for buf in chunks.iter_mut() {
        buf.clear();
        buf.resize(n, Vec2::ZERO);
    }

    let ncells = grid.cells();
    let (nx, ny) = grid.shape();
    let r2 = cutoff * cutoff;
    let nchunks = chunks.len();
    let grid = &*grid;
    let sorted_pos = &sorted_pos[..];
    let sorted_types = &sorted_types[..];

    // Each chunk sweeps a fixed span of cells into its own accumulator;
    // the partition depends only on the grid shape, never on `threads`.
    sops_par::parallel_chunks_mut(chunks, nchunks, threads, |c, bufs| {
        let buf = bufs[0].as_mut_slice();
        let lo = c * ncells / nchunks;
        let hi = (c + 1) * ncells / nchunks;
        let pair = |a: usize, b: usize, buf: &mut [Vec2]| {
            let delta = sorted_pos[a] - sorted_pos[b];
            let d2 = delta.norm_sq();
            if d2 <= r2 {
                let x = d2.sqrt().max(crate::model::MIN_DISTANCE);
                let f = law.scale(sorted_types[a] as usize, sorted_types[b] as usize, x);
                let contrib = delta * f;
                buf[order[a] as usize] -= contrib;
                buf[order[b] as usize] += contrib;
            }
        };
        for cell in lo..hi {
            let (a0, a1) = grid.cell_bounds(cell);
            if a0 == a1 {
                continue;
            }
            let cx = cell % nx;
            let cy = cell / nx;
            // Pairs within the cell.
            for a in a0..a1 {
                for b in (a + 1)..a1 {
                    pair(a, b, buf);
                }
            }
            // Forward half-neighbourhood: E, SW, S, SE. Every unordered
            // cell pair is visited exactly once across the whole sweep.
            let east = cx + 1 < nx;
            let south = cy + 1 < ny;
            let cross = |other: usize, buf: &mut [Vec2]| {
                let (b0, b1) = grid.cell_bounds(other);
                for a in a0..a1 {
                    for b in b0..b1 {
                        pair(a, b, buf);
                    }
                }
            };
            if east {
                cross(cell + 1, buf);
            }
            if south {
                if cx > 0 {
                    cross(cell + nx - 1, buf);
                }
                cross(cell + nx, buf);
                if east {
                    cross(cell + nx + 1, buf);
                }
            }
        }
    });

    // Ordered reduction: per particle, chunk 0 + chunk 1 + … — the same
    // floating-point order for every thread count.
    for buf in chunks.iter() {
        for (o, &v) in out.iter_mut().zip(buf.iter()) {
            *o += v;
        }
    }
}
