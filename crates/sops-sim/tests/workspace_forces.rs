//! Contracts of the persistent force-evaluation engine:
//!
//! * the workspace path (direct and cell-grid half sweep) matches an
//!   all-pairs brute reference for every law family, multi-type
//!   interaction matrices included, across the `grid_threshold` boundary;
//! * the Heun scheme driven through the workspace matches a brute-force
//!   reference integrator;
//! * results are bit-identical for any sweep worker count;
//! * a warmed-up `Simulation::step` performs zero heap allocations
//!   (buffer-capacity stability over 100 steps).

use proptest::prelude::*;
use sops_math::{PairMatrix, SplitMix64, Vec2};
use sops_sim::integrator::Scheme;
use sops_sim::{
    ForceLaw, ForceModel, ForceWorkspace, GaussianForce, IntegratorConfig, LinearForce, Model,
    Simulation,
};

/// All-pairs reference: the literal Eq. 6 drift sum, no grid, no
/// Newton's-third-law sharing.
fn brute_forces(model: &Model, pos: &[Vec2]) -> Vec<Vec2> {
    let law = model.law();
    let cutoff = model.cutoff();
    let mut out = vec![Vec2::ZERO; pos.len()];
    for i in 0..pos.len() {
        for j in 0..pos.len() {
            if i == j {
                continue;
            }
            let delta = pos[i] - pos[j];
            let d = delta.norm();
            if d <= cutoff {
                let x = d.max(1e-9);
                out[i] -= delta * law.scale(model.type_of(i), model.type_of(j), x);
            }
        }
    }
    out
}

fn assert_forces_match(fast: &[Vec2], slow: &[Vec2], what: &str) {
    assert_eq!(fast.len(), slow.len());
    for (i, (f, s)) in fast.iter().zip(slow).enumerate() {
        let tol = 1e-9 * (1.0 + s.norm());
        assert!(
            (*f - *s).norm() < tol,
            "{what}: particle {i}: {f:?} vs {s:?}"
        );
    }
}

fn cloud(n: usize, half_extent: f64, seed: u64) -> Vec<Vec2> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            Vec2::new(
                rng.next_range(-half_extent, half_extent),
                rng.next_range(-half_extent, half_extent),
            )
        })
        .collect()
}

/// Three particle types with distinct scales and preferred distances —
/// the regime the old `grid_path_matches_direct_path` test never covered.
fn three_type_linear() -> ForceModel {
    let k = PairMatrix::from_full(3, &[1.0, 2.0, 0.5, 2.0, 1.5, 3.0, 0.5, 3.0, 1.0]);
    let r = PairMatrix::from_full(3, &[1.0, 2.5, 1.5, 2.5, 1.2, 0.8, 1.5, 0.8, 2.0]);
    ForceModel::Linear(LinearForce::new(k, r))
}

#[test]
fn grid_path_matches_brute_with_multi_type_law() {
    let n = 150; // comfortably above the grid threshold
    let model = Model::balanced(n, three_type_linear(), 2.5);
    let pos = cloud(n, 9.0, 41);
    let mut ws = ForceWorkspace::new();
    let mut fast = Vec::new();
    ws.net_forces_into(&model, &pos, &mut fast);
    assert_forces_match(&fast, &brute_forces(&model, &pos), "multi-type grid");
}

#[test]
fn grid_path_matches_brute_with_multi_type_gaussian() {
    let n = 120;
    let k = PairMatrix::from_full(3, &[1.0, 0.4, 2.0, 0.4, 1.5, 0.9, 2.0, 0.9, 0.7]);
    let r = PairMatrix::from_full(3, &[2.0, 1.0, 1.5, 1.0, 2.5, 2.0, 1.5, 2.0, 1.0]);
    let model = Model::balanced(
        n,
        ForceModel::Gaussian(GaussianForce::from_preferred_distance(k, &r)),
        3.0,
    );
    let pos = cloud(n, 8.0, 7);
    let mut ws = ForceWorkspace::new();
    let mut fast = Vec::new();
    ws.net_forces_into(&model, &pos, &mut fast);
    assert_forces_match(&fast, &brute_forces(&model, &pos), "multi-type gaussian");
}

#[test]
fn heun_through_grid_path_matches_brute_reference() {
    // Drive the two-stage Heun scheme through the workspace on a
    // grid-path model and replay the identical deterministic dynamics
    // with brute-force evaluations.
    let n = 100;
    let model = Model::balanced(n, three_type_linear(), 2.5);
    let cfg = IntegratorConfig {
        dt: 0.05,
        substeps: 2,
        noise_variance: 0.0,
        max_step: 0.5,
        scheme: Scheme::Heun,
    };
    let initial = cloud(n, 7.0, 3);

    let mut sim = Simulation::from_initial(model.clone(), cfg, initial.clone(), 0);
    for _ in 0..10 {
        sim.step();
    }

    let mut reference = initial;
    let h = cfg.dt / cfg.substeps as f64;
    for _ in 0..10 * cfg.substeps {
        let f0 = brute_forces(&model, &reference);
        let predicted: Vec<Vec2> = reference
            .iter()
            .zip(&f0)
            .map(|(z, f)| *z + (*f * h).clamp_norm(cfg.max_step))
            .collect();
        let f1 = brute_forces(&model, &predicted);
        for ((z, a), b) in reference.iter_mut().zip(&f0).zip(&f1) {
            *z += ((*a + *b) * (0.5 * h)).clamp_norm(cfg.max_step);
        }
    }

    for (i, (a, b)) in sim.positions().iter().zip(&reference).enumerate() {
        assert!(
            (*a - *b).norm() < 1e-7,
            "particle {i} drifted: {a:?} vs {b:?}"
        );
    }
}

#[test]
fn sweep_is_bit_identical_across_worker_counts() {
    // n straddling the power-of-two sweep size exercises uneven span
    // partitions and odd cell populations on top of the SoA lane
    // buffers — the reduction order must not depend on either.
    for n in [511usize, 512, 513] {
        let model = Model::balanced(n, three_type_linear(), 3.0);
        let pos = cloud(n, 22.0, 99);
        let mut out1 = Vec::new();
        let mut out8 = Vec::new();
        ForceWorkspace::with_threads(1).net_forces_into(&model, &pos, &mut out1);
        ForceWorkspace::with_threads(8).net_forces_into(&model, &pos, &mut out8);
        for (i, (a, b)) in out1.iter().zip(&out8).enumerate() {
            assert_eq!(a.x.to_bits(), b.x.to_bits(), "n{n} particle {i} x");
            assert_eq!(a.y.to_bits(), b.y.to_bits(), "n{n} particle {i} y");
        }
    }
}

#[test]
fn trajectories_bit_identical_across_force_threads() {
    let model = Model::balanced(96, three_type_linear(), 2.5);
    let run = |threads: usize| {
        let mut sim =
            Simulation::with_disc_init(model.clone(), IntegratorConfig::default(), 6.0, 17);
        sim.set_force_threads(threads);
        sim.run(15, None)
    };
    let a = run(1);
    let b = run(8);
    assert_eq!(a.frames, b.frames, "frames must match bitwise");
    for (x, y) in a.force_norms.iter().zip(&b.force_norms) {
        assert_eq!(x.to_bits(), y.to_bits(), "force norms must match bitwise");
    }
}

#[test]
fn warmed_up_step_is_allocation_free_euler() {
    // Attracting collective on the grid path, default noise: after a
    // warm-up, every buffer capacity must stay frozen across 100 steps.
    let model = Model::balanced(100, ForceModel::Linear(LinearForce::uniform(1.0, 1.0)), 2.5);
    let mut sim = Simulation::with_disc_init(model, IntegratorConfig::default(), 7.0, 5);
    for _ in 0..50 {
        sim.step();
    }
    let sig = sim.workspace().capacity_signature();
    for s in 0..100 {
        sim.step();
        assert_eq!(
            sim.workspace().capacity_signature(),
            sig,
            "allocation at step {s}"
        );
    }
}

#[test]
fn warmed_up_step_is_allocation_free_heun() {
    let model = Model::balanced(100, ForceModel::Linear(LinearForce::uniform(1.0, 1.0)), 2.5);
    let cfg = IntegratorConfig {
        scheme: Scheme::Heun,
        ..IntegratorConfig::default()
    }
    .deterministic();
    let mut sim = Simulation::with_disc_init(model, cfg, 7.0, 5);
    for _ in 0..20 {
        sim.step();
    }
    let sig = sim.workspace().capacity_signature();
    for _ in 0..100 {
        sim.step();
    }
    assert_eq!(sim.workspace().capacity_signature(), sig);
    // The equilibrium probe shares the same buffers.
    let _ = sim.total_force_norm();
    assert_eq!(sim.workspace().capacity_signature(), sig);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The workspace engine (whichever path it picks) matches brute force
    /// across law families, cut-offs and particle counts spanning the
    /// grid threshold.
    #[test]
    fn workspace_matches_brute(
        n in 8usize..150,
        family in 0usize..2,
        cutoff in 0.8..6.0f64,
        seed in 0u64..1000,
    ) {
        let law = if family == 1 {
            let k = PairMatrix::from_full(2, &[1.0, 0.6, 0.6, 1.4]);
            let r = PairMatrix::from_full(2, &[2.0, 1.2, 1.2, 1.6]);
            ForceModel::Gaussian(GaussianForce::from_preferred_distance(k, &r))
        } else {
            let k = PairMatrix::from_full(2, &[1.0, 2.0, 2.0, 0.5]);
            let r = PairMatrix::from_full(2, &[1.0, 2.2, 2.2, 1.4]);
            ForceModel::Linear(LinearForce::new(k, r))
        };
        let model = Model::balanced(n, law, cutoff);
        let pos = cloud(n, 1.5 * (n as f64).sqrt(), seed);
        let mut ws = ForceWorkspace::new();
        let mut fast = Vec::new();
        ws.net_forces_into(&model, &pos, &mut fast);
        let slow = brute_forces(&model, &pos);
        for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
            let tol = 1e-9 * (1.0 + s.norm());
            prop_assert!((*f - *s).norm() < tol, "particle {}: {:?} vs {:?}", i, f, s);
        }
    }

    /// Workspace reuse across heterogeneous workloads (different particle
    /// counts, cut-offs and paths in sequence) never corrupts results.
    #[test]
    fn workspace_reuse_across_workloads(
        sizes in proptest::collection::vec((8usize..120, 0.9..4.0f64, 0u64..100), 1..5)
    ) {
        let mut ws = ForceWorkspace::new();
        let mut fast = Vec::new();
        for &(n, cutoff, seed) in &sizes {
            let model = Model::balanced(
                n,
                ForceModel::Linear(LinearForce::uniform(1.0, 1.3)),
                cutoff,
            );
            let pos = cloud(n, (n as f64).sqrt() + 1.0, seed);
            ws.net_forces_into(&model, &pos, &mut fast);
            let slow = brute_forces(&model, &pos);
            for (f, s) in fast.iter().zip(&slow) {
                prop_assert!((*f - *s).norm() < 1e-9 * (1.0 + s.norm()));
            }
        }
    }
}
