//! `sops-serve` — a dependency-free HTTP/1.1 front end for the sweep
//! broker.
//!
//! The server puts [`sops_core::broker::SweepBroker`] behind three
//! endpoints:
//!
//! | endpoint        | method | behaviour                                   |
//! |-----------------|--------|---------------------------------------------|
//! | `/sweep`        | POST   | run a sweep plan, return the report as JSON |
//! | `/healthz`      | GET    | liveness probe (`{"ok": true}`)             |
//! | `/stats`        | GET    | broker + cache counters                     |
//!
//! A `/sweep` request is a JSON object naming registry scenarios and
//! measure selections (the same names `sops-repro sweep` accepts —
//! both front ends delegate to [`MeasureConfig::parse`]):
//!
//! ```json
//! {
//!   "scenarios": ["cell_sorting"],
//!   "measures": ["ksg", "gaussian@2"],
//!   "seeds": [1, 2, 3],
//!   "fast": true,
//!   "samples": 80,
//!   "t_max": 40,
//!   "threads": 0
//! }
//! ```
//!
//! `scenarios` and `measures` are required; everything else is
//! optional (`fast` applies the smoke-scale transform, `samples` /
//! `t_max` override the ensemble scale exactly, `seeds` defaults to
//! each scenario's own seed, `threads` defaults to auto). The response
//! is the sweep report in the `sweep.json` format plus per-cell
//! `"provenance"` / `"cached"` fields, so callers can see which cells
//! were computed, served from the cell cache, or coalesced onto a
//! concurrent request's simulation pass. Stripping those two metadata
//! fields yields byte-identical bodies regardless of cache state —
//! the broker inherits the sweep engine's determinism contract.
//!
//! Transport is plain `std::net`: a bounded worker pool pulls accepted
//! connections from a channel, so at most `threads` requests are served
//! concurrently and the rest queue in the listener backlog. Each
//! response closes its connection (`Connection: close`).

use sops_core::broker::SweepBroker;
use sops_core::report::sweep_json;
use sops_core::scenario::{EnsembleStorage, ScenarioRegistry, ScenarioSpec, SweepPlan};
use sops_core::wire::{self, Value};
use sops_core::SweepError;
use sops_info::MeasureConfig;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

/// Hard cap on request-body size; larger bodies get `413` without
/// being read. Plans are small — a megabyte is already generous.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A response ready to serialize: status, content type and body.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code (200, 400, 404, 405, 413, 500).
    pub status: u16,
    /// Body bytes (always JSON here).
    pub body: String,
}

impl HttpResponse {
    fn json(status: u16, body: String) -> Self {
        HttpResponse { status, body }
    }

    /// An error response with the message wrapped as `{"error": "…"}`.
    fn error(status: u16, message: &str) -> Self {
        Self::json(status, format!("{{\"error\":{}}}\n", wire::string(message)))
    }

    /// The reason phrase for [`HttpResponse::status`].
    pub fn status_line(&self) -> &'static str {
        match self.status {
            200 => "200 OK",
            400 => "400 Bad Request",
            404 => "404 Not Found",
            405 => "405 Method Not Allowed",
            413 => "413 Payload Too Large",
            _ => "500 Internal Server Error",
        }
    }

    /// Serializes the response onto `w` (HTTP/1.1, connection-close).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.status_line(),
            self.body.len(),
            self.body
        )
    }
}

/// Smoke-scale transform for `"fast": true` — the same clamp
/// `sops-repro sweep --fast` applies, so the two front ends agree on
/// what "fast" means (and produce identical cell keys for it).
fn fast_scale(sc: ScenarioSpec) -> ScenarioSpec {
    let samples = sc.ensemble.samples.min(100);
    let t_max = sc.ensemble.t_max.min(40);
    sc.with_scale(samples, t_max)
}

fn opt<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn string_array(obj: &[(String, Value)], key: &str) -> Result<Vec<String>, String> {
    let v = opt(obj, key).ok_or_else(|| format!("missing required field '{key}'"))?;
    let arr = v
        .as_array()
        .ok_or_else(|| format!("'{key}' must be an array of strings"))?;
    if arr.is_empty() {
        return Err(format!("'{key}' must not be empty"));
    }
    arr.iter()
        .map(|e| {
            e.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("'{key}' must be an array of strings"))
        })
        .collect()
}

fn usize_field(obj: &[(String, Value)], key: &str) -> Result<Option<usize>, String> {
    match opt(obj, key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
    }
}

/// Parses a `/sweep` request body into a [`SweepPlan`].
///
/// Scenario names resolve against the full
/// [`ScenarioRegistry::gallery`]; measure selections go through the
/// shared [`MeasureConfig::parse`]. Unknown fields are rejected so
/// typos fail loudly instead of silently running a default sweep.
pub fn parse_plan(body: &str) -> Result<SweepPlan, String> {
    let parsed = wire::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let obj = parsed
        .as_object()
        .ok_or("request body must be a JSON object")?;
    for (key, _) in obj {
        match key.as_str() {
            "scenarios" | "measures" | "seeds" | "fast" | "samples" | "t_max" | "threads" => {}
            other => return Err(format!("unknown field '{other}'")),
        }
    }

    let names = string_array(obj, "scenarios")?;
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let mut scenarios = ScenarioRegistry::gallery()
        .select(&name_refs)
        .map_err(|e| e.to_string())?;

    let fast = match opt(obj, "fast") {
        None => false,
        Some(Value::Bool(b)) => *b,
        Some(_) => return Err("'fast' must be a boolean".into()),
    };
    if fast {
        scenarios = scenarios.into_iter().map(fast_scale).collect();
    }
    let samples = usize_field(obj, "samples")?;
    let t_max = usize_field(obj, "t_max")?;
    if samples == Some(0) || t_max == Some(0) {
        return Err("'samples' and 't_max' must be at least 1".into());
    }
    if samples.is_some() || t_max.is_some() {
        scenarios = scenarios
            .into_iter()
            .map(|sc| {
                let s = samples.unwrap_or(sc.ensemble.samples);
                let t = t_max.unwrap_or(sc.ensemble.t_max);
                sc.with_scale(s, t)
            })
            .collect();
    }

    let mut measures = Vec::new();
    for name in string_array(obj, "measures")? {
        measures.push(MeasureConfig::parse(&name).ok_or_else(|| {
            format!(
                "unknown measure '{name}' (known: {}, optionally NAME@EVERY)",
                MeasureConfig::FAMILIES.join(", ")
            )
        })?);
    }

    let seeds = match opt(obj, "seeds") {
        None => Vec::new(),
        Some(v) => {
            let arr = v.as_array().ok_or("'seeds' must be an array of integers")?;
            arr.iter()
                .map(|e| e.as_u64().ok_or("'seeds' must be an array of integers"))
                .collect::<Result<Vec<u64>, _>>()?
        }
    };
    let threads = usize_field(obj, "threads")?.unwrap_or(0);

    Ok(SweepPlan {
        scenarios,
        measures,
        seeds,
        threads,
        storage: EnsembleStorage::default(),
    })
}

/// The `/stats` body: broker counters plus cache counters (or
/// `"cache": null` when the broker runs uncached).
pub fn stats_json(broker: &SweepBroker) -> String {
    let s = broker.stats();
    let cache = match s.cache {
        Some(c) => format!(
            "{{\"hits\":{},\"misses\":{},\"stores\":{},\"store_errors\":{},\"evictions\":{}}}",
            c.hits, c.misses, c.stores, c.store_errors, c.evictions
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\"requests\":{},\"sim_passes\":{},\"cells_computed\":{},\"cells_cached\":{},\"cells_coalesced\":{},\"cache\":{}}}\n",
        s.requests, s.sim_passes, s.cells_computed, s.cells_cached, s.cells_coalesced, cache
    )
}

/// Routes one parsed request to its handler. Pure function of
/// (method, path, body) and the broker — the unit tests exercise it
/// without sockets.
pub fn route(broker: &SweepBroker, method: &str, path: &str, body: &str) -> HttpResponse {
    match (method, path) {
        ("GET", "/healthz") => HttpResponse::json(200, "{\"ok\":true}\n".to_string()),
        ("GET", "/stats") => HttpResponse::json(200, stats_json(broker)),
        ("POST", "/sweep") => {
            let plan = match parse_plan(body) {
                Ok(p) => p,
                Err(msg) => return HttpResponse::error(400, &msg),
            };
            match broker.run(&plan) {
                // Provenance included: callers get to see cache behaviour.
                Ok(report) => HttpResponse::json(200, sweep_json(&report, true)),
                Err(e @ SweepError::Io { .. }) => HttpResponse::error(500, &e.to_string()),
                Err(e) => HttpResponse::error(400, &e.to_string()),
            }
        }
        (_, "/healthz") | (_, "/stats") | (_, "/sweep") => {
            HttpResponse::error(405, &format!("method {method} not allowed for {path}"))
        }
        _ => HttpResponse::error(404, &format!("no such endpoint: {path}")),
    }
}

/// Reads one HTTP/1.1 request from `stream`, routes it, and writes the
/// response. Malformed requests get a `400`; bodies over
/// [`MAX_BODY_BYTES`] get a `413` without being read.
fn handle_connection(stream: TcpStream, broker: &SweepBroker) {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            respond(
                reader.into_inner(),
                &HttpResponse::error(400, "malformed request line"),
            );
            return;
        }
    };
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => {
                        respond(
                            reader.into_inner(),
                            &HttpResponse::error(400, "bad Content-Length"),
                        );
                        return;
                    }
                };
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        respond(
            reader.into_inner(),
            &HttpResponse::error(413, "request body too large"),
        );
        return;
    }
    let mut body = vec![0u8; content_length];
    if reader.read_exact(&mut body).is_err() {
        return;
    }
    let body = String::from_utf8_lossy(&body).into_owned();
    let response = route(broker, &method, &path, &body);
    respond(reader.into_inner(), &response);
}

fn respond(mut stream: TcpStream, response: &HttpResponse) {
    // A peer that hung up mid-response is its own problem.
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
}

/// A bound-but-not-yet-serving server: the listener plus the broker it
/// fronts and the worker-pool width.
pub struct Server {
    listener: TcpListener,
    broker: Arc<SweepBroker>,
    threads: usize,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral test port).
    pub fn bind(
        addr: impl ToSocketAddrs,
        broker: Arc<SweepBroker>,
        threads: usize,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            broker,
            threads: threads.max(1),
        })
    }

    /// The bound address (the ephemeral port, after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept loop body shared by [`Server::run`] and
    /// [`Server::spawn`]: a bounded pool of workers drains a channel of
    /// accepted connections, so at most `threads` requests run
    /// concurrently.
    fn serve(self, shutdown: Arc<AtomicBool>) -> io::Result<()> {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.threads);
        for _ in 0..self.threads {
            let rx = Arc::clone(&rx);
            let broker = Arc::clone(&self.broker);
            workers.push(thread::spawn(move || loop {
                // Sender dropped ⇒ the accept loop ended ⇒ drain out.
                let stream = match rx.lock().expect("serve pool poisoned").recv() {
                    Ok(s) => s,
                    Err(_) => return,
                };
                handle_connection(stream, &broker);
            }));
        }
        for stream in self.listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(s) => {
                    let _ = tx.send(s);
                }
                Err(_) => continue,
            }
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Serves until the process exits.
    pub fn run(self) -> io::Result<()> {
        self.serve(Arc::new(AtomicBool::new(false)))
    }

    /// Serves on a background thread and returns a handle that can stop
    /// the server — the integration tests' entry point.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let join = thread::spawn(move || {
            let _ = self.serve(flag);
        });
        Ok(ServerHandle {
            addr,
            shutdown,
            join: Some(join),
        })
    }
}

/// Handle to a background server started by [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop (one wake-up connection) and joins it.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parser_resolves_names_and_rejects_junk() {
        let plan = parse_plan(
            "{\"scenarios\":[\"cell_sorting\",\"mixing_null\"],\"measures\":[\"gaussian\",\"ksg@4\"],\
             \"seeds\":[1,2],\"fast\":true,\"threads\":2}",
        )
        .unwrap();
        assert_eq!(plan.scenarios.len(), 2);
        assert_eq!(plan.measures.len(), 2);
        assert_eq!(plan.seeds, vec![1, 2]);
        assert_eq!(plan.threads, 2);
        assert!(
            plan.scenarios[0].ensemble.samples <= 100 && plan.scenarios[0].ensemble.t_max <= 40,
            "fast applies the smoke-scale clamp"
        );

        for (body, needle) in [
            ("not json", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (
                "{\"measures\":[\"ksg\"]}",
                "missing required field 'scenarios'",
            ),
            (
                "{\"scenarios\":[\"cell_sorting\"]}",
                "missing required field 'measures'",
            ),
            (
                "{\"scenarios\":[],\"measures\":[\"ksg\"]}",
                "must not be empty",
            ),
            (
                "{\"scenarios\":[\"bogus\"],\"measures\":[\"ksg\"]}",
                "unknown scenario",
            ),
            (
                "{\"scenarios\":[\"cell_sorting\"],\"measures\":[\"bogus\"]}",
                "unknown measure",
            ),
            (
                "{\"scenarios\":[\"cell_sorting\"],\"measures\":[\"ksg\"],\"typo\":1}",
                "unknown field",
            ),
            (
                "{\"scenarios\":[\"cell_sorting\"],\"measures\":[\"ksg\"],\"samples\":0}",
                "at least 1",
            ),
        ] {
            let err = parse_plan(body).unwrap_err();
            assert!(err.contains(needle), "body {body:?}: got error {err:?}");
        }
    }

    #[test]
    fn explicit_scale_overrides_beat_fast() {
        let plan = parse_plan(
            "{\"scenarios\":[\"cell_sorting\"],\"measures\":[\"gaussian\"],\
             \"fast\":true,\"samples\":10,\"t_max\":8}",
        )
        .unwrap();
        assert_eq!(plan.scenarios[0].ensemble.samples, 10);
        assert_eq!(plan.scenarios[0].ensemble.t_max, 8);
    }

    #[test]
    fn routing_covers_the_error_statuses() {
        let broker = SweepBroker::new();
        assert_eq!(route(&broker, "GET", "/healthz", "").status, 200);
        assert_eq!(route(&broker, "GET", "/stats", "").status, 200);
        assert_eq!(route(&broker, "POST", "/healthz", "").status, 405);
        assert_eq!(route(&broker, "GET", "/sweep", "").status, 405);
        assert_eq!(route(&broker, "GET", "/nope", "").status, 404);
        assert_eq!(route(&broker, "POST", "/sweep", "nope").status, 400);
        let stats = stats_json(&broker);
        assert!(stats.contains("\"cache\":null"), "uncached broker: {stats}");
    }
}
