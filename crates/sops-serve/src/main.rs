//! `sops-serve` binary — sweep-as-a-service.
//!
//! ```text
//! sops-serve [--addr HOST:PORT] [--threads N] [--cache DIR] [--cache-bytes N]
//! ```
//!
//! Defaults: `--addr 127.0.0.1:7070`, `--threads 4`, no cell cache.
//! With `--cache DIR` every computed cell is persisted content-addressed
//! under `DIR` and reused across requests *and* server restarts;
//! `--cache-bytes` caps the store (LRU eviction, default 256 MiB).
//!
//! Exit codes: 0 on clean shutdown, 1 on bind/cache I/O failure, 2 on a
//! usage error.

use sops_core::{CellCache, SweepBroker};
use sops_serve::Server;
use std::process::ExitCode;
use std::sync::Arc;

struct ServeArgs {
    addr: String,
    threads: usize,
    cache_dir: Option<std::path::PathBuf>,
    cache_bytes: Option<u64>,
}

fn usage_text() -> &'static str {
    "usage: sops-serve [--addr HOST:PORT] [--threads N] [--cache DIR] [--cache-bytes N]\n\
     \x20      --addr         listen address (default 127.0.0.1:7070)\n\
     \x20      --threads      worker pool size (default 4)\n\
     \x20      --cache        content-addressed cell cache directory\n\
     \x20      --cache-bytes  cache size cap in bytes (LRU eviction, default 256 MiB)\n\
     endpoints: POST /sweep, GET /healthz, GET /stats\n\
     exit codes: 0 ok, 1 bind/cache i/o failure, 2 usage"
}

fn usage() -> ! {
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

fn parse_serve_args(argv: &[String]) -> ServeArgs {
    let mut args = ServeArgs {
        addr: "127.0.0.1:7070".to_string(),
        threads: 4,
        cache_dir: None,
        cache_bytes: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => {
                i += 1;
                args.addr = argv.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                args.threads = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--cache" => {
                i += 1;
                args.cache_dir = Some(std::path::PathBuf::from(
                    argv.get(i).unwrap_or_else(|| usage()),
                ));
            }
            "--cache-bytes" => {
                i += 1;
                args.cache_bytes = Some(
                    argv.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--help" | "-h" => {
                println!("{}", usage_text());
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }
    if args.cache_bytes.is_some() && args.cache_dir.is_none() {
        eprintln!("--cache-bytes requires --cache DIR");
        usage();
    }
    args
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_serve_args(&argv);
    let mut broker = SweepBroker::new();
    let cache_desc = match &args.cache_dir {
        Some(dir) => {
            let cache = match CellCache::open(dir) {
                Ok(c) => match args.cache_bytes {
                    Some(n) => c.with_max_bytes(n),
                    None => c,
                },
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let desc = format!("{} (cap {} bytes)", dir.display(), cache.max_bytes());
            broker = broker.with_cache(Arc::new(cache));
            desc
        }
        None => "none".to_string(),
    };
    let server = match Server::bind(args.addr.as_str(), Arc::new(broker), args.threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!(
            "sops-serve listening on http://{addr} ({} worker thread(s), cache: {cache_desc})",
            args.threads
        ),
        Err(e) => {
            eprintln!("failed to read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
