//! End-to-end tests over real sockets: a spawned server, a raw
//! `TcpStream` client, and cache/coalesce behaviour observable through
//! `"cached"` / `"provenance"` fields and `/stats`.

use sops_core::{CellCache, SweepBroker};
use sops_serve::Server;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn start(name: &str, cached: bool) -> (sops_serve::ServerHandle, SocketAddr) {
    let mut broker = SweepBroker::new();
    if cached {
        let dir = std::env::temp_dir().join(format!("sops_serve_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        broker = broker.with_cache(Arc::new(CellCache::open(dir).unwrap()));
    }
    let server = Server::bind("127.0.0.1:0", Arc::new(broker), 4).unwrap();
    let addr = server.local_addr().unwrap();
    (server.spawn().unwrap(), addr)
}

/// One raw HTTP/1.1 exchange; returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: sops\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

const TINY: &str = "{\"scenarios\":[\"cell_sorting\"],\"measures\":[\"gaussian\"],\
                    \"samples\":10,\"t_max\":8}";

#[test]
fn healthz_and_stats_respond() {
    let (handle, addr) = start("health", false);
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "{\"ok\":true}\n"));
    let (status, body) = request(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"requests\":0"), "fresh broker: {body}");
    handle.shutdown();
}

#[test]
fn sweep_round_trip_hits_the_cache_on_the_second_request() {
    let (handle, addr) = start("cache", true);

    let (status, first) = request(addr, "POST", "/sweep", TINY);
    assert_eq!(status, 200, "first sweep failed: {first}");
    assert!(
        first.contains("\"provenance\": \"computed\", \"cached\": false"),
        "cold cells must be computed: {first}"
    );

    let (status, second) = request(addr, "POST", "/sweep", TINY);
    assert_eq!(status, 200);
    assert!(
        second.contains("\"provenance\": \"cached\", \"cached\": true"),
        "warm cells must come from the cache: {second}"
    );
    assert!(
        !second.contains("\"cached\": false"),
        "second identical request must be fully cached: {second}"
    );

    // Identical results modulo the provenance metadata.
    let strip = |s: &str| {
        s.replace(", \"provenance\": \"computed\", \"cached\": false", "")
            .replace(", \"provenance\": \"cached\", \"cached\": true", "")
    };
    assert_eq!(strip(&first), strip(&second), "cache changed the physics");

    let (_, stats) = request(addr, "GET", "/stats", "");
    assert!(
        stats.contains("\"sim_passes\":1"),
        "one pass total: {stats}"
    );
    assert!(stats.contains("\"cells_cached\":1"), "{stats}");
    handle.shutdown();
}

#[test]
fn http_errors_are_typed() {
    let (handle, addr) = start("errors", false);
    let (status, body) = request(addr, "POST", "/sweep", "{\"scenarios\":1}");
    assert_eq!(status, 400);
    assert!(body.starts_with("{\"error\":"), "{body}");
    let (status, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "DELETE", "/sweep", "");
    assert_eq!(status, 405);
    handle.shutdown();
}

#[test]
fn oversized_bodies_are_refused_without_reading() {
    let (handle, addr) = start("payload", false);
    let mut stream = TcpStream::connect(addr).unwrap();
    // Claim a huge body but never send it: the server must answer 413
    // from the header alone instead of waiting for the bytes.
    write!(
        stream,
        "POST /sweep HTTP/1.1\r\nHost: sops\r\nContent-Length: {}\r\n\r\n",
        sops_serve::MAX_BODY_BYTES + 1
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 413"), "{raw}");
    handle.shutdown();
}
