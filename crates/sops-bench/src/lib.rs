//! Shared fixtures for the Criterion benches.
//!
//! Benchmarks live in `benches/`:
//!
//! * `substrates` — kd-tree vs brute force, cell grid, Hungarian
//!   assignment, k-means, ICP (restart-count ablation), parallel map
//!   scaling.
//! * `estimators` — KSG variants (incl. the literal paper formula), k
//!   sensitivity, KDE and shrinkage-binning baselines (§5.3 speed
//!   comparison), Kozachenko–Leonenko entropy.
//! * `simulation` — force evaluation paths (grid vs direct), integrator
//!   substep ablation, full trajectory throughput.
//! * `figures` — one kernel per paper figure at reduced scale
//!   (`RunOptions::fast`).

use sops_math::{SplitMix64, Vec2};

/// Deterministic uniform point cloud used across benches.
pub fn cloud(n: usize, half_extent: f64, seed: u64) -> Vec<Vec2> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            Vec2::new(
                rng.next_range(-half_extent, half_extent),
                rng.next_range(-half_extent, half_extent),
            )
        })
        .collect()
}

/// Flattens a point cloud to interleaved coordinates.
pub fn flat(points: &[Vec2]) -> Vec<f64> {
    points.iter().flat_map(|p| [p.x, p.y]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_deterministic() {
        assert_eq!(cloud(10, 5.0, 1), cloud(10, 5.0, 1));
        assert_eq!(flat(&cloud(3, 1.0, 2)).len(), 6);
    }
}
