//! Bench-regression gate: diffs a fresh quick-bench JSON against the
//! committed full-run baseline for the hot-kernel groups.
//!
//! ```text
//! bench_regression <committed BENCH_*.json> <fresh BENCH_*.json>
//! ```
//!
//! Quick runs on shared CI hardware are noisy (we have observed ±40%
//! swings on the same commit), so the tolerance is deliberately generous:
//! only a median more than **1.5×** slower than the committed baseline
//! fails the gate. That still catches the regressions worth catching — an
//! accidentally disabled fast path, a quadratic slip, a layout change
//! that evicts the kernels from cache — while letting machine jitter
//! through. Only the kernel groups below are compared; ablation and
//! throughput groups (substeps, ensemble, crossover sweeps) exist to be
//! *read*, not gated.

use std::process::ExitCode;

use sops_core::wire::{self, Value};

/// The gated groups: the two hot kernels of the ΔI pipeline (force
/// half-sweep, Chebyshev kNN), the pairwise-matrix driver that
/// dominates figure reproduction, and the cell cache's warm-hit path
/// (a hit regressing toward recompute cost defeats the cache; the
/// compute-bound `cold_compute`/`coalesced_pair` cases are ungated
/// context).
const KERNEL_GROUPS: [&str; 4] = [
    "net_forces/",
    "ksg_scaling/",
    "pairwise_matrix/",
    "sweep_cache/warm_hit",
];

/// Fail only above this fresh/committed median ratio.
const TOLERANCE: f64 = 1.5;

/// `(name, median_ns)` for every entry of a `BENCH_*.json` document.
fn load_results(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_results(&text).map_err(|e| format!("{path}: {e}"))
}

/// Parses a `BENCH_*.json` document. Only `name` and `median_ns` are
/// read per entry — extra fields (`iters`, the `peak_rss_bytes` newer
/// harnesses record) are ignored, so old and new baselines both load.
fn parse_results(text: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = wire::parse(text).map_err(|e| e.to_string())?;
    let obj = doc.as_object().ok_or("not an object")?;
    let results = wire::get(obj, "results")
        .map_err(|e| e.to_string())?
        .as_array()
        .ok_or("'results' is not an array")?;
    let mut out = Vec::with_capacity(results.len());
    for entry in results {
        let entry = entry.as_object().ok_or("result entry is not an object")?;
        let name = wire::get(entry, "name")
            .ok()
            .and_then(Value::as_str)
            .ok_or("result entry without 'name'")?;
        let median = wire::get(entry, "median_ns")
            .ok()
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("'{name}' without 'median_ns'"))?;
        out.push((name.to_string(), median));
    }
    Ok(out)
}

fn is_kernel_case(name: &str) -> bool {
    KERNEL_GROUPS.iter().any(|g| name.starts_with(g))
}

fn run(committed_path: &str, fresh_path: &str) -> Result<bool, String> {
    let committed = load_results(committed_path)?;
    let fresh = load_results(fresh_path)?;
    let mut checked = 0usize;
    let mut failed = Vec::new();
    for (name, base_ns) in committed.iter().filter(|(n, _)| is_kernel_case(n)) {
        // A case present in the baseline but missing from the fresh run
        // is skipped, not failed: bench cases come and go across PRs and
        // the baseline refresh rides the PR that renames them.
        let Some((_, fresh_ns)) = fresh.iter().find(|(n, _)| n == name) else {
            println!("  skip  {name} (not in fresh run)");
            continue;
        };
        checked += 1;
        let ratio = fresh_ns / base_ns;
        let verdict = if ratio > TOLERANCE { "SLOW" } else { "ok" };
        println!(
            "  {verdict:>4}  {name}: {:.1} µs vs committed {:.1} µs ({ratio:.2}×)",
            fresh_ns / 1e3,
            base_ns / 1e3
        );
        if ratio > TOLERANCE {
            failed.push(name.clone());
        }
    }
    if checked == 0 {
        return Err(format!(
            "no kernel-group cases ({}) found in both files — wrong inputs?",
            KERNEL_GROUPS.join(" ")
        ));
    }
    if failed.is_empty() {
        println!("bench-regression: {checked} kernel cases within {TOLERANCE}× of baseline");
        Ok(true)
    } else {
        println!(
            "bench-regression: {}/{checked} kernel cases more than {TOLERANCE}× slower: {}",
            failed.len(),
            failed.join(", ")
        );
        Ok(false)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, committed, fresh] = args.as_slice() else {
        eprintln!("usage: bench_regression <committed BENCH_*.json> <fresh BENCH_*.json>");
        return ExitCode::from(2);
    };
    match run(committed, fresh) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench-regression: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_case_filter_matches_gated_groups_only() {
        assert!(is_kernel_case("net_forces/cutoff_grid/800"));
        assert!(is_kernel_case("ksg_scaling/m1000_n40"));
        assert!(is_kernel_case("pairwise_matrix/m600_n16"));
        assert!(is_kernel_case("sweep_cache/warm_hit"));
        assert!(!is_kernel_case("sweep_cache/cold_compute"));
        assert!(!is_kernel_case("sweep_cache/coalesced_pair"));
        assert!(!is_kernel_case("ensemble/8"));
        assert!(!is_kernel_case("force_crossover/kd_tree/12"));
        assert!(!is_kernel_case("integrator_substeps/4"));
    }

    #[test]
    fn loader_tolerates_baselines_with_and_without_peak_rss() {
        let old = r#"{
  "quick": false,
  "parallelism": 4,
  "results": [
    {"name": "net_forces/cutoff_grid/512", "median_ns": 34459.0, "iters": 810}
  ]
}"#;
        let new = r#"{
  "quick": false,
  "parallelism": 4,
  "peak_rss_bytes": 123456789,
  "results": [
    {"name": "net_forces/cutoff_grid/512", "median_ns": 34459.0, "iters": 810, "peak_rss_bytes": 7340032}
  ]
}"#;
        for text in [old, new] {
            let results = parse_results(text).expect("both baseline shapes load");
            assert_eq!(
                results,
                vec![("net_forces/cutoff_grid/512".to_string(), 34459.0)]
            );
        }
    }
}
