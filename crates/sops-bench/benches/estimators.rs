//! Estimator benches: the §5.3 comparison (KSG vs KDE vs shrinkage
//! binning) as runtime measurements, KSG ablations, the
//! `estimator_matrix` group tracking the workspace-backed `Estimator`
//! engines (KDE / binning / CMI) against their one-shot forms, and the
//! `sweep` group pinning the one-pass scenario × measure engine against
//! the equivalent repeated single-measure pipelines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sops_core::run_pipeline;
use sops_core::scenario::{self, ScenarioSpec, SweepPlan, SweepRunner};
use sops_info::entropy::kl_entropy;
use sops_info::gaussian::{equicorrelated_cov, sample_gaussian};
use sops_info::{
    multi_information, BinnedEstimator, BinningConfig, CmiConfig, CmiWorkspace, Estimator,
    KdeConfig, KdeEstimator, KnnMode, KsgConfig, KsgVariant, MeasureConfig, MeasureWorkspace,
    SampleView,
};
use std::hint::black_box;

/// Gaussian fixture: `blocks` scalar observers, correlation 0.4.
fn fixture(m: usize, blocks: usize) -> (Vec<f64>, Vec<usize>) {
    let cov = equicorrelated_cov(blocks, 0.4);
    (sample_gaussian(&cov, m, 99), vec![1usize; blocks])
}

/// Scalar common-cause triple for the CMI benches.
fn cmi_fixture(m: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut rng = sops_math::SplitMix64::new(7);
    let mut x = Vec::with_capacity(m);
    let mut y = Vec::with_capacity(m);
    let mut z = Vec::with_capacity(m);
    for _ in 0..m {
        let zi = rng.next_standard_normal();
        x.push(0.8 * zi + 0.4 * rng.next_standard_normal());
        y.push(0.8 * zi + 0.4 * rng.next_standard_normal());
        z.push(zi);
    }
    (x, y, z)
}

fn bench_ksg_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ksg_variant");
    group.sample_size(20);
    let (data, sizes) = fixture(500, 8);
    let view = SampleView::new(&data, 500, &sizes);
    for variant in [KsgVariant::Ksg1, KsgVariant::Ksg2, KsgVariant::Paper] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{variant:?}")),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    multi_information(
                        black_box(&view),
                        &KsgConfig {
                            k: 4,
                            variant,
                            threads: 1,
                            ..KsgConfig::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_ksg_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ksg_scaling");
    group.sample_size(15);
    for &(m, blocks) in &[(200usize, 10usize), (500, 10), (500, 40), (1000, 40)] {
        let (data, sizes) = fixture(m, blocks);
        let view = SampleView::new(&data, m, &sizes);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}_n{blocks}")),
            &view,
            |b, view| b.iter(|| multi_information(black_box(view), &KsgConfig::default())),
        );
    }
    group.finish();
}

fn bench_pairwise_matrix(c: &mut Criterion) {
    // The §7.3 interaction-structure diagnostic: all-pairs scalar MI. The
    // joint spaces are 2-dimensional, the regime where the kd-tree kNN
    // path (and per-view tree sharing) pays off.
    let mut group = c.benchmark_group("pairwise_matrix");
    group.sample_size(10);
    for &(m, blocks) in &[(300usize, 12usize), (600, 16)] {
        let (data, sizes) = fixture(m, blocks);
        let view = SampleView::new(&data, m, &sizes);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}_n{blocks}")),
            &view,
            |b, view| {
                b.iter(|| {
                    sops_info::ksg::pairwise_mi_matrix(
                        black_box(view),
                        &KsgConfig {
                            threads: 1,
                            ..KsgConfig::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_workspace_reuse(c: &mut Criterion) {
    // Persistent `InfoWorkspace` vs the throwaway-workspace shim: the gap
    // is the per-call buffer growth the persistent engine amortizes.
    let mut group = c.benchmark_group("ksg_workspace");
    group.sample_size(15);
    let (data, sizes) = fixture(500, 10);
    let view = SampleView::new(&data, 500, &sizes);
    let cfg = KsgConfig {
        threads: 1,
        ..KsgConfig::default()
    };
    let mut ws = sops_info::InfoWorkspace::new();
    group.bench_function("persistent", |b| {
        b.iter(|| ws.multi_information(black_box(&view), &cfg))
    });
    group.bench_function("one_shot", |b| {
        b.iter(|| multi_information(black_box(&view), &cfg))
    });
    group.finish();
}

fn bench_ksg_k_sensitivity(c: &mut Criterion) {
    // Ablation: the paper reports insensitivity for k ∈ {2, ..., 10}; the
    // runtime cost of larger k is what this measures.
    let mut group = c.benchmark_group("ksg_k");
    group.sample_size(20);
    let (data, sizes) = fixture(500, 8);
    let view = SampleView::new(&data, 500, &sizes);
    for &k in &[2usize, 4, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                multi_information(
                    black_box(&view),
                    &KsgConfig {
                        k,
                        ..KsgConfig::default()
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_estimator_comparison(c: &mut Criterion) {
    // §5.3: "[the KDE approach] was multiple orders of magnitudes slower";
    // binning is fast but wrong in high-d (accuracy covered by tests).
    // One-shot calls through the `Estimator` trait (a cold estimator per
    // iteration — the semantics the deprecated free functions had); case
    // names kept stable across PRs so the JSON trajectories line up.
    let mut group = c.benchmark_group("estimator_comparison");
    group.sample_size(10);
    let (data, sizes) = fixture(400, 8);
    let view = SampleView::new(&data, 400, &sizes);
    group.bench_function("ksg1", |b| {
        b.iter(|| multi_information(black_box(&view), &KsgConfig::default()))
    });
    group.bench_function("kde", |b| {
        b.iter(|| KdeEstimator::new(KdeConfig::default()).measure(black_box(&view)))
    });
    group.bench_function("binning_js", |b| {
        b.iter(|| BinnedEstimator::new(BinningConfig::default()).measure(black_box(&view)))
    });
    group.finish();
}

fn bench_estimator_matrix(c: &mut Criterion) {
    // The workspace-backed `Estimator` engines vs their one-shot forms —
    // the before/after ledger of the measurement-stack unification, now
    // entirely on the trait API the pipeline dispatches through. The
    // `one_shot` cases build a cold estimator per call (the deprecated
    // free functions' behaviour); `persistent` drives a warm
    // `MeasureWorkspace` through `estimator_mut`, the exact path of a
    // pipeline/sweep evaluation worker. For CMI the historical algorithm
    // is additionally pinned by `scan` (brute-force joint k-NN) vs the
    // adaptive `tree` path.
    let mut group = c.benchmark_group("estimator_matrix");
    group.sample_size(10);

    let (data, sizes) = fixture(400, 8);
    let view = SampleView::new(&data, 400, &sizes);
    let kde_cfg = KdeConfig {
        threads: 1,
        ..KdeConfig::default()
    };
    let mut measure_ws = MeasureWorkspace::new();
    group.bench_function("kde_m400_n8/one_shot", |b| {
        b.iter(|| KdeEstimator::new(kde_cfg).measure(black_box(&view)))
    });
    group.bench_function("kde_m400_n8/persistent", |b| {
        b.iter(|| {
            measure_ws
                .estimator_mut(&MeasureConfig::Kde(kde_cfg))
                .measure(black_box(&view))
        })
    });

    let bin_cfg = BinningConfig::default();
    group.bench_function("binned_m400_n8/one_shot", |b| {
        b.iter(|| BinnedEstimator::new(bin_cfg).measure(black_box(&view)))
    });
    group.bench_function("binned_m400_n8/persistent", |b| {
        b.iter(|| {
            measure_ws
                .estimator_mut(&MeasureConfig::Binned(bin_cfg))
                .measure(black_box(&view))
        })
    });
    let (data2k, sizes2k) = fixture(2000, 8);
    let view2k = SampleView::new(&data2k, 2000, &sizes2k);
    group.bench_function("binned_m2000_n8/persistent", |b| {
        b.iter(|| {
            measure_ws
                .estimator_mut(&MeasureConfig::Binned(bin_cfg))
                .measure(black_box(&view2k))
        })
    });

    let (x, y, z) = cmi_fixture(1500);
    let scan_cfg = CmiConfig {
        threads: 1,
        knn: KnnMode::BruteForce,
        ..CmiConfig::default()
    };
    let tree_cfg = CmiConfig {
        threads: 1,
        knn: KnnMode::Auto,
        ..CmiConfig::default()
    };
    let mut cmi_ws = CmiWorkspace::new();
    group.bench_function("cmi_m1500/scan_one_shot", |b| {
        b.iter(|| {
            CmiWorkspace::new().conditional_mutual_information(
                black_box(&x),
                &y,
                &z,
                1500,
                (1, 1, 1),
                &scan_cfg,
            )
        })
    });
    group.bench_function("cmi_m1500/tree_persistent", |b| {
        b.iter(|| {
            cmi_ws.conditional_mutual_information(black_box(&x), &y, &z, 1500, (1, 1, 1), &tree_cfg)
        })
    });
    group.bench_function("cmi_m1500/scan_persistent", |b| {
        b.iter(|| {
            cmi_ws.conditional_mutual_information(black_box(&x), &y, &z, 1500, (1, 1, 1), &scan_cfg)
        })
    });
    group.finish();
}

fn bench_sweep(c: &mut Criterion) {
    // One-pass sweep vs repeated single pipelines over the 3-scenario ×
    // 4-measure grid (smoke scale). `one_pass` simulates each ensemble
    // once and fans all four estimators over shared reduced views;
    // `n_pass` runs the same 12 cells as independent `run_pipeline`
    // calls, re-simulating and re-reducing per measure — identical bits,
    // k× the physics/reduction work. 100 samples keeps every measure on
    // its real code path: the Gaussian baseline needs more runs than the
    // 80-dim joint space of the 40-particle scenarios, else its column
    // would only time the singular-covariance NaN early-out.
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    let scenarios: Vec<ScenarioSpec> = [
        scenario::cell_sorting(),
        scenario::ring_formation(),
        scenario::mixing_null(),
    ]
    .into_iter()
    .map(|sc| sc.with_scale(100, 20))
    .collect();
    let measures = vec![
        MeasureConfig::default(),
        MeasureConfig::Kde(KdeConfig::default()),
        MeasureConfig::Binned(BinningConfig::default()),
        MeasureConfig::Gaussian,
    ];
    let plan = SweepPlan {
        scenarios,
        measures,
        seeds: vec![],
        threads: 1,
        storage: sops_core::EnsembleStorage::default(),
    };
    let mut runner = SweepRunner::new();
    group.bench_function("grid3x4/one_pass", |b| {
        b.iter(|| runner.run(black_box(&plan)).expect("valid plan"))
    });
    group.bench_function("grid3x4/n_pass", |b| {
        b.iter(|| {
            for sc in &plan.scenarios {
                for &m in &plan.measures {
                    let mut p = sc.pipeline(m);
                    p.threads = 1;
                    black_box(run_pipeline(&p));
                }
            }
        })
    });
    group.finish();
}

fn bench_kl_entropy(c: &mut Criterion) {
    let mut group = c.benchmark_group("kl_entropy");
    group.sample_size(20);
    for &(m, d) in &[(500usize, 2usize), (1000, 4)] {
        let cov = equicorrelated_cov(d, 0.3);
        let data = sample_gaussian(&cov, m, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}_d{d}")),
            &data,
            |b, data| b.iter(|| kl_entropy(black_box(data), m, d, 4)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ksg_variants,
    bench_ksg_scaling,
    bench_pairwise_matrix,
    bench_workspace_reuse,
    bench_ksg_k_sensitivity,
    bench_estimator_comparison,
    bench_estimator_matrix,
    bench_sweep,
    bench_kl_entropy
);
criterion_main!(benches);
