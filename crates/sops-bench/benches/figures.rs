//! One benchmark per paper figure: the kernel that regenerates each
//! figure, at `RunOptions::fast` scale so the whole suite completes in
//! minutes. Full-scale regeneration is `cargo run --release -p
//! sops-repro`.

use criterion::{criterion_group, criterion_main, Criterion};
use sops_core::figures;
use sops_core::RunOptions;
use std::hint::black_box;

fn fast_opts(seed: u64) -> RunOptions {
    RunOptions {
        fast: true,
        seed,
        threads: 0,
        out_dir: None,
    }
}

macro_rules! fig_bench {
    ($fn_name:ident, $group:literal, $module:ident, $samples:expr) => {
        fn $fn_name(c: &mut Criterion) {
            let mut group = c.benchmark_group("figures");
            group.sample_size($samples);
            group.bench_function($group, |b| {
                b.iter(|| black_box(figures::$module::run(&fast_opts(1))))
            });
            group.finish();
        }
    };
}

fig_bench!(bench_fig1, "fig1_example_configuration", fig1, 10);
fig_bench!(bench_fig2, "fig2_force_curves", fig2, 30);
fig_bench!(bench_fig3, "fig3_equilibria", fig3, 10);
fig_bench!(bench_fig4, "fig4_pipeline", fig4, 10);
fig_bench!(bench_fig5, "fig5_rings", fig5, 10);
fig_bench!(bench_fig6, "fig6_gallery", fig6, 10);
fig_bench!(bench_fig7, "fig7_alignment", fig7, 10);
fig_bench!(bench_fig8, "fig8_type_sweep", fig8, 10);
fig_bench!(bench_fig9, "fig9_radius_sweep", fig9, 10);
fig_bench!(bench_fig10, "fig10_types_radius", fig10, 10);
fig_bench!(bench_fig11, "fig11_decomposition", fig11, 10);
fig_bench!(bench_fig12, "fig12_emergent_structures", fig12, 10);

criterion_group!(
    benches,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12
);
criterion_main!(benches);
