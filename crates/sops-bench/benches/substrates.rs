//! Substrate microbenches: spatial indexes, assignment, clustering,
//! alignment and the scoped-thread parallel map.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sops_bench::{cloud, flat};
use sops_cluster::{kmeans, KMeansConfig};
use sops_math::{SplitMix64, Vec2};
use sops_shape::{hungarian, icp_align, IcpConfig, RigidTransform};
use sops_spatial::{brute, CellGrid, KdTree};
use std::hint::black_box;

fn bench_kdtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdtree");
    group.sample_size(30);
    for &n in &[100usize, 1000] {
        let pts = flat(&cloud(n, 20.0, 1));
        group.bench_with_input(BenchmarkId::new("build", n), &pts, |b, pts| {
            b.iter(|| KdTree::build(2, black_box(pts)))
        });
        let tree = KdTree::build(2, &pts);
        group.bench_with_input(BenchmarkId::new("knn10", n), &tree, |b, tree| {
            b.iter(|| tree.knn(black_box(&[0.3, -0.7]), 10))
        });
        // Larger k stresses the leaf-insertion structure: the bounded
        // max-heap sift is O(log k) per accepted point where the old
        // insertion re-sorted the whole candidate buffer.
        group.bench_with_input(BenchmarkId::new("knn64", n), &tree, |b, tree| {
            b.iter(|| tree.knn(black_box(&[0.3, -0.7]), 64))
        });
        group.bench_with_input(BenchmarkId::new("count_within", n), &tree, |b, tree| {
            b.iter(|| tree.count_within(black_box(&[0.3, -0.7]), 5.0, true))
        });
        group.bench_with_input(BenchmarkId::new("brute_knn10", n), &pts, |b, pts| {
            b.iter(|| brute::knn(2, black_box(pts), &[0.3, -0.7], 10))
        });
    }
    group.finish();
}

fn bench_cellgrid(c: &mut Criterion) {
    let mut group = c.benchmark_group("cellgrid");
    group.sample_size(30);
    for &n in &[100usize, 1000] {
        let pts = cloud(n, 20.0, 3);
        group.bench_with_input(BenchmarkId::new("build", n), &pts, |b, pts| {
            b.iter(|| CellGrid::build(black_box(pts), 2.0))
        });
        let grid = CellGrid::build(&pts, 2.0);
        group.bench_with_input(BenchmarkId::new("pairs_within", n), &grid, |b, grid| {
            b.iter(|| grid.pairs_within(2.0))
        });
        let fpts = flat(&pts);
        group.bench_with_input(BenchmarkId::new("brute_pairs", n), &fpts, |b, fpts| {
            b.iter(|| brute::pairs_within(2, black_box(fpts), 2.0))
        });
    }
    group.finish();
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    group.sample_size(30);
    for &n in &[16usize, 64, 128] {
        let mut rng = SplitMix64::new(7);
        let costs: Vec<f64> = (0..n * n).map(|_| rng.next_range(0.0, 100.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &costs, |b, costs| {
            b.iter(|| hungarian(n, black_box(costs)))
        });
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(30);
    for &n in &[60usize, 240] {
        let pts = cloud(n, 10.0, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| {
                kmeans(
                    black_box(pts),
                    &KMeansConfig {
                        k: 4,
                        ..KMeansConfig::default()
                    },
                    5,
                )
            })
        });
    }
    group.finish();
}

fn bench_icp_restarts(c: &mut Criterion) {
    // Ablation: alignment cost of the restart grid (DESIGN.md substitution
    // for PCL's single-run ICP).
    let mut group = c.benchmark_group("icp_restarts");
    group.sample_size(20);
    let reference = cloud(50, 5.0, 21);
    let types: Vec<u16> = (0..50).map(|i| (i % 3) as u16).collect();
    let t = RigidTransform {
        rotation: 2.3,
        translation: Vec2::new(4.0, -1.0),
    };
    let moving: Vec<Vec2> = reference.iter().map(|&p| t.apply(p)).collect();
    for &restarts in &[1usize, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(restarts),
            &restarts,
            |b, &restarts| {
                b.iter(|| {
                    icp_align(
                        black_box(&reference),
                        black_box(&moving),
                        &types,
                        &IcpConfig {
                            restarts,
                            ..IcpConfig::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_parallel_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_map");
    group.sample_size(20);
    // A compute-bound task: per-index trigonometric reduction.
    let work = |i: usize| -> f64 {
        let mut acc = 0.0;
        for j in 0..2_000 {
            acc += ((i * 31 + j) as f64).sqrt().sin();
        }
        acc
    };
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| sops_par::parallel_map(256, threads, work)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kdtree,
    bench_cellgrid,
    bench_hungarian,
    bench_kmeans,
    bench_icp_restarts,
    bench_parallel_map
);
criterion_main!(benches);
