//! Simulation benches: force-evaluation paths, integrator ablations and
//! ensemble throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sops_bench::cloud;
use sops_math::PairMatrix;
use sops_sim::ensemble::{run_ensemble, EnsembleSpec};
use sops_sim::force::{ForceModel, GaussianForce, LinearForce};
use sops_sim::{ForceWorkspace, IntegratorConfig, Model, Simulation};
use std::hint::black_box;

fn linear_model(n: usize, cutoff: f64) -> Model {
    Model::balanced(
        n,
        ForceModel::Linear(LinearForce::uniform(1.0, 2.0)),
        cutoff,
    )
}

fn bench_force_paths(c: &mut Criterion) {
    // The cell-grid path activates for finite cutoff and n >= 64; compare
    // against the direct O(n²) loop via an infinite cutoff of equal work.
    // Both paths run through a persistent ForceWorkspace, the engine the
    // integrator drives every substep.
    let mut group = c.benchmark_group("net_forces");
    group.sample_size(30);
    let mut ws = ForceWorkspace::new();
    for &n in &[50usize, 200, 512, 800] {
        let pts = cloud(n, (n as f64).sqrt(), 5);
        let grid_model = linear_model(n, 3.0);
        let direct_model = linear_model(n, f64::INFINITY);
        let mut out = Vec::new();
        group.bench_with_input(BenchmarkId::new("cutoff_grid", n), &pts, |b, pts| {
            b.iter(|| ws.net_forces_into(&grid_model, black_box(pts), &mut out))
        });
        group.bench_with_input(BenchmarkId::new("all_pairs", n), &pts, |b, pts| {
            b.iter(|| ws.net_forces_into(&direct_model, black_box(pts), &mut out))
        });
    }
    group.finish();
}

fn bench_workspace_reuse(c: &mut Criterion) {
    // Cost of NOT holding a workspace: Model::net_forces is the one-shot
    // convenience path that re-allocates grid and scratch per call.
    let mut group = c.benchmark_group("workspace");
    group.sample_size(30);
    let n = 512;
    let pts = cloud(n, (n as f64).sqrt(), 5);
    let model = linear_model(n, 3.0);
    let mut out = Vec::new();
    let mut ws = ForceWorkspace::new();
    group.bench_function("persistent/512", |b| {
        b.iter(|| ws.net_forces_into(&model, black_box(&pts), &mut out))
    });
    group.bench_function("one_shot/512", |b| {
        b.iter(|| model.net_forces(black_box(&pts), &mut out))
    });
    group.finish();
}

fn bench_force_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("force_family");
    group.sample_size(30);
    let n = 100;
    let pts = cloud(n, 10.0, 9);
    let mut out = Vec::new();
    let mut ws = ForceWorkspace::new();
    let linear = linear_model(n, f64::INFINITY);
    let gaussian = Model::balanced(
        n,
        ForceModel::Gaussian(GaussianForce::from_preferred_distance(
            PairMatrix::constant(1, 3.0),
            &PairMatrix::constant(1, 2.0),
        )),
        f64::INFINITY,
    );
    group.bench_function("f1_linear", |b| {
        b.iter(|| ws.net_forces_into(&linear, black_box(&pts), &mut out))
    });
    group.bench_function("f2_gaussian", |b| {
        b.iter(|| ws.net_forces_into(&gaussian, black_box(&pts), &mut out))
    });
    group.finish();
}

fn bench_substeps_ablation(c: &mut Criterion) {
    // Ablation for DESIGN.md #2: cost of integrating one recorded step at
    // different substep counts (accuracy/stability trade-off).
    let mut group = c.benchmark_group("integrator_substeps");
    group.sample_size(20);
    for &substeps in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(substeps),
            &substeps,
            |b, &substeps| {
                let cfg = IntegratorConfig {
                    dt: 0.05,
                    substeps,
                    noise_variance: 0.0025,
                    max_step: 0.5,
                    ..IntegratorConfig::default()
                };
                b.iter(|| {
                    let mut sim =
                        Simulation::with_disc_init(linear_model(50, f64::INFINITY), cfg, 4.0, 3);
                    for _ in 0..10 {
                        sim.step();
                    }
                    black_box(sim.positions()[0])
                })
            },
        );
    }
    group.finish();
}

fn bench_ensemble_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensemble");
    group.sample_size(10);
    for &threads in &[1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let spec = EnsembleSpec {
                    model: linear_model(20, f64::INFINITY),
                    integrator: IntegratorConfig::default(),
                    init_radius: 3.0,
                    t_max: 50,
                    samples: 64,
                    seed: 12,
                    criterion: None,
                };
                b.iter(|| run_ensemble(black_box(&spec), threads))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_force_paths,
    bench_workspace_reuse,
    bench_force_families,
    bench_substeps_ablation,
    bench_ensemble_throughput
);
criterion_main!(benches);
