//! Simulation benches: force-evaluation paths, integrator ablations and
//! ensemble throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sops_bench::cloud;
use sops_core::{
    checkpoint, scenario, CellCache, EnsembleStorage, SweepBroker, SweepPlan, SweepRunner,
};
use sops_info::MeasureConfig;
use sops_math::{PairMatrix, Vec2};
use sops_sim::ensemble::{run_ensemble, EnsembleSpec};
use sops_sim::force::{ForceModel, GaussianForce, LinearForce};
use sops_sim::{ForceWorkspace, IntegratorConfig, Model, Simulation};
use sops_spatial::{CellGrid, KdTree};
use std::hint::black_box;

fn linear_model(n: usize, cutoff: f64) -> Model {
    Model::balanced(
        n,
        ForceModel::Linear(LinearForce::uniform(1.0, 2.0)),
        cutoff,
    )
}

fn bench_force_paths(c: &mut Criterion) {
    // The cell-grid path activates for finite cutoff and n >= 64; compare
    // against the direct O(n²) loop via an infinite cutoff of equal work.
    // Both paths run through a persistent ForceWorkspace, the engine the
    // integrator drives every substep.
    let mut group = c.benchmark_group("net_forces");
    group.sample_size(30);
    let mut ws = ForceWorkspace::new();
    for &n in &[50usize, 200, 512, 800] {
        let pts = cloud(n, (n as f64).sqrt(), 5);
        let grid_model = linear_model(n, 3.0);
        let direct_model = linear_model(n, f64::INFINITY);
        let mut out = Vec::new();
        group.bench_with_input(BenchmarkId::new("cutoff_grid", n), &pts, |b, pts| {
            b.iter(|| ws.net_forces_into(&grid_model, black_box(pts), &mut out))
        });
        group.bench_with_input(BenchmarkId::new("all_pairs", n), &pts, |b, pts| {
            b.iter(|| ws.net_forces_into(&direct_model, black_box(pts), &mut out))
        });
    }
    group.finish();
}

fn bench_force_crossover(c: &mut Criterion) {
    // Which spatial structure should back the short-range force sweep?
    // Both variants pay the realistic per-step cost — rebuild the index
    // over the (moved) positions, then one neighbourhood query per
    // particle feeding the same linear-spring kernel. The cell grid's
    // 3×3 sweep scans O(ρ·r_c²) candidates with no traversal overhead;
    // the kd-tree prunes empty space but pays log-depth descents and a
    // heavier rebuild. Sweeping the cut-off at fixed density measures
    // the crossover instead of guessing it; the README "Performance"
    // section records which structure wins where.
    let mut group = c.benchmark_group("force_crossover");
    group.sample_size(20);
    let n = 512;
    let pts = cloud(n, (n as f64).sqrt(), 5);
    let flat: Vec<f64> = pts.iter().flat_map(|p| [p.x, p.y]).collect();
    let (k, r0) = (1.0, 2.0);
    let spring = |p: Vec2, q: Vec2| -> Vec2 {
        let d = p.dist(q);
        if d > 0.0 {
            (q - p) * (k * (d - r0) / d)
        } else {
            Vec2::ZERO
        }
    };
    for &cutoff in &[1.5f64, 3.0, 6.0, 12.0] {
        let mut grid = CellGrid::build(&pts, cutoff);
        group.bench_with_input(
            BenchmarkId::new("cell_grid", cutoff),
            &cutoff,
            |b, &cutoff| {
                b.iter(|| {
                    grid.rebuild(black_box(&pts), cutoff);
                    let mut acc = Vec2::ZERO;
                    for (i, &p) in pts.iter().enumerate() {
                        let mut f = Vec2::ZERO;
                        grid.for_neighbors(p, cutoff, i, |j, _| f += spring(p, pts[j]));
                        acc += f;
                    }
                    acc
                })
            },
        );
        let mut tree = KdTree::build(2, &flat);
        group.bench_with_input(
            BenchmarkId::new("kd_tree", cutoff),
            &cutoff,
            |b, &cutoff| {
                b.iter(|| {
                    tree.rebuild(2, black_box(&flat));
                    let mut acc = Vec2::ZERO;
                    for (i, &p) in pts.iter().enumerate() {
                        let mut f = Vec2::ZERO;
                        tree.for_each_within(&flat[2 * i..2 * i + 2], cutoff, |j| {
                            if j != i {
                                f += spring(p, pts[j]);
                            }
                        });
                        acc += f;
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

fn bench_workspace_reuse(c: &mut Criterion) {
    // Cost of NOT holding a workspace: Model::net_forces is the one-shot
    // convenience path that re-allocates grid and scratch per call.
    let mut group = c.benchmark_group("workspace");
    group.sample_size(30);
    let n = 512;
    let pts = cloud(n, (n as f64).sqrt(), 5);
    let model = linear_model(n, 3.0);
    let mut out = Vec::new();
    let mut ws = ForceWorkspace::new();
    group.bench_function("persistent/512", |b| {
        b.iter(|| ws.net_forces_into(&model, black_box(&pts), &mut out))
    });
    group.bench_function("one_shot/512", |b| {
        b.iter(|| model.net_forces(black_box(&pts), &mut out))
    });
    group.finish();
}

fn bench_force_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("force_family");
    group.sample_size(30);
    let n = 100;
    let pts = cloud(n, 10.0, 9);
    let mut out = Vec::new();
    let mut ws = ForceWorkspace::new();
    let linear = linear_model(n, f64::INFINITY);
    let gaussian = Model::balanced(
        n,
        ForceModel::Gaussian(GaussianForce::from_preferred_distance(
            PairMatrix::constant(1, 3.0),
            &PairMatrix::constant(1, 2.0),
        )),
        f64::INFINITY,
    );
    group.bench_function("f1_linear", |b| {
        b.iter(|| ws.net_forces_into(&linear, black_box(&pts), &mut out))
    });
    group.bench_function("f2_gaussian", |b| {
        b.iter(|| ws.net_forces_into(&gaussian, black_box(&pts), &mut out))
    });
    group.finish();
}

fn bench_substeps_ablation(c: &mut Criterion) {
    // Ablation for DESIGN.md #2: cost of integrating one recorded step at
    // different substep counts (accuracy/stability trade-off).
    let mut group = c.benchmark_group("integrator_substeps");
    group.sample_size(20);
    for &substeps in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(substeps),
            &substeps,
            |b, &substeps| {
                let cfg = IntegratorConfig {
                    dt: 0.05,
                    substeps,
                    noise_variance: 0.0025,
                    max_step: 0.5,
                    ..IntegratorConfig::default()
                };
                b.iter(|| {
                    let mut sim =
                        Simulation::with_disc_init(linear_model(50, f64::INFINITY), cfg, 4.0, 3);
                    for _ in 0..10 {
                        sim.step();
                    }
                    black_box(sim.positions()[0])
                })
            },
        );
    }
    group.finish();
}

fn bench_ensemble_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensemble");
    group.sample_size(10);
    for &threads in &[1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let spec = EnsembleSpec {
                    model: linear_model(20, f64::INFINITY),
                    integrator: IntegratorConfig::default(),
                    init_radius: 3.0,
                    t_max: 50,
                    samples: 64,
                    seed: 12,
                    criterion: None,
                };
                b.iter(|| run_ensemble(black_box(&spec), threads))
            },
        );
    }
    group.finish();
}

fn bench_ensemble_scale(c: &mut Criterion) {
    // What the streaming layer buys at the gallery's XL tier: one full
    // sweep cell (simulate + reduce + measure) at 10⁵ particles under
    // both storage policies, at the scenario's own sparse eval schedule.
    // Case order is deliberate: the JSON's per-result `peak_rss_bytes` is
    // a process-wide high-water mark, so the bounded-memory streaming
    // case runs first and records its own footprint; the retained
    // reference then raises the mark by the full-trajectory cost
    // (8 samples × 101 frames × n positions, ~1.3 GB at n = 10⁵).
    // `--quick` drops to 10⁴ particles; the id carries n either way.
    let mut group = c.benchmark_group("ensemble_scale");
    group.sample_size(10);
    let n = if criterion::is_quick() {
        10_000
    } else {
        100_000
    };
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(8);
    let xl = scenario::cell_sorting_xl().with_particles(n);
    let cases = [
        ("streaming", EnsembleStorage::default()),
        ("retained", EnsembleStorage::Retained),
    ];
    for (label, storage) in cases {
        let plan = SweepPlan {
            scenarios: vec![xl.clone()],
            measures: vec![MeasureConfig::default()],
            seeds: vec![],
            threads,
            storage,
        };
        group.bench_with_input(BenchmarkId::new(label, n), &plan, |b, plan| {
            let mut runner = SweepRunner::new();
            b.iter(|| {
                let report = runner.run(black_box(plan)).expect("valid plan");
                assert!(!report.has_failures());
                black_box(report.cells.len())
            })
        });
    }
    group.finish();
}

fn bench_sweep_cache(c: &mut Criterion) {
    // What the content-addressed cell cache buys: `cold_compute` pays the
    // full simulate + reduce + measure + store cost for one fast
    // cell_sorting cell, `warm_hit` answers the same request from disk
    // (the gated case: a hit must stay ≥ ~100× cheaper than the compute),
    // and `coalesced_pair` issues two identical concurrent requests
    // through the broker — the pair should cost about one compute, not
    // two, because the second request joins the first's in-flight pass.
    let mut group = c.benchmark_group("sweep_cache");
    group.sample_size(10);
    let sc = scenario::cell_sorting().with_scale(40, 20);
    let measure = MeasureConfig::Gaussian;
    let plan = SweepPlan {
        scenarios: vec![sc.clone()],
        measures: vec![measure],
        seeds: vec![],
        threads: 1,
        storage: EnsembleStorage::default(),
    };
    let key = checkpoint::cell_key(&sc, &measure).expect("registry scenarios serialize");
    let dir = std::env::temp_dir().join("sops_bench_sweep_cache");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = CellCache::open(&dir).expect("temp cache dir");

    group.bench_function("cold_compute", |b| {
        let mut runner = SweepRunner::new();
        b.iter(|| {
            // Evict the entry so every iteration simulates and stores.
            let _ = std::fs::remove_file(cache.entry_path(key));
            let report = runner
                .run_with_cache(black_box(&plan), &cache)
                .expect("valid plan");
            assert!(!report.has_failures());
            black_box(report.cells.len())
        })
    });

    // One stored copy; every iteration below is a pure disk hit.
    let mut runner = SweepRunner::new();
    runner.run_with_cache(&plan, &cache).expect("valid plan");
    group.bench_function("warm_hit", |b| {
        b.iter(|| {
            let report = runner
                .run_with_cache(black_box(&plan), &cache)
                .expect("valid plan");
            assert!(!report.has_failures());
            black_box(report.cells.len())
        })
    });

    group.bench_function("coalesced_pair", |b| {
        // Uncached broker: each iteration recomputes, and the concurrent
        // duplicate dedupes onto the in-flight pass.
        let broker = std::sync::Arc::new(SweepBroker::new());
        b.iter(|| {
            let spawn = || {
                let broker = std::sync::Arc::clone(&broker);
                let plan = plan.clone();
                std::thread::spawn(move || broker.run(&plan).expect("valid plan").cells.len())
            };
            let (a, b2) = (spawn(), spawn());
            black_box(a.join().unwrap() + b2.join().unwrap())
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_force_paths,
    bench_force_crossover,
    bench_workspace_reuse,
    bench_force_families,
    bench_substeps_ablation,
    bench_ensemble_throughput,
    bench_ensemble_scale,
    bench_sweep_cache
);
criterion_main!(benches);
