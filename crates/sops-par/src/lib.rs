//! Minimal scoped-thread data parallelism.
//!
//! The workloads in this workspace are embarrassingly parallel over an
//! index range: `m` ensemble samples to simulate, `t_max` time steps to
//! align and estimate, `R` random matrix draws to sweep. Rather than pull
//! in a full work-stealing runtime, this crate provides a tiny,
//! dependency-free parallel map built on [`std::thread::scope`] with an
//! atomic work counter for dynamic load balancing.
//!
//! Design points (see the Rust Performance Book & "Rust Atomics and Locks"
//! guidance this workspace follows):
//!
//! * **Determinism** — results are written into pre-allocated output slots
//!   indexed by task id, so the output order never depends on the thread
//!   schedule. Seed *derivation* (not shared streams) keeps stochastic
//!   tasks reproducible; see `sops_math::rng::derive_seed`.
//! * **Dynamic balancing** — workers claim indices with `fetch_add`
//!   (relaxed ordering suffices: the counter is only a work dispenser and
//!   `scope` join provides the final happens-before edge).
//! * **Panic safety** — a panicking task aborts the scope with the
//!   original panic payload, matching `std::thread::scope` semantics.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maximum number of worker threads used by [`parallel_map`] /
/// [`parallel_for`] when no explicit count is given.
///
/// Resolution order: the `SOPS_THREADS` environment variable if set and
/// parseable, else [`std::thread::available_parallelism`], else 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SOPS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every index in `0..len`, in parallel, collecting results
/// in index order.
///
/// `f` must be `Sync` (it is shared by reference across workers) and the
/// produced values are written into their index's slot, so the output is
/// identical to `(0..len).map(f).collect()` regardless of scheduling.
///
/// Falls back to a sequential loop when `len` or the thread count is 1 —
/// callers don't pay thread spawn costs for trivial work.
pub fn parallel_map<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(len.max(1));
    if threads == 1 || len <= 1 {
        return (0..len).map(f).collect();
    }

    let mut out: Vec<Option<T>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    {
        let next = AtomicUsize::new(0);
        let out_slots = SliceCells::new(&mut out);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    // Relaxed is enough: the counter only dispenses indices;
                    // scope join synchronizes the writes below.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let value = f(i);
                    // SAFETY: every index is claimed exactly once by the
                    // fetch_add above, so no two threads write slot `i`.
                    unsafe { out_slots.write(i, Some(value)) };
                });
            }
        });
    }
    out.into_iter()
        .map(|slot| slot.expect("parallel_map: slot not filled"))
        .collect()
}

/// Like [`parallel_map`] but each worker thread owns one element of
/// `workers` — persistent per-worker state (scratch buffers, caches)
/// reused across every index that worker claims.
///
/// The worker count is `workers.len()`. Which worker processes which
/// index depends on scheduling, so `f` must produce a result that does
/// not depend on the worker's accumulated state (workspaces that only
/// cache buffer *capacity* satisfy this); the output is written into
/// index-ordered slots exactly like [`parallel_map`].
///
/// # Panics
///
/// Panics if `workers` is empty.
pub fn parallel_map_with<T, W, F>(len: usize, workers: &mut [W], f: F) -> Vec<T>
where
    T: Send,
    W: Send,
    F: Fn(&mut W, usize) -> T + Sync,
{
    assert!(!workers.is_empty(), "parallel_map_with: no workers");
    let threads = workers.len().min(len.max(1));
    if threads == 1 || len <= 1 {
        let w = &mut workers[0];
        return (0..len).map(|i| f(w, i)).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    {
        let next = AtomicUsize::new(0);
        let out_slots = SliceCells::new(&mut out);
        let next = &next;
        let out_slots = &out_slots;
        let f = &f;
        std::thread::scope(|scope| {
            for w in workers.iter_mut().take(threads) {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let value = f(w, i);
                    // SAFETY: every index is claimed exactly once by the
                    // fetch_add above, so no two threads write slot `i`.
                    unsafe { out_slots.write(i, Some(value)) };
                });
            }
        });
    }
    out.into_iter()
        .map(|slot| slot.expect("parallel_map_with: slot not filled"))
        .collect()
}

/// Like [`parallel_map`] but with the default thread count.
pub fn parallel_map_auto<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map(len, default_threads(), f)
}

/// Runs `f(i)` for every index in `0..len` in parallel, for side effects.
pub fn parallel_for<F>(len: usize, threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = threads.max(1).min(len.max(1));
    if threads == 1 || len <= 1 {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                f(i);
            });
        }
    });
}

/// Splits `data` into disjoint mutable chunks and runs `f(chunk_index,
/// chunk)` on each in parallel.
///
/// Chunks are as even as possible: the first `len % chunks` chunks get one
/// extra element. Useful for in-place per-slice transformations (e.g.
/// aligning each sample's particle vector).
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunks: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunks = chunks.max(1);
    let len = data.len();
    let base = len / chunks;
    let extra = len % chunks;
    let threads = threads.max(1).min(chunks);
    if threads == 1 || chunks == 1 {
        // Sequential fast path: same deterministic partition, no thread
        // spawn cost — hot per-substep callers (the force sweep) rely on
        // this when inner parallelism is disabled.
        let mut rest = data;
        for c in 0..chunks {
            let take = base + usize::from(c < extra);
            let (head, tail) = rest.split_at_mut(take.min(rest.len()));
            f(c, head);
            rest = tail;
        }
        return;
    }
    let mut slices: Vec<(usize, &mut [T])> = Vec::with_capacity(chunks);
    let mut rest = data;
    for c in 0..chunks {
        let take = base + usize::from(c < extra);
        let (head, tail) = rest.split_at_mut(take.min(rest.len()));
        slices.push((c, head));
        rest = tail;
    }
    let next = AtomicUsize::new(0);
    let cells = SliceCells::new(&mut slices);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= chunks {
                    break;
                }
                // SAFETY: each index claimed once; we only take the chunk
                // out of its slot, never alias it.
                let (idx, chunk) = unsafe { cells.take(i) };
                f(idx, chunk);
            });
        }
    });
}

/// Parallel fold-then-reduce over `0..len`.
///
/// Each worker folds its claimed indices into a thread-local accumulator
/// created by `init`, and the per-worker accumulators are combined with
/// `merge` in worker order. `merge` must be associative and `init` must be
/// its identity for the result to be schedule-independent; all uses in this
/// workspace (statistics merging, sum of force norms) satisfy that.
pub fn parallel_reduce<A, F, M, I>(len: usize, threads: usize, init: I, fold: F, merge: M) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, usize) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let threads = threads.max(1).min(len.max(1));
    if threads == 1 || len <= 1 {
        return (0..len).fold(init(), &fold);
    }
    let next = AtomicUsize::new(0);
    let partials: Vec<A> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut acc = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        acc = fold(acc, i);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_reduce: worker panicked"))
            .collect()
    });
    partials.into_iter().fold(init(), merge)
}

/// Interior-mutability wrapper granting per-index write access to a slice
/// from multiple threads.
///
/// Safety contract: callers must guarantee each index is accessed by at
/// most one thread (enforced in this crate by the `fetch_add` index
/// dispenser).
struct SliceCells<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access discipline (unique index per thread) is upheld by callers
// within this crate; T: Send makes moving values across threads sound.
unsafe impl<T: Send> Sync for SliceCells<'_, T> {}
unsafe impl<T: Send> Send for SliceCells<'_, T> {}

impl<'a, T> SliceCells<'a, T> {
    fn new(slice: &'a mut [T]) -> Self {
        SliceCells {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Writes `value` into slot `i`, dropping the previous value.
    ///
    /// # Safety
    ///
    /// `i < len` and no other thread may access slot `i` concurrently.
    unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = value;
    }

    /// Moves the value out of slot `i` (leaving moved-from memory that must
    /// not be touched again), used for handing `&mut` chunks to workers.
    ///
    /// # Safety
    ///
    /// `i < len`, slot `i` accessed by exactly one thread, and the caller
    /// must ensure the original slice is not used after the scope in a way
    /// that observes the moved-from slot. In this crate the slot type is
    /// `(usize, &mut [T])` which is `Copy`-free but the containing `Vec` is
    /// dropped immediately after the scope without reads.
    #[allow(clippy::mut_from_ref)]
    unsafe fn take(&self, i: usize) -> T
    where
        T: Sized,
    {
        debug_assert!(i < self.len);
        std::ptr::read(self.ptr.add(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_matches_sequential() {
        let par = parallel_map(1000, 8, |i| i * i);
        let seq: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn map_with_one_thread_and_empty() {
        assert_eq!(parallel_map(5, 1, |i| i + 1), vec![1, 2, 3, 4, 5]);
        let empty: Vec<usize> = parallel_map(0, 8, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn map_auto_threads() {
        let out = parallel_map_auto(100, |i| 2 * i);
        assert_eq!(out[99], 198);
    }

    #[test]
    fn map_preserves_order_under_uneven_work() {
        // Make early indices slow so late indices finish first.
        let out = parallel_map(64, 8, |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn map_with_matches_sequential_and_uses_workers() {
        let mut workers: Vec<u64> = vec![0; 4];
        let out = parallel_map_with(100, &mut workers, |w, i| {
            *w += 1;
            i * 3
        });
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        // Every index was claimed by exactly one worker.
        assert_eq!(workers.iter().sum::<u64>(), 100);
    }

    #[test]
    fn map_with_single_worker_is_sequential() {
        let mut workers = vec![String::new()];
        let out = parallel_map_with(5, &mut workers, |w, i| {
            w.push('x');
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(workers[0].len(), 5);
    }

    #[test]
    fn for_each_visits_every_index_once() {
        let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        parallel_for(500, 8, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn chunks_mut_partitions_fully() {
        let mut data: Vec<u64> = vec![0; 103];
        parallel_chunks_mut(&mut data, 7, 4, |c, chunk| {
            for v in chunk.iter_mut() {
                *v = c as u64 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0), "all elements touched");
        // First 103 % 7 = 5 chunks have 15 elements, rest 14.
        assert_eq!(data.iter().filter(|&&v| v == 1).count(), 15);
        assert_eq!(data.iter().filter(|&&v| v == 7).count(), 14);
    }

    #[test]
    fn chunks_mut_sequential_path_matches_parallel() {
        let run = |threads: usize| {
            let mut data: Vec<u64> = vec![0; 103];
            parallel_chunks_mut(&mut data, 7, threads, |c, chunk| {
                for v in chunk.iter_mut() {
                    *v = c as u64 + 1;
                }
            });
            data
        };
        assert_eq!(run(1), run(4), "partition is thread-count independent");
    }

    #[test]
    fn chunks_mut_more_chunks_than_items() {
        let mut data = vec![1u32; 3];
        parallel_chunks_mut(&mut data, 10, 4, |_, chunk| {
            for v in chunk.iter_mut() {
                *v += 1;
            }
        });
        assert_eq!(data, vec![2, 2, 2]);
    }

    #[test]
    fn reduce_sums_correctly() {
        let total = parallel_reduce(10_000, 8, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn reduce_single_thread_path() {
        let total = parallel_reduce(10, 1, || 1u64, |acc, i| acc * (i as u64 + 1), |a, b| a * b);
        assert_eq!(total, 3_628_800); // 10!
    }

    #[test]
    fn stress_many_small_maps() {
        for round in 0..50 {
            let out = parallel_map(17, 8, move |i| i + round);
            assert_eq!(out[16], 16 + round);
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn map_handles_non_copy_results() {
        let out = parallel_map(100, 4, |i| vec![i; i % 5]);
        assert_eq!(out[7], vec![7, 7]);
        assert!(out[0].is_empty());
    }
}
