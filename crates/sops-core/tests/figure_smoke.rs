//! Smoke coverage for every figure generator.
//!
//! `tests/paper_claims.rs` (umbrella crate) checks the *claims* of a subset
//! of figures; these tests only assert that each `figN::run` completes at
//! smoke scale and produces finite, non-empty series, so a regression in
//! any generator is caught even where no paper claim is asserted.

use sops_core::figures;
use sops_core::RunOptions;

fn fast_opts() -> RunOptions {
    RunOptions {
        fast: true,
        seed: 0xF16_57707,
        ..RunOptions::default()
    }
}

fn assert_finite_series(name: &str, values: &[f64]) {
    assert!(!values.is_empty(), "{name}: empty series");
    for (i, v) in values.iter().enumerate() {
        assert!(v.is_finite(), "{name}[{i}] = {v} is not finite");
    }
}

#[test]
fn fig1_smoke() {
    let d = figures::fig1::run(&fast_opts());
    assert!(!d.config.is_empty());
    assert_eq!(d.config.len(), d.types.len());
    assert_finite_series("separation", &[d.type_separation, d.initial_separation]);
}

#[test]
fn fig2_smoke() {
    let d = figures::fig2::run(&fast_opts());
    assert_eq!(d.x.len(), d.f1.len());
    assert_eq!(d.x.len(), d.f2.len());
    assert_finite_series("f1", &d.f1);
    assert_finite_series("f2", &d.f2);
}

#[test]
fn fig3_smoke() {
    let d = figures::fig3::run(&fast_opts());
    assert!(!d.panels.is_empty());
    for p in &d.panels {
        assert!(!p.config.is_empty(), "l={}: empty configuration", p.types);
        assert_finite_series(&format!("l={} nn_cv", p.types), &[p.nn_cv]);
    }
}

#[test]
fn fig4_smoke() {
    let d = figures::fig4::run(&fast_opts());
    assert_eq!(d.mi.times.len(), d.mi.values.len());
    assert_finite_series("mi", &d.mi.values);
    assert!(!d.snapshots.is_empty());
}

#[test]
fn fig5_smoke() {
    let d = figures::fig5::run(&fast_opts());
    assert_eq!(d.mi.times.len(), d.mi.values.len());
    assert_finite_series("mi", &d.mi.values);
}

#[test]
fn fig6_smoke() {
    let d = figures::fig6::run(&fast_opts());
    assert!(!d.snapshots.is_empty());
    assert_finite_series("spread", &[d.rg_std, d.separation_std]);
    assert!(!d.categories.is_empty());
}

#[test]
fn fig7_smoke() {
    let d = figures::fig7::run(&fast_opts());
    assert!(!d.overlay.is_empty());
    assert_finite_series("dispersion", &d.dispersion);
    for (radius, dispersion, members) in &d.rings {
        assert!(radius.is_finite() && dispersion.is_finite());
        assert!(*members > 0);
    }
}

#[test]
fn fig8_smoke() {
    let d = figures::fig8::run(&fast_opts());
    assert_eq!(d.type_counts.len(), d.delta_i.len());
    assert_finite_series("delta_i", &d.delta_i);
    assert_finite_series("delta_i_std", &d.delta_i_std);
    assert!(d.draws > 0);
}

#[test]
fn fig9_smoke() {
    let d = figures::fig9::run(&fast_opts());
    assert_eq!(d.curves.len(), d.cutoffs.len());
    for c in &d.curves {
        assert_eq!(c.times.len(), c.mean_mi.len());
        assert_finite_series(&c.label, &c.mean_mi);
    }
}

#[test]
fn fig10_smoke() {
    let d = figures::fig10::run(&fast_opts());
    assert_eq!(d.curves.len(), d.combos.len());
    for c in &d.curves {
        assert_eq!(c.times.len(), c.mean_mi.len());
        assert_finite_series(&c.label, &c.mean_mi);
    }
}

#[test]
fn fig11_smoke() {
    let d = figures::fig11::run(&fast_opts());
    assert_eq!(d.times.len(), d.normalized.len());
    assert_eq!(d.times.len(), d.total.len());
    assert_finite_series("total", &d.total);
    for row in d.normalized.iter().flatten() {
        assert_finite_series("normalized row", row);
    }
}

#[test]
fn fig12_smoke() {
    let d = figures::fig12::run(&fast_opts());
    assert!(!d.panels.is_empty());
    for p in &d.panels {
        assert!(!p.config.is_empty(), "{}: empty configuration", p.label);
        assert_finite_series(&p.label, &[p.stratification]);
    }
}
