//! Figure 6 — snapshots of different ensemble samples at `t = 60` and
//! `t = 250` (the shape variety of the Fig. 4 experiment).
//!
//! Paper: final shapes vary across samples but fall into a small number
//! of visually distinguishable categories (e.g. a dark triangular core
//! vs a sandwiched light cluster). Reproduced by rendering several
//! samples at both times and summarizing the across-sample variety with
//! shape statistics (radius of gyration and type-separation spread).

use crate::metrics;
use crate::report;
use crate::RunOptions;
use sops_math::{stats, Vec2};
use sops_shape::distance::{category_count, cluster_shapes};
use sops_shape::IcpConfig;
use sops_sim::ensemble::run_ensemble;

/// Snapshots and variety statistics.
#[derive(Debug, Clone)]
pub struct Fig6Data {
    /// `(sample, t, configuration)` snapshots.
    pub snapshots: Vec<(usize, usize, Vec<Vec2>)>,
    /// Particle types.
    pub types: Vec<u16>,
    /// Across-sample std of the radius of gyration at the final step.
    pub rg_std: f64,
    /// Across-sample std of the type-separation metric at the final step.
    pub separation_std: f64,
    /// Shape-category label of each sample's final configuration
    /// (single-linkage clustering in Procrustes shape distance).
    pub categories: Vec<usize>,
    /// The two snapshot times used.
    pub times: (usize, usize),
}

/// Runs the Fig. 6 analysis on the Fig. 4 ensemble.
pub fn run(opts: &RunOptions) -> Fig6Data {
    let p = super::fig4::pipeline(opts);
    let mut spec = p.ensemble.clone();
    // The gallery needs only a handful of runs; shrink the ensemble but
    // keep seeds aligned with Fig. 4's samples.
    spec.samples = spec.samples.min(opts.scale(8, 4));
    let ensemble = run_ensemble(&spec, opts.threads);
    let t_mid = opts.scale(60, 40).min(spec.t_max);
    let t_end = spec.t_max;
    let types = spec.model.types().to_vec();

    let mut snapshots = Vec::new();
    for s in 0..ensemble.samples() {
        snapshots.push((s, t_mid, ensemble.runs[s].frames[t_mid].clone()));
        snapshots.push((s, t_end, ensemble.runs[s].frames[t_end].clone()));
    }

    let finals: Vec<&Vec<Vec2>> = ensemble.runs.iter().map(|r| &r.frames[t_end]).collect();
    let rgs: Vec<f64> = finals
        .iter()
        .map(|c| metrics::radius_of_gyration(c))
        .collect();
    let seps: Vec<f64> = finals
        .iter()
        .map(|c| metrics::type_separation(c, &types, 3))
        .collect();
    // The paper's "visually distinguishable categories", quantified:
    // single-linkage clusters in Procrustes shape distance. The threshold
    // scales with the collective size (mean radius of gyration).
    let views: Vec<&[Vec2]> = finals.iter().map(|c| c.as_slice()).collect();
    let threshold = 0.5 * stats::mean(&rgs);
    let categories = cluster_shapes(&views, &types, threshold, &IcpConfig::default());
    let data = Fig6Data {
        snapshots,
        types,
        rg_std: stats::variance(&rgs).sqrt(),
        separation_std: stats::variance(&seps).sqrt(),
        categories,
        times: (t_mid, t_end),
    };
    if let Some(path) = super::csv_path(opts, "fig6_variety.csv") {
        let rows: Vec<Vec<f64>> = rgs
            .iter()
            .zip(&seps)
            .enumerate()
            .map(|(s, (&rg, &sep))| vec![s as f64, rg, sep])
            .collect();
        report::write_csv(
            &path,
            &["sample", "radius_of_gyration", "type_separation"],
            &rows,
        )
        .expect("fig6 csv");
    }
    data
}

impl Fig6Data {
    /// Renders a sample × time snapshot gallery.
    pub fn print(&self) {
        println!(
            "Fig 6 — sample gallery at t = {} and t = {}",
            self.times.0, self.times.1
        );
        for (s, t, cfg) in &self.snapshots {
            println!(
                "{}",
                report::scatter_plot(&format!("  sample {s}, t = {t}"), cfg, &self.types, 44, 12)
            );
        }
        println!(
            "  shape variety at the final step: std(radius of gyration) = {:.3}, std(type separation) = {:.3}",
            self.rg_std, self.separation_std
        );
        println!(
            "  shape categories (Procrustes single-linkage): {} across {} samples, labels {:?}",
            category_count(&self.categories),
            self.categories.len(),
            self.categories
        );
        println!("  (paper: several distinct final shape categories across samples)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallery_has_variety() {
        let data = run(&RunOptions {
            fast: true,
            ..RunOptions::default()
        });
        assert!(!data.snapshots.is_empty());
        // Different samples genuinely differ (non-zero shape spread).
        assert!(data.rg_std > 0.0);
        // Two snapshots per sample.
        assert_eq!(data.snapshots.len() % 2, 0);
        // Every sample got a category label.
        assert_eq!(data.categories.len() * 2, data.snapshots.len());
        let n_cat = category_count(&data.categories);
        assert!(n_cat >= 1 && n_cat <= data.categories.len());
    }
}
