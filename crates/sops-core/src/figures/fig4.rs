//! Figure 4 — multi-information over time for the flagship 3-type
//! collective, with snapshots of one sample.
//!
//! Paper parameters: `n = 50`, `l = 3`, `r_c = 5.0`,
//! `r = [[2.5, 5, 4], [5, 2.5, 2], [4, 2, 3.5]]`, snapshots at
//! `t ∈ {0, 10, 20, 50, 249}`; the multi-information rises from ≈2 bits
//! to ≈10 bits by `t = 250`, correlating with the visible organization.
//!
//! The force family is not named in the caption; we use `F¹` with
//! `k_{αβ} = 1`, which produces the cohesive sorted blob with
//! membrane-like layers visible in the paper's snapshots (an `F²`
//! collective cannot cohere — see DESIGN.md #3).

use crate::pipeline::{run_pipeline, MiSeries, Pipeline};
use crate::report::{self, Series};
use crate::RunOptions;
use sops_math::{PairMatrix, Vec2};
use sops_sim::ensemble::EnsembleSpec;
use sops_sim::force::{ForceModel, LinearForce};
use sops_sim::Model;

/// The snapshot steps shown below the paper's Fig. 4 plot.
pub const SNAPSHOT_TIMES: [usize; 5] = [0, 10, 20, 50, 249];

/// Fig. 4 outputs.
#[derive(Debug, Clone)]
pub struct Fig4Data {
    /// The multi-information time series.
    pub mi: MiSeries,
    /// One sample's configurations at [`SNAPSHOT_TIMES`] (clamped to the
    /// simulated horizon).
    pub snapshots: Vec<(usize, Vec<Vec2>)>,
    /// Particle types.
    pub types: Vec<u16>,
}

/// The Fig. 4 preferred-distance matrix from the paper.
pub fn preferred_distances() -> PairMatrix {
    PairMatrix::from_full(3, &[2.5, 5.0, 4.0, 5.0, 2.5, 2.0, 4.0, 2.0, 3.5])
}

/// Builds the Fig. 4 pipeline (shared with Figs. 1 and 6).
pub fn pipeline(opts: &RunOptions) -> Pipeline {
    let law = ForceModel::Linear(LinearForce::new(
        PairMatrix::constant(3, 1.0),
        preferred_distances(),
    ));
    let model = Model::balanced(opts.scale(50, 30), law, 5.0);
    let spec = EnsembleSpec {
        model,
        integrator: super::standard_integrator(),
        init_radius: 5.0,
        t_max: opts.scale(250, 100),
        samples: opts.scale(500, 100),
        seed: opts.seed,
        criterion: None,
    };
    let mut p = Pipeline::new(spec);
    p.eval_every = opts.scale(10, 20);
    p.threads = opts.threads;
    p
}

/// Runs the Fig. 4 experiment.
pub fn run(opts: &RunOptions) -> Fig4Data {
    let p = pipeline(opts);
    let types = p.ensemble.model.types().to_vec();
    // One extra single run for the snapshot strip (same seed as ensemble
    // sample 0 would be, but run locally to keep frames without holding
    // the whole ensemble here).
    let mut sim = sops_sim::Simulation::with_disc_init(
        p.ensemble.model.clone(),
        p.ensemble.integrator,
        p.ensemble.init_radius,
        sops_math::rng::derive_seed(p.ensemble.seed, 0),
    );
    let traj = sim.run(p.ensemble.t_max, None);
    let snapshots: Vec<(usize, Vec<Vec2>)> = SNAPSHOT_TIMES
        .iter()
        .map(|&t| {
            let t = t.min(p.ensemble.t_max);
            (t, traj.frames[t].clone())
        })
        .collect();

    let result = run_pipeline(&p);
    let data = Fig4Data {
        mi: result.mi,
        snapshots,
        types,
    };
    if let Some(path) = super::csv_path(opts, "fig4_mi_series.csv") {
        let rows: Vec<Vec<f64>> = data
            .mi
            .times
            .iter()
            .zip(&data.mi.values)
            .map(|(&t, &v)| vec![t as f64, v])
            .collect();
        report::write_csv(&path, &["t", "mi_bits"], &rows).expect("fig4 csv");
    }
    data
}

impl Fig4Data {
    /// Renders the MI curve and the snapshot strip.
    pub fn print(&self) {
        let xs: Vec<f64> = self.mi.times.iter().map(|&t| t as f64).collect();
        let s = Series::from_xy("I(W1..Wn) [bits]", &xs, &self.mi.values);
        println!(
            "{}",
            report::line_chart(
                "Fig 4 — multi-information vs time (n=50, l=3, rc=5)",
                &[s],
                64,
                16
            )
        );
        println!(
            "  increase ΔI = {:.2} bits over the run (paper: ≈2 → ≈10 bits)",
            self.mi.increase()
        );
        for (t, cfg) in &self.snapshots {
            println!(
                "{}",
                report::scatter_plot(
                    &format!("  sample snapshot t = {t}"),
                    cfg,
                    &self.types,
                    48,
                    14
                )
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper() {
        let r = preferred_distances();
        assert_eq!(r.get(0, 1), 5.0);
        assert_eq!(r.get(1, 2), 2.0);
        assert_eq!(r.get(2, 2), 3.5);
    }

    #[test]
    fn fast_run_shows_organization() {
        let mut opts = RunOptions {
            fast: true,
            ..RunOptions::default()
        };
        opts.seed = 7;
        let data = run(&opts);
        assert_eq!(data.snapshots.len(), SNAPSHOT_TIMES.len());
        assert!(
            data.mi.increase() > 1.0,
            "MI must rise: {:?}",
            data.mi.values
        );
        // Snapshot times clamp to the fast horizon.
        assert!(data.snapshots.iter().all(|(t, _)| *t <= 100));
    }
}
