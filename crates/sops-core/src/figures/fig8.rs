//! Figure 8 — increase of multi-information ΔI between `t = 0` and
//! `t = 250` under `F²` scaling, against the number of types.
//!
//! Paper: for a fixed particle count, ΔI *decreases* as the number of
//! types grows (averaged over 10 randomly generated type matrices with
//! preferred-distance radii `r_{αβ} ∈ [1, 5]`).

use crate::pipeline::{run_pipeline, Pipeline};
use crate::report::{self, Series};
use crate::RunOptions;
use sops_math::{rng::derive_seed, stats, PairMatrix};
use sops_sim::ensemble::EnsembleSpec;
use sops_sim::force::{random_preferred_distances, ForceModel, GaussianForce};
use sops_sim::Model;

/// ΔI per type count.
#[derive(Debug, Clone)]
pub struct Fig8Data {
    /// Type counts `l` swept.
    pub type_counts: Vec<usize>,
    /// Mean ΔI over the random matrix draws.
    pub delta_i: Vec<f64>,
    /// Std of ΔI over the draws.
    pub delta_i_std: Vec<f64>,
    /// Draws per point.
    pub draws: usize,
}

/// Runs the type-count sweep.
pub fn run(opts: &RunOptions) -> Fig8Data {
    let n = opts.scale(40, 16);
    let draws = opts.scale(10, 3);
    let max_l = opts.scale(10, 5);
    let type_counts: Vec<usize> = (1..=max_l).collect();
    let mut delta_i = Vec::with_capacity(type_counts.len());
    let mut delta_i_std = Vec::with_capacity(type_counts.len());
    for &l in &type_counts {
        let deltas: Vec<f64> = (0..draws)
            .map(|d| {
                let seed = derive_seed(opts.seed, (l * 1000 + d) as u64);
                let r = random_preferred_distances(l, 1.0, 5.0, seed);
                let law = ForceModel::Gaussian(GaussianForce::from_preferred_distance(
                    PairMatrix::constant(l, 3.0),
                    &r,
                ));
                let spec = EnsembleSpec {
                    model: Model::balanced(n, law, f64::INFINITY),
                    integrator: super::standard_integrator(),
                    init_radius: 4.0,
                    t_max: opts.scale(250, 60),
                    samples: opts.scale(300, 60),
                    seed: derive_seed(seed, 1),
                    criterion: None,
                };
                let mut p = Pipeline::new(spec);
                // Only the endpoints matter for ΔI.
                p.eval_every = p.ensemble.t_max;
                p.threads = opts.threads;
                run_pipeline(&p).mi.increase()
            })
            .collect();
        delta_i.push(stats::mean(&deltas));
        delta_i_std.push(stats::variance(&deltas).sqrt());
    }
    let data = Fig8Data {
        type_counts,
        delta_i,
        delta_i_std,
        draws,
    };
    if let Some(path) = super::csv_path(opts, "fig8_delta_i_vs_types.csv") {
        let rows: Vec<Vec<f64>> = data
            .type_counts
            .iter()
            .zip(data.delta_i.iter().zip(&data.delta_i_std))
            .map(|(&l, (&di, &sd))| vec![l as f64, di, sd])
            .collect();
        report::write_csv(&path, &["types", "delta_i_mean", "delta_i_std"], &rows)
            .expect("fig8 csv");
    }
    data
}

impl Fig8Data {
    /// Renders ΔI against the number of types.
    pub fn print(&self) {
        let xs: Vec<f64> = self.type_counts.iter().map(|&l| l as f64).collect();
        let s = Series::from_xy("ΔI [bits]", &xs, &self.delta_i);
        println!(
            "{}",
            report::line_chart(
                &format!(
                    "Fig 8 — ΔI(0→t_max) vs number of types (F2, {} draws/point)",
                    self.draws
                ),
                &[s],
                56,
                14
            )
        );
        for ((l, di), sd) in self
            .type_counts
            .iter()
            .zip(&self.delta_i)
            .zip(&self.delta_i_std)
        {
            println!("    l = {l:2}: ΔI = {di:.3} ± {sd:.3} bits");
        }
        let trend = stats::ols_slope(
            &self
                .type_counts
                .iter()
                .map(|&l| l as f64)
                .collect::<Vec<_>>(),
            &self.delta_i,
        );
        println!("  trend slope {trend:.3} bits/type (paper: decreasing)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape_and_finite() {
        let data = run(&RunOptions {
            fast: true,
            ..RunOptions::default()
        });
        assert_eq!(data.type_counts.len(), data.delta_i.len());
        assert!(data.delta_i.iter().all(|v| v.is_finite()));
    }
}
