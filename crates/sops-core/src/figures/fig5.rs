//! Figure 5 — multi-information over time for a *single-type* `F¹`
//! collective (20 particles, 500 samples).
//!
//! Paper: with `r_c > 2 r_{αα}` the 20 particles settle into two
//! concentric regular polygons whose relative rotation remains a degree
//! of freedom; despite a single type, the multi-information climbs to
//! ≈7–8 bits and is still rising at `t = 250`.

use crate::pipeline::{run_pipeline, MiSeries, Pipeline};
use crate::report::{self, Series};
use crate::RunOptions;
use sops_sim::ensemble::EnsembleSpec;
use sops_sim::force::{ForceModel, LinearForce};
use sops_sim::Model;

/// Fig. 5 outputs.
#[derive(Debug, Clone)]
pub struct Fig5Data {
    /// The multi-information time series.
    pub mi: MiSeries,
}

/// Builds the Fig. 5 pipeline (shared with Fig. 7).
pub fn pipeline(opts: &RunOptions) -> Pipeline {
    // Single type, k = 1, preferred distance 2; unbounded cut-off
    // satisfies r_c > 2 r_aa.
    let law = ForceModel::Linear(LinearForce::uniform(1.0, 2.0));
    let model = Model::balanced(20, law, f64::INFINITY);
    let spec = EnsembleSpec {
        model,
        integrator: super::slow_integrator(),
        init_radius: 4.0,
        t_max: opts.scale(250, 100),
        samples: opts.scale(500, 120),
        seed: sops_math::rng::derive_seed(opts.seed, 5),
        criterion: None,
    };
    let mut p = Pipeline::new(spec);
    p.eval_every = opts.scale(10, 20);
    p.threads = opts.threads;
    p
}

/// Runs the Fig. 5 experiment.
pub fn run(opts: &RunOptions) -> Fig5Data {
    let p = pipeline(opts);
    let result = run_pipeline(&p);
    let data = Fig5Data { mi: result.mi };
    if let Some(path) = super::csv_path(opts, "fig5_mi_series.csv") {
        let rows: Vec<Vec<f64>> = data
            .mi
            .times
            .iter()
            .zip(&data.mi.values)
            .map(|(&t, &v)| vec![t as f64, v])
            .collect();
        report::write_csv(&path, &["t", "mi_bits"], &rows).expect("fig5 csv");
    }
    data
}

impl Fig5Data {
    /// Renders the MI curve with the paper-comparison facts.
    pub fn print(&self) {
        let xs: Vec<f64> = self.mi.times.iter().map(|&t| t as f64).collect();
        let s = Series::from_xy("I(W1..Wn) [bits]", &xs, &self.mi.values);
        println!(
            "{}",
            report::line_chart(
                "Fig 5 — multi-information vs time (F1, 20 particles, one type)",
                &[s],
                64,
                16
            )
        );
        let half = self.mi.values.len() / 2;
        let late_slope = {
            let xs: Vec<f64> = self.mi.times[half..].iter().map(|&t| t as f64).collect();
            sops_math::stats::ols_slope(&xs, &self.mi.values[half..])
        };
        println!(
            "  final I = {:.2} bits (paper ≈7–8); still rising late in the run: slope {:.4} bits/step (paper: still increasing at t = 250)",
            self.mi.values.last().unwrap(),
            late_slope
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_type_still_organizes() {
        let data = run(&RunOptions {
            fast: true,
            ..RunOptions::default()
        });
        assert!(
            data.mi.increase() > 1.0,
            "single-type F1 collective must organize: {:?}",
            data.mi.values
        );
        assert!(data.mi.slope() > 0.0);
    }
}
