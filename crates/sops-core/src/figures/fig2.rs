//! Figure 2 — the two force-scaling functions.
//!
//! Paper: plots of `F¹_{αβ}` and `F²_{αβ}` against inter-particle
//! distance, annotating the preferred distance `r_{αβ}` and the cut-off
//! `r_c`. Reproduced by sampling both laws on a distance grid.

use crate::report::{self, Series};
use crate::RunOptions;
use sops_math::PairMatrix;
use sops_sim::force::{ForceLaw, GaussianForce, LinearForce};

/// Sampled force curves.
#[derive(Debug, Clone)]
pub struct Fig2Data {
    /// Distance grid.
    pub x: Vec<f64>,
    /// `F¹(x)` with `k = 1, r = 2`.
    pub f1: Vec<f64>,
    /// `F²(x)` with `k = 1, σ = 1, τ = r²/2, r = 2`.
    pub f2: Vec<f64>,
    /// The preferred distance marked in the paper's panels.
    pub preferred_distance: f64,
    /// The cut-off radius marked in the paper's panels.
    pub cutoff: f64,
}

/// Samples both force-scaling families.
pub fn run(opts: &RunOptions) -> Fig2Data {
    let r = 2.0;
    let cutoff = 5.0;
    let lin = LinearForce::uniform(1.0, r);
    let gau = GaussianForce::from_preferred_distance(
        PairMatrix::constant(1, 1.0),
        &PairMatrix::constant(1, r),
    );
    let steps = opts.scale(400, 100);
    let x: Vec<f64> = (1..=steps).map(|i| 6.0 * i as f64 / steps as f64).collect();
    let f1: Vec<f64> = x
        .iter()
        .map(|&v| lin.scale(0, 0, v).clamp(-3.0, 3.0))
        .collect();
    let f2: Vec<f64> = x.iter().map(|&v| gau.scale(0, 0, v)).collect();
    let data = Fig2Data {
        x,
        f1,
        f2,
        preferred_distance: r,
        cutoff,
    };
    if let Some(path) = super::csv_path(opts, "fig2_force_curves.csv") {
        let rows: Vec<Vec<f64>> = data
            .x
            .iter()
            .zip(data.f1.iter().zip(&data.f2))
            .map(|(&x, (&a, &b))| vec![x, a, b])
            .collect();
        report::write_csv(&path, &["x", "f1", "f2"], &rows).expect("fig2 csv");
    }
    data
}

impl Fig2Data {
    /// Renders both curves as ASCII charts plus the key structural facts.
    pub fn print(&self) {
        let s1 = Series::from_xy("F1 (k=1, r=2, clamped to ±3)", &self.x, &self.f1);
        let s2 = Series::from_xy("F2 (k=1, sigma=1, tau=r^2/2)", &self.x, &self.f2);
        println!(
            "{}",
            report::line_chart("Fig 2 — force-scaling functions", &[s1, s2], 64, 18)
        );
        // Structural checks mirrored in EXPERIMENTS.md.
        let zero_crossing = self
            .x
            .iter()
            .zip(&self.f1)
            .find(|(_, &f)| f >= 0.0)
            .map(|(&x, _)| x)
            .unwrap_or(f64::NAN);
        println!(
            "  F1 crosses zero at x ≈ {zero_crossing:.2} (preferred distance r = {}); attraction beyond, cut off at r_c = {}",
            self.preferred_distance, self.cutoff
        );
        let f2_max_mag = self.f2.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        println!(
            "  F2 ≤ 0 everywhere (soft finite-range repulsion), peak magnitude {f2_max_mag:.3}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_have_paper_structure() {
        let data = run(&RunOptions {
            fast: true,
            ..RunOptions::default()
        });
        assert_eq!(data.x.len(), data.f1.len());
        // F1: repulsive below r, attractive above.
        for (x, f) in data.x.iter().zip(&data.f1) {
            if *x < 1.9 {
                assert!(*f <= 0.0, "F1({x}) = {f}");
            }
            if *x > 2.1 {
                assert!(*f >= 0.0, "F1({x}) = {f}");
            }
        }
        // F2: non-positive everywhere.
        assert!(data.f2.iter().all(|&f| f <= 1e-12));
    }
}
