//! Figure reproductions — one module per figure of the paper's
//! evaluation (the paper has no numbered tables).
//!
//! Every module exposes `run(&RunOptions) -> FigNData`; the data structs
//! render themselves (`print()`) and write CSV series (`write_csv()`)
//! when an output directory is configured. `EXPERIMENTS.md` records the
//! paper-vs-measured comparison for each.
//!
//! Shared parameter conventions (see DESIGN.md "pinned interpretations"):
//! noise std 0.05 (`NOISE_VARIANCE`), Euler–Maruyama `dt` per figure,
//! KSG k = 4 per §6.

pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;

use crate::RunOptions;
use sops_sim::IntegratorConfig;

/// Noise variance used by all figure reproductions: the σ = 0.05 reading
/// of the paper's `w ~ N(0, 0.05)` (DESIGN.md #1).
pub const NOISE_VARIANCE: f64 = 0.0025;

/// Integrator used by the multi-type experiments (Figs. 1, 3, 4, 6, 8–12).
pub fn standard_integrator() -> IntegratorConfig {
    IntegratorConfig {
        dt: 0.05,
        substeps: 2,
        noise_variance: NOISE_VARIANCE,
        max_step: 0.5,
        ..IntegratorConfig::default()
    }
}

/// Slower integrator for the single-type ring experiments (Figs. 5, 7),
/// spreading the organization over the full recorded window as in the
/// paper (§6: multi-information still rising at t = 250).
pub fn slow_integrator() -> IntegratorConfig {
    IntegratorConfig {
        dt: 0.02,
        substeps: 2,
        noise_variance: NOISE_VARIANCE,
        max_step: 0.5,
        ..IntegratorConfig::default()
    }
}

/// CSV output path helper.
pub(crate) fn csv_path(opts: &RunOptions, name: &str) -> Option<std::path::PathBuf> {
    opts.out_dir.as_ref().map(|d| d.join(name))
}
