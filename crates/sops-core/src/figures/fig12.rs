//! Figure 12 — emergent structures in few-type collectives with locally
//! limited interactions.
//!
//! Paper: "balls enclosed in circles, layers of different types" (§7.2).
//! Reproduced with two `F¹` systems whose preferred-distance matrices
//! force same-type clustering (diagonal < off-diagonal): a two-type
//! core–shell and a three-type layered collective. The radial
//! stratification metric quantifies the layering.

use crate::metrics;
use crate::report;
use crate::RunOptions;
use sops_math::{rng::derive_seed, PairMatrix, Vec2};
use sops_sim::force::{ForceModel, LinearForce};
use sops_sim::{Model, Simulation};

/// One emergent-structure panel.
#[derive(Debug, Clone)]
pub struct Fig12Panel {
    /// Panel description.
    pub label: String,
    /// Final configuration.
    pub config: Vec<Vec2>,
    /// Particle types.
    pub types: Vec<u16>,
    /// Radial stratification (|value| near 1 = concentric layers).
    pub stratification: f64,
}

/// All panels.
#[derive(Debug, Clone)]
pub struct Fig12Data {
    /// The emergent-structure panels.
    pub panels: Vec<Fig12Panel>,
}

fn run_panel(
    label: &str,
    law: LinearForce,
    n: usize,
    cutoff: f64,
    t_max: usize,
    seed: u64,
) -> Fig12Panel {
    let model = Model::balanced(n, ForceModel::Linear(law), cutoff);
    let types = model.types().to_vec();
    let l = model.type_count();
    let mut sim = Simulation::with_disc_init(model, super::standard_integrator(), 3.0, seed);
    let traj = sim.run(t_max, None);
    let config = traj.last().to_vec();
    // Order types by mean radius so the stratification sign is canonical.
    let mut by_radius: Vec<(usize, f64)> = (0..l)
        .map(|t| {
            let c = Vec2::centroid(&config);
            let members: Vec<f64> = config
                .iter()
                .zip(&types)
                .filter(|(_, &ty)| ty as usize == t)
                .map(|(p, _)| p.dist(c))
                .collect();
            (t, sops_math::stats::mean(&members))
        })
        .collect();
    by_radius.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let mut rank_of_type = vec![0u16; l];
    for (rank, &(t, _)) in by_radius.iter().enumerate() {
        rank_of_type[t] = rank as u16;
    }
    let ranked_types: Vec<u16> = types.iter().map(|&t| rank_of_type[t as usize]).collect();
    let stratification = metrics::radial_stratification(&config, &ranked_types);
    Fig12Panel {
        label: label.to_string(),
        config,
        types,
        stratification,
    }
}

/// Runs both emergent-structure panels.
pub fn run(opts: &RunOptions) -> Fig12Data {
    let t_max = opts.scale(600, 150);
    // Core-shell: tight type-0 core (r00 = 1.2), looser type-1 shell
    // (r11 = 2.4) held at distance 3 from the core.
    let core_shell = LinearForce::new(
        PairMatrix::constant(2, 1.0),
        PairMatrix::from_full(2, &[1.2, 3.0, 3.0, 2.4]),
    );
    // Layers: three types with increasing self-distances and cross
    // distances forcing concentric ordering.
    let layers = LinearForce::new(
        PairMatrix::constant(3, 1.0),
        PairMatrix::from_full(3, &[1.2, 2.5, 4.0, 2.5, 1.8, 2.5, 4.0, 2.5, 2.4]),
    );
    let panels = vec![
        run_panel(
            "core-shell (l=2): ball enclosed in a circle",
            core_shell,
            opts.scale(36, 20),
            6.0,
            t_max,
            derive_seed(opts.seed, 121),
        ),
        run_panel(
            "layers (l=3): concentric type layers",
            layers,
            opts.scale(45, 24),
            8.0,
            t_max,
            derive_seed(opts.seed, 122),
        ),
    ];
    let data = Fig12Data { panels };
    if let Some(path) = super::csv_path(opts, "fig12_stratification.csv") {
        let rows: Vec<Vec<f64>> = data
            .panels
            .iter()
            .enumerate()
            .map(|(i, p)| vec![i as f64, p.stratification])
            .collect();
        report::write_csv(&path, &["panel", "radial_stratification"], &rows).expect("fig12 csv");
    }
    data
}

impl Fig12Data {
    /// Renders the panels with their stratification scores.
    pub fn print(&self) {
        println!("Fig 12 — emergent structures (few types, limited interactions)");
        for p in &self.panels {
            println!(
                "{}",
                report::scatter_plot(
                    &format!(
                        "  {} — radial stratification {:.2}",
                        p.label, p.stratification
                    ),
                    &p.config,
                    &p.types,
                    56,
                    20
                )
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structures_are_radially_stratified() {
        let data = run(&RunOptions {
            fast: true,
            ..RunOptions::default()
        });
        assert_eq!(data.panels.len(), 2);
        for p in &data.panels {
            assert!(
                p.stratification > 0.35,
                "{}: stratification {} too low for a layered structure",
                p.label,
                p.stratification
            );
        }
    }
}
