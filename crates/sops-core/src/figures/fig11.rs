//! Figure 11 — normalized decomposition of the multi-information over
//! time (Eq. 5, grouped by particle type).
//!
//! Paper: for an `l = 5, r_c = 15` draw of the Fig. 10 protocol, the
//! relative contributions (between-types term plus one within-type term
//! per type) vary strongly during the early phase and then settle to
//! stable fractions while the total multi-information is still rising.

use crate::pipeline::{decomposition_series, Pipeline};
use crate::report::{self, Series};
use crate::RunOptions;
use sops_math::{rng::derive_seed, stats, PairMatrix};
use sops_sim::ensemble::{run_ensemble, EnsembleSpec};
use sops_sim::force::{random_preferred_distances, ForceModel, LinearForce};
use sops_sim::Model;

/// Fig. 11 outputs.
#[derive(Debug, Clone)]
pub struct Fig11Data {
    /// Evaluated time steps.
    pub times: Vec<usize>,
    /// Normalized contributions per step: row = `(between, within_1, …,
    /// within_l)`; `None` where the total is too small to normalize.
    pub normalized: Vec<Option<Vec<f64>>>,
    /// Total multi-information per step (for the "still organizing"
    /// check).
    pub total: Vec<f64>,
    /// Number of types.
    pub types: usize,
}

/// Runs the decomposition experiment.
pub fn run(opts: &RunOptions) -> Fig11Data {
    let l = 5;
    let seed = derive_seed(opts.seed, 11);
    let r = random_preferred_distances(l, 2.0, 8.0, seed);
    let law = ForceModel::Linear(LinearForce::new(PairMatrix::constant(l, 1.0), r));
    let spec = EnsembleSpec {
        model: Model::balanced(20, law, 15.0),
        integrator: super::standard_integrator(),
        init_radius: 5.0,
        t_max: opts.scale(250, 60),
        samples: opts.scale(400, 80),
        seed: derive_seed(seed, 3),
        criterion: None,
    };
    let mut p = Pipeline::new(spec);
    p.eval_every = opts.scale(10, 20);
    p.threads = opts.threads;

    let ensemble = run_ensemble(&p.ensemble, opts.threads);
    let series = decomposition_series(&ensemble, &p);
    let normalized = series.normalized(0.05);
    let total: Vec<f64> = series.terms.iter().map(|d| d.total).collect();
    let data = Fig11Data {
        times: series.times,
        normalized,
        total,
        types: l,
    };
    if let Some(path) = super::csv_path(opts, "fig11_decomposition.csv") {
        let mut header: Vec<String> = vec!["t".into(), "total".into(), "between".into()];
        for t in 0..l {
            header.push(format!("within_type_{t}"));
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<f64>> = data
            .times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let mut row = vec![t as f64, data.total[i]];
                match &data.normalized[i] {
                    Some(parts) => row.extend(parts.iter().copied()),
                    None => row.extend(std::iter::repeat_n(f64::NAN, l + 1)),
                }
                row
            })
            .collect();
        report::write_csv(&path, &header_refs, &rows).expect("fig11 csv");
    }
    data
}

impl Fig11Data {
    /// Std over time of each normalized term, split into early and late
    /// halves — the paper's "varies early, settles late" observation made
    /// quantitative.
    pub fn settling(&self) -> Option<(f64, f64)> {
        let defined: Vec<&Vec<f64>> = self.normalized.iter().flatten().collect();
        if defined.len() < 6 {
            return None;
        }
        let half = defined.len() / 2;
        let spread = |rows: &[&Vec<f64>]| -> f64 {
            let terms = rows[0].len();
            (0..terms)
                .map(|j| {
                    let col: Vec<f64> = rows.iter().map(|r| r[j]).collect();
                    stats::variance(&col).sqrt()
                })
                .sum::<f64>()
                / terms as f64
        };
        Some((spread(&defined[..half]), spread(&defined[half..])))
    }

    /// Renders the normalized stack and the settling summary.
    pub fn print(&self) {
        let xs: Vec<f64> = self.times.iter().map(|&t| t as f64).collect();
        let mut series = Vec::new();
        let labels: Vec<String> = std::iter::once("between types".to_string())
            .chain((0..self.types).map(|t| format!("within type {t}")))
            .collect();
        for (j, label) in labels.iter().enumerate() {
            let ys: Vec<f64> = self
                .normalized
                .iter()
                .map(|row| row.as_ref().map_or(f64::NAN, |r| r[j]))
                .collect();
            series.push(Series::from_xy(label.clone(), &xs, &ys));
        }
        println!(
            "{}",
            report::line_chart(
                "Fig 11 — normalized decomposition of I over time (l=5, rc=15)",
                &series,
                64,
                18
            )
        );
        if let Some((early, late)) = self.settling() {
            println!(
                "  contribution spread early {:.3} vs late {:.3} (paper: early variation, then settling)",
                early, late
            );
        }
        println!(
            "  total I rises {:.2} → {:.2} bits while fractions settle",
            self.total.first().unwrap_or(&f64::NAN),
            self.total.last().unwrap_or(&f64::NAN)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_runs_and_normalizes() {
        let data = run(&RunOptions {
            fast: true,
            ..RunOptions::default()
        });
        assert_eq!(data.times.len(), data.normalized.len());
        for row in data.normalized.iter().flatten() {
            assert_eq!(row.len(), data.types + 1);
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "normalized rows sum to 1");
        }
        // Organization happens.
        assert!(data.total.last().unwrap() > data.total.first().unwrap());
    }
}
