//! Figure 10 — multi-information over time for different numbers of
//! types *and* cut-off radii.
//!
//! Paper: `F¹`, 20 particles, `l ∈ {5, 20}` × `r_c ∈ {10, 15, ∞}`,
//! `r_{αβ} ∈ [2, 8]`, `k_{αβ} = 1`, 10 random draws. With locally
//! limited interactions, *fewer* types (l = 5) self-organize more than
//! the all-distinct collective (l = 20) — emergent same-type clusters
//! restore long-range structural interaction (§7.2).

use super::fig9::{sweep_curve, SweepCurve};
use crate::report::{self, Series};
use crate::RunOptions;

/// Fig. 10 outputs: one averaged curve per `(l, r_c)` combination.
#[derive(Debug, Clone)]
pub struct Fig10Data {
    /// Curves with labels `l=…, rc=…`.
    pub curves: Vec<SweepCurve>,
    /// The `(types, cutoff)` combinations, aligned with `curves`.
    pub combos: Vec<(usize, f64)>,
}

/// Runs the types × radius sweep.
pub fn run(opts: &RunOptions) -> Fig10Data {
    let combos: Vec<(usize, f64)> = if opts.fast {
        vec![(20, 10.0), (5, 10.0)]
    } else {
        vec![
            (20, 10.0),
            (20, 15.0),
            (20, f64::INFINITY),
            (5, 10.0),
            (5, 15.0),
            (5, f64::INFINITY),
        ]
    };
    let draws = opts.scale(10, 2);
    let curves: Vec<SweepCurve> = combos
        .iter()
        .map(|&(l, rc)| {
            let label = if rc.is_finite() {
                format!("l={l}, rc={rc}")
            } else {
                format!("l={l}, rc=inf")
            };
            sweep_curve(opts, label, l, rc, draws)
        })
        .collect();
    let data = Fig10Data { curves, combos };
    if let Some(path) = super::csv_path(opts, "fig10_mi_types_radius.csv") {
        let mut header: Vec<String> = vec!["t".to_string()];
        header.extend(data.curves.iter().map(|c| c.label.clone()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let times = &data.curves[0].times;
        let rows: Vec<Vec<f64>> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let mut row = vec![t as f64];
                row.extend(data.curves.iter().map(|c| c.mean_mi[i]));
                row
            })
            .collect();
        report::write_csv(&path, &header_refs, &rows).expect("fig10 csv");
    }
    data
}

impl Fig10Data {
    /// The final MI of the curve for `(types, cutoff)`, if present.
    pub fn final_value(&self, types: usize, cutoff: f64) -> Option<f64> {
        self.combos
            .iter()
            .position(|&(l, rc)| {
                l == types && (rc == cutoff || (!rc.is_finite() && !cutoff.is_finite()))
            })
            .map(|i| self.curves[i].final_value())
    }

    /// Renders all curves in one chart.
    pub fn print(&self) {
        let series: Vec<Series> = self
            .curves
            .iter()
            .map(|c| {
                let xs: Vec<f64> = c.times.iter().map(|&t| t as f64).collect();
                Series::from_xy(c.label.clone(), &xs, &c.mean_mi)
            })
            .collect();
        println!(
            "{}",
            report::line_chart(
                "Fig 10 — multi-information vs time for l ∈ {5, 20} × rc",
                &series,
                64,
                18
            )
        );
        for c in &self.curves {
            println!("    {}: final I = {:.2} bits", c.label, c.final_value());
        }
        if let (Some(five), Some(twenty)) = (self.final_value(5, 10.0), self.final_value(20, 10.0))
        {
            println!(
                "  fewer types beat many types at finite rc: l=5 ({five:.2}) vs l=20 ({twenty:.2}) at rc=10 (paper: same ordering)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fewer_types_organize_more_at_finite_radius() {
        let data = run(&RunOptions {
            fast: true,
            ..RunOptions::default()
        });
        let five = data.final_value(5, 10.0).unwrap();
        let twenty = data.final_value(20, 10.0).unwrap();
        assert!(
            five > twenty,
            "l=5 ({five:.2}) must organize more than l=20 ({twenty:.2}) at rc=10"
        );
    }
}
