//! Figure 1 — an example particle configuration whose morphology
//! resembles biological structure ("membranes or nuclei").
//!
//! Reproduced with a single long run of the Fig. 4 system: the three
//! types settle into a sorted blob with a core and a surrounding
//! membrane-like layer.

use crate::metrics;
use crate::report;
use crate::RunOptions;
use sops_math::Vec2;
use sops_sim::Simulation;

/// The example configuration.
#[derive(Debug, Clone)]
pub struct Fig1Data {
    /// Final configuration.
    pub config: Vec<Vec2>,
    /// Particle types.
    pub types: Vec<u16>,
    /// Type separation (sortedness) of the final state.
    pub type_separation: f64,
    /// Type separation of the initial state, for contrast.
    pub initial_separation: f64,
}

/// Runs the example configuration.
pub fn run(opts: &RunOptions) -> Fig1Data {
    let p = super::fig4::pipeline(opts);
    let mut sim = Simulation::with_disc_init(
        p.ensemble.model.clone(),
        p.ensemble.integrator,
        p.ensemble.init_radius,
        sops_math::rng::derive_seed(opts.seed, 1),
    );
    let types = p.ensemble.model.types().to_vec();
    let initial_separation = metrics::type_separation(sim.positions(), &types, 3);
    let traj = sim.run(opts.scale(400, 120), None);
    let config = traj.last().to_vec();
    let type_separation = metrics::type_separation(&config, &types, 3);
    let data = Fig1Data {
        config,
        types,
        type_separation,
        initial_separation,
    };
    if let Some(path) = super::csv_path(opts, "fig1_configuration.csv") {
        let rows: Vec<Vec<f64>> = data
            .config
            .iter()
            .zip(&data.types)
            .map(|(p, &t)| vec![p.x, p.y, t as f64])
            .collect();
        report::write_csv(&path, &["x", "y", "type"], &rows).expect("fig1 csv");
    }
    data
}

impl Fig1Data {
    /// Renders the configuration.
    pub fn print(&self) {
        println!(
            "{}",
            report::scatter_plot(
                "Fig 1 — example organized configuration (3 types)",
                &self.config,
                &self.types,
                60,
                24
            )
        );
        println!(
            "  type separation grew {:.2} → {:.2} during organization",
            self.initial_separation, self.type_separation
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configuration_is_sorted() {
        let data = run(&RunOptions {
            fast: true,
            ..RunOptions::default()
        });
        assert!(
            data.type_separation > data.initial_separation,
            "types must sort: {} -> {}",
            data.initial_separation,
            data.type_separation
        );
    }
}
