//! Figure 3 — equilibrium states for different numbers of types.
//!
//! Paper: three example equilibrium configurations (3, 2 and 1 types);
//! with one type and `F²` the equilibrium is "always a regular grid" in
//! the shape of a disc. Reproduced by running each collective to (near)
//! equilibrium and reporting grid-regularity metrics: the coefficient of
//! variation of nearest-neighbour distances is near zero for the regular
//! single-type grid and larger for the structured multi-type states.

use crate::metrics;
use crate::report;
use crate::RunOptions;
use sops_math::{rng::derive_seed, PairMatrix, Vec2};
use sops_sim::force::{ForceModel, GaussianForce};
use sops_sim::{EquilibriumCriterion, Model, Simulation};

/// One panel of the figure.
#[derive(Debug, Clone)]
pub struct Fig3Panel {
    /// Number of types.
    pub types: usize,
    /// Final configuration.
    pub config: Vec<Vec2>,
    /// Particle types.
    pub type_of: Vec<u16>,
    /// Nearest-neighbour distance CV (grid regularity; lower = more
    /// regular).
    pub nn_cv: f64,
    /// Steps taken before the equilibrium criterion held (or the cap).
    pub steps: usize,
    /// Whether the equilibrium criterion was met.
    pub equilibrated: bool,
}

/// All three panels.
#[derive(Debug, Clone)]
pub struct Fig3Data {
    /// Panels for `l = 3, 2, 1`.
    pub panels: Vec<Fig3Panel>,
}

/// Runs the three equilibrium experiments.
pub fn run(opts: &RunOptions) -> Fig3Data {
    let n = opts.scale(40, 24);
    // The noise anneals the packing toward a regular grid; reaching low
    // nearest-neighbour CV takes a few thousand steps even for the small
    // fast-mode collective.
    let max_steps = opts.scale(6000, 3500);
    let panels = [3usize, 2, 1]
        .iter()
        .map(|&l| {
            // Gaussian (F2) law: same-type range 2, cross-type ranges
            // spread out so types separate.
            let r = PairMatrix::from_fn(l, |a, b| {
                if a == b {
                    2.0
                } else {
                    3.0 + (a + b) as f64 * 0.5
                }
            });
            let law = ForceModel::Gaussian(GaussianForce::from_preferred_distance(
                PairMatrix::constant(l, 3.0),
                &r,
            ));
            let model = Model::balanced(n, law, 6.0);
            let type_of = model.types().to_vec();
            let mut sim = Simulation::with_disc_init(
                model.clone(),
                super::standard_integrator(),
                3.0,
                derive_seed(opts.seed, l as u64),
            );
            let (steps, equilibrated) = sim.run_to_equilibrium(
                EquilibriumCriterion {
                    threshold: 0.25,
                    patience: 10,
                },
                max_steps,
            );
            let config = sim.positions().to_vec();
            let nn_cv = metrics::nn_distance_cv(&config);
            Fig3Panel {
                types: l,
                config,
                type_of,
                nn_cv,
                steps,
                equilibrated,
            }
        })
        .collect();
    let data = Fig3Data { panels };
    if let Some(path) = super::csv_path(opts, "fig3_equilibria.csv") {
        let rows: Vec<Vec<f64>> = data
            .panels
            .iter()
            .map(|p| {
                vec![
                    p.types as f64,
                    p.nn_cv,
                    p.steps as f64,
                    if p.equilibrated { 1.0 } else { 0.0 },
                ]
            })
            .collect();
        report::write_csv(&path, &["types", "nn_cv", "steps", "equilibrated"], &rows)
            .expect("fig3 csv");
    }
    data
}

impl Fig3Data {
    /// Renders the three panels with their regularity metrics.
    pub fn print(&self) {
        println!("Fig 3 — equilibrium states for l = 3, 2, 1 (F2 scaling)");
        for p in &self.panels {
            println!(
                "{}",
                report::scatter_plot(
                    &format!(
                        "  l = {} (nn-distance CV {:.3}, {} steps, equilibrated: {})",
                        p.types, p.nn_cv, p.steps, p.equilibrated
                    ),
                    &p.config,
                    &p.type_of,
                    56,
                    18,
                )
            );
        }
        let single = self.panels.iter().find(|p| p.types == 1).unwrap();
        let multi = self.panels.iter().find(|p| p.types == 3).unwrap();
        println!(
            "  single-type grid is more regular than the 3-type state: CV {:.3} < {:.3}",
            single.nn_cv, multi.nn_cv
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_type_is_most_regular() {
        let data = run(&RunOptions {
            fast: true,
            ..RunOptions::default()
        });
        assert_eq!(data.panels.len(), 3);
        let cv_of = |l: usize| {
            data.panels
                .iter()
                .find(|p| p.types == l)
                .map(|p| p.nn_cv)
                .unwrap()
        };
        // The paper's claim: one type ⇒ regular grid. Multi-type states
        // have structured, less regular spacing.
        assert!(
            cv_of(1) < cv_of(3),
            "1-type CV {} should be below 3-type CV {}",
            cv_of(1),
            cv_of(3)
        );
        assert!(cv_of(1) < 0.35, "single-type grid CV {}", cv_of(1));
    }
}
