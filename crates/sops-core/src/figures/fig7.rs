//! Figure 7 — overlay of all aligned samples of the single-type ring
//! experiment at `t = 250`.
//!
//! Paper: after alignment, the *outer* ring's particles form dense
//! clusters across samples (well alignable), while the *inner* ring is
//! smeared — its rotation relative to the outer ring is a genuine degree
//! of freedom. Reproduced quantitatively: the per-particle cross-sample
//! dispersion of outer-ring particles is much smaller than that of
//! inner-ring particles.

use crate::metrics;
use crate::report;
use crate::RunOptions;
use sops_math::Vec2;
use sops_shape::ensemble::reduce_configurations;
use sops_sim::ensemble::run_ensemble;

/// Overlay data and the ring-dispersion comparison.
#[derive(Debug, Clone)]
pub struct Fig7Data {
    /// All aligned particle positions of every sample (the overlay dots).
    pub overlay: Vec<Vec2>,
    /// Per-particle cross-sample dispersion (reference indexing).
    pub dispersion: Vec<f64>,
    /// Mean radius and mean dispersion per detected ring (innermost
    /// first): `(radius, dispersion, member_count)`.
    pub rings: Vec<(f64, f64, usize)>,
}

/// Runs the Fig. 7 analysis on the Fig. 5 ensemble's final step.
pub fn run(opts: &RunOptions) -> Fig7Data {
    let p = super::fig5::pipeline(opts);
    let mut spec = p.ensemble.clone();
    spec.samples = spec.samples.min(opts.scale(500, 80));
    let ensemble = run_ensemble(&spec, opts.threads);
    let t_end = spec.t_max;
    let types = spec.model.types().to_vec();
    let slice = ensemble.at_time(t_end);
    let reduced = reduce_configurations(&slice, &types, &p.reduce);

    let overlay: Vec<Vec2> = reduced.configs.iter().flatten().copied().collect();
    let dispersion = metrics::cross_sample_dispersion(&reduced.configs);

    // Ring structure from the reference sample (index 0 of the reduced
    // set), dispersion averaged per ring.
    let reference = &reduced.configs[0];
    let rings_idx = metrics::ring_decomposition(reference, 4.0);
    let rings: Vec<(f64, f64, usize)> = rings_idx
        .iter()
        .map(|ring| {
            let radius = metrics::ring_radius(reference, ring);
            let mean_disp = ring.iter().map(|&i| dispersion[i]).sum::<f64>() / ring.len() as f64;
            (radius, mean_disp, ring.len())
        })
        .collect();

    let data = Fig7Data {
        overlay,
        dispersion,
        rings,
    };
    if let Some(path) = super::csv_path(opts, "fig7_dispersion.csv") {
        let rows: Vec<Vec<f64>> = reference
            .iter()
            .zip(&data.dispersion)
            .map(|(p, &d)| vec![p.norm(), d])
            .collect();
        report::write_csv(&path, &["radius", "cross_sample_dispersion"], &rows).expect("fig7 csv");
    }
    data
}

impl Fig7Data {
    /// Renders the overlay and the ring comparison.
    pub fn print(&self) {
        let types = vec![0u16; self.overlay.len()];
        println!(
            "{}",
            report::scatter_plot(
                "Fig 7 — overlay of all aligned samples at the final step",
                &self.overlay,
                &types,
                60,
                22
            )
        );
        println!("  rings (innermost first): radius / mean cross-sample dispersion / size");
        for (radius, disp, count) in &self.rings {
            println!("    r = {radius:.2}  dispersion = {disp:.3}  particles = {count}");
        }
        if let (Some(inner), Some(outer)) = (self.rings.first(), self.rings.last()) {
            println!(
                "  outer ring aligns tighter than the inner structure: {:.3} < {:.3} (paper: outer clusters dense, inner rotation free)",
                outer.1, inner.1
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outer_ring_tighter_than_inner() {
        let data = run(&RunOptions {
            fast: true,
            ..RunOptions::default()
        });
        assert!(
            data.rings.len() >= 2,
            "two-ring structure expected: {:?}",
            data.rings
        );
        let inner = data.rings.first().unwrap();
        let outer = data.rings.last().unwrap();
        assert!(
            outer.1 < inner.1,
            "outer dispersion {} must be below inner {}",
            outer.1,
            inner.1
        );
    }
}
