//! Figure 9 — multi-information over time for different cut-off radii
//! `r_c`, with as many types as particles.
//!
//! Paper: `F¹`, 20 particles of 20 distinct types, `r_{αβ} ∈ [2, 8]`,
//! `k_{αβ} = 1`, averaged over 10 random type draws, for
//! `r_c ∈ {2.5, 5, 7.5, 10, 15, ∞}`. Larger cut-off radii produce more
//! self-organization; locally limited interaction (`r_c ≤ 7.5`) caps it.

use crate::pipeline::{run_pipeline, Pipeline};
use crate::report::{self, Series};
use crate::RunOptions;
use sops_math::{rng::derive_seed, PairMatrix};
use sops_sim::ensemble::EnsembleSpec;
use sops_sim::force::{random_preferred_distances, ForceModel, LinearForce};
use sops_sim::Model;

/// One averaged curve of a radius/type sweep.
#[derive(Debug, Clone)]
pub struct SweepCurve {
    /// Legend label (e.g. `rc=7.5` or `l=5, rc=15`).
    pub label: String,
    /// Evaluated time steps.
    pub times: Vec<usize>,
    /// Draw-averaged multi-information per step.
    pub mean_mi: Vec<f64>,
}

impl SweepCurve {
    /// Final value of the averaged curve.
    pub fn final_value(&self) -> f64 {
        *self.mean_mi.last().expect("SweepCurve: empty")
    }
}

/// Shared driver for Figs. 9 and 10: runs `draws` random type draws of an
/// `F¹` system with `l` types, `n = 20` particles and the given cut-off,
/// and averages the multi-information series across draws.
pub(crate) fn sweep_curve(
    opts: &RunOptions,
    label: String,
    types: usize,
    cutoff: f64,
    draws: usize,
) -> SweepCurve {
    let mut sum: Vec<f64> = Vec::new();
    let mut times: Vec<usize> = Vec::new();
    for d in 0..draws {
        let seed = derive_seed(opts.seed, (types * 7919 + d) as u64 ^ cutoff.to_bits());
        let r = random_preferred_distances(types, 2.0, 8.0, seed);
        let law = ForceModel::Linear(LinearForce::new(PairMatrix::constant(types, 1.0), r));
        let spec = EnsembleSpec {
            model: Model::balanced(20, law, cutoff),
            integrator: super::standard_integrator(),
            init_radius: 5.0,
            t_max: opts.scale(250, 60),
            samples: opts.scale(300, 60),
            seed: derive_seed(seed, 2),
            criterion: None,
        };
        let mut p = Pipeline::new(spec);
        p.eval_every = opts.scale(25, 30);
        p.threads = opts.threads;
        let result = run_pipeline(&p);
        if sum.is_empty() {
            sum = vec![0.0; result.mi.values.len()];
            times = result.mi.times.clone();
        }
        for (acc, v) in sum.iter_mut().zip(&result.mi.values) {
            *acc += v;
        }
    }
    for v in &mut sum {
        *v /= draws as f64;
    }
    SweepCurve {
        label,
        times,
        mean_mi: sum,
    }
}

/// Fig. 9 outputs: one averaged curve per cut-off radius.
#[derive(Debug, Clone)]
pub struct Fig9Data {
    /// Curves in the order of `cutoffs`.
    pub curves: Vec<SweepCurve>,
    /// The swept cut-off radii.
    pub cutoffs: Vec<f64>,
}

/// Runs the cut-off radius sweep.
pub fn run(opts: &RunOptions) -> Fig9Data {
    let cutoffs: Vec<f64> = if opts.fast {
        vec![2.5, 7.5, f64::INFINITY]
    } else {
        vec![2.5, 5.0, 7.5, 10.0, 15.0, f64::INFINITY]
    };
    let draws = opts.scale(10, 2);
    let curves: Vec<SweepCurve> = cutoffs
        .iter()
        .map(|&rc| {
            let label = if rc.is_finite() {
                format!("rc={rc}")
            } else {
                "rc=inf".to_string()
            };
            sweep_curve(opts, label, 20, rc, draws)
        })
        .collect();
    let data = Fig9Data { curves, cutoffs };
    if let Some(path) = super::csv_path(opts, "fig9_mi_vs_radius.csv") {
        let mut header: Vec<String> = vec!["t".to_string()];
        header.extend(data.curves.iter().map(|c| c.label.clone()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let times = &data.curves[0].times;
        let rows: Vec<Vec<f64>> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let mut row = vec![t as f64];
                row.extend(data.curves.iter().map(|c| c.mean_mi[i]));
                row
            })
            .collect();
        report::write_csv(&path, &header_refs, &rows).expect("fig9 csv");
    }
    data
}

impl Fig9Data {
    /// Renders all radius curves in one chart.
    pub fn print(&self) {
        let series: Vec<Series> = self
            .curves
            .iter()
            .map(|c| {
                let xs: Vec<f64> = c.times.iter().map(|&t| t as f64).collect();
                Series::from_xy(c.label.clone(), &xs, &c.mean_mi)
            })
            .collect();
        println!(
            "{}",
            report::line_chart(
                "Fig 9 — multi-information vs time for different rc (l = n = 20)",
                &series,
                64,
                18
            )
        );
        for c in &self.curves {
            println!("    {}: final I = {:.2} bits", c.label, c.final_value());
        }
        println!("  (paper: I grows with rc; locally limited interaction caps self-organization)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_radius_gives_more_organization() {
        let data = run(&RunOptions {
            fast: true,
            ..RunOptions::default()
        });
        let first = data.curves.first().unwrap();
        let last = data.curves.last().unwrap();
        assert!(
            last.final_value() > first.final_value(),
            "rc=inf ({:.2}) must beat rc=2.5 ({:.2})",
            last.final_value(),
            first.final_value()
        );
    }
}
