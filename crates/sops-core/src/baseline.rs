//! Persisted ΔI regression baselines: the science gate.
//!
//! CI has always diffed *bench times* across PRs; nothing diffed the
//! *science*. A [`SweepBaseline`] records, for one sweep plan, every
//! cell's ΔI together with the seed-axis summary statistics
//! ([`crate::summary::SweepSummary`]), serialized to a
//! `BASELINE_sweep.json` committed at the repo root. `sops-repro sweep
//! --save-baseline` writes it; `--check-baseline` re-runs the sweep and
//! compares:
//!
//! * every baseline cell must exist in the fresh report, and its ΔI must
//!   match within the **measured seed-axis confidence interval** of its
//!   (scenario, measure) group — the tolerance is the uncertainty the
//!   seed ensemble itself exhibits, floored at `1e-9` so bit-identical
//!   reruns always pass even for zero-variance groups;
//! * every group's mean ΔI must match within the same tolerance, and the
//!   seed count must agree;
//! * a fresh cell absent from the baseline fails the check (the plan
//!   changed — re-save deliberately).
//!
//! A refactor that reshuffles floating-point rounding stays green; one
//! that silently bends the measured organization does not. The JSON is
//! read back by the dependency-free parser below (the repo emits JSON by
//! hand everywhere; this is the matching reader, handling exactly the
//! JSON subset the writers produce plus standard escapes).

use crate::scenario::SweepReport;
use crate::summary::SweepSummary;
use std::fmt::Write as _;
use std::path::Path;

/// Absolute floor on the per-cell/per-mean tolerance: a zero-variance
/// group (or an n = 1 "group") still accepts bit-identical reruns.
pub const TOLERANCE_FLOOR: f64 = 1e-9;

/// One recorded grid cell: coordinates plus the scalar under guard.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineCell {
    /// Scenario name.
    pub scenario: String,
    /// Plan-unique measure label.
    pub measure: String,
    /// Master seed of the cell's ensemble.
    pub seed: u64,
    /// Recorded ΔI = I(t_last) − I(t_0) in bits.
    pub delta_mi: f64,
}

/// One recorded (scenario, measure) seed-axis group.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineGroup {
    /// Scenario name.
    pub scenario: String,
    /// Plan-unique measure label.
    pub measure: String,
    /// Seed count the statistics were measured over.
    pub n: usize,
    /// Mean ΔI over the seed axis.
    pub mean: f64,
    /// Half-width of the t confidence interval — the check tolerance.
    pub ci_half: f64,
}

/// A persisted sweep baseline: per-cell ΔI plus per-group statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepBaseline {
    /// Confidence level the group intervals were measured at.
    pub confidence: f64,
    /// Recorded cells, in plan order.
    pub cells: Vec<BaselineCell>,
    /// Recorded groups, in plan order.
    pub groups: Vec<BaselineGroup>,
}

impl SweepBaseline {
    /// Captures a baseline from a report and its seed-axis summary.
    pub fn from_sweep(report: &SweepReport, summary: &SweepSummary) -> Self {
        SweepBaseline {
            confidence: summary.confidence,
            cells: report
                .cells
                .iter()
                .map(|c| BaselineCell {
                    scenario: c.scenario.clone(),
                    measure: c.measure_label.clone(),
                    seed: c.seed,
                    delta_mi: c.result.mi.increase(),
                })
                .collect(),
            groups: summary
                .groups
                .iter()
                .map(|g| BaselineGroup {
                    scenario: g.scenario.clone(),
                    measure: g.measure.clone(),
                    n: g.n(),
                    mean: g.mean,
                    ci_half: g.ci.half_width(),
                })
                .collect(),
        }
    }

    /// Serializes to the `BASELINE_sweep.json` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"sops-sweep-baseline/v1\",\n");
        let _ = writeln!(out, "  \"confidence\": {},", json_float(self.confidence));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"scenario\": {}, \"measure\": {}, \"seed\": {}, \"delta_mi\": {}}}{}",
                json_string(&c.scenario),
                json_string(&c.measure),
                c.seed,
                json_float(c.delta_mi),
                if i + 1 < self.cells.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n  \"groups\": [\n");
        for (i, g) in self.groups.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"scenario\": {}, \"measure\": {}, \"n\": {}, \"mean\": {}, \
                 \"ci_half\": {}}}{}",
                json_string(&g.scenario),
                json_string(&g.measure),
                g.n,
                json_float(g.mean),
                json_float(g.ci_half),
                if i + 1 < self.groups.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the baseline file (creating parent directories).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Reads a baseline file.
    pub fn read(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("malformed baseline {}: {e}", path.display()))
    }

    /// Parses the `sops-sweep-baseline/v1` JSON schema.
    pub fn parse(text: &str) -> Result<Self, String> {
        let root = json::parse(text)?;
        let obj = root.as_object().ok_or("top level must be an object")?;
        let schema = get(obj, "schema")?
            .as_str()
            .ok_or("schema must be a string")?;
        if schema != "sops-sweep-baseline/v1" {
            return Err(format!("unsupported schema '{schema}'"));
        }
        let confidence = get(obj, "confidence")?
            .as_f64()
            .ok_or("confidence must be a number")?;
        let mut cells = Vec::new();
        for v in get(obj, "cells")?
            .as_array()
            .ok_or("cells must be an array")?
        {
            let c = v.as_object().ok_or("cell must be an object")?;
            cells.push(BaselineCell {
                scenario: get(c, "scenario")?
                    .as_str()
                    .ok_or("cell scenario must be a string")?
                    .to_string(),
                measure: get(c, "measure")?
                    .as_str()
                    .ok_or("cell measure must be a string")?
                    .to_string(),
                seed: get(c, "seed")?.as_u64().ok_or("cell seed must be a u64")?,
                delta_mi: get(c, "delta_mi")?
                    .as_f64()
                    .ok_or("cell delta_mi must be a number or null")?,
            });
        }
        let mut groups = Vec::new();
        for v in get(obj, "groups")?
            .as_array()
            .ok_or("groups must be an array")?
        {
            let g = v.as_object().ok_or("group must be an object")?;
            groups.push(BaselineGroup {
                scenario: get(g, "scenario")?
                    .as_str()
                    .ok_or("group scenario must be a string")?
                    .to_string(),
                measure: get(g, "measure")?
                    .as_str()
                    .ok_or("group measure must be a string")?
                    .to_string(),
                n: get(g, "n")?.as_u64().ok_or("group n must be a u64")? as usize,
                mean: get(g, "mean")?
                    .as_f64()
                    .ok_or("group mean must be a number or null")?,
                ci_half: get(g, "ci_half")?
                    .as_f64()
                    .ok_or("group ci_half must be a number or null")?,
            });
        }
        Ok(SweepBaseline {
            confidence,
            cells,
            groups,
        })
    }

    /// Compares a fresh sweep against this baseline. Returns the list of
    /// violations — empty means the gate passes.
    ///
    /// Tolerance per (scenario, measure): the baseline group's stored CI
    /// half-width (the *measured* seed-axis uncertainty), floored at
    /// [`TOLERANCE_FLOOR`]. Non-finite recorded values compare by
    /// bit-class: `NaN` matches `NaN`, `±∞` matches the same infinity.
    pub fn check(&self, report: &SweepReport, summary: &SweepSummary) -> Vec<String> {
        let mut violations = Vec::new();
        let tolerance = |scenario: &str, measure: &str| -> f64 {
            self.groups
                .iter()
                .find(|g| g.scenario == scenario && g.measure == measure)
                .map(|g| g.ci_half)
                .unwrap_or(0.0)
                .max(TOLERANCE_FLOOR)
        };
        let within = |now: f64, base: f64, tol: f64| -> bool {
            if !now.is_finite() || !base.is_finite() {
                // NaN == NaN, +inf == +inf, -inf == -inf for gate purposes.
                return now.to_bits() == base.to_bits() || (now.is_nan() && base.is_nan());
            }
            (now - base).abs() <= tol
        };
        for b in &self.cells {
            let Some(cell) = report.get(&b.scenario, &b.measure, Some(b.seed)) else {
                violations.push(format!(
                    "baseline cell {}/{}#{} missing from this sweep (plan changed? \
                     re-run --save-baseline)",
                    b.scenario, b.measure, b.seed
                ));
                continue;
            };
            let now = cell.result.mi.increase();
            let tol = tolerance(&b.scenario, &b.measure);
            if !within(now, b.delta_mi, tol) {
                violations.push(format!(
                    "{}/{}#{}: ΔI = {now:.6} drifted from baseline {:.6} \
                     beyond the seed-axis CI tolerance ±{tol:.6}",
                    b.scenario, b.measure, b.seed, b.delta_mi
                ));
            }
        }
        for cell in &report.cells {
            if !self.cells.iter().any(|b| {
                b.scenario == cell.scenario
                    && b.measure == cell.measure_label
                    && b.seed == cell.seed
            }) {
                violations.push(format!(
                    "cell {}/{}#{} has no baseline entry (plan changed? \
                     re-run --save-baseline)",
                    cell.scenario, cell.measure_label, cell.seed
                ));
            }
        }
        for b in &self.groups {
            let Some(g) = summary.get(&b.scenario, &b.measure) else {
                violations.push(format!(
                    "baseline group {}/{} missing from this summary",
                    b.scenario, b.measure
                ));
                continue;
            };
            if g.n() != b.n {
                violations.push(format!(
                    "{}/{}: seed count changed {} → {}",
                    b.scenario,
                    b.measure,
                    b.n,
                    g.n()
                ));
            }
            let tol = tolerance(&b.scenario, &b.measure);
            if !within(g.mean, b.mean, tol) {
                violations.push(format!(
                    "{}/{}: mean ΔI = {:.6} drifted from baseline {:.6} \
                     beyond the seed-axis CI tolerance ±{tol:.6}",
                    b.scenario, b.measure, g.mean, b.mean
                ));
            }
        }
        violations
    }
}

fn get<'a>(obj: &'a [(String, json::Value)], key: &str) -> Result<&'a json::Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key '{key}'"))
}

fn json_float(v: f64) -> String {
    if v.is_finite() {
        // 17 significant digits round-trip any f64 exactly — the
        // baseline stores *reference values*, not plot labels.
        format!("{v:.17e}")
    } else {
        // JSON has no non-finite literals; encode as tagged strings the
        // parser maps back (the sweep writers use null, but a baseline
        // must distinguish NaN from ±∞ to compare by bit-class).
        match (v.is_nan(), v > 0.0) {
            (true, _) => "\"nan\"".into(),
            (false, true) => "\"inf\"".into(),
            (false, false) => "\"-inf\"".into(),
        }
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal recursive-descent JSON reader: the subset this workspace's
/// hand-rolled writers emit (objects, arrays, strings with standard
/// escapes, f64 numbers, booleans, null), dependency-free like them.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (parsed as `f64`).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object as an ordered key/value list (duplicate keys kept;
        /// lookups take the first).
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The value as an f64: numbers directly; `null` and the tagged
        /// strings `"nan"` / `"inf"` / `"-inf"` as their non-finite
        /// counterparts.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(v) => Some(*v),
                Value::Null => Some(f64::NAN),
                Value::Str(s) => match s.as_str() {
                    "nan" => Some(f64::NAN),
                    "inf" => Some(f64::INFINITY),
                    "-inf" => Some(f64::NEG_INFINITY),
                    _ => None,
                },
                _ => None,
            }
        }

        /// The value as an exact non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                    Some(*v as u64)
                }
                _ => None,
            }
        }

        /// The value as a string slice.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an array slice.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The value as an object entry list.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else after the value).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(b) = self.bytes.get(self.pos) {
                if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(format!("unexpected byte at {}", self.pos)),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(entries));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                entries.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "non-ASCII \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "invalid \\u escape")?;
                                // Surrogates are not emitted by our
                                // writers; reject rather than mangle.
                                out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is a &str, so
                        // boundaries are valid by construction).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid UTF-8")?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("invalid number '{text}' at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{MiSeries, PipelineResult};
    use crate::scenario::{SweepCell, SweepReport};
    use sops_info::MeasureConfig;

    fn report(deltas: &[(&str, u64, f64)]) -> SweepReport {
        SweepReport {
            cells: deltas
                .iter()
                .map(|&(scenario, seed, delta)| SweepCell {
                    scenario: scenario.into(),
                    measure: MeasureConfig::default(),
                    measure_label: "ksg".into(),
                    seed,
                    result: PipelineResult {
                        mi: MiSeries {
                            times: vec![0, 10],
                            values: vec![0.0, delta],
                        },
                        mean_icp_cost: vec![0.0, 0.0],
                        equilibrated_fraction: 1.0,
                    },
                })
                .collect(),
        }
    }

    fn sweep() -> (SweepReport, SweepSummary) {
        let r = report(&[
            ("a", 1, 2.0),
            ("a", 2, 2.1),
            ("a", 3, 1.9),
            ("mixing_null", 1, 0.01),
            ("mixing_null", 2, -0.02),
            ("mixing_null", 3, 0.03),
        ]);
        let s = SweepSummary::from_report(&r);
        (r, s)
    }

    #[test]
    fn json_round_trip_is_exact() {
        let (r, s) = sweep();
        let baseline = SweepBaseline::from_sweep(&r, &s);
        let parsed = SweepBaseline::parse(&baseline.to_json()).unwrap();
        assert_eq!(parsed, baseline, "17-digit floats must round-trip");
    }

    #[test]
    fn unmodified_sweep_passes_the_gate() {
        let (r, s) = sweep();
        let baseline = SweepBaseline::from_sweep(&r, &s);
        assert!(baseline.check(&r, &s).is_empty());
    }

    #[test]
    fn perturbation_beyond_ci_fails_the_gate() {
        let (r, s) = sweep();
        let baseline = SweepBaseline::from_sweep(&r, &s);
        let tol = baseline.groups[0].ci_half;
        // Shift one "a" cell's ΔI well past the group CI.
        let mut bent = r.clone();
        bent.cells[0].result.mi.values[1] += 3.0 * tol + 0.5;
        let bent_summary = SweepSummary::from_report(&bent);
        let violations = baseline.check(&bent, &bent_summary);
        assert!(
            violations.iter().any(|v| v.contains("a/ksg#1")),
            "{violations:?}"
        );
        // A drift far inside the CI passes (rounding-level change).
        let mut nudged = r.clone();
        nudged.cells[0].result.mi.values[1] += 1e-12;
        let nudged_summary = SweepSummary::from_report(&nudged);
        assert!(baseline.check(&nudged, &nudged_summary).is_empty());
    }

    #[test]
    fn plan_changes_fail_in_both_directions() {
        let (r, s) = sweep();
        let baseline = SweepBaseline::from_sweep(&r, &s);
        // Cell missing from the fresh sweep.
        let mut smaller = r.clone();
        smaller.cells.remove(0);
        let smaller_summary = SweepSummary::from_report(&smaller);
        let v = baseline.check(&smaller, &smaller_summary);
        assert!(
            v.iter().any(|m| m.contains("missing from this sweep")),
            "{v:?}"
        );
        // Extra cell the baseline never recorded.
        let mut bigger = r.clone();
        let mut extra = bigger.cells[0].clone();
        extra.seed = 99;
        bigger.cells.push(extra);
        let bigger_summary = SweepSummary::from_report(&bigger);
        let v = bigger_summary
            .get("a", "ksg")
            .map(|_| baseline.check(&bigger, &bigger_summary))
            .unwrap();
        assert!(v.iter().any(|m| m.contains("no baseline entry")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("seed count changed")), "{v:?}");
    }

    #[test]
    fn non_finite_deltas_compare_by_class() {
        let r = report(&[("a", 1, f64::NAN), ("a", 2, f64::INFINITY)]);
        let s = SweepSummary::from_report(&r);
        let baseline = SweepBaseline::from_sweep(&r, &s);
        let parsed = SweepBaseline::parse(&baseline.to_json()).unwrap();
        assert!(parsed.cells[0].delta_mi.is_nan());
        assert_eq!(parsed.cells[1].delta_mi, f64::INFINITY);
        assert!(
            parsed.check(&r, &s).is_empty(),
            "NaN matches NaN, ∞ matches ∞"
        );
        // NaN → finite is a violation even though the difference is NaN.
        let bent = report(&[("a", 1, 0.5), ("a", 2, f64::INFINITY)]);
        let bent_summary = SweepSummary::from_report(&bent);
        assert!(!parsed.check(&bent, &bent_summary).is_empty());
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let v = json::parse(r#"{"kA": ["\"x\"", -1.5e3, true, null]}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "kA");
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr[0].as_str(), Some("\"x\""));
        assert_eq!(arr[1].as_f64(), Some(-1500.0));
        assert_eq!(arr[2], json::Value::Bool(true));
        assert!(arr[3].as_f64().unwrap().is_nan());
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("{} extra").is_err());
        assert!(SweepBaseline::parse("{\"schema\": \"other/v9\"}").is_err());
    }
}
