//! Persisted ΔI regression baselines: the science gate.
//!
//! CI has always diffed *bench times* across PRs; nothing diffed the
//! *science*. A [`SweepBaseline`] records, for one sweep plan, every
//! cell's ΔI together with the seed-axis summary statistics
//! ([`crate::summary::SweepSummary`]), serialized to a
//! `BASELINE_sweep.json` committed at the repo root. `sops-repro sweep
//! --save-baseline` writes it; `--check-baseline` re-runs the sweep and
//! compares:
//!
//! * every baseline cell must exist in the fresh report, and its ΔI must
//!   match within the **measured seed-axis confidence interval** of its
//!   (scenario, measure) group — the tolerance is the uncertainty the
//!   seed ensemble itself exhibits, floored at `1e-9` so bit-identical
//!   reruns always pass even for zero-variance groups;
//! * every group's mean ΔI must match within the same tolerance, and the
//!   seed count must agree;
//! * a fresh cell absent from the baseline fails the check (the plan
//!   changed — re-save deliberately).
//!
//! A refactor that reshuffles floating-point rounding stays green; one
//! that silently bends the measured organization does not. The JSON is
//! written and read back through the shared [`crate::wire`] machinery
//! (the repo emits JSON by hand everywhere; `wire` is the matching
//! reader, handling exactly the subset the writers produce plus standard
//! escapes), so the baseline and checkpoint schemas can never drift
//! apart in their float/string encodings.
//!
//! Quarantined cells ([`crate::scenario::CellStatus::Failed`]) never
//! enter a baseline — [`SweepBaseline::from_sweep`] records only healthy
//! cells — and a baselined cell that *fails* in a fresh sweep is an
//! explicit gate violation, not a silent skip.

use crate::error::SweepError;
use crate::scenario::SweepReport;
use crate::summary::SweepSummary;
use crate::wire;
use std::fmt::Write as _;
use std::path::Path;

/// Schema tag of the baseline wire format.
pub const SCHEMA: &str = "sops-sweep-baseline/v1";

/// Absolute floor on the per-cell/per-mean tolerance: a zero-variance
/// group (or an n = 1 "group") still accepts bit-identical reruns.
pub const TOLERANCE_FLOOR: f64 = 1e-9;

/// One recorded grid cell: coordinates plus the scalar under guard.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineCell {
    /// Scenario name.
    pub scenario: String,
    /// Plan-unique measure label.
    pub measure: String,
    /// Master seed of the cell's ensemble.
    pub seed: u64,
    /// Recorded ΔI = I(t_last) − I(t_0) in bits.
    pub delta_mi: f64,
}

/// One recorded (scenario, measure) seed-axis group.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineGroup {
    /// Scenario name.
    pub scenario: String,
    /// Plan-unique measure label.
    pub measure: String,
    /// Seed count the statistics were measured over.
    pub n: usize,
    /// Mean ΔI over the seed axis.
    pub mean: f64,
    /// Half-width of the t confidence interval — the check tolerance.
    pub ci_half: f64,
}

/// A persisted sweep baseline: per-cell ΔI plus per-group statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepBaseline {
    /// Confidence level the group intervals were measured at.
    pub confidence: f64,
    /// Recorded cells, in plan order.
    pub cells: Vec<BaselineCell>,
    /// Recorded groups, in plan order.
    pub groups: Vec<BaselineGroup>,
}

impl SweepBaseline {
    /// Captures a baseline from a report and its seed-axis summary.
    /// Quarantined cells are excluded — a baseline only ever records
    /// measured values.
    pub fn from_sweep(report: &SweepReport, summary: &SweepSummary) -> Self {
        SweepBaseline {
            confidence: summary.confidence,
            cells: report
                .cells
                .iter()
                .filter(|c| c.status.is_ok())
                .map(|c| BaselineCell {
                    scenario: c.scenario.clone(),
                    measure: c.measure_label.clone(),
                    seed: c.seed,
                    delta_mi: c.result.mi.increase(),
                })
                .collect(),
            groups: summary
                .groups
                .iter()
                .map(|g| BaselineGroup {
                    scenario: g.scenario.clone(),
                    measure: g.measure.clone(),
                    n: g.n(),
                    mean: g.mean,
                    ci_half: g.ci.half_width(),
                })
                .collect(),
        }
    }

    /// Serializes to the `BASELINE_sweep.json` schema.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"schema\": {},\n", wire::string(SCHEMA));
        let _ = writeln!(
            out,
            "  \"confidence\": {},",
            wire::float_exact(self.confidence)
        );
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"scenario\": {}, \"measure\": {}, \"seed\": {}, \"delta_mi\": {}}}{}",
                wire::string(&c.scenario),
                wire::string(&c.measure),
                c.seed,
                wire::float_exact(c.delta_mi),
                if i + 1 < self.cells.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n  \"groups\": [\n");
        for (i, g) in self.groups.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"scenario\": {}, \"measure\": {}, \"n\": {}, \"mean\": {}, \
                 \"ci_half\": {}}}{}",
                wire::string(&g.scenario),
                wire::string(&g.measure),
                g.n,
                wire::float_exact(g.mean),
                wire::float_exact(g.ci_half),
                if i + 1 < self.groups.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the baseline file (creating parent directories).
    pub fn write(&self, path: &Path) -> Result<(), SweepError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|source| SweepError::Io {
                    path: parent.to_path_buf(),
                    op: "create directory",
                    source,
                })?;
            }
        }
        std::fs::write(path, self.to_json()).map_err(|source| SweepError::Io {
            path: path.to_path_buf(),
            op: "write",
            source,
        })
    }

    /// Reads a baseline file.
    pub fn read(path: &Path) -> Result<Self, SweepError> {
        let text = std::fs::read_to_string(path).map_err(|source| SweepError::Io {
            path: path.to_path_buf(),
            op: "read",
            source,
        })?;
        Self::parse(&text).map_err(|e| match e {
            SweepError::Parse { detail, .. } => SweepError::Parse {
                what: format!("baseline {}", path.display()),
                detail,
            },
            other => other,
        })
    }

    /// Parses the `sops-sweep-baseline/v1` JSON schema. A torn or
    /// hand-edited file is [`SweepError::Parse`]; an unknown schema tag
    /// is [`SweepError::SchemaMismatch`].
    pub fn parse(text: &str) -> Result<Self, SweepError> {
        Self::parse_inner(text).map_err(|e| match e {
            BaselineParseError::Detail(detail) => SweepError::Parse {
                what: "baseline".into(),
                detail,
            },
            BaselineParseError::Typed(typed) => typed,
        })
    }

    fn parse_inner(text: &str) -> Result<Self, BaselineParseError> {
        let root = wire::parse(text)?;
        let obj = root.as_object().ok_or("top level must be an object")?;
        let schema = wire::get(obj, "schema")?
            .as_str()
            .ok_or("schema must be a string")?;
        if schema != SCHEMA {
            return Err(BaselineParseError::Typed(SweepError::SchemaMismatch {
                expected: SCHEMA.into(),
                found: schema.into(),
            }));
        }
        let confidence = wire::get(obj, "confidence")?
            .as_f64()
            .ok_or("confidence must be a number")?;
        let mut cells = Vec::new();
        for v in wire::get(obj, "cells")?
            .as_array()
            .ok_or("cells must be an array")?
        {
            let c = v.as_object().ok_or("cell must be an object")?;
            cells.push(BaselineCell {
                scenario: wire::get(c, "scenario")?
                    .as_str()
                    .ok_or("cell scenario must be a string")?
                    .to_string(),
                measure: wire::get(c, "measure")?
                    .as_str()
                    .ok_or("cell measure must be a string")?
                    .to_string(),
                seed: wire::get(c, "seed")?
                    .as_u64()
                    .ok_or("cell seed must be a u64")?,
                delta_mi: wire::get(c, "delta_mi")?
                    .as_f64()
                    .ok_or("cell delta_mi must be a number or null")?,
            });
        }
        let mut groups = Vec::new();
        for v in wire::get(obj, "groups")?
            .as_array()
            .ok_or("groups must be an array")?
        {
            let g = v.as_object().ok_or("group must be an object")?;
            groups.push(BaselineGroup {
                scenario: wire::get(g, "scenario")?
                    .as_str()
                    .ok_or("group scenario must be a string")?
                    .to_string(),
                measure: wire::get(g, "measure")?
                    .as_str()
                    .ok_or("group measure must be a string")?
                    .to_string(),
                n: wire::get(g, "n")?.as_u64().ok_or("group n must be a u64")? as usize,
                mean: wire::get(g, "mean")?
                    .as_f64()
                    .ok_or("group mean must be a number or null")?,
                ci_half: wire::get(g, "ci_half")?
                    .as_f64()
                    .ok_or("group ci_half must be a number or null")?,
            });
        }
        Ok(SweepBaseline {
            confidence,
            cells,
            groups,
        })
    }

    /// Compares a fresh sweep against this baseline. Returns the list of
    /// violations — empty means the gate passes.
    ///
    /// Tolerance per (scenario, measure): the baseline group's stored CI
    /// half-width (the *measured* seed-axis uncertainty), floored at
    /// [`TOLERANCE_FLOOR`]. Non-finite recorded values compare by
    /// bit-class: `NaN` matches `NaN`, `±∞` matches the same infinity.
    pub fn check(&self, report: &SweepReport, summary: &SweepSummary) -> Vec<String> {
        let mut violations = Vec::new();
        let tolerance = |scenario: &str, measure: &str| -> f64 {
            self.groups
                .iter()
                .find(|g| g.scenario == scenario && g.measure == measure)
                .map(|g| g.ci_half)
                .unwrap_or(0.0)
                .max(TOLERANCE_FLOOR)
        };
        let within = |now: f64, base: f64, tol: f64| -> bool {
            if !now.is_finite() || !base.is_finite() {
                // NaN == NaN, +inf == +inf, -inf == -inf for gate purposes.
                return now.to_bits() == base.to_bits() || (now.is_nan() && base.is_nan());
            }
            (now - base).abs() <= tol
        };
        for b in &self.cells {
            let Some(cell) = report.get(&b.scenario, &b.measure, Some(b.seed)) else {
                violations.push(format!(
                    "baseline cell {}/{}#{} missing from this sweep (plan changed? \
                     re-run --save-baseline)",
                    b.scenario, b.measure, b.seed
                ));
                continue;
            };
            if let crate::scenario::CellStatus::Failed { reason } = &cell.status {
                violations.push(format!(
                    "baseline cell {}/{}#{} failed in this sweep: {reason}",
                    b.scenario, b.measure, b.seed
                ));
                continue;
            }
            let now = cell.result.mi.increase();
            let tol = tolerance(&b.scenario, &b.measure);
            if !within(now, b.delta_mi, tol) {
                violations.push(format!(
                    "{}/{}#{}: ΔI = {now:.6} drifted from baseline {:.6} \
                     beyond the seed-axis CI tolerance ±{tol:.6}",
                    b.scenario, b.measure, b.seed, b.delta_mi
                ));
            }
        }
        for cell in report.cells.iter().filter(|c| c.status.is_ok()) {
            if !self.cells.iter().any(|b| {
                b.scenario == cell.scenario
                    && b.measure == cell.measure_label
                    && b.seed == cell.seed
            }) {
                violations.push(format!(
                    "cell {}/{}#{} has no baseline entry (plan changed? \
                     re-run --save-baseline)",
                    cell.scenario, cell.measure_label, cell.seed
                ));
            }
        }
        for b in &self.groups {
            let Some(g) = summary.get(&b.scenario, &b.measure) else {
                violations.push(format!(
                    "baseline group {}/{} missing from this summary",
                    b.scenario, b.measure
                ));
                continue;
            };
            if g.n() != b.n {
                violations.push(format!(
                    "{}/{}: seed count changed {} → {}",
                    b.scenario,
                    b.measure,
                    b.n,
                    g.n()
                ));
            }
            let tol = tolerance(&b.scenario, &b.measure);
            if !within(g.mean, b.mean, tol) {
                violations.push(format!(
                    "{}/{}: mean ΔI = {:.6} drifted from baseline {:.6} \
                     beyond the seed-axis CI tolerance ±{tol:.6}",
                    b.scenario, b.measure, g.mean, b.mean
                ));
            }
        }
        violations
    }
}

/// Internal parse-stage error: plain detail strings (wrapped as
/// [`SweepError::Parse`] by [`SweepBaseline::parse`]) or an
/// already-typed error that must pass through unchanged
/// (schema mismatches).
enum BaselineParseError {
    Detail(String),
    Typed(SweepError),
}

impl From<String> for BaselineParseError {
    fn from(detail: String) -> Self {
        BaselineParseError::Detail(detail)
    }
}

impl From<&str> for BaselineParseError {
    fn from(detail: &str) -> Self {
        BaselineParseError::Detail(detail.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{MiSeries, PipelineResult};
    use crate::scenario::{CellStatus, SweepCell, SweepReport};
    use sops_info::MeasureConfig;

    fn report(deltas: &[(&str, u64, f64)]) -> SweepReport {
        SweepReport {
            cells: deltas
                .iter()
                .map(|&(scenario, seed, delta)| SweepCell {
                    scenario: scenario.into(),
                    measure: MeasureConfig::default(),
                    measure_label: "ksg".into(),
                    seed,
                    status: CellStatus::Ok,
                    provenance: crate::scenario::CellProvenance::Computed,
                    result: PipelineResult {
                        mi: MiSeries {
                            times: vec![0, 10],
                            values: vec![0.0, delta],
                        },
                        mean_icp_cost: vec![0.0, 0.0],
                        equilibrated_fraction: 1.0,
                    },
                })
                .collect(),
        }
    }

    fn sweep() -> (SweepReport, SweepSummary) {
        let r = report(&[
            ("a", 1, 2.0),
            ("a", 2, 2.1),
            ("a", 3, 1.9),
            ("mixing_null", 1, 0.01),
            ("mixing_null", 2, -0.02),
            ("mixing_null", 3, 0.03),
        ]);
        let s = SweepSummary::from_report(&r);
        (r, s)
    }

    #[test]
    fn json_round_trip_is_exact() {
        let (r, s) = sweep();
        let baseline = SweepBaseline::from_sweep(&r, &s);
        let parsed = SweepBaseline::parse(&baseline.to_json()).unwrap();
        assert_eq!(parsed, baseline, "17-digit floats must round-trip");
    }

    #[test]
    fn unmodified_sweep_passes_the_gate() {
        let (r, s) = sweep();
        let baseline = SweepBaseline::from_sweep(&r, &s);
        assert!(baseline.check(&r, &s).is_empty());
    }

    #[test]
    fn perturbation_beyond_ci_fails_the_gate() {
        let (r, s) = sweep();
        let baseline = SweepBaseline::from_sweep(&r, &s);
        let tol = baseline.groups[0].ci_half;
        // Shift one "a" cell's ΔI well past the group CI.
        let mut bent = r.clone();
        bent.cells[0].result.mi.values[1] += 3.0 * tol + 0.5;
        let bent_summary = SweepSummary::from_report(&bent);
        let violations = baseline.check(&bent, &bent_summary);
        assert!(
            violations.iter().any(|v| v.contains("a/ksg#1")),
            "{violations:?}"
        );
        // A drift far inside the CI passes (rounding-level change).
        let mut nudged = r.clone();
        nudged.cells[0].result.mi.values[1] += 1e-12;
        let nudged_summary = SweepSummary::from_report(&nudged);
        assert!(baseline.check(&nudged, &nudged_summary).is_empty());
    }

    #[test]
    fn plan_changes_fail_in_both_directions() {
        let (r, s) = sweep();
        let baseline = SweepBaseline::from_sweep(&r, &s);
        // Cell missing from the fresh sweep.
        let mut smaller = r.clone();
        smaller.cells.remove(0);
        let smaller_summary = SweepSummary::from_report(&smaller);
        let v = baseline.check(&smaller, &smaller_summary);
        assert!(
            v.iter().any(|m| m.contains("missing from this sweep")),
            "{v:?}"
        );
        // Extra cell the baseline never recorded.
        let mut bigger = r.clone();
        let mut extra = bigger.cells[0].clone();
        extra.seed = 99;
        bigger.cells.push(extra);
        let bigger_summary = SweepSummary::from_report(&bigger);
        let v = bigger_summary
            .get("a", "ksg")
            .map(|_| baseline.check(&bigger, &bigger_summary))
            .unwrap();
        assert!(v.iter().any(|m| m.contains("no baseline entry")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("seed count changed")), "{v:?}");
    }

    #[test]
    fn non_finite_deltas_compare_by_class() {
        let r = report(&[("a", 1, f64::NAN), ("a", 2, f64::INFINITY)]);
        let s = SweepSummary::from_report(&r);
        let baseline = SweepBaseline::from_sweep(&r, &s);
        let parsed = SweepBaseline::parse(&baseline.to_json()).unwrap();
        assert!(parsed.cells[0].delta_mi.is_nan());
        assert_eq!(parsed.cells[1].delta_mi, f64::INFINITY);
        assert!(
            parsed.check(&r, &s).is_empty(),
            "NaN matches NaN, ∞ matches ∞"
        );
        // NaN → finite is a violation even though the difference is NaN.
        let bent = report(&[("a", 1, 0.5), ("a", 2, f64::INFINITY)]);
        let bent_summary = SweepSummary::from_report(&bent);
        assert!(!parsed.check(&bent, &bent_summary).is_empty());
    }

    #[test]
    fn malformed_and_foreign_schemas_are_typed_errors() {
        // The JSON subset itself is covered by crate::wire's tests; here
        // the baseline-level validation must map failures to the right
        // SweepError variant.
        assert!(matches!(
            SweepBaseline::parse("{\"schema\": \"other/v9\"}"),
            Err(SweepError::SchemaMismatch { .. })
        ));
        assert!(matches!(
            SweepBaseline::parse("{\"cells\": ["),
            Err(SweepError::Parse { .. })
        ));
        let (r, s) = sweep();
        let text = SweepBaseline::from_sweep(&r, &s).to_json();
        // A torn write — the file cut mid-token — is a Parse error.
        assert!(matches!(
            SweepBaseline::parse(&text[..text.len() / 2]),
            Err(SweepError::Parse { .. })
        ));
    }

    #[test]
    fn failed_cells_are_excluded_from_capture_and_flagged_by_check() {
        let (r, s) = sweep();
        let baseline = SweepBaseline::from_sweep(&r, &s);
        // A fresh sweep where one baselined cell is quarantined: explicit
        // violation naming the failure, not a silent skip.
        let mut broken = r.clone();
        broken.cells[0].status = CellStatus::Failed {
            reason: "panicked on all 2 attempt(s): boom".into(),
        };
        let broken_summary = SweepSummary::from_report(&broken);
        let v = baseline.check(&broken, &broken_summary);
        assert!(
            v.iter()
                .any(|m| m.contains("failed in this sweep") && m.contains("boom")),
            "{v:?}"
        );
        // Capturing from the broken report records only healthy cells…
        let recaptured = SweepBaseline::from_sweep(&broken, &broken_summary);
        assert_eq!(recaptured.cells.len(), r.cells.len() - 1);
        // …and checking the broken report against its own baseline is
        // clean: the failed cell has no baseline entry and is not
        // reported as "extra".
        assert!(recaptured.check(&broken, &broken_summary).is_empty());
    }
}
