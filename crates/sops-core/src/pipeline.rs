//! The measurement pipeline: ensemble → per-time-step reduction →
//! multi-information series (and optional Eq. 5 decomposition series).
//!
//! Estimation is polymorphic: the pipeline carries a
//! [`MeasureConfig`] selection and drives it through the
//! [`sops_info::Estimator`] trait. Since the scenario/sweep refactor a
//! pipeline is literally a one-cell sweep — [`run_pipeline`] simulates
//! the ensemble and hands a single-measure grid to the
//! [`crate::scenario::SweepRunner`] evaluation pass, so one `Pipeline`
//! and one sweep cell over the same scenario are bit-identical by
//! construction.

use crate::observers::{build_observers, ObserverMode};
use crate::scenario::{eval_pass, eval_schedule, EvalWorker, ScenarioSpec, SweepRunner};
use sops_info::decomposition::{Decomposition, Grouping};
use sops_info::measure::MeasureConfig;
use sops_info::KsgConfig;
use sops_shape::ensemble::{reduce_configurations_with, ReduceConfig};
use sops_sim::ensemble::{run_ensemble, Ensemble, EnsembleSpec};

/// Full experiment specification.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Simulation ensemble.
    pub ensemble: EnsembleSpec,
    /// Shape-reduction parameters.
    pub reduce: ReduceConfig,
    /// Multi-information estimator selection (KSG by default; any
    /// [`MeasureConfig`] runs through the same trait-driven workers).
    pub measure: MeasureConfig,
    /// Observer construction.
    pub observers: ObserverMode,
    /// Evaluate the estimator at `t = 0, eval_every, 2·eval_every, …` and
    /// always at the final step.
    pub eval_every: usize,
    /// Worker threads for the evaluation stage (0 = default). The outer
    /// loop parallelizes over time steps; the inner reduction/estimation
    /// stages run single-threaded to avoid oversubscription.
    pub threads: usize,
}

impl Pipeline {
    /// A pipeline with default reduction/estimation settings around an
    /// ensemble spec.
    pub fn new(ensemble: EnsembleSpec) -> Self {
        Pipeline {
            ensemble,
            reduce: ReduceConfig::default(),
            measure: MeasureConfig::default(),
            observers: ObserverMode::PerParticle,
            eval_every: 10,
            threads: 0,
        }
    }

    /// The time steps the estimator will be evaluated at.
    pub fn eval_times(&self) -> Vec<usize> {
        eval_schedule(self.ensemble.t_max, self.eval_every)
    }

    /// This pipeline as an (anonymous) sweep scenario — the physics and
    /// schedule without the measure selection.
    pub fn scenario(&self) -> ScenarioSpec {
        ScenarioSpec::from_pipeline("pipeline", self)
    }
}

/// A time-indexed series of estimates.
#[derive(Debug, Clone)]
pub struct MiSeries {
    /// Recorded time steps.
    pub times: Vec<usize>,
    /// Multi-information estimates (bits) at those steps.
    pub values: Vec<f64>,
}

impl MiSeries {
    /// `I(t_last) − I(t_first)` — the self-organization increase the
    /// paper's Fig. 8 reports as ΔI.
    pub fn increase(&self) -> f64 {
        match (self.values.first(), self.values.last()) {
            (Some(a), Some(b)) => b - a,
            _ => 0.0,
        }
    }

    /// Ordinary-least-squares slope of the series in bits per step — a
    /// robust "is it organizing" statistic used by tests. Degenerate
    /// series (empty, single-point, or constant-time) have slope `0.0`,
    /// matching [`MiSeries::increase`] — not NaN.
    pub fn slope(&self) -> f64 {
        let xs: Vec<f64> = self.times.iter().map(|&t| t as f64).collect();
        sops_math::stats::ols_slope(&xs, &self.values)
    }

    /// Largest value of the series.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Output of [`run_pipeline`].
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The multi-information time series.
    pub mi: MiSeries,
    /// Mean ICP alignment cost at each evaluated step (diagnostic).
    pub mean_icp_cost: Vec<f64>,
    /// Fraction of runs that met the equilibrium criterion (if one was
    /// configured on the ensemble).
    pub equilibrated_fraction: f64,
}

impl PipelineResult {
    /// The result of a cell that produced nothing: empty series, zero
    /// equilibrated fraction. This is the payload of a quarantined
    /// [`crate::scenario::CellStatus::Failed`] cell.
    pub fn empty() -> Self {
        PipelineResult {
            mi: MiSeries {
                times: Vec::new(),
                values: Vec::new(),
            },
            mean_icp_cost: Vec::new(),
            equilibrated_fraction: 0.0,
        }
    }
}

/// Simulates the ensemble and evaluates the multi-information series.
pub fn run_pipeline(p: &Pipeline) -> PipelineResult {
    let ensemble = run_ensemble(&p.ensemble, p.threads);
    evaluate_ensemble(&ensemble, p)
}

/// Evaluates the multi-information series on an already-simulated
/// ensemble (lets callers reuse one ensemble across analyses, e.g. Figs. 4
/// and 6 share theirs).
///
/// A thin one-cell sweep: the work happens in
/// [`SweepRunner::evaluate`], which generalizes this loop to any number
/// of measure selections per pass.
pub fn evaluate_ensemble(ensemble: &Ensemble, p: &Pipeline) -> PipelineResult {
    SweepRunner::new()
        .evaluate(
            ensemble,
            &p.scenario(),
            std::slice::from_ref(&p.measure),
            p.threads,
        )
        .pop()
        .expect("one measure in, one result out")
}

/// A decomposition (Eq. 5) evaluated along the time axis, grouping
/// observers by particle type — the data behind Fig. 11.
#[derive(Debug, Clone)]
pub struct DecompositionSeries {
    /// Evaluated time steps.
    pub times: Vec<usize>,
    /// Per-step decompositions (between-types term + within-type terms).
    pub terms: Vec<Decomposition>,
}

impl DecompositionSeries {
    /// Normalized contributions per step (Fig. 11's y-axis):
    /// `(between, within_1, …, within_l) / reconstructed total`. Steps
    /// whose total is below `floor` yield `None`.
    pub fn normalized(&self, floor: f64) -> Vec<Option<Vec<f64>>> {
        self.terms.iter().map(|d| d.normalized(floor)).collect()
    }
}

/// Runs the pipeline's reduction and evaluates the type-grouped
/// decomposition at each evaluation step.
///
/// The decomposition is a KSG-specific analysis; it runs with
/// [`MeasureConfig::ksg_config`] — the pipeline's KSG parameters when the
/// measure selection is KSG, the KSG defaults otherwise.
pub fn decomposition_series(ensemble: &Ensemble, p: &Pipeline) -> DecompositionSeries {
    let types = p.ensemble.model.types().to_vec();
    let type_count = p.ensemble.model.type_count();
    let times = p.eval_times();
    let inner_reduce = ReduceConfig {
        threads: 1,
        ..p.reduce
    };
    let inner_est = KsgConfig {
        threads: 1,
        ..p.measure.ksg_config()
    };
    let mut workers: Vec<EvalWorker> = Vec::new();
    let terms: Vec<Decomposition> = eval_pass(
        &mut workers,
        sops_sim::streaming::EnsembleFrames::Retained(ensemble),
        &times,
        p.threads,
        |w, slice, _ti| {
            let reduced = reduce_configurations_with(&mut w.reduce, slice, &types, &inner_reduce);
            let observers =
                build_observers(&reduced, &types, type_count, p.observers, p.ensemble.seed);
            let grouping = Grouping::from_labels(&observers.block_types);
            w.measure
                .decompose(&observers.view(), &grouping, &inner_est)
        },
    );
    DecompositionSeries { times, terms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sops_math::PairMatrix;
    use sops_sim::force::{ForceModel, LinearForce};
    use sops_sim::{IntegratorConfig, Model};

    /// A small 2-type attracting system that visibly organizes.
    fn small_spec(samples: usize, t_max: usize) -> EnsembleSpec {
        let k = PairMatrix::constant(2, 1.0);
        let mut r = PairMatrix::constant(2, 1.0);
        r.set(0, 1, 2.0); // cross-type preferred distance larger: sorting
        EnsembleSpec {
            model: Model::balanced(8, ForceModel::Linear(LinearForce::new(k, r)), f64::INFINITY),
            integrator: IntegratorConfig::default(),
            init_radius: 2.0,
            t_max,
            samples,
            seed: 99,
            criterion: None,
        }
    }

    fn small_pipeline() -> Pipeline {
        let mut p = Pipeline::new(small_spec(60, 30));
        p.eval_every = 15;
        p.measure = MeasureConfig::Ksg(KsgConfig {
            k: 3,
            ..KsgConfig::default()
        });
        p
    }

    #[test]
    fn eval_times_cover_endpoints() {
        let p = small_pipeline();
        let times = p.eval_times();
        assert_eq!(times.first(), Some(&0));
        assert_eq!(times.last(), Some(&30));
        // Non-divisible horizon still ends exactly at t_max.
        let mut p2 = small_pipeline();
        p2.ensemble.t_max = 31;
        assert_eq!(*p2.eval_times().last().unwrap(), 31);
    }

    #[test]
    fn organizing_system_shows_mi_increase() {
        let result = run_pipeline(&small_pipeline());
        assert_eq!(result.mi.times.len(), result.mi.values.len());
        assert!(
            result.mi.increase() > 0.5,
            "attracting collective should organize: {:?}",
            result.mi.values
        );
        assert!(result.mi.values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn series_helpers() {
        let s = MiSeries {
            times: vec![0, 10, 20],
            values: vec![1.0, 2.0, 4.0],
        };
        assert_eq!(s.increase(), 3.0);
        assert_eq!(s.max(), 4.0);
        assert!(s.slope() > 0.0);
    }

    #[test]
    fn thread_counts_do_not_change_series() {
        let mut p = small_pipeline();
        p.ensemble.samples = 40;
        p.threads = 1;
        let a = run_pipeline(&p);
        p.threads = 4;
        let b = run_pipeline(&p);
        for (x, y) in a.mi.values.iter().zip(&b.mi.values) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn decomposition_series_shape_and_identity() {
        let p = small_pipeline();
        let ensemble = run_ensemble(&p.ensemble, 0);
        let d = decomposition_series(&ensemble, &p);
        assert_eq!(d.times.len(), d.terms.len());
        for term in &d.terms {
            assert_eq!(term.within.len(), 2, "one within-term per type");
            assert!(term.total.is_finite());
        }
        // Normalized entries sum to 1 where defined.
        for norm in d.normalized(1e-3).into_iter().flatten() {
            let sum: f64 = norm.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn type_means_observer_path_runs() {
        let mut p = small_pipeline();
        p.observers = ObserverMode::TypeMeans { k_per_type: 2 };
        let result = run_pipeline(&p);
        assert!(result.mi.values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn every_measure_selection_drives_the_pipeline() {
        // The polymorphic dispatch point: the same evaluation loop must
        // run any estimator family. The calibrated estimators (KSG, KDE)
        // must see the organizing trend; the binned/discrete baselines
        // only need to run — at 16 joint dimensions over 80 samples they
        // saturate, which is exactly the §5.3 artifact this repo
        // reproduces ("almost no change in information could be seen").
        let ensemble = run_ensemble(&small_spec(80, 30), 0);
        let selections = [
            (MeasureConfig::default(), true),
            (MeasureConfig::Kde(sops_info::KdeConfig::default()), true),
            (
                MeasureConfig::Binned(sops_info::BinningConfig::default()),
                false,
            ),
            (MeasureConfig::DiscretePlugin { bins: 6 }, false),
            // 80 runs over 16 joint dims: covariance is well-conditioned,
            // so the parametric baseline runs too (it reports NaN, not a
            // panic, when a step's covariance is singular).
            (MeasureConfig::Gaussian, false),
        ];
        for (measure, sees_trend) in selections {
            let mut p = small_pipeline();
            p.ensemble.samples = 80;
            p.measure = measure;
            let result = evaluate_ensemble(&ensemble, &p);
            assert!(
                result.mi.values.iter().all(|v| v.is_finite()),
                "{}: {:?}",
                measure.label(),
                result.mi.values
            );
            if sees_trend {
                assert!(
                    result.mi.increase() > 0.0,
                    "{} must see the organization: {:?}",
                    measure.label(),
                    result.mi.values
                );
            }
        }
    }

    #[test]
    fn non_ksg_measure_bit_matches_direct_estimator() {
        // The trait-driven worker must produce exactly what the direct
        // engine produces on the same reduced observers.
        let ensemble = run_ensemble(&small_spec(50, 20), 0);
        let mut p = Pipeline::new(small_spec(50, 20));
        p.eval_every = 20;
        p.measure = MeasureConfig::Binned(sops_info::BinningConfig::default());
        p.threads = 1;
        let via_pipeline = evaluate_ensemble(&ensemble, &p);

        let types = p.ensemble.model.types().to_vec();
        let type_count = p.ensemble.model.type_count();
        let inner_reduce = ReduceConfig {
            threads: 1,
            ..p.reduce
        };
        for (ti, &t) in p.eval_times().iter().enumerate() {
            let slice = ensemble.at_time(t);
            let reduced =
                sops_shape::ensemble::reduce_configurations(&slice, &types, &inner_reduce);
            let observers =
                build_observers(&reduced, &types, type_count, p.observers, p.ensemble.seed);
            let want = sops_info::BinnedWorkspace::new()
                .multi_information(&observers.view(), &sops_info::BinningConfig::default());
            assert_eq!(via_pipeline.mi.values[ti].to_bits(), want.to_bits());
        }
    }
}
