//! Observer variables over reduced configurations (paper §3.1, §5.3.1).
//!
//! The natural observers are the individual (reduced) particle positions:
//! `n` blocks of dimension 2. For large collectives (the paper switches
//! above 60 particles) the k-means approximation replaces each type's
//! particles by `k` cluster means: `l·k` blocks of dimension 2.

use sops_cluster::KMeansConfig;
use sops_math::Vec2;
use sops_shape::ensemble::ReducedSet;

/// How reduced configurations are turned into observer blocks.
#[derive(Debug, Clone, Copy)]
pub enum ObserverMode {
    /// One observer per particle (blocks `[2; n]`).
    PerParticle,
    /// §5.3.1: per-type k-means centres as observers (blocks
    /// `[2; l·k_per_type]`). Cross-sample correspondence of centres comes
    /// from canonical ordering in the common aligned frame.
    TypeMeans {
        /// Clusters per type.
        k_per_type: usize,
    },
}

/// Flattened observer matrix: `rows × Σ block_sizes` values plus the block
/// structure, ready for [`sops_info::SampleView`].
#[derive(Debug, Clone)]
pub struct ObserverMatrix {
    /// Row-major sample data.
    pub data: Vec<f64>,
    /// Number of samples.
    pub rows: usize,
    /// Observer block dimensions.
    pub block_sizes: Vec<usize>,
    /// Group label (particle type) of each observer block, for the Eq. 5
    /// decomposition.
    pub block_types: Vec<usize>,
}

impl ObserverMatrix {
    /// A borrowed estimator view of this matrix.
    pub fn view(&self) -> sops_info::SampleView<'_> {
        sops_info::SampleView::new(&self.data, self.rows, &self.block_sizes)
    }
}

/// Builds the observer matrix for one reduced time slice.
///
/// `types[i]` is particle `i`'s type; `type_count` the number of types
/// `l`; `seed` feeds the k-means restarts in [`ObserverMode::TypeMeans`].
pub fn build_observers(
    reduced: &ReducedSet,
    types: &[u16],
    type_count: usize,
    mode: ObserverMode,
    seed: u64,
) -> ObserverMatrix {
    let rows = reduced.configs.len();
    match mode {
        ObserverMode::PerParticle => {
            let n = types.len();
            let mut data = Vec::with_capacity(rows * n * 2);
            for cfg in &reduced.configs {
                debug_assert_eq!(cfg.len(), n);
                for p in cfg {
                    data.push(p.x);
                    data.push(p.y);
                }
            }
            ObserverMatrix {
                data,
                rows,
                block_sizes: vec![2; n],
                block_types: types.iter().map(|&t| t as usize).collect(),
            }
        }
        ObserverMode::TypeMeans { k_per_type } => {
            assert!(k_per_type >= 1, "TypeMeans: k_per_type must be >= 1");
            let blocks = type_count * k_per_type;
            let mut data = Vec::with_capacity(rows * blocks * 2);
            let km_cfg = KMeansConfig {
                k: k_per_type,
                ..KMeansConfig::default()
            };
            for cfg in &reduced.configs {
                // Same seed for every sample: clustering must be a
                // deterministic function of the configuration alone so
                // that observers are comparable across samples.
                let means: Vec<Vec2> =
                    sops_cluster::per_type_means(cfg, types, type_count, k_per_type, &km_cfg, seed);
                for m in means {
                    data.push(m.x);
                    data.push(m.y);
                }
            }
            let mut block_types = Vec::with_capacity(blocks);
            for t in 0..type_count {
                for _ in 0..k_per_type {
                    block_types.push(t);
                }
            }
            ObserverMatrix {
                data,
                rows,
                block_sizes: vec![2; blocks],
                block_types,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reduced_fixture() -> (ReducedSet, Vec<u16>) {
        // Two samples, 4 particles, 2 types.
        let configs = vec![
            vec![
                Vec2::new(0.0, 0.0),
                Vec2::new(1.0, 0.0),
                Vec2::new(5.0, 5.0),
                Vec2::new(6.0, 5.0),
            ],
            vec![
                Vec2::new(0.1, 0.0),
                Vec2::new(1.1, 0.0),
                Vec2::new(5.1, 5.0),
                Vec2::new(6.1, 5.0),
            ],
        ];
        (
            ReducedSet {
                configs,
                icp_costs: vec![0.0, 0.0],
            },
            vec![0u16, 0, 1, 1],
        )
    }

    #[test]
    fn per_particle_layout() {
        let (reduced, types) = reduced_fixture();
        let m = build_observers(&reduced, &types, 2, ObserverMode::PerParticle, 1);
        assert_eq!(m.rows, 2);
        assert_eq!(m.block_sizes, vec![2, 2, 2, 2]);
        assert_eq!(m.block_types, vec![0, 0, 1, 1]);
        assert_eq!(m.data.len(), 16);
        assert_eq!(&m.data[0..4], &[0.0, 0.0, 1.0, 0.0]);
        // View round-trips.
        let v = m.view();
        assert_eq!(v.blocks(), 4);
    }

    #[test]
    fn type_means_layout_and_determinism() {
        let (reduced, types) = reduced_fixture();
        let mode = ObserverMode::TypeMeans { k_per_type: 1 };
        let a = build_observers(&reduced, &types, 2, mode, 7);
        let b = build_observers(&reduced, &types, 2, mode, 7);
        assert_eq!(a.data, b.data);
        assert_eq!(a.block_sizes, vec![2, 2]);
        assert_eq!(a.block_types, vec![0, 1]);
        // k = 1 means are the per-type centroids.
        assert!((a.data[0] - 0.5).abs() < 1e-12); // type-0 mean x of sample 0
        assert!((a.data[2] - 5.5).abs() < 1e-12); // type-1 mean x of sample 0
    }

    #[test]
    fn type_means_two_clusters() {
        let (reduced, types) = reduced_fixture();
        let mode = ObserverMode::TypeMeans { k_per_type: 2 };
        let m = build_observers(&reduced, &types, 2, mode, 3);
        assert_eq!(m.block_sizes.len(), 4);
        assert_eq!(m.block_types, vec![0, 0, 1, 1]);
        // Each particle is its own cluster; canonical order sorts by x.
        assert_eq!(&m.data[0..4], &[0.0, 0.0, 1.0, 0.0]);
    }
}
