//! Shape diagnostics for the gallery figures and the single-type analyses.
//!
//! * nearest-neighbour distance CV — grid regularity (Fig. 3's "regular
//!   grid" claim);
//! * ring decomposition + angular statistics — the concentric-polygon
//!   configurations of Figs. 5 and 7;
//! * per-particle cross-sample dispersion — Fig. 7's tight outer ring vs
//!   smeared inner ring;
//! * radial type stratification — Fig. 12's "balls enclosed in circles,
//!   layers of different types".

use sops_math::{stats, Vec2};
use sops_spatial::KdTree;

/// Coefficient of variation of nearest-neighbour distances — near zero
/// for a regular grid, larger for irregular configurations.
pub fn nn_distance_cv(points: &[Vec2]) -> f64 {
    assert!(points.len() >= 2, "nn_distance_cv: need at least 2 points");
    let flat: Vec<f64> = points.iter().flat_map(|p| [p.x, p.y]).collect();
    let tree = KdTree::build(2, &flat);
    let dists: Vec<f64> = (0..points.len())
        .map(|i| {
            let (_, d2) = tree
                .nearest_excluding(&[points[i].x, points[i].y], |j| j == i)
                .expect("nn_distance_cv: isolated point");
            d2.sqrt()
        })
        .collect();
    stats::coefficient_of_variation(&dists)
}

/// Mean nearest-neighbour distance.
pub fn mean_nn_distance(points: &[Vec2]) -> f64 {
    assert!(points.len() >= 2);
    let flat: Vec<f64> = points.iter().flat_map(|p| [p.x, p.y]).collect();
    let tree = KdTree::build(2, &flat);
    let sum: f64 = (0..points.len())
        .map(|i| {
            tree.nearest_excluding(&[points[i].x, points[i].y], |j| j == i)
                .unwrap()
                .1
                .sqrt()
        })
        .sum();
    sum / points.len() as f64
}

/// Radius of gyration about the centroid.
pub fn radius_of_gyration(points: &[Vec2]) -> f64 {
    let c = Vec2::centroid(points);
    let ms: f64 = points.iter().map(|p| p.dist_sq(c)).sum::<f64>() / points.len() as f64;
    ms.sqrt()
}

/// Splits a centred configuration into radial rings: particles are sorted
/// by distance from the centroid and cut where consecutive radii jump by
/// more than `gap_factor` × median radius step.
///
/// Returns per-ring particle indices, innermost first. The two concentric
/// polygons of Fig. 7 come out as two rings.
pub fn ring_decomposition(points: &[Vec2], gap_factor: f64) -> Vec<Vec<usize>> {
    let c = Vec2::centroid(points);
    let mut order: Vec<(usize, f64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (i, p.dist(c)))
        .collect();
    order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    if order.len() <= 1 {
        return vec![order.iter().map(|&(i, _)| i).collect()];
    }
    let steps: Vec<f64> = order.windows(2).map(|w| w[1].1 - w[0].1).collect();
    let median_step = stats::quantile(&steps, 0.5).max(1e-12);
    let mut rings = vec![Vec::new()];
    rings[0].push(order[0].0);
    for (w, &step) in order.windows(2).zip(&steps) {
        if step > gap_factor * median_step {
            rings.push(Vec::new());
        }
        rings.last_mut().unwrap().push(w[1].0);
    }
    rings
}

/// Mean radius of a set of particles about the collective centroid.
pub fn ring_radius(points: &[Vec2], ring: &[usize]) -> f64 {
    let c = Vec2::centroid(points);
    ring.iter().map(|&i| points[i].dist(c)).sum::<f64>() / ring.len() as f64
}

/// Per-particle cross-sample dispersion: for each particle index, the
/// root-mean-square distance of its position across samples from its
/// cross-sample mean. Input layout: `samples[s][i]`.
///
/// Fig. 7's observation is that outer-ring particles have small dispersion
/// (well aligned) while inner-ring particles are smeared by the free
/// relative rotation.
pub fn cross_sample_dispersion(samples: &[Vec<Vec2>]) -> Vec<f64> {
    assert!(!samples.is_empty());
    let n = samples[0].len();
    let m = samples.len() as f64;
    (0..n)
        .map(|i| {
            let mean: Vec2 = samples.iter().map(|s| s[i]).sum::<Vec2>() / m;
            let ms: f64 = samples.iter().map(|s| s[i].dist_sq(mean)).sum::<f64>() / m;
            ms.sqrt()
        })
        .collect()
}

/// Radial type stratification: Spearman-like association between a
/// particle's type id and the rank of its distance from the centroid.
///
/// Near ±1 when types form concentric layers (Fig. 12), near 0 when types
/// are radially mixed. Uses the correlation of type value with radius
/// rank.
pub fn radial_stratification(points: &[Vec2], types: &[u16]) -> f64 {
    assert_eq!(points.len(), types.len());
    let c = Vec2::centroid(points);
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .dist_sq(c)
            .partial_cmp(&points[b].dist_sq(c))
            .unwrap()
    });
    let mut rank = vec![0.0; points.len()];
    for (r, &i) in order.iter().enumerate() {
        rank[i] = r as f64;
    }
    let tvals: Vec<f64> = types.iter().map(|&t| t as f64).collect();
    stats::correlation(&tvals, &rank)
}

/// Mean distance between the centroids of each type's particles —
/// "sortedness" of a multi-type collective (differential adhesion demo).
pub fn type_separation(points: &[Vec2], types: &[u16], type_count: usize) -> f64 {
    let mut centroids = Vec::with_capacity(type_count);
    for t in 0..type_count {
        let members: Vec<Vec2> = points
            .iter()
            .zip(types)
            .filter(|(_, &ty)| ty as usize == t)
            .map(|(&p, _)| p)
            .collect();
        assert!(!members.is_empty(), "type_separation: empty type {t}");
        centroids.push(Vec2::centroid(&members));
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for a in 0..type_count {
        for b in (a + 1)..type_count {
            total += centroids[a].dist(centroids[b]);
            pairs += 1;
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_grid(side: usize, spacing: f64) -> Vec<Vec2> {
        let mut pts = Vec::new();
        for i in 0..side {
            for j in 0..side {
                pts.push(Vec2::new(i as f64 * spacing, j as f64 * spacing));
            }
        }
        pts
    }

    fn ring(n: usize, radius: f64, phase: f64) -> Vec<Vec2> {
        (0..n)
            .map(|i| Vec2::from_polar(radius, phase + std::f64::consts::TAU * i as f64 / n as f64))
            .collect()
    }

    #[test]
    fn grid_has_low_nn_cv() {
        let grid = square_grid(6, 1.0);
        assert!(nn_distance_cv(&grid) < 1e-9, "perfect grid CV ~ 0");
        assert!((mean_nn_distance(&grid) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_cloud_has_high_nn_cv() {
        let mut rng = sops_math::SplitMix64::new(12);
        let pts: Vec<Vec2> = (0..100)
            .map(|_| Vec2::new(rng.next_range(0.0, 10.0), rng.next_range(0.0, 10.0)))
            .collect();
        assert!(nn_distance_cv(&pts) > 0.2);
    }

    #[test]
    fn radius_of_gyration_of_ring() {
        let pts = ring(16, 3.0, 0.0);
        assert!((radius_of_gyration(&pts) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn two_rings_detected() {
        let mut pts = ring(6, 1.0, 0.3);
        pts.extend(ring(12, 3.0, 0.0));
        let rings = ring_decomposition(&pts, 4.0);
        assert_eq!(rings.len(), 2, "rings: {rings:?}");
        assert_eq!(rings[0].len(), 6);
        assert_eq!(rings[1].len(), 12);
        assert!(ring_radius(&pts, &rings[0]) < ring_radius(&pts, &rings[1]));
    }

    #[test]
    fn single_ring_not_split() {
        let pts = ring(10, 2.0, 0.0);
        let rings = ring_decomposition(&pts, 4.0);
        assert_eq!(rings.len(), 1);
    }

    #[test]
    fn dispersion_detects_smeared_particles() {
        // Particle 0 fixed across samples; particle 1 jitters.
        let mut rng = sops_math::SplitMix64::new(5);
        let samples: Vec<Vec<Vec2>> = (0..200)
            .map(|_| {
                vec![
                    Vec2::new(1.0, 1.0),
                    Vec2::new(rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0)),
                ]
            })
            .collect();
        let disp = cross_sample_dispersion(&samples);
        assert!(disp[0] < 1e-12);
        assert!(disp[1] > 0.3);
    }

    #[test]
    fn stratified_types_score_high() {
        // Type 0 inner ring, type 1 outer ring.
        let mut pts = ring(8, 1.0, 0.0);
        pts.extend(ring(8, 4.0, 0.0));
        let types: Vec<u16> = (0..16).map(|i| u16::from(i >= 8)).collect();
        let s = radial_stratification(&pts, &types);
        // Point-biserial correlation of a balanced binary label against
        // uniform ranks tops out at sqrt(3)/2 ≈ 0.866.
        assert!(s > 0.8, "stratification {s}");
    }

    #[test]
    fn mixed_types_score_low() {
        let mut rng = sops_math::SplitMix64::new(77);
        let pts: Vec<Vec2> = (0..200)
            .map(|_| Vec2::new(rng.next_range(-5.0, 5.0), rng.next_range(-5.0, 5.0)))
            .collect();
        let types: Vec<u16> = (0..200).map(|i| (i % 2) as u16).collect();
        let s = radial_stratification(&pts, &types);
        assert!(s.abs() < 0.25, "mixed stratification {s}");
    }

    #[test]
    fn separation_of_sorted_vs_mixed() {
        // Sorted: types in separate blobs far apart.
        let mut sorted_pts = Vec::new();
        let mut types = Vec::new();
        for i in 0..10 {
            sorted_pts.push(Vec2::new(i as f64 * 0.1, 0.0));
            types.push(0u16);
        }
        for i in 0..10 {
            sorted_pts.push(Vec2::new(10.0 + i as f64 * 0.1, 0.0));
            types.push(1u16);
        }
        let sep_sorted = type_separation(&sorted_pts, &types, 2);
        // Mixed: interleaved.
        let mixed_pts: Vec<Vec2> = (0..20).map(|i| Vec2::new(i as f64 * 0.1, 0.0)).collect();
        let mixed_types: Vec<u16> = (0..20).map(|i| (i % 2) as u16).collect();
        let sep_mixed = type_separation(&mixed_pts, &mixed_types, 2);
        assert!(sep_sorted > 5.0 * sep_mixed);
    }
}
