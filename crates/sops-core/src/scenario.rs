//! Scenario registry and the one-pass sweep engine.
//!
//! The paper's evaluation is a *matrix*: particle-system scenarios (force
//! laws, type mixtures, schedules) crossed with self-organization
//! measures. A [`ScenarioSpec`] names one column of the physics side — a
//! model, its initialization, integration schedule and evaluation times —
//! and the [`ScenarioRegistry`] ships the built-in setups (the
//! cell-sorting and ring-formation systems of the examples plus a
//! mixing/null control). A [`SweepPlan`] is the cartesian grid
//! scenarios × [`MeasureConfig`] selections × seeds, and the
//! [`SweepRunner`] executes it *one-pass*:
//!
//! * each (scenario, seed) ensemble is simulated **once**,
//! * per evaluated time step, the cross-sample view is materialized once
//!   ([`Ensemble::at_time_into`] into a per-worker buffer), the shape
//!   reduction runs once and the observer matrix is built once,
//! * every selected estimator is then fanned over that shared prepared
//!   state through the [`sops_info::Estimator`] trait, with per-worker
//!   [`MeasureWorkspace`]/[`ReduceWorkspace`] scratch reused across all
//!   the time steps a worker claims ([`sops_par::parallel_map_with`]).
//!
//! Each grid cell's [`PipelineResult`] is **bit-identical** to the
//! equivalent standalone [`crate::run_pipeline`] call for any worker
//! count — estimates depend only on the prepared view and the
//! configuration, never on workspace history (the workspaces cache only
//! buffer capacity). `run_pipeline` itself is a thin one-cell sweep over
//! this engine.
//!
//! Results land in a [`SweepReport`], a flat scenario × measure × time
//! table with CSV/JSON writers in [`crate::report`] and an ASCII grid
//! renderer; the `sops-repro` binary drives it via the `sweep`
//! subcommand.
//!
//! The engine is **fault-tolerant**: every (scenario, seed) ensemble is
//! simulated and evaluated under panic isolation
//! ([`std::panic::catch_unwind`] with the bounded [`RetryPolicy`]), so a
//! poisoned cell — a singular covariance, a degenerate estimator
//! parameterization, an invalid ensemble spec — is quarantined into the
//! report as [`CellStatus::Failed`] instead of aborting hours of sweep.
//! When a shared one-pass evaluation fails, the runner degrades to
//! per-measure evaluation so only the poisoned measure's cells fail
//! (per-measure results are bit-identical to the one-pass values by the
//! engine's own contract). Public entry points return
//! [`crate::error::SweepError`] instead of panicking, and
//! [`SweepRunner::run_with_checkpoint`] persists completed cells through
//! [`crate::checkpoint`] so an interrupted sweep resumes bit-identically
//! (`tests/sweep_resume.rs`).

use crate::cache::CellCache;
use crate::checkpoint::SweepCheckpoint;
use crate::error::SweepError;
use crate::observers::{build_observers, ObserverMode};
use crate::pipeline::{MiSeries, Pipeline, PipelineResult};
use sops_info::measure::{MeasureConfig, MeasureWorkspace};
use sops_math::{PairMatrix, Vec2};
use sops_shape::ensemble::{reduce_configurations_with, ReduceConfig, ReduceMode, ReduceWorkspace};
use sops_sim::ensemble::{run_ensemble, Ensemble, EnsembleSpec};
use sops_sim::force::{ForceModel, LinearForce};
use sops_sim::streaming::{
    recycle_slice_vec, run_streaming_ensemble, EnsembleFrames, StreamingConfig, StreamingEnsemble,
};
use sops_sim::{IntegratorConfig, Model};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// A named particle-system experiment — model, initialization, schedule
/// and evaluation times: everything a [`Pipeline`] carries except the
/// measure selection, which the sweep grid supplies.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Registry key (also the row label of sweep reports).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Simulation ensemble: model, init, integrator, horizon, samples.
    pub ensemble: EnsembleSpec,
    /// Shape-reduction parameters.
    pub reduce: ReduceConfig,
    /// Observer construction.
    pub observers: ObserverMode,
    /// Evaluate at `t = 0, eval_every, 2·eval_every, …` and always at the
    /// final step.
    pub eval_every: usize,
}

/// The time steps an `eval_every` schedule evaluates over a `t_max`
/// horizon: `0, every, 2·every, …` plus always `t_max` itself.
///
/// Degenerate inputs are defined, not panics (the schedule feeds
/// unattended sweeps): `eval_every == 0` is a documented clamp to 1
/// (evaluate every recorded step), and `t_max == 0` yields the single
/// step `[0]`. The result is therefore never empty and always covers
/// both endpoints.
pub fn eval_schedule(t_max: usize, eval_every: usize) -> Vec<usize> {
    let every = eval_every.max(1);
    let mut times: Vec<usize> = (0..=t_max).step_by(every).collect();
    if times.last() != Some(&t_max) {
        times.push(t_max);
    }
    times
}

impl ScenarioSpec {
    /// The scenario a [`Pipeline`] describes, under the given name (the
    /// inverse of [`ScenarioSpec::pipeline`]).
    pub fn from_pipeline(name: impl Into<String>, p: &Pipeline) -> Self {
        ScenarioSpec {
            name: name.into(),
            description: String::new(),
            ensemble: p.ensemble.clone(),
            reduce: p.reduce,
            observers: p.observers,
            eval_every: p.eval_every,
        }
    }

    /// A single-measure [`Pipeline`] over this scenario (threads default;
    /// set [`Pipeline::threads`] on the result to override).
    pub fn pipeline(&self, measure: MeasureConfig) -> Pipeline {
        Pipeline {
            ensemble: self.ensemble.clone(),
            reduce: self.reduce,
            measure,
            observers: self.observers,
            eval_every: self.eval_every,
            threads: 0,
        }
    }

    /// The evaluation time steps of this scenario.
    pub fn eval_times(&self) -> Vec<usize> {
        eval_schedule(self.ensemble.t_max, self.eval_every)
    }

    /// The same scenario with the master seed replaced — how the sweep
    /// grid's seed axis is applied.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.ensemble.seed = seed;
        self
    }

    /// The same scenario re-scaled to `samples` ensemble runs over a
    /// `t_max` horizon (evaluation cadence clamped to stay meaningful) —
    /// smoke/bench scale for the full-size registry entries.
    pub fn with_scale(mut self, samples: usize, t_max: usize) -> Self {
        assert!(samples > 0 && t_max > 0, "with_scale: degenerate scale");
        self.ensemble.samples = samples;
        self.ensemble.t_max = t_max;
        self.eval_every = self.eval_every.clamp(1, t_max);
        self
    }

    /// The same scenario re-scaled to `n` particles: the model is rebuilt
    /// with a balanced type assignment over the same force law and
    /// cut-off, and the initial disc radius grows as `√(n/n_old)` so the
    /// initial *density* (and with it the neighbourhood structure the
    /// forces see) is preserved — how the gallery's 10⁵-particle tier is
    /// derived from the lab-scale builtins.
    pub fn with_particles(mut self, n: usize) -> Self {
        assert!(n > 0, "with_particles: need at least one particle");
        let old_n = self.ensemble.model.particles();
        let law = self.ensemble.model.law().clone();
        let cutoff = self.ensemble.model.cutoff();
        self.ensemble.model = Model::balanced(n, law, cutoff);
        self.ensemble.init_radius *= (n as f64 / old_n as f64).sqrt();
        self
    }
}

/// Integrator schedule shared by the built-in adhesion scenarios (the
/// examples' settings: gentle noise, two substeps per recorded step).
fn adhesion_integrator(dt: f64) -> IntegratorConfig {
    IntegratorConfig {
        dt,
        substeps: 2,
        noise_variance: 0.0025,
        max_step: 0.5,
        ..IntegratorConfig::default()
    }
}

/// Differential-adhesion cell sorting (`examples/cell_sorting.rs`): two
/// tissue types whose same-type preferred distance (1.2) is smaller than
/// the cross-type one (3.0) un-mix purely through local interaction — the
/// paper's biological motivation, and a strongly organizing system.
pub fn cell_sorting() -> ScenarioSpec {
    let force_scale = PairMatrix::constant(2, 1.0);
    let preferred = PairMatrix::from_full(2, &[1.2, 3.0, 3.0, 1.2]);
    let law = ForceModel::Linear(LinearForce::new(force_scale, preferred));
    ScenarioSpec {
        name: "cell_sorting".into(),
        description: "two-type differential adhesion: tissues un-mix (strong organization)".into(),
        ensemble: EnsembleSpec {
            model: Model::balanced(40, law, 6.0),
            integrator: adhesion_integrator(0.05),
            init_radius: 3.0,
            t_max: 100,
            samples: 120,
            seed: 11,
            criterion: None,
        },
        reduce: ReduceConfig::default(),
        observers: ObserverMode::PerParticle,
        eval_every: 20,
    }
}

/// Ring formation in a single-type collective
/// (`examples/ring_formation.rs`, the Figs. 5 & 7 system): 20 identical
/// particles under the F1 law with unbounded cut-off settle into two
/// concentric regular polygons.
pub fn ring_formation() -> ScenarioSpec {
    let law = ForceModel::Linear(LinearForce::uniform(1.0, 2.0));
    ScenarioSpec {
        name: "ring_formation".into(),
        description: "single-type F1 collective settling into concentric rings".into(),
        ensemble: EnsembleSpec {
            model: Model::balanced(20, law, f64::INFINITY),
            integrator: adhesion_integrator(0.02),
            init_radius: 4.0,
            t_max: 250,
            samples: 150,
            seed: 5,
            criterion: None,
        },
        reduce: ReduceConfig::default(),
        observers: ObserverMode::PerParticle,
        eval_every: 50,
    }
}

/// Mixing/null control: the cell-sorting geometry with the interaction
/// switched off (`k = 0`) — pure diffusion. The ensemble stays an
/// unstructured cloud, so a calibrated measure must report (near-)zero
/// self-organization; this is the negative control of every sweep.
pub fn mixing_null() -> ScenarioSpec {
    let force_scale = PairMatrix::constant(2, 0.0);
    let preferred = PairMatrix::constant(2, 1.0);
    let law = ForceModel::Linear(LinearForce::new(force_scale, preferred));
    ScenarioSpec {
        name: "mixing_null".into(),
        description: "interaction-free diffusion: the stays-mixed negative control".into(),
        ensemble: EnsembleSpec {
            model: Model::balanced(40, law, 6.0),
            integrator: adhesion_integrator(0.05),
            init_radius: 3.0,
            t_max: 100,
            samples: 120,
            seed: 23,
            criterion: None,
        },
        reduce: ReduceConfig::default(),
        observers: ObserverMode::PerParticle,
        eval_every: 20,
    }
}

/// Cell sorting at collective scale: the [`cell_sorting`] physics with
/// 10⁵ particles (density-preserving disc via
/// [`ScenarioSpec::with_particles`]), a small sample axis and a sparse
/// evaluation schedule. At this size the retained-trajectory ensemble
/// would hold `8 × 101 × 10⁵` positions (~1.3 GB); the streaming default
/// keeps only the three scheduled frames (~38 MB). The reduction runs in
/// [`ReduceMode::Centred`] (the Hungarian matching of the full reduction
/// is O(k³) per type) and observers are per-type means, the regime where
/// the per-particle correspondence is irrelevant.
pub fn cell_sorting_xl() -> ScenarioSpec {
    let mut sc = cell_sorting().with_particles(100_000).with_scale(8, 100);
    sc.name = "cell_sorting_xl".into();
    sc.description = "cell sorting at 10⁵ particles: the streaming-tier scale demonstrator".into();
    // Halve the cut-off: at preserved density the in-range neighbour
    // count scales with r_c², so the lab tier's r_c = 6 (which there
    // covers the whole 40-particle disc, ~40 neighbours) would mean ~160
    // neighbours per particle here. r_c = 3 restores the lab
    // coordination number and quarters the per-step pair work.
    let law = sc.ensemble.model.law().clone();
    sc.ensemble.model = Model::balanced(100_000, law, 3.0);
    sc.eval_every = 50;
    sc.reduce.mode = ReduceMode::Centred;
    sc.observers = ObserverMode::TypeMeans { k_per_type: 4 };
    sc
}

/// A name-keyed collection of scenarios; [`ScenarioRegistry::builtin`]
/// ships the paper's gallery, [`ScenarioRegistry::register`] adds or
/// replaces entries (last write wins, insertion order preserved).
#[derive(Debug, Clone, Default)]
pub struct ScenarioRegistry {
    scenarios: Vec<ScenarioSpec>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// The built-in gallery: [`cell_sorting`], [`ring_formation`],
    /// [`mixing_null`].
    pub fn builtin() -> Self {
        let mut reg = ScenarioRegistry::new();
        reg.register(cell_sorting());
        reg.register(ring_formation());
        reg.register(mixing_null());
        reg
    }

    /// The extended gallery: every [`ScenarioRegistry::builtin`] scenario
    /// plus the large-scale tier ([`cell_sorting_xl`]). Kept separate
    /// from `builtin` so default sweeps stay lab-sized; drivers opt into
    /// the big scenarios by name.
    pub fn gallery() -> Self {
        let mut reg = Self::builtin();
        reg.register(cell_sorting_xl());
        reg
    }

    /// Adds `spec`, replacing any scenario of the same name in place.
    pub fn register(&mut self, spec: ScenarioSpec) {
        assert!(!spec.name.is_empty(), "ScenarioRegistry: unnamed scenario");
        match self.scenarios.iter_mut().find(|s| s.name == spec.name) {
            Some(slot) => *slot = spec,
            None => self.scenarios.push(spec),
        }
    }

    /// The scenario registered under `name`.
    pub fn get(&self, name: &str) -> Option<&ScenarioSpec> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.iter().map(|s| s.name.as_str()).collect()
    }

    /// All registered scenarios, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &ScenarioSpec> {
        self.scenarios.iter()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Clones the scenarios selected by `names`, in the given order;
    /// `Err` names the first unknown entry (with the known names, for CLI
    /// error messages).
    pub fn select(&self, names: &[&str]) -> Result<Vec<ScenarioSpec>, SweepError> {
        names
            .iter()
            .map(|&n| {
                self.get(n)
                    .cloned()
                    .ok_or_else(|| SweepError::UnknownScenario {
                        name: n.to_string(),
                        known: self.names().iter().map(|s| s.to_string()).collect(),
                    })
            })
            .collect()
    }
}

/// How each (scenario, seed) ensemble is materialized for evaluation.
///
/// Results are **bit-identical across variants** — storage only decides
/// which frames exist in memory, never their values — so, like `threads`,
/// this field is excluded from the checkpoint fingerprint and a sweep may
/// resume under a different storage policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnsembleStorage {
    /// Retain every recorded step of every run (`m × (t_max+1) × n`
    /// positions) — the classic [`Ensemble`]. Required by analyses that
    /// read unscheduled steps (e.g. time-lagged dynamics over the full
    /// trajectory).
    Retained,
    /// Stream each run forward and retain only the frames on the
    /// scenario's evaluation schedule (`m × |schedule| × n`), spilling to
    /// an unlinked temp file when even those exceed the budget. Peak
    /// memory is O(scheduled frames), not O(t_max).
    Streaming {
        /// Spill to disk once the retained frames exceed this many bytes.
        max_resident_bytes: usize,
    },
}

impl Default for EnsembleStorage {
    /// Streaming with the default residency budget: the bounded-memory
    /// path is the default because it is bit-identical to retained
    /// storage at every evaluated step.
    fn default() -> Self {
        EnsembleStorage::Streaming {
            max_resident_bytes: StreamingConfig::default().max_resident_bytes,
        }
    }
}

/// The cartesian sweep grid: scenarios × measure selections × master
/// seeds. An empty seed axis means "each scenario's own seed" (one
/// ensemble per scenario); otherwise every scenario is re-run under every
/// listed seed.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Physics axis.
    pub scenarios: Vec<ScenarioSpec>,
    /// Measure axis.
    pub measures: Vec<MeasureConfig>,
    /// Seed axis (empty = use each scenario's own seed).
    pub seeds: Vec<u64>,
    /// Worker threads for simulation and evaluation (0 = default).
    pub threads: usize,
    /// Ensemble materialization policy (result-invariant, like
    /// `threads`).
    pub storage: EnsembleStorage,
}

impl SweepPlan {
    /// A plan over the given grid with the scenarios' own seeds and
    /// default threads.
    pub fn new(scenarios: Vec<ScenarioSpec>, measures: Vec<MeasureConfig>) -> Self {
        SweepPlan {
            scenarios,
            measures,
            seeds: Vec::new(),
            threads: 0,
            storage: EnsembleStorage::default(),
        }
    }

    /// Validates the grid; called by [`SweepRunner::run`].
    ///
    /// Rejects empty axes, duplicate (scenario-name, seed) cells — a
    /// duplicate entry in [`SweepPlan::seeds`], or two scenarios sharing
    /// a name, would otherwise produce indistinguishable grid cells that
    /// [`SweepReport::get`] and [`SweepReport::grid_table`] silently
    /// resolve to the first match — and invalid ensemble/integrator
    /// specifications ([`EnsembleSpec::check`]), so a misconfigured
    /// scenario is a typed [`SweepError::InvalidPlan`] up front instead
    /// of a quarantined panic per ensemble. An unattended driver gets a
    /// diagnostic, not a backtrace.
    pub fn validate(&self) -> Result<(), SweepError> {
        if self.scenarios.is_empty() {
            return Err(SweepError::InvalidPlan("no scenarios".into()));
        }
        if self.measures.is_empty() {
            return Err(SweepError::InvalidPlan("no measures".into()));
        }
        for m in &self.measures {
            if let MeasureConfig::Strided { every: 0, .. } = m {
                return Err(SweepError::InvalidPlan(format!(
                    "measure '{}': stride must be >= 1",
                    m.label()
                )));
            }
        }
        let mut seen: Vec<(&str, u64)> = Vec::with_capacity(self.ensemble_count());
        for s in &self.scenarios {
            if s.name.is_empty() {
                return Err(SweepError::InvalidPlan("unnamed scenario".into()));
            }
            if let Err(reason) = s.ensemble.check() {
                return Err(SweepError::InvalidPlan(format!(
                    "scenario '{}': {reason}",
                    s.name
                )));
            }
            let own_seed = [s.ensemble.seed];
            let seeds: &[u64] = if self.seeds.is_empty() {
                &own_seed
            } else {
                &self.seeds
            };
            for &seed in seeds {
                let cell = (s.name.as_str(), seed);
                if seen.contains(&cell) {
                    return Err(SweepError::DuplicateCell {
                        scenario: s.name.clone(),
                        seed,
                    });
                }
                seen.push(cell);
            }
        }
        Ok(())
    }

    /// Number of ensembles the plan simulates (scenario × seed pairs) —
    /// each is simulated exactly once regardless of the measure count.
    pub fn ensemble_count(&self) -> usize {
        self.scenarios.len() * self.seeds.len().max(1)
    }

    /// Number of grid cells (scenario × seed × measure).
    pub fn cell_count(&self) -> usize {
        self.ensemble_count() * self.measures.len()
    }
}

/// One evaluation worker's persistent state: every estimator family's
/// engine plus the shape-reduction scratch, reused across the time steps
/// (and, held in a [`SweepRunner`], the grid cells) the worker claims.
///
/// `stage` and `slice` are the cross-sample view buffers: the spill
/// staging area and the slice vector of [`EnsembleFrames::at_time_into`].
/// Both are empty at rest (the `'static` slice vector never holds an
/// element outside a pass — see [`recycle_slice_vec`]) but keep their
/// capacity, so a warmed-up worker materializes views allocation-free.
#[derive(Debug, Clone, Default)]
pub(crate) struct EvalWorker {
    pub(crate) measure: MeasureWorkspace,
    pub(crate) reduce: ReduceWorkspace,
    pub(crate) stage: Vec<Vec2>,
    pub(crate) slice: Vec<&'static [Vec2]>,
}

/// Runs `f(worker, cross_sample_slice, time_index)` for every entry of
/// `times`, parallel over evaluation steps with persistent per-worker
/// scratch. Each worker materializes the time slice into its own reused
/// buffers ([`EnsembleFrames::at_time_into`] via the worker's persistent
/// `stage`/`slice`), so the steady state of the pass allocates nothing
/// beyond `f`'s own outputs — for retained *and* spilled storage alike.
pub(crate) fn eval_pass<T, F>(
    workers: &mut Vec<EvalWorker>,
    frames: EnsembleFrames<'_>,
    times: &[usize],
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&mut EvalWorker, &[&[Vec2]], usize) -> T + Sync,
{
    let threads = if threads == 0 {
        sops_par::default_threads()
    } else {
        threads
    }
    .max(1);
    while workers.len() < threads {
        workers.push(EvalWorker::default());
    }
    // Per-call view of the persistent workers: the view buffers borrow
    // the ensemble during the pass, so they are taken out of the
    // lifetime-free `EvalWorker` and restored (empty, capacity intact)
    // when the pass ends.
    struct PassWorker<'w> {
        worker: &'w mut EvalWorker,
        stage: Vec<Vec2>,
        slice: Vec<&'static [Vec2]>,
    }
    let mut pass_workers: Vec<PassWorker<'_>> = workers
        .iter_mut()
        .take(threads)
        .map(|worker| {
            let stage = std::mem::take(&mut worker.stage);
            let mut slice = std::mem::take(&mut worker.slice);
            if slice.capacity() < frames.samples() {
                slice.reserve_exact(frames.samples() - slice.capacity());
            }
            PassWorker {
                worker,
                stage,
                slice,
            }
        })
        .collect();
    let out = sops_par::parallel_map_with(times.len(), &mut pass_workers, |pw, ti| {
        let mut slice = recycle_slice_vec(std::mem::take(&mut pw.slice));
        frames.at_time_into(times[ti], &mut pw.stage, &mut slice);
        let result = f(pw.worker, &slice, ti);
        pw.slice = recycle_slice_vec(slice);
        result
    });
    for pw in pass_workers {
        pw.worker.stage = pw.stage;
        pw.worker.slice = pw.slice;
    }
    out
}

/// Bounded retry policy of the panic-isolated cell executor: a cell is
/// attempted at most `max_attempts` times before it is quarantined as
/// [`CellStatus::Failed`].
///
/// Deterministic panics (an estimator parameterization that is invalid
/// for the ensemble size, say) fail every attempt; the retries exist for
/// environmental failures (resource exhaustion under memory pressure)
/// where a second attempt can succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per isolated unit (≥ 1; 0 is treated as 1).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 2 }
    }
}

/// Count of live quarantine scopes: while positive, the process panic
/// hook stays silent, so quarantined cell panics don't spray backtraces
/// over sweep output. The counter (not a bool) makes nesting and
/// concurrent sweeps safe.
static QUIET_PANIC_SCOPES: AtomicUsize = AtomicUsize::new(0);
static QUIET_PANIC_HOOK: Once = Once::new();

/// Runs `f` with the process panic hook silenced (installed once,
/// chained to the previous hook outside quarantine scopes).
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    QUIET_PANIC_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if QUIET_PANIC_SCOPES.load(Ordering::SeqCst) == 0 {
                prev(info);
            }
        }));
    });
    struct Scope;
    impl Drop for Scope {
        fn drop(&mut self) {
            QUIET_PANIC_SCOPES.fetch_sub(1, Ordering::SeqCst);
        }
    }
    QUIET_PANIC_SCOPES.fetch_add(1, Ordering::SeqCst);
    let _scope = Scope;
    f()
}

/// The panic payload as a one-line reason string.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes `f` under [`catch_unwind`] with up to `policy.max_attempts`
/// attempts; `Err` carries the last panic's reason annotated with the
/// attempt count. The workspaces `f` touches cache only buffer
/// *capacity*, never results (the engine's no-history contract), so
/// re-invoking after a caught panic is sound.
fn run_isolated<T>(policy: RetryPolicy, mut f: impl FnMut() -> T) -> Result<T, String> {
    let attempts = policy.max_attempts.max(1);
    let mut reason = String::new();
    for _ in 0..attempts {
        match with_quiet_panics(|| catch_unwind(AssertUnwindSafe(&mut f))) {
            Ok(value) => return Ok(value),
            Err(payload) => reason = panic_reason(payload.as_ref()),
        }
    }
    Err(format!("panicked on all {attempts} attempt(s): {reason}"))
}

/// The one-pass sweep engine: persistent evaluation workers fanning any
/// number of measure selections over each simulated ensemble.
///
/// Holding a runner across [`SweepRunner::run`] calls reuses every
/// worker's estimator and reduction scratch — a warmed-up runner driving
/// a bounded workload performs no steady-state allocations in its
/// evaluation stage (enforced by `tests/sweep_determinism.rs`).
///
/// Every (scenario, seed) ensemble executes under panic isolation with
/// the runner's [`RetryPolicy`]: a panicking cell is retried, then
/// quarantined as [`CellStatus::Failed`] — the sweep always completes
/// and every healthy cell keeps its bit-identical value.
#[derive(Debug, Clone, Default)]
pub struct SweepRunner {
    workers: Vec<EvalWorker>,
    /// Retry policy for panic-isolated cell execution.
    pub retry: RetryPolicy,
}

impl SweepRunner {
    /// A runner with cold scratch; buffers grow to the workload on first
    /// use.
    pub fn new() -> Self {
        SweepRunner::default()
    }

    /// Executes the full grid: simulates each (scenario, seed) ensemble
    /// exactly once and evaluates every measure on it in one pass, under
    /// per-cell panic isolation. `Err` only for an invalid *plan*; cell
    /// failures are quarantined into the report.
    pub fn run(&mut self, plan: &SweepPlan) -> Result<SweepReport, SweepError> {
        self.run_core(plan, None, None)
    }

    /// [`SweepRunner::run`] consulting a content-addressed cell cache:
    /// before simulating a (scenario, seed) ensemble, every plan
    /// measure's cell key ([`crate::checkpoint::cell_key`]) is looked up
    /// in `cache`; only the missing measures are simulated and evaluated
    /// (sharing one simulation pass), and fresh healthy cells are stored
    /// back. Served cells carry [`CellProvenance::Cached`]. Results are
    /// bit-identical to an uncached [`SweepRunner::run`] by construction:
    /// the cache stores [`crate::wire::float_exact`] series keyed by
    /// everything that determines them.
    ///
    /// `Err` for an invalid plan or one with no stable wire form
    /// ([`SweepError::Unserializable`]); cache I/O trouble never fails
    /// the sweep (corrupt entries are evicted and recomputed, store
    /// failures are counted in [`CellCache::stats`] and skipped).
    pub fn run_with_cache(
        &mut self,
        plan: &SweepPlan,
        cache: &CellCache,
    ) -> Result<SweepReport, SweepError> {
        self.run_core(plan, None, Some(cache))
    }

    /// [`SweepRunner::run`] with per-cell checkpointing: ensembles whose
    /// cells `checkpoint` already holds are restored (bit-identical —
    /// the wire format round-trips every f64 exactly) instead of
    /// recomputed, and each freshly completed ensemble's cells are
    /// recorded and crash-safely saved to `path` before the next
    /// ensemble starts. A sweep killed at any cell boundary and resumed
    /// through its checkpoint is therefore bit-identical to an
    /// uninterrupted run, for any worker count (`tests/sweep_resume.rs`).
    ///
    /// The checkpoint must carry this plan's fingerprint
    /// ([`SweepCheckpoint::new`] / [`SweepCheckpoint::load`] against the
    /// same plan); a drifted checkpoint is rejected with
    /// [`SweepError::FingerprintMismatch`].
    pub fn run_with_checkpoint(
        &mut self,
        plan: &SweepPlan,
        checkpoint: &mut SweepCheckpoint,
        path: &Path,
    ) -> Result<SweepReport, SweepError> {
        check_fingerprint(plan, checkpoint)?;
        self.run_core(plan, Some((checkpoint, path)), None)
    }

    /// [`SweepRunner::run_with_checkpoint`] additionally consulting a
    /// cell cache ([`SweepRunner::run_with_cache`]): checkpointed
    /// ensembles are restored first (whole-ensemble atomicity), then the
    /// cache serves individual cells, and only what is in neither gets
    /// simulated. The combination the CLI's `--resume --cache` exposes.
    pub fn run_with_checkpoint_and_cache(
        &mut self,
        plan: &SweepPlan,
        checkpoint: &mut SweepCheckpoint,
        path: &Path,
        cache: &CellCache,
    ) -> Result<SweepReport, SweepError> {
        check_fingerprint(plan, checkpoint)?;
        self.run_core(plan, Some((checkpoint, path)), Some(cache))
    }

    fn run_core(
        &mut self,
        plan: &SweepPlan,
        mut checkpoint: Option<(&mut SweepCheckpoint, &Path)>,
        cache: Option<&CellCache>,
    ) -> Result<SweepReport, SweepError> {
        plan.validate()?;
        let labels = measure_labels(&plan.measures);
        let mut cells = Vec::with_capacity(plan.cell_count());
        for base in &plan.scenarios {
            let own_seed = [base.ensemble.seed];
            let seeds: &[u64] = if plan.seeds.is_empty() {
                &own_seed
            } else {
                &plan.seeds
            };
            for &seed in seeds {
                let scenario = base.clone().with_seed(seed);
                if let Some((ckpt, _)) = &checkpoint {
                    if let Some(mut stored) =
                        ckpt.ensemble_cells(&scenario.name, seed, &labels, &plan.measures)
                    {
                        for cell in &mut stored {
                            cell.provenance = CellProvenance::Restored;
                        }
                        cells.extend(stored);
                        continue;
                    }
                }
                let produced = match cache {
                    Some(cache) => {
                        self.run_ensemble_cached(&scenario, seed, plan, &labels, cache)?
                    }
                    None => {
                        let all: Vec<usize> = (0..plan.measures.len()).collect();
                        self.run_ensemble_cells(&scenario, seed, plan, &labels, &all)
                    }
                };
                if let Some((ckpt, path)) = &mut checkpoint {
                    ckpt.record(&produced);
                    ckpt.save(path, plan)?;
                }
                cells.extend(produced);
            }
        }
        Ok(SweepReport { cells })
    }

    /// One (scenario, seed) ensemble through the cell cache: hit cells
    /// are served ([`CellProvenance::Cached`]), the missing subset shares
    /// one simulation pass, and fresh healthy cells are stored back.
    /// Subset evaluation is bit-identical to the full pass by the
    /// engine's preparation-sharing contract (each step's prepared state
    /// is measure-independent).
    fn run_ensemble_cached(
        &mut self,
        scenario: &ScenarioSpec,
        seed: u64,
        plan: &SweepPlan,
        labels: &[String],
        cache: &CellCache,
    ) -> Result<Vec<SweepCell>, SweepError> {
        let mut slots: Vec<Option<SweepCell>> = Vec::with_capacity(plan.measures.len());
        let mut keys = Vec::with_capacity(plan.measures.len());
        let mut missing = Vec::new();
        for (mi, measure) in plan.measures.iter().enumerate() {
            let key = crate::checkpoint::cell_key(scenario, measure)?;
            keys.push(key);
            match cache.lookup(key) {
                Some(result) => slots.push(Some(SweepCell {
                    scenario: scenario.name.clone(),
                    measure: *measure,
                    measure_label: labels[mi].clone(),
                    seed,
                    status: CellStatus::Ok,
                    provenance: CellProvenance::Cached,
                    result,
                })),
                None => {
                    slots.push(None);
                    missing.push(mi);
                }
            }
        }
        if !missing.is_empty() {
            let produced = self.run_ensemble_cells(scenario, seed, plan, labels, &missing);
            for (cell, &mi) in produced.into_iter().zip(&missing) {
                if cell.status.is_ok() {
                    cache.store(keys[mi], &cell.result);
                }
                slots[mi] = Some(cell);
            }
        }
        Ok(slots
            .into_iter()
            .map(|c| c.expect("every measure slot is filled"))
            .collect())
    }

    /// Simulates and evaluates one (scenario, seed) ensemble for the
    /// plan-measure subset `selected` (indexes into `plan.measures`, in
    /// output order). Delegates to [`SweepRunner::run_cells`].
    fn run_ensemble_cells(
        &mut self,
        scenario: &ScenarioSpec,
        seed: u64,
        plan: &SweepPlan,
        labels: &[String],
        selected: &[usize],
    ) -> Vec<SweepCell> {
        debug_assert_eq!(scenario.ensemble.seed, seed);
        let measures: Vec<MeasureConfig> = selected.iter().map(|&mi| plan.measures[mi]).collect();
        let sel_labels: Vec<String> = selected.iter().map(|&mi| labels[mi].clone()).collect();
        self.run_cells(scenario, &measures, &sel_labels, plan.storage, plan.threads)
    }

    /// Simulates `scenario`'s ensemble **once** under panic isolation and
    /// evaluates every selection in `measures` on it in one pass,
    /// producing one [`SweepCell`] per measure (provenance
    /// [`CellProvenance::Computed`], labels from `labels`, which must be
    /// parallel to `measures`). This is the plan-free ensemble entry
    /// point [`crate::broker::SweepBroker`] batches concurrent requests
    /// through; [`SweepRunner::run`] routes every ensemble of a plan
    /// through it too, so the two paths cannot drift.
    ///
    /// Failure containment is hierarchical: a simulation failure
    /// quarantines the whole ensemble; a one-pass evaluation failure
    /// triggers a per-measure fallback so only the poisoned measure's
    /// cells fail (per-measure values are bit-identical to the one-pass
    /// values by the engine's preparation-sharing contract).
    pub fn run_cells(
        &mut self,
        scenario: &ScenarioSpec,
        measures: &[MeasureConfig],
        labels: &[String],
        storage: EnsembleStorage,
        threads: usize,
    ) -> Vec<SweepCell> {
        assert_eq!(
            measures.len(),
            labels.len(),
            "run_cells: one label per measure"
        );
        let retry = self.retry;
        let seed = scenario.ensemble.seed;
        let mk_cell = |mi: usize, result: PipelineResult, status: CellStatus| SweepCell {
            scenario: scenario.name.clone(),
            measure: measures[mi],
            measure_label: labels[mi].clone(),
            seed,
            status,
            provenance: CellProvenance::Computed,
            result,
        };
        let all_failed = |reason: &str| -> Vec<SweepCell> {
            (0..measures.len())
                .map(|mi| {
                    mk_cell(
                        mi,
                        PipelineResult::empty(),
                        CellStatus::Failed {
                            reason: reason.to_string(),
                        },
                    )
                })
                .collect()
        };
        // Owned storage of the simulated ensemble; `EnsembleFrames`
        // borrows whichever variant the storage policy produced, and
        // everything downstream is storage-agnostic.
        enum Simulated {
            Retained(Ensemble),
            Streaming(StreamingEnsemble),
        }
        let simulated = match storage {
            EnsembleStorage::Retained => {
                run_isolated(retry, || run_ensemble(&scenario.ensemble, threads))
                    .map(Simulated::Retained)
            }
            EnsembleStorage::Streaming { max_resident_bytes } => {
                let times = scenario.eval_times();
                let cfg = StreamingConfig { max_resident_bytes };
                run_isolated(retry, || {
                    run_streaming_ensemble(&scenario.ensemble, &times, threads, &cfg)
                })
                .map(Simulated::Streaming)
            }
        };
        let simulated = match simulated {
            Ok(e) => e,
            Err(reason) => return all_failed(&format!("simulation {reason}")),
        };
        let frames = match &simulated {
            Simulated::Retained(e) => EnsembleFrames::Retained(e),
            Simulated::Streaming(s) => EnsembleFrames::Streaming(s),
        };
        match run_isolated(retry, || {
            self.evaluate_frames(frames, scenario, measures, threads)
        }) {
            Ok(results) => results
                .into_iter()
                .enumerate()
                .map(|(mi, result)| mk_cell(mi, result, CellStatus::Ok))
                .collect(),
            Err(_) => {
                // Quarantine pass: isolate the poisoned measure(s). The
                // workers may hold mid-panic scratch; drop them so the
                // fallback starts from clean (capacity-only) state.
                self.workers.clear();
                (0..measures.len())
                    .map(|mi| {
                        let one = std::slice::from_ref(&measures[mi]);
                        match run_isolated(retry, || {
                            self.evaluate_frames(frames, scenario, one, threads)
                        }) {
                            Ok(mut results) => {
                                let result = results.pop().expect("one measure in, one result out");
                                mk_cell(mi, result, CellStatus::Ok)
                            }
                            Err(reason) => {
                                self.workers.clear();
                                mk_cell(mi, PipelineResult::empty(), CellStatus::Failed { reason })
                            }
                        }
                    })
                    .collect()
            }
        }
    }

    /// Evaluates `measures` over an already-simulated retained ensemble.
    /// Convenience form of [`SweepRunner::evaluate_frames`].
    pub fn evaluate(
        &mut self,
        ensemble: &Ensemble,
        scenario: &ScenarioSpec,
        measures: &[MeasureConfig],
        threads: usize,
    ) -> Vec<PipelineResult> {
        self.evaluate_frames(
            EnsembleFrames::Retained(ensemble),
            scenario,
            measures,
            threads,
        )
    }

    /// Evaluates `measures` over an already-simulated ensemble (retained
    /// or streaming) in one pass: per evaluated time step the
    /// cross-sample view, the shape reduction and the observer matrix are
    /// built **once** and every estimator runs on that shared prepared
    /// state. Returns one [`PipelineResult`] per measure, each
    /// bit-identical to the equivalent standalone
    /// [`crate::evaluate_ensemble`] call for any `threads` and either
    /// storage variant (streaming ensembles must cover the scenario's
    /// evaluation schedule).
    pub fn evaluate_frames(
        &mut self,
        frames: EnsembleFrames<'_>,
        scenario: &ScenarioSpec,
        measures: &[MeasureConfig],
        threads: usize,
    ) -> Vec<PipelineResult> {
        let types = scenario.ensemble.model.types().to_vec();
        let type_count = scenario.ensemble.model.type_count();
        let times = scenario.eval_times();
        // Outer parallelism over evaluation steps; inner stages
        // sequential to avoid oversubscription (same policy as the
        // pipeline it generalizes).
        let inner_reduce = ReduceConfig {
            threads: 1,
            ..scenario.reduce
        };
        let inner_measures: Vec<MeasureConfig> =
            measures.iter().map(|m| m.with_threads(1)).collect();
        let observers_mode = scenario.observers;
        let seed = scenario.ensemble.seed;
        let per_step: Vec<(Vec<f64>, f64)> = eval_pass(
            &mut self.workers,
            frames,
            &times,
            threads,
            |w, slice, _ti| {
                let reduced =
                    reduce_configurations_with(&mut w.reduce, slice, &types, &inner_reduce);
                let mean_cost = if reduced.icp_costs.is_empty() {
                    0.0
                } else {
                    reduced.icp_costs.iter().sum::<f64>() / reduced.icp_costs.len() as f64
                };
                let observers = build_observers(&reduced, &types, type_count, observers_mode, seed);
                let view = observers.view();
                let mis: Vec<f64> = inner_measures
                    .iter()
                    .map(|m| {
                        let estimator = w.measure.estimator_mut(m);
                        estimator.prepare(&view);
                        estimator.estimate()
                    })
                    .collect();
                (mis, mean_cost)
            },
        );
        let mean_icp_cost: Vec<f64> = per_step.iter().map(|&(_, c)| c).collect();
        let equilibrated_fraction = frames.equilibrated_fraction();
        (0..measures.len())
            .map(|mi| PipelineResult {
                mi: MiSeries {
                    times: times.clone(),
                    values: per_step.iter().map(|(v, _)| v[mi]).collect(),
                },
                mean_icp_cost: mean_icp_cost.clone(),
                equilibrated_fraction,
            })
            .collect()
    }

    /// Capacities of every persistent buffer of the evaluation workers —
    /// constant for a warmed-up runner driving a bounded grid (the
    /// zero-steady-state-allocation contract; per-cell *outputs* — the
    /// simulated ensembles and the report itself — are work products and
    /// excluded, like every workspace in this repo).
    pub fn capacity_signature(&self) -> Vec<usize> {
        let mut sig = vec![self.workers.len()];
        for w in &self.workers {
            sig.extend(w.measure.capacity_signature());
            sig.extend(w.reduce.capacity_signature());
            sig.push(w.stage.capacity());
            sig.push(w.slice.capacity());
        }
        sig
    }
}

/// Rejects a checkpoint whose fingerprint does not bind `plan`.
fn check_fingerprint(plan: &SweepPlan, checkpoint: &SweepCheckpoint) -> Result<(), SweepError> {
    let plan_fp = crate::checkpoint::plan_fingerprint(plan)?;
    if checkpoint.fingerprint() != plan_fp {
        return Err(SweepError::FingerprintMismatch {
            plan: format!("{plan_fp:016x}"),
            checkpoint: format!("{:016x}", checkpoint.fingerprint()),
        });
    }
    Ok(())
}

/// Convenience: run `plan` on a throwaway [`SweepRunner`].
pub fn run_sweep(plan: &SweepPlan) -> Result<SweepReport, SweepError> {
    SweepRunner::new().run(plan)
}

/// Per-plan display labels for the measure axis: the family label
/// ([`MeasureConfig::label`]), with repeats of the same family — e.g. two
/// KSG selections with different `k` — disambiguated as `ksg`, `ksg#2`,
/// `ksg#3`, … so no two cells of one ensemble share a label.
pub fn measure_labels(measures: &[MeasureConfig]) -> Vec<String> {
    measures
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let base = m.label();
            let prior = measures[..i].iter().filter(|p| p.label() == base).count();
            if prior == 0 {
                base.to_string()
            } else {
                format!("{base}#{}", prior + 1)
            }
        })
        .collect()
}

/// Outcome of one grid cell: healthy, or quarantined after exhausting
/// the runner's [`RetryPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell completed; its result is bit-identical to a standalone
    /// [`crate::run_pipeline`] run.
    Ok,
    /// The cell panicked on every attempt and was quarantined; its
    /// result is [`PipelineResult::empty`].
    Failed {
        /// One-line panic reason, annotated with the attempt count.
        reason: String,
    },
}

impl CellStatus {
    /// `true` for a healthy cell.
    pub fn is_ok(&self) -> bool {
        matches!(self, CellStatus::Ok)
    }
}

/// How a cell's result entered the report: computed fresh this run,
/// served from the content-addressed cell cache, coalesced onto another
/// in-flight request's computation, or restored from a sweep checkpoint.
///
/// Provenance is run metadata, not a result. The canonical `sweep.json`
/// ([`crate::report::write_sweep_json`]) deliberately omits it so a
/// cached, coalesced or resumed run stays byte-identical to an uncached
/// one; the provenance-carrying form ([`crate::report::sweep_json`] with
/// `include_provenance = true`) is what `sops-serve` returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CellProvenance {
    /// Simulated and evaluated in this run.
    #[default]
    Computed,
    /// Served from the on-disk cell cache ([`crate::cache::CellCache`]).
    Cached,
    /// Waited on another in-flight request's identical cell
    /// ([`crate::broker::SweepBroker`]) — never recomputed.
    Coalesced,
    /// Restored from a sweep checkpoint ([`crate::checkpoint`]).
    Restored,
}

impl CellProvenance {
    /// Lowercase wire label: `"computed"`, `"cached"`, `"coalesced"` or
    /// `"restored"`.
    pub fn label(&self) -> &'static str {
        match self {
            CellProvenance::Computed => "computed",
            CellProvenance::Cached => "cached",
            CellProvenance::Coalesced => "coalesced",
            CellProvenance::Restored => "restored",
        }
    }

    /// `true` when the result was reused (cache, coalescing, checkpoint)
    /// rather than computed in this run.
    pub fn is_reused(&self) -> bool {
        !matches!(self, CellProvenance::Computed)
    }
}

/// One grid cell: a scenario × seed × measure combination and its full
/// per-time-step result.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Scenario name.
    pub scenario: String,
    /// Measure selection evaluated on the cell.
    pub measure: MeasureConfig,
    /// Plan-unique display label of the measure (see [`measure_labels`]):
    /// the family label, suffixed `#2`, `#3`, … when the plan selects the
    /// same family more than once.
    pub measure_label: String,
    /// Master seed the ensemble was simulated under.
    pub seed: u64,
    /// Healthy, or quarantined with the panic reason.
    pub status: CellStatus,
    /// How the result entered this report (computed / cached / coalesced
    /// / restored). Metadata only — never part of the canonical
    /// `sweep.json` bytes or the checkpoint wire format.
    pub provenance: CellProvenance,
    /// The measured series — bit-identical to the standalone
    /// [`crate::run_pipeline`] run of the same cell
    /// ([`PipelineResult::empty`] if the cell failed).
    pub result: PipelineResult,
}

/// One row of the flattened scenario × measure × time table.
#[derive(Debug, Clone, Copy)]
pub struct SweepRow<'a> {
    /// Scenario name.
    pub scenario: &'a str,
    /// Plan-unique measure label (see [`measure_labels`]).
    pub measure: &'a str,
    /// Master seed.
    pub seed: u64,
    /// Evaluated time step.
    pub time: usize,
    /// Multi-information estimate (bits).
    pub mi: f64,
    /// Mean ICP alignment cost at the step.
    pub mean_icp_cost: f64,
}

/// The structured output of a sweep: every grid cell with its series,
/// flattenable to a scenario × measure × time table and renderable as an
/// ASCII ΔI grid.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Grid cells in plan order (scenario-major, then seed, then
    /// measure).
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// The first cell matching scenario name and measure label (and seed,
    /// if given). Labels are plan-unique (see [`measure_labels`]), so
    /// every cell of a single-seed plan is addressable.
    pub fn get(&self, scenario: &str, measure: &str, seed: Option<u64>) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.scenario == scenario && c.measure_label == measure && seed.is_none_or(|s| c.seed == s)
        })
    }

    /// The quarantined cells, in plan order (empty for a healthy sweep).
    pub fn failed_cells(&self) -> Vec<&SweepCell> {
        self.cells.iter().filter(|c| !c.status.is_ok()).collect()
    }

    /// `true` if any cell was quarantined.
    pub fn has_failures(&self) -> bool {
        self.cells.iter().any(|c| !c.status.is_ok())
    }

    /// Flattens every healthy cell into scenario × measure × time rows
    /// (the CSV layout of [`crate::report::write_sweep_csv`]); failed
    /// cells have no series and are skipped.
    pub fn rows(&self) -> Vec<SweepRow<'_>> {
        let mut out = Vec::new();
        for cell in self.cells.iter().filter(|c| c.status.is_ok()) {
            for (&time, (&mi, &cost)) in cell
                .result
                .mi
                .times
                .iter()
                .zip(cell.result.mi.values.iter().zip(&cell.result.mean_icp_cost))
            {
                out.push(SweepRow {
                    scenario: &cell.scenario,
                    measure: &cell.measure_label,
                    seed: cell.seed,
                    time,
                    mi,
                    mean_icp_cost: cost,
                });
            }
        }
        out
    }

    /// Renders the ΔI summary grid: one row per (scenario, seed), one
    /// column per measure, each cell the series increase
    /// `I(t_last) − I(t_0)` in bits.
    pub fn grid_table(&self) -> String {
        let mut rows: Vec<(&str, u64)> = Vec::new();
        let mut cols: Vec<&str> = Vec::new();
        for cell in &self.cells {
            let row = (cell.scenario.as_str(), cell.seed);
            if !rows.contains(&row) {
                rows.push(row);
            }
            if !cols.contains(&cell.measure_label.as_str()) {
                cols.push(&cell.measure_label);
            }
        }
        let multi_seed = rows
            .iter()
            .any(|&(name, seed)| rows.iter().any(|&(n2, s2)| n2 == name && s2 != seed));
        let label = |name: &str, seed: u64| {
            if multi_seed {
                format!("{name}#{seed}")
            } else {
                name.to_string()
            }
        };
        let w = rows
            .iter()
            .map(|&(n, s)| label(n, s).len())
            .chain(["scenario".len()])
            .max()
            .unwrap_or(8);
        let mut out = String::from("ΔI (bits) — scenario × measure\n");
        let _ = write!(out, "  {:<w$}", "scenario");
        for c in &cols {
            let cw = c.len().max(9);
            let _ = write!(out, " {c:>cw$}");
        }
        out.push('\n');
        for &(name, seed) in &rows {
            let _ = write!(out, "  {:<w$}", label(name, seed));
            for c in &cols {
                let cw = c.len().max(9);
                match self.get(name, c, Some(seed)) {
                    Some(cell) if cell.status.is_ok() => {
                        let _ = write!(out, " {:>cw$.3}", cell.result.mi.increase());
                    }
                    Some(_) => {
                        let _ = write!(out, " {:>cw$}", "failed");
                    }
                    None => {
                        let _ = write!(out, " {:>cw$}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_pipeline;
    use sops_info::KsgConfig;

    /// Tiny organizing scenario for fast tests.
    fn small_scenario(name: &str, seed: u64) -> ScenarioSpec {
        let k = PairMatrix::constant(2, 1.0);
        let mut r = PairMatrix::constant(2, 1.0);
        r.set(0, 1, 2.0);
        ScenarioSpec {
            name: name.into(),
            description: "test".into(),
            ensemble: EnsembleSpec {
                model: Model::balanced(
                    8,
                    ForceModel::Linear(LinearForce::new(k, r)),
                    f64::INFINITY,
                ),
                integrator: IntegratorConfig::default(),
                init_radius: 2.0,
                t_max: 20,
                samples: 40,
                seed,
                criterion: None,
            },
            reduce: ReduceConfig::default(),
            observers: ObserverMode::PerParticle,
            eval_every: 10,
        }
    }

    #[test]
    fn registry_round_trip_and_replacement() {
        let mut reg = ScenarioRegistry::builtin();
        assert_eq!(
            reg.names(),
            vec!["cell_sorting", "ring_formation", "mixing_null"]
        );
        assert_eq!(reg.len(), 3);
        assert!(reg.get("cell_sorting").is_some());
        assert!(reg.get("nope").is_none());
        // Replacement keeps position and count.
        let replacement = small_scenario("ring_formation", 1);
        reg.register(replacement);
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.names()[1], "ring_formation");
        assert_eq!(reg.get("ring_formation").unwrap().ensemble.seed, 1);
        // select() preserves request order and reports unknowns.
        let picked = reg.select(&["mixing_null", "cell_sorting"]).unwrap();
        assert_eq!(picked[0].name, "mixing_null");
        let err = reg.select(&["bogus"]).unwrap_err();
        assert!(matches!(err, SweepError::UnknownScenario { .. }));
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn eval_schedule_covers_endpoints() {
        assert_eq!(eval_schedule(30, 15), vec![0, 15, 30]);
        assert_eq!(eval_schedule(31, 15), vec![0, 15, 30, 31]);
        // Degenerate inputs clamp instead of panicking or looping:
        // `eval_every == 0` evaluates every step, `t_max == 0` yields the
        // single step 0.
        assert_eq!(eval_schedule(5, 0), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(eval_schedule(0, 10), vec![0]);
        assert_eq!(eval_schedule(0, 0), vec![0]);
    }

    #[test]
    fn builtin_scenarios_are_well_formed() {
        for sc in ScenarioRegistry::builtin().iter() {
            sc.ensemble.validate();
            let times = sc.eval_times();
            assert_eq!(*times.first().unwrap(), 0, "{}", sc.name);
            assert_eq!(*times.last().unwrap(), sc.ensemble.t_max, "{}", sc.name);
            // Scaled-down variants stay valid (the bench/CLI fast path).
            let small = sc.clone().with_scale(10, 8);
            small.ensemble.validate();
            assert_eq!(*small.eval_times().last().unwrap(), 8);
        }
    }

    #[test]
    fn gallery_extends_builtin_with_the_xl_tier() {
        let gallery = ScenarioRegistry::gallery();
        assert_eq!(
            gallery.names(),
            vec![
                "cell_sorting",
                "ring_formation",
                "mixing_null",
                "cell_sorting_xl"
            ]
        );
        let xl = gallery.get("cell_sorting_xl").unwrap();
        xl.ensemble.check().expect("xl spec is well-formed");
        assert_eq!(xl.ensemble.model.particles(), 100_000);
        assert_eq!(xl.reduce.mode, ReduceMode::Centred);
        assert!(matches!(xl.observers, ObserverMode::TypeMeans { .. }));
        // Density-preserving disc: radius grew as √(n / n_old).
        let base = cell_sorting();
        let expected = base.ensemble.init_radius * (100_000f64 / 40.0).sqrt();
        assert!((xl.ensemble.init_radius - expected).abs() < 1e-9);
        // Sparse schedule: the streaming layer retains only these frames.
        assert_eq!(xl.eval_times(), vec![0, 50, 100]);
    }

    #[test]
    fn with_particles_preserves_density_and_law() {
        let sc = cell_sorting().with_particles(160);
        assert_eq!(sc.ensemble.model.particles(), 160);
        // Same force law physics, same cut-off.
        assert_eq!(
            sc.ensemble.model.cutoff(),
            cell_sorting().ensemble.model.cutoff()
        );
        assert_eq!(sc.ensemble.model.type_count(), 2);
        // 4× the particles → 2× the radius: density constant.
        let expected = cell_sorting().ensemble.init_radius * 2.0;
        assert!((sc.ensemble.init_radius - expected).abs() < 1e-12);
        // Balanced type split survives the rebuild.
        let hist = sc.ensemble.model.type_histogram();
        assert_eq!(hist, vec![80, 80]);
    }

    #[test]
    fn invalid_ensemble_spec_is_an_invalid_plan() {
        let mut bad = small_scenario("a", 1);
        bad.ensemble.integrator.dt = 0.0;
        let err = SweepPlan::new(vec![bad], vec![MeasureConfig::Gaussian])
            .validate()
            .unwrap_err();
        assert!(matches!(&err, SweepError::InvalidPlan(r)
            if r.contains('a') && r.contains("dt must be positive")));
    }

    #[test]
    fn plan_counts_and_validation() {
        let plan = SweepPlan::new(
            vec![small_scenario("a", 1), small_scenario("b", 2)],
            vec![MeasureConfig::default(), MeasureConfig::Gaussian],
        );
        assert_eq!(plan.ensemble_count(), 2);
        assert_eq!(plan.cell_count(), 4);
        let mut seeded = plan.clone();
        seeded.seeds = vec![7, 8, 9];
        assert_eq!(seeded.ensemble_count(), 6);
        assert_eq!(seeded.cell_count(), 12);
    }

    #[test]
    fn empty_measure_axis_rejected() {
        let err = run_sweep(&SweepPlan::new(vec![small_scenario("a", 1)], vec![])).unwrap_err();
        assert!(matches!(err, SweepError::InvalidPlan(_)));
        assert!(err.to_string().contains("no measures"));
    }

    #[test]
    fn duplicate_seeds_rejected() {
        let mut plan = SweepPlan::new(vec![small_scenario("a", 1)], vec![MeasureConfig::Gaussian]);
        plan.seeds = vec![7, 8, 7];
        let err = plan.validate().unwrap_err();
        assert!(matches!(
            &err,
            SweepError::DuplicateCell { scenario, seed: 7 } if scenario == "a"
        ));
        assert!(err.to_string().contains("duplicate grid cell a#7"));
    }

    #[test]
    fn duplicate_scenario_names_rejected() {
        let mut plan = SweepPlan::new(
            // Same name twice: under a shared seed axis every cell
            // coordinate collides.
            vec![small_scenario("a", 1), small_scenario("a", 2)],
            vec![MeasureConfig::Gaussian],
        );
        plan.seeds = vec![3];
        let err = plan.validate().unwrap_err();
        assert!(err.to_string().contains("duplicate grid cell a#3"));
    }

    #[test]
    fn same_name_distinct_own_seeds_allowed() {
        // Without a seed axis, same-named scenarios with different own
        // seeds occupy distinct (name, seed) cells — addressable via
        // `get(..., Some(seed))` — so they are legal.
        let plan = SweepPlan::new(
            vec![small_scenario("a", 1), small_scenario("a", 2)],
            vec![MeasureConfig::Gaussian],
        );
        plan.validate().expect("distinct own seeds are legal");
    }

    #[test]
    fn sweep_cells_match_standalone_pipelines() {
        // The acceptance contract in miniature: every grid cell must be
        // bit-identical to the standalone single-measure pipeline run.
        let plan = SweepPlan {
            scenarios: vec![small_scenario("a", 9), small_scenario("b", 10)],
            measures: vec![
                MeasureConfig::Ksg(KsgConfig {
                    k: 3,
                    ..KsgConfig::default()
                }),
                MeasureConfig::Gaussian,
            ],
            seeds: vec![],
            threads: 2,
            storage: EnsembleStorage::default(),
        };
        let report = run_sweep(&plan).expect("valid plan");
        assert_eq!(report.cells.len(), 4);
        assert!(!report.has_failures());
        for cell in &report.cells {
            assert!(cell.status.is_ok());
            let sc = plan
                .scenarios
                .iter()
                .find(|s| s.name == cell.scenario)
                .unwrap();
            let mut p = sc.pipeline(cell.measure);
            p.threads = 2;
            let standalone = run_pipeline(&p);
            assert_eq!(standalone.mi.times, cell.result.mi.times);
            for (a, b) in standalone.mi.values.iter().zip(&cell.result.mi.values) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}/{}",
                    cell.scenario,
                    cell.measure.label()
                );
            }
            for (a, b) in standalone
                .mean_icp_cost
                .iter()
                .zip(&cell.result.mean_icp_cost)
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn seed_axis_expands_the_grid() {
        let plan = SweepPlan {
            scenarios: vec![small_scenario("a", 1)],
            measures: vec![MeasureConfig::Gaussian],
            seeds: vec![3, 4],
            threads: 1,
            storage: EnsembleStorage::default(),
        };
        let report = run_sweep(&plan).expect("valid plan");
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].seed, 3);
        assert_eq!(report.cells[1].seed, 4);
        // Different seeds, different ensembles, different series.
        assert_ne!(
            report.cells[0].result.mi.values, report.cells[1].result.mi.values,
            "seed axis must change the ensemble"
        );
        // Grid labels disambiguate by seed.
        let grid = report.grid_table();
        assert!(grid.contains("a#3") && grid.contains("a#4"), "{grid}");
    }

    #[test]
    fn report_rows_flatten_every_cell() {
        let plan = SweepPlan {
            scenarios: vec![small_scenario("a", 5)],
            measures: vec![MeasureConfig::Gaussian, MeasureConfig::default()],
            seeds: vec![],
            threads: 1,
            storage: EnsembleStorage::default(),
        };
        let report = run_sweep(&plan).expect("valid plan");
        let rows = report.rows();
        let times = plan.scenarios[0].eval_times().len();
        assert_eq!(rows.len(), 2 * times);
        assert_eq!(rows[0].scenario, "a");
        assert_eq!(rows[0].measure, "gaussian");
        assert_eq!(rows[0].time, 0);
        assert_eq!(rows[times].measure, "ksg");
        let grid = report.grid_table();
        assert!(grid.contains("gaussian") && grid.contains("ksg"));
        assert!(!grid.contains('#'), "single-seed grid omits seed labels");
    }

    #[test]
    fn duplicate_measure_families_stay_addressable() {
        // Two KSG selections with different k (the bench's own k-ablation
        // shape) must land in distinct, addressable cells — not collapse
        // onto one label.
        assert_eq!(
            measure_labels(&[
                MeasureConfig::Ksg(KsgConfig {
                    k: 3,
                    ..KsgConfig::default()
                }),
                MeasureConfig::Gaussian,
                MeasureConfig::Ksg(KsgConfig {
                    k: 5,
                    ..KsgConfig::default()
                }),
            ]),
            vec!["ksg", "gaussian", "ksg#2"]
        );
        let plan = SweepPlan {
            scenarios: vec![small_scenario("a", 3)],
            measures: vec![
                MeasureConfig::Ksg(KsgConfig {
                    k: 3,
                    ..KsgConfig::default()
                }),
                MeasureConfig::Ksg(KsgConfig {
                    k: 5,
                    ..KsgConfig::default()
                }),
            ],
            seeds: vec![],
            threads: 1,
            storage: EnsembleStorage::default(),
        };
        let report = run_sweep(&plan).expect("valid plan");
        let k3 = report.get("a", "ksg", None).unwrap();
        let k5 = report.get("a", "ksg#2", None).unwrap();
        assert_ne!(
            k3.result.mi.values, k5.result.mi.values,
            "different k must produce different estimates"
        );
        let grid = report.grid_table();
        assert!(
            grid.contains("ksg#2"),
            "grid must render both columns: {grid}"
        );
        let rows = report.rows();
        assert!(rows.iter().any(|r| r.measure == "ksg#2"));
    }

    #[test]
    fn pipeline_round_trips_through_scenario() {
        let sc = small_scenario("round", 77);
        let p = sc.pipeline(MeasureConfig::default());
        let back = ScenarioSpec::from_pipeline("round", &p);
        assert_eq!(back.ensemble.seed, sc.ensemble.seed);
        assert_eq!(back.eval_every, sc.eval_every);
        assert_eq!(back.eval_times(), sc.eval_times());
    }

    #[test]
    fn mixing_null_stays_disorganized() {
        // The negative control at smoke scale: no interaction, no rise.
        let sc = mixing_null().with_scale(60, 30);
        let mut runner = SweepRunner::new();
        let ensemble = run_ensemble(&sc.ensemble, 0);
        let results = runner.evaluate(&ensemble, &sc, &[MeasureConfig::default()], 0);
        let organizing = cell_sorting().with_scale(60, 30);
        let org_ensemble = run_ensemble(&organizing.ensemble, 0);
        let org = runner.evaluate(&org_ensemble, &organizing, &[MeasureConfig::default()], 0);
        assert!(
            results[0].mi.increase() < 0.5 * org[0].mi.increase(),
            "null control ΔI {} must sit well below cell sorting ΔI {}",
            results[0].mi.increase(),
            org[0].mi.increase()
        );
    }

    #[test]
    fn run_isolated_retries_then_succeeds() {
        use std::sync::atomic::AtomicU32;
        let calls = AtomicU32::new(0);
        // First attempt panics, second succeeds: a bounded retry covers
        // transient failures.
        let out = run_isolated(RetryPolicy { max_attempts: 2 }, || {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            42
        });
        assert_eq!(out, Ok(42));
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn run_isolated_exhausts_attempts_and_reports_reason() {
        use std::sync::atomic::AtomicU32;
        let calls = AtomicU32::new(0);
        let out: Result<(), String> = run_isolated(RetryPolicy { max_attempts: 3 }, || {
            calls.fetch_add(1, Ordering::SeqCst);
            panic!("deterministic boom");
        });
        let reason = out.unwrap_err();
        assert!(reason.contains("3 attempt(s)"), "{reason}");
        assert!(reason.contains("deterministic boom"), "{reason}");
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        // max_attempts == 0 is treated as 1, never a silent no-op.
        let once: Result<(), String> =
            run_isolated(RetryPolicy { max_attempts: 0 }, || panic!("x"));
        assert!(once.unwrap_err().contains("1 attempt(s)"));
    }

    #[test]
    fn poisoned_measure_is_quarantined_not_fatal() {
        // KSG with k far beyond the sample count panics inside the
        // estimator; the sweep must complete with that measure's cells
        // quarantined and the healthy Gaussian cells bit-identical to a
        // clean run.
        let poisoned = SweepPlan {
            scenarios: vec![small_scenario("a", 9)],
            measures: vec![
                MeasureConfig::Gaussian,
                MeasureConfig::Ksg(KsgConfig {
                    k: 1000,
                    ..KsgConfig::default()
                }),
            ],
            seeds: vec![],
            threads: 1,
            storage: EnsembleStorage::default(),
        };
        let report = run_sweep(&poisoned).expect("quarantine, not abort");
        assert!(report.has_failures());
        let failed = report.failed_cells();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].measure_label, "ksg");
        assert!(matches!(&failed[0].status, CellStatus::Failed { reason }
            if reason.contains("attempt")));
        assert!(failed[0].result.mi.values.is_empty());
        // Healthy cell keeps its bit-identical value.
        let clean = run_sweep(&SweepPlan {
            scenarios: vec![small_scenario("a", 9)],
            measures: vec![MeasureConfig::Gaussian],
            seeds: vec![],
            threads: 1,
            storage: EnsembleStorage::default(),
        })
        .expect("valid plan");
        let healthy = report.get("a", "gaussian", None).unwrap();
        assert!(healthy.status.is_ok());
        let reference = clean.get("a", "gaussian", None).unwrap();
        for (a, b) in healthy
            .result
            .mi
            .values
            .iter()
            .zip(&reference.result.mi.values)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Failed cells are excluded from rows and rendered as "failed"
        // in the grid.
        assert!(report.rows().iter().all(|r| r.measure != "ksg"));
        assert!(report.grid_table().contains("failed"));
    }
}
