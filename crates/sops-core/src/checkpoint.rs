//! Crash-safe sweep checkpoints: the stable wire format behind
//! bit-identical resume.
//!
//! A [`SweepCheckpoint`] accumulates completed [`SweepCell`]s during a
//! checkpointed sweep ([`crate::SweepRunner::run_with_checkpoint`]) and
//! persists them after every ensemble under schema
//! [`SCHEMA`] (`sops-sweep-checkpoint/v1`) — hand-rolled JSON in the
//! same dependency-free writer/recursive-descent-parser style as the ΔI
//! baseline ([`crate::baseline`]), sharing [`crate::wire`] so float and
//! string encodings cannot drift between the two schemas. Three
//! properties carry the fault-tolerance story:
//!
//! * **Crash safety** — [`SweepCheckpoint::save`] writes to a `.tmp`
//!   sibling and atomically renames it over the target, so a kill at any
//!   moment leaves either the previous complete checkpoint or the new
//!   one, never a torn file (a torn `.tmp` is simply ignored).
//! * **Bit-identity** — cell series are encoded with
//!   [`wire::float_exact`] (17 significant digits, tagged non-finite
//!   strings), so a restored cell is bit-for-bit the cell that was
//!   measured; a resumed sweep is therefore byte-identical to an
//!   uninterrupted one (`tests/sweep_resume.rs`).
//! * **Plan binding** — the file stores [`plan_fingerprint`], FNV-1a 64
//!   over the canonical plan wire form; [`SweepCheckpoint::load`]
//!   rejects a checkpoint whose fingerprint does not match the live plan
//!   ([`SweepError::FingerprintMismatch`]), so results from a drifted
//!   experiment can never be silently mixed in. The fingerprint covers
//!   everything that determines results — scenarios (model, force law,
//!   integrator, reduction, observers, schedule), measures, and the seed
//!   axis — and deliberately excludes every `threads` field (results are
//!   bit-identical for any worker count, so resuming under a different
//!   thread count is valid) and human-only scenario descriptions.
//!
//! Plans carrying a [`ForceModel::Custom`] law (an opaque closure) have
//! no wire form; checkpointing such plans is rejected up front with
//! [`SweepError::Unserializable`] rather than mis-fingerprinted. The
//! canonical plan JSON is embedded in the file for human provenance but
//! ignored on load — the fingerprint, not a parse-back, is what
//! guarantees the in-memory plan matches, so stored cells reattach their
//! [`MeasureConfig`] from the live plan by label.

use crate::error::SweepError;
use crate::pipeline::{MiSeries, PipelineResult};
use crate::scenario::{
    measure_labels, CellProvenance, CellStatus, ScenarioSpec, SweepCell, SweepPlan,
};
use crate::wire::{self, Value};
use sops_info::measure::MeasureConfig;
use sops_math::PairMatrix;
use sops_shape::ensemble::{ReduceConfig, ReduceMode};
use sops_sim::ensemble::EnsembleSpec;
use sops_sim::force::ForceModel;
use sops_sim::integrator::Scheme;
use sops_sim::IntegratorConfig;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::observers::ObserverMode;

/// Schema tag of the checkpoint wire format.
pub const SCHEMA: &str = "sops-sweep-checkpoint/v1";

// ---------------------------------------------------------------------
// Canonical plan wire form (the fingerprint input)
// ---------------------------------------------------------------------

fn pairmat_wire(m: &PairMatrix) -> String {
    let n = m.types();
    let mut full = String::new();
    for a in 0..n {
        for b in 0..n {
            if !full.is_empty() {
                full.push(',');
            }
            full.push_str(&wire::float_exact(m.get(a, b)));
        }
    }
    format!("{{\"types\":{n},\"full\":[{full}]}}")
}

fn law_wire(law: &ForceModel) -> Result<String, SweepError> {
    match law {
        ForceModel::Linear(l) => Ok(format!(
            "{{\"family\":\"linear\",\"k\":{},\"r\":{}}}",
            pairmat_wire(&l.k),
            pairmat_wire(&l.r)
        )),
        ForceModel::Gaussian(g) => Ok(format!(
            "{{\"family\":\"gaussian\",\"k\":{},\"sigma\":{},\"tau\":{}}}",
            pairmat_wire(&g.k),
            pairmat_wire(&g.sigma),
            pairmat_wire(&g.tau)
        )),
        ForceModel::Custom(_) => Err(SweepError::Unserializable(
            "custom force law (opaque closure) has no stable wire form".into(),
        )),
    }
}

fn scheme_wire(s: Scheme) -> &'static str {
    match s {
        Scheme::EulerMaruyama => "euler_maruyama",
        Scheme::Heun => "heun",
    }
}

fn integrator_wire(i: &IntegratorConfig) -> String {
    format!(
        "{{\"dt\":{},\"substeps\":{},\"noise_variance\":{},\"max_step\":{},\"scheme\":\"{}\"}}",
        wire::float_exact(i.dt),
        i.substeps,
        wire::float_exact(i.noise_variance),
        wire::float_exact(i.max_step),
        scheme_wire(i.scheme)
    )
}

fn ensemble_wire(e: &EnsembleSpec) -> Result<String, SweepError> {
    let types: Vec<String> = e.model.types().iter().map(|t| t.to_string()).collect();
    let criterion = match &e.criterion {
        None => "null".to_string(),
        Some(c) => format!(
            "{{\"threshold\":{},\"patience\":{}}}",
            wire::float_exact(c.threshold),
            c.patience
        ),
    };
    Ok(format!(
        "{{\"model\":{{\"types\":[{}],\"law\":{},\"cutoff\":{}}},\
         \"integrator\":{},\"init_radius\":{},\"t_max\":{},\"samples\":{},\
         \"seed\":{},\"criterion\":{}}}",
        types.join(","),
        law_wire(e.model.law())?,
        wire::float_exact(e.model.cutoff()),
        integrator_wire(&e.integrator),
        wire::float_exact(e.init_radius),
        e.t_max,
        e.samples,
        e.seed,
        criterion
    ))
}

// `threads` is excluded: reduction results are bit-identical for any
// worker count, so it must not bind the fingerprint.
fn reduce_wire(r: &ReduceConfig) -> String {
    let mode = match r.mode {
        ReduceMode::Full => "full",
        ReduceMode::Centred => "centred",
    };
    format!(
        "{{\"icp\":{{\"max_iterations\":{},\"tolerance\":{},\"restarts\":{}}},\
         \"reference\":{},\"mode\":\"{mode}\"}}",
        r.icp.max_iterations,
        wire::float_exact(r.icp.tolerance),
        r.icp.restarts,
        r.reference
    )
}

fn observers_wire(o: &ObserverMode) -> String {
    match o {
        ObserverMode::PerParticle => "{\"mode\":\"per_particle\"}".to_string(),
        ObserverMode::TypeMeans { k_per_type } => {
            format!("{{\"mode\":\"type_means\",\"k_per_type\":{k_per_type}}}")
        }
    }
}

fn scenario_wire(sc: &ScenarioSpec) -> Result<String, SweepError> {
    // `description` is human-only and excluded: editing prose must not
    // invalidate a checkpoint.
    Ok(format!(
        "{{\"name\":{},\"ensemble\":{},\"reduce\":{},\"observers\":{},\"eval_every\":{}}}",
        wire::string(&sc.name),
        ensemble_wire(&sc.ensemble)?,
        reduce_wire(&sc.reduce),
        observers_wire(&sc.observers),
        sc.eval_every
    ))
}

fn measure_wire(m: &MeasureConfig) -> String {
    // Every estimator `threads` field is excluded (results are
    // bit-identical for any thread count).
    match m {
        MeasureConfig::Ksg(c) => {
            let variant = match c.variant {
                sops_info::ksg::KsgVariant::Paper => "paper",
                sops_info::ksg::KsgVariant::Ksg1 => "ksg1",
                sops_info::ksg::KsgVariant::Ksg2 => "ksg2",
            };
            let knn = match c.knn {
                sops_info::ksg::KnnMode::Auto => "auto",
                sops_info::ksg::KnnMode::BruteForce => "brute_force",
                sops_info::ksg::KnnMode::KdTree => "kd_tree",
            };
            format!(
                "{{\"family\":\"ksg\",\"k\":{},\"variant\":\"{variant}\",\"knn\":\"{knn}\"}}",
                c.k
            )
        }
        MeasureConfig::Kde(c) => format!(
            "{{\"family\":\"kde\",\"bandwidth_factor\":{}}}",
            wire::float_exact(c.bandwidth_factor)
        ),
        MeasureConfig::Binned(c) => {
            let support = |s: sops_info::binning::SupportModel| match s {
                sops_info::binning::SupportModel::Full => "full",
                sops_info::binning::SupportModel::Observed => "observed",
            };
            format!(
                "{{\"family\":\"binned\",\"bins\":{},\"shrinkage\":{},\
                 \"marginal_support\":\"{}\",\"joint_support\":\"{}\"}}",
                c.bins,
                c.shrinkage,
                support(c.marginal_support),
                support(c.joint_support)
            )
        }
        MeasureConfig::DiscretePlugin { bins } => {
            format!("{{\"family\":\"discrete\",\"bins\":{bins}}}")
        }
        MeasureConfig::Gaussian => "{\"family\":\"gaussian\"}".to_string(),
        MeasureConfig::Strided { family, every } => {
            // The stride is physics-relevant (it changes which rows the
            // estimator sees); the base family nests as its own wire form.
            let base = match family {
                sops_info::StridedFamily::Ksg(c) => measure_wire(&MeasureConfig::Ksg(*c)),
                sops_info::StridedFamily::Kde(c) => measure_wire(&MeasureConfig::Kde(*c)),
                sops_info::StridedFamily::Binned(c) => measure_wire(&MeasureConfig::Binned(*c)),
                sops_info::StridedFamily::Gaussian => measure_wire(&MeasureConfig::Gaussian),
            };
            format!("{{\"family\":\"strided\",\"every\":{every},\"base\":{base}}}")
        }
    }
}

/// The canonical wire form of a plan — the [`plan_fingerprint`] input,
/// also embedded in checkpoint files as human-readable provenance.
/// Covers everything that determines sweep results; excludes all
/// `threads` fields and scenario descriptions. `Err` only for plans with
/// no stable wire form ([`ForceModel::Custom`]).
pub fn plan_wire(plan: &SweepPlan) -> Result<String, SweepError> {
    let mut scenarios = String::new();
    for sc in &plan.scenarios {
        if !scenarios.is_empty() {
            scenarios.push(',');
        }
        scenarios.push_str(&scenario_wire(sc)?);
    }
    let measures: Vec<String> = plan.measures.iter().map(measure_wire).collect();
    let seeds: Vec<String> = plan.seeds.iter().map(|s| s.to_string()).collect();
    Ok(format!(
        "{{\"scenarios\":[{scenarios}],\"measures\":[{}],\"seeds\":[{}]}}",
        measures.join(","),
        seeds.join(",")
    ))
}

/// FNV-1a 64 fingerprint of the canonical plan wire form: the token that
/// binds a checkpoint to the exact experiment that produced it.
pub fn plan_fingerprint(plan: &SweepPlan) -> Result<u64, SweepError> {
    Ok(wire::fnv1a64(plan_wire(plan)?.as_bytes()))
}

/// Schema tag of the per-cell wire form ([`cell_wire`]) — bumped whenever
/// the cell key's byte layout changes, so a new key schema can never
/// collide with entries addressed under the old one.
pub const CELL_SCHEMA: &str = "sops-cell/v1";

/// The canonical wire form of one sweep cell's *identity*: everything
/// that determines the cell's result — the scenario's physics (model,
/// force law, integrator, init, horizon, samples, **seed**, equilibration
/// criterion), its shape reduction, observer construction and evaluation
/// schedule, and the measure selection — and nothing that doesn't (every
/// `threads` field, the ensemble storage policy and human-only scenario
/// descriptions are excluded, exactly as in [`plan_wire`]; both forms are
/// built from the same private wire helpers, so they cannot drift apart).
///
/// This is the shared identity layer under both persistence mechanisms:
/// checkpoints bind whole plans via [`plan_fingerprint`], while the
/// content-addressed cell cache ([`crate::cache::CellCache`]) addresses
/// single cells via [`cell_key`] — so two different sweep plans that
/// share a cell share its cache entry. The layout is pinned by a unit
/// test against known key values; any change must bump [`CELL_SCHEMA`].
///
/// `Err` only for cells with no stable wire form
/// ([`ForceModel::Custom`], [`SweepError::Unserializable`]).
///
/// The scenario's own `ensemble.seed` is the seed that binds the key:
/// callers sweeping a seed axis must pass the reseeded spec
/// ([`ScenarioSpec::with_seed`]), as [`crate::SweepRunner`] does.
pub fn cell_wire(scenario: &ScenarioSpec, measure: &MeasureConfig) -> Result<String, SweepError> {
    Ok(format!(
        "{{\"schema\":\"{CELL_SCHEMA}\",\"scenario\":{},\"measure\":{}}}",
        scenario_wire(scenario)?,
        measure_wire(measure)
    ))
}

/// FNV-1a 64 over [`cell_wire`]: the content address of one sweep cell,
/// shared by every plan that contains the cell. See [`cell_wire`] for
/// what it covers.
pub fn cell_key(scenario: &ScenarioSpec, measure: &MeasureConfig) -> Result<u64, SweepError> {
    Ok(wire::fnv1a64(cell_wire(scenario, measure)?.as_bytes()))
}

/// FNV-1a 64 over the scenario's canonical wire form: the identity of one
/// (scenario, seed) *ensemble* — what every cell measured on that
/// ensemble shares. [`crate::broker::SweepBroker`] batches concurrent
/// requests with equal ensemble keys into one simulation pass. Same
/// inclusion/exclusion rules as [`cell_wire`].
pub fn ensemble_key(scenario: &ScenarioSpec) -> Result<u64, SweepError> {
    Ok(wire::fnv1a64(scenario_wire(scenario)?.as_bytes()))
}

// ---------------------------------------------------------------------
// The checkpoint store
// ---------------------------------------------------------------------

/// Completed cells of a checkpointed sweep, bound to one plan
/// fingerprint. See the module docs for the wire format and guarantees.
#[derive(Debug, Clone)]
pub struct SweepCheckpoint {
    fingerprint: u64,
    cells: Vec<SweepCell>,
}

impl SweepCheckpoint {
    /// An empty checkpoint bound to `plan`. `Err` if the plan has no
    /// stable wire form ([`SweepError::Unserializable`]).
    pub fn new(plan: &SweepPlan) -> Result<Self, SweepError> {
        Ok(SweepCheckpoint {
            fingerprint: plan_fingerprint(plan)?,
            cells: Vec::new(),
        })
    }

    /// The plan fingerprint this checkpoint is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The stored cells, in recording order.
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// Records completed cells, replacing any stored cell with the same
    /// (scenario, measure label, seed) coordinate.
    pub fn record(&mut self, cells: &[SweepCell]) {
        for cell in cells {
            match self.cells.iter_mut().find(|c| {
                c.scenario == cell.scenario
                    && c.measure_label == cell.measure_label
                    && c.seed == cell.seed
            }) {
                Some(slot) => *slot = cell.clone(),
                None => self.cells.push(cell.clone()),
            }
        }
    }

    /// The stored cells of one (scenario, seed) ensemble in plan measure
    /// order, with each cell's [`MeasureConfig`] reattached from the live
    /// plan — or `None` unless *every* plan measure's cell is present
    /// (partial ensembles are recomputed whole, preserving the
    /// cells-per-ensemble atomicity the resume proof relies on).
    pub fn ensemble_cells(
        &self,
        scenario: &str,
        seed: u64,
        labels: &[String],
        measures: &[MeasureConfig],
    ) -> Option<Vec<SweepCell>> {
        let mut out = Vec::with_capacity(labels.len());
        for (label, measure) in labels.iter().zip(measures) {
            let stored = self
                .cells
                .iter()
                .find(|c| c.scenario == scenario && c.seed == seed && &c.measure_label == label)?;
            let mut cell = stored.clone();
            cell.measure = *measure;
            out.push(cell);
        }
        Some(out)
    }

    /// The checkpoint's wire form (schema, fingerprint, provenance plan,
    /// cells).
    pub fn to_json(&self, plan: &SweepPlan) -> Result<String, SweepError> {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {},", wire::string(SCHEMA));
        let _ = writeln!(out, "  \"fingerprint\": \"{:016x}\",", self.fingerprint);
        let _ = writeln!(out, "  \"plan\": {},", plan_wire(plan)?);
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let sep = if i + 1 == self.cells.len() { "" } else { "," };
            let _ = writeln!(out, "    {}{sep}", cell_json(cell));
        }
        out.push_str("  ]\n}\n");
        Ok(out)
    }

    /// Atomically persists the checkpoint at `path`: the wire form is
    /// written to a `.tmp` sibling and renamed over the target, so a kill
    /// at any moment leaves a complete file (missing parent directories
    /// are created).
    pub fn save(&self, path: &Path, plan: &SweepPlan) -> Result<(), SweepError> {
        let text = self.to_json(plan)?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(|source| SweepError::Io {
                    path: parent.to_path_buf(),
                    op: "create directory",
                    source,
                })?;
            }
        }
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, text).map_err(|source| SweepError::Io {
            path: tmp.clone(),
            op: "write",
            source,
        })?;
        fs::rename(&tmp, path).map_err(|source| SweepError::Io {
            path: path.to_path_buf(),
            op: "rename",
            source,
        })
    }

    /// Reads and validates a checkpoint from `path` against `plan`
    /// (schema tag, fingerprint, cell structure).
    pub fn load(path: &Path, plan: &SweepPlan) -> Result<Self, SweepError> {
        let text = fs::read_to_string(path).map_err(|source| SweepError::Io {
            path: path.to_path_buf(),
            op: "read",
            source,
        })?;
        Self::parse(&text, plan).map_err(|e| match e {
            SweepError::Parse { detail, .. } => SweepError::Parse {
                what: format!("checkpoint {}", path.display()),
                detail,
            },
            other => other,
        })
    }

    /// Parses and validates checkpoint text against `plan`. A torn or
    /// hand-edited file is [`SweepError::Parse`]; an unknown schema tag
    /// is [`SweepError::SchemaMismatch`]; a checkpoint written for a
    /// different plan is [`SweepError::FingerprintMismatch`].
    pub fn parse(text: &str, plan: &SweepPlan) -> Result<Self, SweepError> {
        let parse_err = |detail: String| SweepError::Parse {
            what: "checkpoint".into(),
            detail,
        };
        let root = wire::parse(text).map_err(parse_err)?;
        let obj = root
            .as_object()
            .ok_or_else(|| parse_err("top level is not an object".into()))?;
        let schema = wire::get(obj, "schema")
            .map_err(parse_err)?
            .as_str()
            .ok_or_else(|| parse_err("'schema' is not a string".into()))?;
        if schema != SCHEMA {
            return Err(SweepError::SchemaMismatch {
                expected: SCHEMA.into(),
                found: schema.into(),
            });
        }
        let fp_text = wire::get(obj, "fingerprint")
            .map_err(parse_err)?
            .as_str()
            .ok_or_else(|| parse_err("'fingerprint' is not a string".into()))?;
        let fingerprint = u64::from_str_radix(fp_text, 16)
            .map_err(|_| parse_err(format!("'fingerprint' is not 16 hex digits: '{fp_text}'")))?;
        let plan_fp = plan_fingerprint(plan)?;
        if fingerprint != plan_fp {
            return Err(SweepError::FingerprintMismatch {
                plan: format!("{plan_fp:016x}"),
                checkpoint: format!("{fingerprint:016x}"),
            });
        }
        let labels = measure_labels(&plan.measures);
        let cells_val = wire::get(obj, "cells")
            .map_err(parse_err)?
            .as_array()
            .ok_or_else(|| parse_err("'cells' is not an array".into()))?;
        let mut cells = Vec::with_capacity(cells_val.len());
        for v in cells_val {
            cells.push(cell_from_json(v, &labels, &plan.measures).map_err(parse_err)?);
        }
        Ok(SweepCheckpoint { fingerprint, cells })
    }
}

fn cell_json(cell: &SweepCell) -> String {
    let times: Vec<String> = cell.result.mi.times.iter().map(|t| t.to_string()).collect();
    let mi: Vec<String> = cell
        .result
        .mi
        .values
        .iter()
        .map(|&v| wire::float_exact(v))
        .collect();
    let cost: Vec<String> = cell
        .result
        .mean_icp_cost
        .iter()
        .map(|&v| wire::float_exact(v))
        .collect();
    let status = match &cell.status {
        CellStatus::Ok => "\"status\": \"ok\"".to_string(),
        CellStatus::Failed { reason } => {
            format!(
                "\"status\": \"failed\", \"reason\": {}",
                wire::string(reason)
            )
        }
    };
    format!(
        "{{\"scenario\": {}, \"measure\": {}, \"seed\": {}, {status}, \
         \"times\": [{}], \"mi_bits\": [{}], \"mean_icp_cost\": [{}], \
         \"equilibrated_fraction\": {}}}",
        wire::string(&cell.scenario),
        wire::string(&cell.measure_label),
        cell.seed,
        times.join(", "),
        mi.join(", "),
        cost.join(", "),
        wire::float_exact(cell.result.equilibrated_fraction)
    )
}

fn cell_from_json(
    v: &Value,
    labels: &[String],
    measures: &[MeasureConfig],
) -> Result<SweepCell, String> {
    let obj = v.as_object().ok_or("cell is not an object")?;
    let scenario = wire::get(obj, "scenario")?
        .as_str()
        .ok_or("cell 'scenario' is not a string")?
        .to_string();
    let label = wire::get(obj, "measure")?
        .as_str()
        .ok_or("cell 'measure' is not a string")?
        .to_string();
    let measure = labels
        .iter()
        .position(|l| l == &label)
        .map(|i| measures[i])
        .ok_or_else(|| format!("cell measure label '{label}' not in the plan's measure axis"))?;
    let seed = wire::get(obj, "seed")?
        .as_u64()
        .ok_or("cell 'seed' is not an integer")?;
    let status = match wire::get(obj, "status")?.as_str() {
        Some("ok") => CellStatus::Ok,
        Some("failed") => CellStatus::Failed {
            reason: wire::get(obj, "reason")?
                .as_str()
                .ok_or("cell 'reason' is not a string")?
                .to_string(),
        },
        _ => return Err("cell 'status' is not \"ok\" or \"failed\"".into()),
    };
    let usize_array = |key: &str| -> Result<Vec<usize>, String> {
        wire::get(obj, key)?
            .as_array()
            .ok_or_else(|| format!("cell '{key}' is not an array"))?
            .iter()
            .map(|x| {
                x.as_u64()
                    .map(|v| v as usize)
                    .ok_or_else(|| format!("cell '{key}' entry is not an integer"))
            })
            .collect()
    };
    let f64_array = |key: &str| -> Result<Vec<f64>, String> {
        wire::get(obj, key)?
            .as_array()
            .ok_or_else(|| format!("cell '{key}' is not an array"))?
            .iter()
            .map(|x| {
                x.as_f64()
                    .ok_or_else(|| format!("cell '{key}' entry is not a number"))
            })
            .collect()
    };
    let times = usize_array("times")?;
    let values = f64_array("mi_bits")?;
    let mean_icp_cost = f64_array("mean_icp_cost")?;
    if values.len() != times.len() || mean_icp_cost.len() != times.len() {
        return Err(format!(
            "cell series lengths disagree: {} times, {} mi_bits, {} mean_icp_cost",
            times.len(),
            values.len(),
            mean_icp_cost.len()
        ));
    }
    let equilibrated_fraction = wire::get(obj, "equilibrated_fraction")?
        .as_f64()
        .ok_or("cell 'equilibrated_fraction' is not a number")?;
    Ok(SweepCell {
        scenario,
        measure,
        measure_label: label,
        seed,
        status,
        // Provenance is not part of the wire format (it is run metadata,
        // not a result); a parsed cell is by definition a restored one.
        provenance: CellProvenance::Restored,
        result: PipelineResult {
            mi: MiSeries { times, values },
            mean_icp_cost,
            equilibrated_fraction,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{cell_sorting, mixing_null};
    use sops_info::ksg::KsgConfig;
    use sops_sim::force::ForceLaw;

    fn tiny_plan() -> SweepPlan {
        let mut plan = SweepPlan::new(
            vec![
                cell_sorting().with_scale(10, 8),
                mixing_null().with_scale(10, 8),
            ],
            vec![
                MeasureConfig::Gaussian,
                MeasureConfig::Ksg(KsgConfig {
                    k: 3,
                    ..KsgConfig::default()
                }),
            ],
        );
        plan.seeds = vec![3, 4];
        plan
    }

    fn sample_cell(scenario: &str, label: &str, seed: u64, status: CellStatus) -> SweepCell {
        SweepCell {
            scenario: scenario.into(),
            measure: MeasureConfig::Gaussian,
            measure_label: label.into(),
            seed,
            status,
            provenance: CellProvenance::Computed,
            result: PipelineResult {
                mi: MiSeries {
                    times: vec![0, 4, 8],
                    values: vec![0.25, f64::NAN, std::f64::consts::PI],
                },
                mean_icp_cost: vec![1.5e-300, f64::INFINITY, -0.0],
                equilibrated_fraction: 0.75,
            },
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let plan = tiny_plan();
        let mut ckpt = SweepCheckpoint::new(&plan).unwrap();
        ckpt.record(&[
            sample_cell("cell_sorting", "gaussian", 3, CellStatus::Ok),
            sample_cell(
                "cell_sorting",
                "ksg",
                3,
                CellStatus::Failed {
                    reason: "panicked on all 2 attempt(s): boom".into(),
                },
            ),
        ]);
        let text = ckpt.to_json(&plan).unwrap();
        let back = SweepCheckpoint::parse(&text, &plan).unwrap();
        assert_eq!(back.fingerprint(), ckpt.fingerprint());
        assert_eq!(back.cells().len(), 2);
        for (a, b) in ckpt.cells().iter().zip(back.cells()) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.measure_label, b.measure_label);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.status, b.status);
            assert_eq!(a.result.mi.times, b.result.mi.times);
            for (x, y) in a.result.mi.values.iter().zip(&b.result.mi.values) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in a.result.mean_icp_cost.iter().zip(&b.result.mean_icp_cost) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(
                a.result.equilibrated_fraction.to_bits(),
                b.result.equilibrated_fraction.to_bits()
            );
        }
        // The restored failed cell reattaches the plan's KSG config.
        assert!(matches!(
            back.cells()[1].measure,
            MeasureConfig::Ksg(KsgConfig { k: 3, .. })
        ));
    }

    #[test]
    fn record_replaces_same_coordinate() {
        let plan = tiny_plan();
        let mut ckpt = SweepCheckpoint::new(&plan).unwrap();
        ckpt.record(&[sample_cell(
            "cell_sorting",
            "gaussian",
            3,
            CellStatus::Failed {
                reason: "first".into(),
            },
        )]);
        ckpt.record(&[sample_cell("cell_sorting", "gaussian", 3, CellStatus::Ok)]);
        assert_eq!(ckpt.cells().len(), 1);
        assert!(ckpt.cells()[0].status.is_ok());
    }

    #[test]
    fn ensemble_cells_requires_every_measure() {
        let plan = tiny_plan();
        let labels = measure_labels(&plan.measures);
        let mut ckpt = SweepCheckpoint::new(&plan).unwrap();
        ckpt.record(&[sample_cell("cell_sorting", "gaussian", 3, CellStatus::Ok)]);
        // Only one of the two measures is stored → the ensemble is
        // incomplete and must be recomputed whole.
        assert!(ckpt
            .ensemble_cells("cell_sorting", 3, &labels, &plan.measures)
            .is_none());
        ckpt.record(&[sample_cell("cell_sorting", "ksg", 3, CellStatus::Ok)]);
        let cells = ckpt
            .ensemble_cells("cell_sorting", 3, &labels, &plan.measures)
            .unwrap();
        assert_eq!(cells.len(), 2);
        // Plan measure order, not recording order.
        assert_eq!(cells[0].measure_label, "gaussian");
        assert_eq!(cells[1].measure_label, "ksg");
        assert!(ckpt
            .ensemble_cells("cell_sorting", 4, &labels, &plan.measures)
            .is_none());
    }

    #[test]
    fn save_is_atomic_and_load_round_trips() {
        let plan = tiny_plan();
        let dir = std::env::temp_dir().join("sops_ckpt_test_save");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("sweep_checkpoint.json");
        let mut ckpt = SweepCheckpoint::new(&plan).unwrap();
        ckpt.record(&[sample_cell("cell_sorting", "gaussian", 3, CellStatus::Ok)]);
        ckpt.save(&path, &plan).unwrap();
        // No tmp sibling survives a successful save.
        assert!(!path.with_extension("json.tmp").exists());
        let back = SweepCheckpoint::load(&path, &plan).unwrap();
        assert_eq!(back.cells().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_schema_and_fingerprint_corruption_are_typed() {
        let plan = tiny_plan();
        let ckpt = SweepCheckpoint::new(&plan).unwrap();
        let text = ckpt.to_json(&plan).unwrap();
        // Torn write: the file cut mid-token.
        let torn = &text[..text.len() / 2];
        assert!(matches!(
            SweepCheckpoint::parse(torn, &plan),
            Err(SweepError::Parse { .. })
        ));
        // Unknown schema tag.
        let other = text.replace(SCHEMA, "sops-sweep-checkpoint/v999");
        assert!(matches!(
            SweepCheckpoint::parse(&other, &plan),
            Err(SweepError::SchemaMismatch { .. })
        ));
        // A checkpoint of a different plan (drifted seed axis).
        let mut drifted = plan.clone();
        drifted.seeds = vec![3, 4, 5];
        let foreign = SweepCheckpoint::new(&drifted)
            .unwrap()
            .to_json(&drifted)
            .unwrap();
        assert!(matches!(
            SweepCheckpoint::parse(&foreign, &plan),
            Err(SweepError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn fingerprint_ignores_threads_and_description_but_not_physics() {
        let plan = tiny_plan();
        let fp = plan_fingerprint(&plan).unwrap();
        // Worker counts and prose never bind the fingerprint…
        let mut retuned = plan.clone();
        retuned.threads = 8;
        retuned.scenarios[0].reduce.threads = 4;
        retuned.scenarios[0].description = "edited prose".into();
        retuned.storage = crate::scenario::EnsembleStorage::Retained;
        assert_eq!(plan_fingerprint(&retuned).unwrap(), fp);
        // …but every result-bearing knob does.
        let mut drifted = plan.clone();
        drifted.seeds = vec![3, 5];
        assert_ne!(plan_fingerprint(&drifted).unwrap(), fp);
        let mut rescheduled = plan.clone();
        rescheduled.scenarios[0].eval_every = 7;
        assert_ne!(plan_fingerprint(&rescheduled).unwrap(), fp);
        let mut remoded = plan.clone();
        remoded.scenarios[0].reduce.mode = sops_shape::ensemble::ReduceMode::Centred;
        assert_ne!(plan_fingerprint(&remoded).unwrap(), fp);
        let mut remeasured = plan.clone();
        remeasured.measures[1] = MeasureConfig::Ksg(KsgConfig {
            k: 5,
            ..KsgConfig::default()
        });
        assert_ne!(plan_fingerprint(&remeasured).unwrap(), fp);
        // A strided wrapper changes the fingerprint, and so does its
        // stride — but not its `threads` field.
        let strided = |every, threads| MeasureConfig::Strided {
            family: sops_info::StridedFamily::Ksg(KsgConfig {
                threads,
                ..KsgConfig::default()
            }),
            every,
        };
        let mut restrided = plan.clone();
        restrided.measures[1] = strided(2, 1);
        let strided_fp = plan_fingerprint(&restrided).unwrap();
        assert_ne!(strided_fp, fp);
        restrided.measures[1] = strided(4, 1);
        assert_ne!(plan_fingerprint(&restrided).unwrap(), strided_fp);
        restrided.measures[1] = strided(2, 6);
        assert_eq!(plan_fingerprint(&restrided).unwrap(), strided_fp);
    }

    #[test]
    fn cell_key_excludes_result_invariant_knobs_and_binds_physics() {
        let plan = tiny_plan();
        let sc = plan.scenarios[0].clone();
        let key = cell_key(&sc, &plan.measures[0]).unwrap();
        // Worker counts and prose never bind the key…
        let mut retuned = sc.clone();
        retuned.reduce.threads = 4;
        retuned.description = "edited prose".into();
        assert_eq!(cell_key(&retuned, &plan.measures[0]).unwrap(), key);
        assert_eq!(
            cell_key(&sc, &plan.measures[0].with_threads(8)).unwrap(),
            key
        );
        // …but seed, scale, schedule and measure all do.
        assert_ne!(
            cell_key(&sc.clone().with_seed(99), &plan.measures[0]).unwrap(),
            key
        );
        assert_ne!(
            cell_key(&sc.clone().with_scale(20, 8), &plan.measures[0]).unwrap(),
            key
        );
        let mut rescheduled = sc.clone();
        rescheduled.eval_every = 7;
        assert_ne!(cell_key(&rescheduled, &plan.measures[0]).unwrap(), key);
        assert_ne!(cell_key(&sc, &plan.measures[1]).unwrap(), key);
    }

    /// Pins the cell-key schema: these hex literals were computed once
    /// from the v1 wire layout. If this test fails, the key schema
    /// drifted — existing cache entries would silently miss (or worse,
    /// collide with entries written under the old layout). Deliberate
    /// changes must bump [`CELL_SCHEMA`] *and* re-pin these values.
    #[test]
    fn cell_key_values_are_pinned_against_schema_drift() {
        let plan = tiny_plan();
        let gaussian = cell_key(&plan.scenarios[0], &plan.measures[0]).unwrap();
        let ksg = cell_key(&plan.scenarios[0], &plan.measures[1]).unwrap();
        let null = cell_key(&plan.scenarios[1], &plan.measures[0]).unwrap();
        assert_eq!(
            (gaussian, ksg, null),
            (
                0x14d9_de4c_2acb_d781,
                0xb2c4_873c_41a9_0684,
                0x5ca1_644d_637f_3a91
            ),
            "cell key schema drifted: got ({gaussian:#018x}, {ksg:#018x}, {null:#018x})"
        );
    }

    #[test]
    fn custom_force_law_is_unserializable_not_a_crash() {
        #[derive(Debug)]
        struct Zero;
        impl ForceLaw for Zero {
            fn types(&self) -> usize {
                2
            }
            fn scale(&self, _: usize, _: usize, _: f64) -> f64 {
                0.0
            }
            fn preferred_distance(&self, _: usize, _: usize) -> Option<f64> {
                None
            }
        }
        let mut plan = tiny_plan();
        let law = ForceModel::Custom(std::sync::Arc::new(Zero));
        plan.scenarios[0].ensemble.model = sops_sim::Model::balanced(4, law, 1.0);
        assert!(matches!(
            SweepCheckpoint::new(&plan),
            Err(SweepError::Unserializable(_))
        ));
    }
}
