//! Request coalescing over the sweep engine: concurrent users, one pass.
//!
//! A [`SweepBroker`] accepts sweep requests from any number of threads
//! (`&self` — handles are shared behind an `Arc` by `sops-serve`'s
//! worker pool) and guarantees that **no cell is ever computed twice
//! concurrently**:
//!
//! * **Cache first** — with an attached [`CellCache`], every requested
//!   cell is looked up by [`crate::checkpoint::cell_key`] before any
//!   work is claimed; hits are served as [`CellProvenance::Cached`].
//! * **In-flight dedup** — a cell another request is already computing
//!   is *joined*: the second requester waits on the first's published
//!   result ([`CellProvenance::Coalesced`]) and never recomputes.
//! * **Ensemble batching** — cells that miss but share a (scenario,
//!   seed) ensemble with a *claimed-but-not-yet-started* job are
//!   appended to that job, so one [`SweepRunner::run_cells`] pass
//!   simulates the ensemble once and evaluates the union of everyone's
//!   measures on its shared prepared state — the one-pass
//!   preparation-sharing win applied across users instead of across one
//!   plan's measures.
//!
//! Results are bit-identical to an uncached [`SweepRunner::run`] of the
//! same plan for any interleaving: cells are pure functions of their
//! key, the cache round-trips every f64 exactly, and subset evaluation
//! equals full-pass evaluation by the engine's preparation-sharing
//! contract (`tests/sweep_broker.rs` proves N identical concurrent
//! requests produce byte-identical reports from exactly one simulation
//! pass).
//!
//! Failed (quarantined) cells are published to waiters like healthy ones
//! — a poisoned cell fails every coalesced requester identically — but
//! are never written to the cache, so they are retried on the next
//! request.

use crate::cache::{CacheStats, CellCache};
use crate::checkpoint::{cell_key, ensemble_key};
use crate::error::SweepError;
use crate::pipeline::PipelineResult;
use crate::scenario::{
    measure_labels, CellProvenance, CellStatus, RetryPolicy, ScenarioSpec, SweepCell, SweepPlan,
    SweepReport, SweepRunner,
};
use sops_info::measure::MeasureConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Lifetime counters of one [`SweepBroker`] (shared via
/// [`SweepBroker::counters`], e.g. by the `/stats` endpoint and by test
/// hooks that need to observe coalescing live).
#[derive(Debug, Default)]
pub struct BrokerCounters {
    requests: AtomicU64,
    sim_passes: AtomicU64,
    cells_computed: AtomicU64,
    cells_cached: AtomicU64,
    cells_coalesced: AtomicU64,
}

impl BrokerCounters {
    /// Sweep requests accepted.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::SeqCst)
    }

    /// Simulation passes actually run (each simulates one ensemble once).
    pub fn sim_passes(&self) -> u64 {
        self.sim_passes.load(Ordering::SeqCst)
    }

    /// Cells computed by this broker's passes.
    pub fn cells_computed(&self) -> u64 {
        self.cells_computed.load(Ordering::SeqCst)
    }

    /// Cells served from the attached cache.
    pub fn cells_cached(&self) -> u64 {
        self.cells_cached.load(Ordering::SeqCst)
    }

    /// Cells that joined another request's in-flight computation (same
    /// cell deduped, or a cell batched into another request's ensemble
    /// pass) instead of computing.
    pub fn cells_coalesced(&self) -> u64 {
        self.cells_coalesced.load(Ordering::SeqCst)
    }
}

/// A point-in-time snapshot of broker (and attached cache) counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Sweep requests accepted.
    pub requests: u64,
    /// Simulation passes actually run.
    pub sim_passes: u64,
    /// Cells computed by this broker's passes.
    pub cells_computed: u64,
    /// Cells served from the attached cache.
    pub cells_cached: u64,
    /// Cells that joined another request's in-flight computation.
    pub cells_coalesced: u64,
    /// The attached cache's counters (`None` without a cache).
    pub cache: Option<CacheStats>,
}

/// A published cell result: what waiters receive.
#[derive(Debug, Clone)]
struct CellOutcome {
    status: CellStatus,
    result: PipelineResult,
}

/// One in-flight cell's rendezvous: the owner publishes exactly once,
/// any number of waiters block until then.
#[derive(Debug, Default)]
struct CellSlot {
    ready: Mutex<Option<CellOutcome>>,
    cv: Condvar,
}

impl CellSlot {
    fn publish(&self, outcome: CellOutcome) {
        let mut ready = self.ready.lock().unwrap();
        if ready.is_none() {
            *ready = Some(outcome);
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> CellOutcome {
        let ready = self.ready.lock().unwrap();
        let ready = self.cv.wait_while(ready, |r| r.is_none()).unwrap();
        ready.as_ref().expect("wait_while guarantees Some").clone()
    }
}

/// Drop guard armed around an owned pass: on unwind, publishes a
/// `Failed` outcome to the job's slots and clears them from the
/// in-flight registry so no waiter hangs and no future request joins a
/// dead slot.
struct PublishGuard<'a> {
    broker: &'a SweepBroker,
    job: &'a PendingJob,
    armed: bool,
}

impl Drop for PublishGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut state = self.broker.state.lock().unwrap();
        for (key, _, slot) in &self.job.cells {
            slot.publish(CellOutcome {
                status: CellStatus::Failed {
                    reason: "broker pass aborted before publishing".into(),
                },
                result: PipelineResult::empty(),
            });
            state.inflight.remove(key);
        }
    }
}

/// A claimed ensemble pass that has not started simulating yet — the
/// window during which other requests' cells on the same ensemble can
/// still join it.
struct PendingJob {
    scenario: ScenarioSpec,
    cells: Vec<(u64, MeasureConfig, Arc<CellSlot>)>,
}

#[derive(Default)]
struct BrokerState {
    /// Claimed-but-not-started jobs by ensemble key.
    pending: HashMap<u64, PendingJob>,
    /// Every unfinished cell (pending or simulating) by cell key.
    inflight: HashMap<u64, Arc<CellSlot>>,
}

/// Where one requested cell's result will come from.
enum CellSource {
    /// Served from the cache before any work was claimed.
    Cached(PipelineResult),
    /// This request owns the pass that will compute it.
    Owned(u64),
    /// Another in-flight computation will publish it.
    Joined(Arc<CellSlot>),
}

/// The request-coalescing front of the sweep engine — see the module
/// docs. Construct once, share behind an `Arc`, call
/// [`SweepBroker::run`] from any number of threads.
#[derive(Default)]
pub struct SweepBroker {
    cache: Option<Arc<CellCache>>,
    state: Mutex<BrokerState>,
    counters: Arc<BrokerCounters>,
    /// Warm runners returned by finished passes, reused by later ones.
    runners: Mutex<Vec<SweepRunner>>,
    retry: RetryPolicy,
    observer: Option<PassObserver>,
}

type PassObserver = Arc<dyn Fn(&ScenarioSpec) + Send + Sync>;

impl std::fmt::Debug for SweepBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepBroker")
            .field("cache", &self.cache.as_ref().map(|c| c.dir()))
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl SweepBroker {
    /// A broker with no cache: coalescing and batching only.
    pub fn new() -> Self {
        SweepBroker::default()
    }

    /// The same broker backed by a content-addressed cell cache: hits
    /// skip even the coalescing machinery, and every freshly computed
    /// healthy cell is stored back.
    pub fn with_cache(mut self, cache: Arc<CellCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The same broker with the pass retry policy replaced.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The same broker with a simulation-pass observer installed: `f`
    /// runs at the start of every pass (after the batching window for
    /// that ensemble closes, before simulation). This is the documented
    /// test/metrics hook — `tests/sweep_broker.rs` counts passes through
    /// it to prove N identical concurrent requests trigger exactly one.
    pub fn with_pass_observer(mut self, f: impl Fn(&ScenarioSpec) + Send + Sync + 'static) -> Self {
        self.observer = Some(Arc::new(f));
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<CellCache>> {
        self.cache.as_ref()
    }

    /// The broker's live counters (shared — hooks and endpoints can hold
    /// the `Arc` and observe coalescing as it happens).
    pub fn counters(&self) -> Arc<BrokerCounters> {
        Arc::clone(&self.counters)
    }

    /// A snapshot of broker and cache counters.
    pub fn stats(&self) -> BrokerStats {
        BrokerStats {
            requests: self.counters.requests(),
            sim_passes: self.counters.sim_passes(),
            cells_computed: self.counters.cells_computed(),
            cells_cached: self.counters.cells_cached(),
            cells_coalesced: self.counters.cells_coalesced(),
            cache: self.cache.as_ref().map(|c| c.stats()),
        }
    }

    /// Executes `plan`, sharing work with every concurrent request:
    /// cache hits are served, in-flight duplicates are joined, and the
    /// cells this request must compute run in per-ensemble
    /// [`SweepRunner::run_cells`] passes that also evaluate any cells
    /// other requests batched onto them. The returned report has cells
    /// in plan order with per-cell [`CellProvenance`], and is
    /// byte-identical (under the canonical `sweep.json` writer) to an
    /// uncached [`SweepRunner::run`] of the same plan.
    ///
    /// `Err` for an invalid plan or one with no stable wire form; cell
    /// failures are quarantined into the report, identically for every
    /// coalesced requester.
    pub fn run(&self, plan: &SweepPlan) -> Result<SweepReport, SweepError> {
        plan.validate()?;
        self.counters.requests.fetch_add(1, Ordering::SeqCst);
        let labels = measure_labels(&plan.measures);

        // The request's cell coordinates in plan order, with their
        // identity keys (computing keys up front also validates that the
        // plan has a stable wire form before any work is claimed).
        struct Coord {
            scenario_index: usize,
            measure_index: usize,
            seed: u64,
            ensemble: u64,
            cell: u64,
        }
        let mut scenarios: Vec<ScenarioSpec> = Vec::new();
        let mut coords: Vec<Coord> = Vec::new();
        for base in &plan.scenarios {
            let own_seed = [base.ensemble.seed];
            let seeds: &[u64] = if plan.seeds.is_empty() {
                &own_seed
            } else {
                &plan.seeds
            };
            for &seed in seeds {
                let scenario = base.clone().with_seed(seed);
                let ensemble = ensemble_key(&scenario)?;
                for (mi, measure) in plan.measures.iter().enumerate() {
                    coords.push(Coord {
                        scenario_index: scenarios.len(),
                        measure_index: mi,
                        seed,
                        ensemble,
                        cell: cell_key(&scenario, measure)?,
                    });
                }
                scenarios.push(scenario);
            }
        }

        // Phase 1: cache lookups, before any claim (a hit needs neither
        // a pass nor a slot).
        let mut sources: Vec<Option<CellSource>> = Vec::with_capacity(coords.len());
        for coord in &coords {
            let hit = self.cache.as_ref().and_then(|c| c.lookup(coord.cell));
            if hit.is_some() {
                self.counters.cells_cached.fetch_add(1, Ordering::SeqCst);
            }
            sources.push(hit.map(CellSource::Cached));
        }

        // Phase 2: one critical section claims everything this request
        // still needs — join in-flight cells, batch onto pending jobs,
        // and open new jobs for the rest. Holding the lock across the
        // whole request is what makes "N identical concurrent requests →
        // one pass" deterministic: the first claimant owns every cell.
        let mut own_jobs: Vec<u64> = Vec::new();
        {
            let mut state = self.state.lock().unwrap();
            for (ci, coord) in coords.iter().enumerate() {
                if sources[ci].is_some() {
                    continue;
                }
                if let Some(slot) = state.inflight.get(&coord.cell) {
                    self.counters.cells_coalesced.fetch_add(1, Ordering::SeqCst);
                    sources[ci] = Some(CellSource::Joined(Arc::clone(slot)));
                    continue;
                }
                let slot = Arc::new(CellSlot::default());
                state.inflight.insert(coord.cell, Arc::clone(&slot));
                let measure = plan.measures[coord.measure_index];
                match state.pending.get_mut(&coord.ensemble) {
                    Some(job) => {
                        // Another request claimed this ensemble and has
                        // not started it: ride its pass.
                        job.cells.push((coord.cell, measure, Arc::clone(&slot)));
                        self.counters.cells_coalesced.fetch_add(1, Ordering::SeqCst);
                        sources[ci] = Some(CellSource::Joined(slot));
                    }
                    None => {
                        state.pending.insert(
                            coord.ensemble,
                            PendingJob {
                                scenario: scenarios[coord.scenario_index].clone(),
                                cells: vec![(coord.cell, measure, slot)],
                            },
                        );
                        own_jobs.push(coord.ensemble);
                        sources[ci] = Some(CellSource::Owned(coord.cell));
                    }
                }
            }
        }

        // Phase 3: run the owned passes. Taking a job out of `pending`
        // closes its batching window; its slots stay in `inflight` so
        // late identical cells still coalesce onto the running pass.
        let mut computed: HashMap<u64, CellOutcome> = HashMap::new();
        for ekey in own_jobs {
            let job = {
                let mut state = self.state.lock().unwrap();
                state
                    .pending
                    .remove(&ekey)
                    .expect("an owned pending job is only removed by its owner")
            };
            // If anything in the pass unwinds (the runner itself never
            // does, but an installed observer could), still publish a
            // Failed outcome to every slot — a coalesced waiter must
            // never hang on an abandoned pass.
            let guard = PublishGuard {
                broker: self,
                job: &job,
                armed: true,
            };
            let outcomes = self.run_job(&job, plan);
            let mut guard = guard;
            guard.armed = false;
            let mut state = self.state.lock().unwrap();
            for ((key, _, slot), outcome) in job.cells.iter().zip(outcomes) {
                slot.publish(outcome.clone());
                state.inflight.remove(key);
                computed.insert(*key, outcome);
            }
        }

        // Phase 4: assemble the report in plan order, waiting on joined
        // cells as needed.
        let mut cells = Vec::with_capacity(coords.len());
        for (coord, source) in coords.iter().zip(sources) {
            let scenario = &scenarios[coord.scenario_index];
            let (provenance, outcome) = match source.expect("every coordinate has a source") {
                CellSource::Cached(result) => (
                    CellProvenance::Cached,
                    CellOutcome {
                        status: CellStatus::Ok,
                        result,
                    },
                ),
                CellSource::Owned(key) => (
                    CellProvenance::Computed,
                    computed
                        .get(&key)
                        .expect("owned cells are published by our own passes")
                        .clone(),
                ),
                CellSource::Joined(slot) => (CellProvenance::Coalesced, slot.wait()),
            };
            cells.push(SweepCell {
                scenario: scenario.name.clone(),
                measure: plan.measures[coord.measure_index],
                measure_label: labels[coord.measure_index].clone(),
                seed: coord.seed,
                status: outcome.status,
                provenance,
                result: outcome.result,
            });
        }
        Ok(SweepReport { cells })
    }

    /// Simulates one job's ensemble once and evaluates every batched
    /// measure on it, returning outcomes parallel to `job.cells`.
    /// Healthy cells are backfilled into the cache. Runs under
    /// [`SweepRunner`]'s panic isolation — this never unwinds, so every
    /// slot is always published.
    fn run_job(&self, job: &PendingJob, plan: &SweepPlan) -> Vec<CellOutcome> {
        self.counters.sim_passes.fetch_add(1, Ordering::SeqCst);
        if let Some(observer) = &self.observer {
            observer(&job.scenario);
        }
        let measures: Vec<MeasureConfig> = job.cells.iter().map(|(_, m, _)| *m).collect();
        let labels = measure_labels(&measures);
        let mut runner = self
            .runners
            .lock()
            .unwrap()
            .pop()
            .unwrap_or_default();
        runner.retry = self.retry;
        let produced = runner.run_cells(
            &job.scenario,
            &measures,
            &labels,
            plan.storage,
            plan.threads,
        );
        self.runners.lock().unwrap().push(runner);
        self.counters
            .cells_computed
            .fetch_add(produced.len() as u64, Ordering::SeqCst);
        job.cells
            .iter()
            .zip(produced)
            .map(|((key, _, _), cell)| {
                if cell.status.is_ok() {
                    if let Some(cache) = &self.cache {
                        cache.store(*key, &cell.result);
                    }
                }
                CellOutcome {
                    status: cell.status,
                    result: cell.result,
                }
            })
            .collect()
    }
}
