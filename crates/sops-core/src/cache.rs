//! Content-addressed, on-disk cell cache: repeat sweep cells in
//! microseconds.
//!
//! Determinism (bit-identical results for any worker count, storage
//! budget and resume point) makes every sweep cell a pure function of
//! its identity — the scenario's physics, schedule, seed and the measure
//! selection. [`CellCache`] memoizes that function on disk:
//!
//! * **Addressing** — entries are keyed by [`crate::checkpoint::cell_key`],
//!   FNV-1a 64 over the canonical per-cell wire form
//!   ([`crate::checkpoint::cell_wire`], schema
//!   [`crate::checkpoint::CELL_SCHEMA`]). The key covers everything that
//!   determines the result and excludes every result-invariant knob
//!   (`threads` fields, [`EnsembleStorage`](crate::scenario::EnsembleStorage),
//!   scenario descriptions), so two different sweep plans that share a
//!   cell share one entry.
//! * **Bit-identity** — entries store the cell's [`PipelineResult`]
//!   series in the [`crate::wire::float_exact`] format (17 significant
//!   digits, tagged non-finite strings), so a served cell is
//!   bit-for-bit the cell that was measured. A cached run is therefore
//!   byte-identical to an uncached one (`tests/sweep_cache.rs`).
//! * **Crash safety** — [`CellCache::store`] writes a `.tmp` sibling and
//!   atomically renames it over the entry (the [`crate::checkpoint`]
//!   discipline). Because the cache is content-addressed, concurrent
//!   writers of one key produce identical bytes, so the last rename
//!   winning is harmless.
//! * **Bounded size** — the store is capped at
//!   [`CellCache::with_max_bytes`] (default [`DEFAULT_MAX_BYTES`]);
//!   exceeding it evicts least-recently-used entries (file mtime order;
//!   hits touch the mtime). The just-written entry is never evicted.
//! * **Never a poisoned hit** — a torn, hand-edited or foreign-schema
//!   entry surfaces as a typed error from [`CellCache::load`]
//!   ([`SweepError::Parse`] / [`SweepError::SchemaMismatch`]); the
//!   runner-facing [`CellCache::lookup`] instead evicts the corrupt file
//!   and reports a miss, so the cell is simply recomputed.
//!
//! The cache is the storage layer under
//! [`SweepRunner::run_with_cache`](crate::SweepRunner::run_with_cache)
//! (CLI: `sops-repro sweep --cache DIR`) and the request-coalescing
//! [`crate::broker::SweepBroker`] behind `sops-serve` — one directory
//! shared by offline runs and the service.

use crate::error::SweepError;
use crate::pipeline::{MiSeries, PipelineResult};
use crate::wire;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

/// Schema tag of cache entry files.
pub const SCHEMA: &str = "sops-cell-cache/v1";

/// Default byte-size cap of a cache directory (256 MiB — roughly 10⁵
/// typical cell entries).
pub const DEFAULT_MAX_BYTES: u64 = 256 * 1024 * 1024;

/// Hit/miss/store/eviction counters of one [`CellCache`] handle
/// (process-lifetime, not persisted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Served lookups.
    pub hits: u64,
    /// Lookups that found no (healthy) entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Store attempts that failed (I/O) and were skipped — the cache is
    /// best-effort, a failed backfill never fails the sweep.
    pub store_errors: u64,
    /// Entries removed: LRU cap enforcement plus corrupt entries dropped
    /// by [`CellCache::lookup`].
    pub evictions: u64,
}

/// A content-addressed cell store in one directory — see the module docs
/// for the guarantees. Handles are cheap and safe to share across
/// threads (`&self` methods, atomic counters); multiple handles or
/// processes may point at one directory.
#[derive(Debug)]
pub struct CellCache {
    dir: PathBuf,
    max_bytes: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    store_errors: AtomicU64,
    evictions: AtomicU64,
}

impl CellCache {
    /// Opens (creating if needed) the cache directory at `dir`, with the
    /// default byte cap.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, SweepError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| SweepError::Io {
            path: dir.clone(),
            op: "create directory",
            source,
        })?;
        Ok(CellCache {
            dir,
            max_bytes: DEFAULT_MAX_BYTES,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            store_errors: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// The same cache with the byte-size cap replaced. A store that
    /// pushes the directory past the cap evicts least-recently-used
    /// entries until it fits again.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The byte-size cap.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// This handle's counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            store_errors: self.store_errors.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// The entry file a key addresses: `DIR/<key as 16 hex digits>.json`.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// The runner-facing lookup: the stored result for `key`, or `None`
    /// on a miss. Corrupt entries (torn writes, foreign schemas,
    /// hand-edits) are **evicted and reported as a miss** — the caller
    /// recomputes; a poisoned value is never served. Hits touch the
    /// entry's mtime (the LRU clock) and are counted in [`stats`]
    /// (CellCache::stats).
    pub fn lookup(&self, key: u64) -> Option<PipelineResult> {
        match self.load(key) {
            Ok(Some(result)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // Best-effort LRU touch; a read-only store still serves.
                if let Ok(f) = fs::File::options().append(true).open(self.entry_path(key)) {
                    let _ = f.set_modified(SystemTime::now());
                }
                Some(result)
            }
            Ok(None) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(_) => {
                if fs::remove_file(self.entry_path(key)).is_ok() {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The stored result for `key` with typed failure modes: `Ok(None)`
    /// for a clean miss, [`SweepError::SchemaMismatch`] for an entry
    /// written under a different schema, [`SweepError::Parse`] for a
    /// torn or hand-edited entry (including a key field that disagrees
    /// with the file's address). Diagnostic surface; sweeps go through
    /// [`CellCache::lookup`], which maps every `Err` to evict-and-miss.
    pub fn load(&self, key: u64) -> Result<Option<PipelineResult>, SweepError> {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(source) => {
                return Err(SweepError::Io {
                    path,
                    op: "read",
                    source,
                })
            }
        };
        parse_entry(&text, key).map(Some).map_err(|e| match e {
            SweepError::Parse { detail, .. } => SweepError::Parse {
                what: format!("cache entry {}", path.display()),
                detail,
            },
            other => other,
        })
    }

    /// Persists `result` under `key`: the entry is written to a `.tmp`
    /// sibling and atomically renamed into place, then the byte cap is
    /// enforced (LRU eviction, never of this entry). Best-effort: an I/O
    /// failure is counted ([`CacheStats::store_errors`]) and swallowed —
    /// a cache that cannot write must not fail the sweep that could.
    /// Callers only store healthy cells; quarantined cells are
    /// recomputed every run by design.
    pub fn store(&self, key: u64, result: &PipelineResult) {
        let path = self.entry_path(key);
        let tmp = self.dir.join(format!("{key:016x}.json.tmp"));
        let write = fs::write(&tmp, entry_json(key, result)).and_then(|()| fs::rename(&tmp, &path));
        match write {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                self.enforce_cap(&path);
            }
            Err(_) => {
                self.store_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Count of entries currently in the directory.
    pub fn len(&self) -> usize {
        self.scan().len()
    }

    /// `true` when the directory holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of all entries currently in the directory.
    pub fn total_bytes(&self) -> u64 {
        self.scan().iter().map(|e| e.bytes).sum()
    }

    /// Entry files with size and mtime, oldest first (mtime, then name,
    /// so eviction order is deterministic under coarse clocks).
    fn scan(&self) -> Vec<Entry> {
        let mut entries = Vec::new();
        let Ok(dir) = fs::read_dir(&self.dir) else {
            return entries;
        };
        for item in dir.flatten() {
            let path = item.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Ok(meta) = item.metadata() else { continue };
            entries.push(Entry {
                modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                bytes: meta.len(),
                path,
            });
        }
        entries.sort_by(|a, b| (a.modified, &a.path).cmp(&(b.modified, &b.path)));
        entries
    }

    /// Evicts least-recently-used entries until the directory fits the
    /// byte cap again, never evicting `keep` (the entry just written — a
    /// cap smaller than one hot entry must not thrash it).
    fn enforce_cap(&self, keep: &Path) {
        let entries = self.scan();
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        if total <= self.max_bytes {
            return;
        }
        for entry in &entries {
            if total <= self.max_bytes {
                break;
            }
            if entry.path == keep {
                continue;
            }
            if fs::remove_file(&entry.path).is_ok() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                total -= entry.bytes;
            }
        }
    }
}

struct Entry {
    modified: SystemTime,
    bytes: u64,
    path: PathBuf,
}

fn entry_json(key: u64, result: &PipelineResult) -> String {
    let times: Vec<String> = result.mi.times.iter().map(|t| t.to_string()).collect();
    let mi: Vec<String> = result
        .mi
        .values
        .iter()
        .map(|&v| wire::float_exact(v))
        .collect();
    let cost: Vec<String> = result
        .mean_icp_cost
        .iter()
        .map(|&v| wire::float_exact(v))
        .collect();
    format!(
        "{{\"schema\": {}, \"key\": \"{key:016x}\", \"times\": [{}], \
         \"mi_bits\": [{}], \"mean_icp_cost\": [{}], \
         \"equilibrated_fraction\": {}}}\n",
        wire::string(SCHEMA),
        times.join(", "),
        mi.join(", "),
        cost.join(", "),
        wire::float_exact(result.equilibrated_fraction)
    )
}

fn parse_entry(text: &str, key: u64) -> Result<PipelineResult, SweepError> {
    let parse_err = |detail: String| SweepError::Parse {
        what: "cache entry".into(),
        detail,
    };
    let root = wire::parse(text).map_err(parse_err)?;
    let obj = root
        .as_object()
        .ok_or_else(|| parse_err("top level is not an object".into()))?;
    let schema = wire::get(obj, "schema")
        .map_err(parse_err)?
        .as_str()
        .ok_or_else(|| parse_err("'schema' is not a string".into()))?;
    if schema != SCHEMA {
        return Err(SweepError::SchemaMismatch {
            expected: SCHEMA.into(),
            found: schema.into(),
        });
    }
    let stored_key = wire::get(obj, "key")
        .map_err(parse_err)?
        .as_str()
        .ok_or_else(|| parse_err("'key' is not a string".into()))?;
    if u64::from_str_radix(stored_key, 16) != Ok(key) {
        return Err(parse_err(format!(
            "entry key '{stored_key}' does not match its address '{key:016x}'"
        )));
    }
    let times: Vec<usize> = wire::get(obj, "times")
        .map_err(parse_err)?
        .as_array()
        .ok_or_else(|| parse_err("'times' is not an array".into()))?
        .iter()
        .map(|x| {
            x.as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| parse_err("'times' entry is not an integer".into()))
        })
        .collect::<Result<_, _>>()?;
    let f64_array = |name: &str| -> Result<Vec<f64>, SweepError> {
        wire::get(obj, name)
            .map_err(parse_err)?
            .as_array()
            .ok_or_else(|| parse_err(format!("'{name}' is not an array")))?
            .iter()
            .map(|x| {
                x.as_f64()
                    .ok_or_else(|| parse_err(format!("'{name}' entry is not a number")))
            })
            .collect()
    };
    let values = f64_array("mi_bits")?;
    let mean_icp_cost = f64_array("mean_icp_cost")?;
    if values.len() != times.len() || mean_icp_cost.len() != times.len() {
        return Err(parse_err(format!(
            "series lengths disagree: {} times, {} mi_bits, {} mean_icp_cost",
            times.len(),
            values.len(),
            mean_icp_cost.len()
        )));
    }
    let equilibrated_fraction = wire::get(obj, "equilibrated_fraction")
        .map_err(parse_err)?
        .as_f64()
        .ok_or_else(|| parse_err("'equilibrated_fraction' is not a number".into()))?;
    Ok(PipelineResult {
        mi: MiSeries { times, values },
        mean_icp_cost,
        equilibrated_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cache(name: &str) -> CellCache {
        let dir = std::env::temp_dir().join(format!("sops_cell_cache_{name}"));
        let _ = fs::remove_dir_all(&dir);
        CellCache::open(dir).unwrap()
    }

    fn sample_result(tag: f64) -> PipelineResult {
        PipelineResult {
            mi: MiSeries {
                times: vec![0, 4, 8],
                values: vec![tag, f64::NAN, std::f64::consts::PI],
            },
            mean_icp_cost: vec![1.5e-300, f64::INFINITY, -0.0],
            equilibrated_fraction: 0.75,
        }
    }

    fn assert_bits_eq(a: &PipelineResult, b: &PipelineResult) {
        assert_eq!(a.mi.times, b.mi.times);
        for (x, y) in a.mi.values.iter().zip(&b.mi.values) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.mean_icp_cost.iter().zip(&b.mean_icp_cost) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(
            a.equilibrated_fraction.to_bits(),
            b.equilibrated_fraction.to_bits()
        );
    }

    #[test]
    fn store_lookup_round_trip_is_bit_exact() {
        let cache = tmp_cache("round_trip");
        let result = sample_result(0.25);
        assert!(cache.lookup(7).is_none());
        cache.store(7, &result);
        assert!(!cache.entry_path(7).with_extension("json.tmp").exists());
        let back = cache.lookup(7).expect("stored entry is served");
        assert_bits_eq(&result, &back);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corruption_is_typed_and_never_a_poisoned_hit() {
        let cache = tmp_cache("corruption");
        let result = sample_result(0.5);
        cache.store(3, &result);
        let path = cache.entry_path(3);
        let text = fs::read_to_string(&path).unwrap();

        // Torn write: the entry cut mid-token.
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(cache.load(3), Err(SweepError::Parse { .. })));
        // The runner-facing path evicts and recomputes — never serves it.
        assert!(cache.lookup(3).is_none());
        assert!(!path.exists(), "corrupt entry is evicted");
        assert_eq!(cache.stats().evictions, 1);

        // Foreign schema tag.
        cache.store(3, &result);
        fs::write(&path, text.replace(SCHEMA, "sops-cell-cache/v999")).unwrap();
        assert!(matches!(
            cache.load(3),
            Err(SweepError::SchemaMismatch { .. })
        ));
        assert!(cache.lookup(3).is_none());

        // An entry renamed onto the wrong address.
        cache.store(3, &result);
        fs::rename(&path, cache.entry_path(4)).unwrap();
        assert!(matches!(cache.load(4), Err(SweepError::Parse { .. })));
        assert!(cache.lookup(4).is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn byte_cap_evicts_least_recently_used_first() {
        let cache = tmp_cache("eviction");
        let result = sample_result(1.0);
        cache.store(1, &result);
        let entry_bytes = fs::metadata(cache.entry_path(1)).unwrap().len();
        // Room for two entries, not three.
        let cache = CellCache::open(cache.dir())
            .unwrap()
            .with_max_bytes(entry_bytes * 2);
        cache.store(2, &result);
        // Pin deterministic mtimes (filesystem clocks can be coarse).
        let t0 = SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_000);
        let t1 = t0 + std::time::Duration::from_secs(10);
        for (key, t) in [(1u64, t0), (2, t1)] {
            fs::File::options()
                .append(true)
                .open(cache.entry_path(key))
                .unwrap()
                .set_modified(t)
                .unwrap();
        }
        cache.store(3, &result);
        assert!(!cache.entry_path(1).exists(), "oldest entry evicted");
        assert!(cache.entry_path(2).exists());
        assert!(cache.entry_path(3).exists(), "just-written entry kept");
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);

        // A hit refreshes the LRU clock: touch 2, store 4, then 3 (now
        // oldest) goes first.
        fs::File::options()
            .append(true)
            .open(cache.entry_path(3))
            .unwrap()
            .set_modified(t0)
            .unwrap();
        assert!(cache.lookup(2).is_some());
        cache.store(4, &result);
        assert!(!cache.entry_path(3).exists());
        assert!(cache.entry_path(2).exists());
        assert!(cache.entry_path(4).exists());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cap_never_evicts_the_entry_just_written() {
        let cache = tmp_cache("keep_newest").with_max_bytes(1);
        cache.store(9, &sample_result(2.0));
        assert!(cache.entry_path(9).exists());
        assert_eq!(cache.len(), 1);
        let _ = fs::remove_dir_all(cache.dir());
    }
}
