//! Shared machinery of the workspace's hand-rolled wire formats.
//!
//! The repo emits JSON by hand everywhere (serde without a format crate
//! buys nothing offline — see the vendored criterion shim) and reads it
//! back with the minimal recursive-descent parser below: exactly the
//! JSON subset the writers produce plus standard escapes. Both persisted
//! schemas — the ΔI regression baseline ([`crate::baseline`],
//! `sops-sweep-baseline/v1`) and the sweep checkpoint
//! ([`crate::checkpoint`], `sops-sweep-checkpoint/v1`) — share this
//! module, so their float/string encodings cannot drift apart:
//!
//! * [`float_exact`] writes 17 significant digits (round-trips any f64
//!   bit-exactly) and encodes non-finite values as the tagged strings
//!   `"nan"` / `"inf"` / `"-inf"`, which [`Value::as_f64`] maps back —
//!   reference values must distinguish NaN from ±∞, which JSON `null`
//!   cannot;
//! * [`string`] applies standard JSON escaping;
//! * [`fnv1a64`] is the stable fingerprint hash of the checkpoint layer
//!   (dependency-free, byte-order independent, never `std::hash` — whose
//!   output is explicitly unstable across releases).

use std::fmt::Write as _;

/// Encodes an f64 for a *reference-value* schema: 17 significant digits
/// (exact round-trip), non-finite values as tagged strings.
pub fn float_exact(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.17e}")
    } else {
        match (v.is_nan(), v > 0.0) {
            (true, _) => "\"nan\"".into(),
            (false, true) => "\"inf\"".into(),
            (false, false) => "\"-inf\"".into(),
        }
    }
}

/// Encodes a JSON string literal with standard escapes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Looks up `key` in a parsed object entry list.
pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key '{key}'"))
}

/// 64-bit FNV-1a over a byte string — the stable, dependency-free hash
/// behind plan fingerprints. (Never `DefaultHasher`: its output is
/// documented as unstable across Rust releases, and a fingerprint that
/// changes with the toolchain would reject every old checkpoint.)
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as an ordered key/value list (duplicate keys kept;
    /// lookups take the first).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value as an f64: numbers directly; `null` and the tagged
    /// strings `"nan"` / `"inf"` / `"-inf"` as their non-finite
    /// counterparts.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            Value::Null => Some(f64::NAN),
            Value::Str(s) => match s.as_str() {
                "nan" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object entry list.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else
/// after the value).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "non-ASCII \\u escape")?,
                                16,
                            )
                            .map_err(|_| "invalid \\u escape")?;
                            // Surrogates are not emitted by our writers;
                            // reject rather than mangle.
                            out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let v = parse(r#"{"kA": ["\"x\"", -1.5e3, true, null]}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "kA");
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr[0].as_str(), Some("\"x\""));
        assert_eq!(arr[1].as_f64(), Some(-1500.0));
        assert_eq!(arr[2], Value::Bool(true));
        assert!(arr[3].as_f64().unwrap().is_nan());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
    }

    #[test]
    fn float_exact_round_trips_every_class() {
        for v in [
            0.0,
            -0.0,
            1.5,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,
            -1.234_567_890_123_456_7e300,
        ] {
            let text = float_exact(v);
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
        assert!(parse(&float_exact(f64::NAN))
            .unwrap()
            .as_f64()
            .unwrap()
            .is_nan());
        assert_eq!(
            parse(&float_exact(f64::INFINITY)).unwrap().as_f64(),
            Some(f64::INFINITY)
        );
        assert_eq!(
            parse(&float_exact(f64::NEG_INFINITY)).unwrap().as_f64(),
            Some(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn fnv1a64_is_stable_and_sensitive() {
        // Reference vectors of the FNV-1a spec — pinned so the
        // fingerprint can never silently change across PRs.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"plan-a"), fnv1a64(b"plan-b"));
    }
}
