//! Plain-text reporting: CSV writing, ASCII line charts and scatter
//! plots, plus the sweep-report CSV/JSON writers.
//!
//! The reproduction harness renders every figure both as a CSV (for
//! external plotting) and as a terminal chart, so `cargo run -p
//! sops-repro` is self-contained. Deliberately dependency-free (serde
//! alone, without a format crate, buys nothing offline — see DESIGN.md);
//! the JSON writer emits by hand, like the vendored criterion shim.

use crate::scenario::SweepReport;
use crate::summary::SweepSummary;
use sops_math::Vec2;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Writes a CSV file with the given header and float rows.
///
/// Creates parent directories as needed. Numbers are written with enough
/// precision to round-trip (`{:.12e}` would be unreadable; `{:.9}` is
/// plenty for plotting); non-finite values use the same
/// `nan`/`inf`/`-inf` spelling as every other CSV writer in this module.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<f64>]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    writeln!(out, "{}", header.join(","))?;
    for row in rows {
        let mut line = String::with_capacity(row.len() * 16);
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&csv_float(*v));
        }
        writeln!(out, "{line}")?;
    }
    out.flush()
}

/// Writes a sweep report as the flat scenario × measure × time CSV
/// table: `scenario,measure,seed,time,mi_bits,mean_icp_cost`, one row
/// per evaluated step of every healthy grid cell (quarantined cells have
/// no series and are skipped — the JSON writer records their status).
/// Non-finite estimates are written as `nan`/`inf`/`-inf`.
pub fn write_sweep_csv(path: &Path, report: &SweepReport) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    writeln!(out, "scenario,measure,seed,time,mi_bits,mean_icp_cost")?;
    for row in report.rows() {
        writeln!(
            out,
            "{},{},{},{},{},{}",
            csv_string(row.scenario),
            csv_string(row.measure),
            row.seed,
            row.time,
            csv_float(row.mi),
            csv_float(row.mean_icp_cost)
        )?;
    }
    out.flush()
}

/// RFC-4180 quoting for user-supplied names: a field containing a comma,
/// quote or line break is wrapped in quotes with inner quotes doubled.
fn csv_string(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn csv_float(v: f64) -> String {
    if v.is_nan() {
        "nan".into()
    } else if v.is_infinite() {
        if v > 0.0 { "inf" } else { "-inf" }.into()
    } else {
        format!("{v:.9}")
    }
}

/// JSON has no NaN/∞ literals; non-finite estimates become `null`.
fn json_float(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".into()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The sweep-report JSON body: one object per grid cell carrying the
/// scenario/measure/seed coordinates, the cell status (`"ok"`, or
/// `"failed"` with the quarantine reason), the summary `delta_mi`
/// (`I(t_last) − I(t_0)`) and the full per-time-step series.
///
/// `include_provenance` appends each cell's `"provenance"` label and a
/// `"cached"` boolean (`true` for any reused cell — cache hit, coalesced
/// wait or checkpoint restore). The canonical `sweep.json`
/// ([`write_sweep_json`]) always omits them: provenance is run metadata,
/// and the byte-identity contract (a cached, coalesced or resumed run
/// writes the same `sweep.json` as a cold one) holds over the canonical
/// form. `sops-serve` returns the provenance-carrying form.
pub fn sweep_json(report: &SweepReport, include_provenance: bool) -> String {
    let mut body = String::from("{\n  \"cells\": [\n");
    for (i, cell) in report.cells.iter().enumerate() {
        let r = &cell.result;
        let status = match &cell.status {
            crate::scenario::CellStatus::Ok => "\"status\": \"ok\"".to_string(),
            crate::scenario::CellStatus::Failed { reason } => {
                format!(
                    "\"status\": \"failed\", \"reason\": {}",
                    json_string(reason)
                )
            }
        };
        let provenance = if include_provenance {
            format!(
                ", \"provenance\": \"{}\", \"cached\": {}",
                cell.provenance.label(),
                cell.provenance.is_reused()
            )
        } else {
            String::new()
        };
        let _ = writeln!(
            body,
            "    {{\"scenario\": {}, \"measure\": {}, \"seed\": {}, {status}, \
             \"delta_mi\": {}, \
             \"equilibrated_fraction\": {}, \"times\": [{}], \"mi_bits\": [{}], \
             \"mean_icp_cost\": [{}]{provenance}}}{}",
            json_string(&cell.scenario),
            json_string(cell.measure.label()),
            cell.seed,
            json_float(r.mi.increase()),
            json_float(r.equilibrated_fraction),
            r.mi.times
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            r.mi.values
                .iter()
                .map(|&v| json_float(v))
                .collect::<Vec<_>>()
                .join(", "),
            r.mean_icp_cost
                .iter()
                .map(|&v| json_float(v))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 < report.cells.len() { "," } else { "" }
        );
    }
    body.push_str("  ]\n}\n");
    body
}

/// Writes the canonical sweep-report JSON (the provenance-free
/// [`sweep_json`] form — see there for the byte-identity contract).
pub fn write_sweep_json(path: &Path, report: &SweepReport) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, sweep_json(report, false))
}

/// Writes a seed-axis summary as CSV: one row per (scenario, measure)
/// group —
/// `scenario,measure,n,mean_delta_mi,std_delta_mi,std_error,ci_lo,ci_hi,boot_lo,boot_hi,p_vs_null,significant`.
/// `significant` is `true`/`false` at the summary's α, empty when no
/// null comparison exists.
pub fn write_summary_csv(path: &Path, summary: &SweepSummary) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    writeln!(
        out,
        "scenario,measure,n,mean_delta_mi,std_delta_mi,std_error,ci_lo,ci_hi,boot_lo,boot_hi,\
         p_vs_null,significant"
    )?;
    for g in &summary.groups {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            csv_string(&g.scenario),
            csv_string(&g.measure),
            g.n(),
            csv_float(g.mean),
            csv_float(g.std),
            csv_float(g.se),
            csv_float(g.ci.lo),
            csv_float(g.ci.hi),
            csv_float(g.boot.lo),
            csv_float(g.boot.hi),
            g.p_vs_null.map(csv_float).unwrap_or_default(),
            g.significant(summary.alpha)
                .map(|s| s.to_string())
                .unwrap_or_default()
        )?;
    }
    out.flush()
}

/// Writes a seed-axis summary as JSON: the confidence/α/null-scenario
/// header plus one object per (scenario, measure) group carrying the
/// per-seed ΔI sample and every aggregate of
/// [`crate::summary::SummaryGroup`].
pub fn write_summary_json(path: &Path, summary: &SweepSummary) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut body = String::from("{\n");
    let _ = writeln!(
        body,
        "  \"confidence\": {},",
        json_float(summary.confidence)
    );
    let _ = writeln!(body, "  \"alpha\": {},", json_float(summary.alpha));
    let _ = writeln!(
        body,
        "  \"null_scenario\": {},",
        json_string(&summary.null_scenario)
    );
    body.push_str("  \"groups\": [\n");
    for (i, g) in summary.groups.iter().enumerate() {
        let _ = writeln!(
            body,
            "    {{\"scenario\": {}, \"measure\": {}, \"n\": {}, \"seeds\": [{}], \
             \"delta_mi\": [{}], \"mean\": {}, \"std\": {}, \"se\": {}, \
             \"ci_lo\": {}, \"ci_hi\": {}, \"boot_lo\": {}, \"boot_hi\": {}, \
             \"p_vs_null\": {}, \"significant\": {}}}{}",
            json_string(&g.scenario),
            json_string(&g.measure),
            g.n(),
            g.seeds
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            g.delta_mis
                .iter()
                .map(|&v| json_float(v))
                .collect::<Vec<_>>()
                .join(", "),
            json_float(g.mean),
            json_float(g.std),
            json_float(g.se),
            json_float(g.ci.lo),
            json_float(g.ci.hi),
            json_float(g.boot.lo),
            json_float(g.boot.hi),
            g.p_vs_null.map(json_float).unwrap_or_else(|| "null".into()),
            g.significant(summary.alpha)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "null".into()),
            if i + 1 < summary.groups.len() {
                ","
            } else {
                ""
            }
        );
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body)
}

/// A named data series for [`line_chart`].
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points, assumed sorted by x.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series from parallel x/y slices.
    pub fn from_xy(label: impl Into<String>, xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "Series: x/y length mismatch");
        Series {
            label: label.into(),
            points: xs.iter().copied().zip(ys.iter().copied()).collect(),
        }
    }
}

const GLYPHS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&', '$', '~'];

/// Renders an ASCII line chart of the series onto a `width × height`
/// character canvas with axis annotations.
pub fn line_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let finite = |v: f64| v.is_finite();
    let mut x_min = f64::INFINITY;
    let mut x_max = f64::NEG_INFINITY;
    let mut y_min = f64::INFINITY;
    let mut y_max = f64::NEG_INFINITY;
    for s in series {
        for &(x, y) in &s.points {
            if finite(x) && finite(y) {
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
    }
    if !x_min.is_finite() {
        return format!("{title}\n  (no finite data)\n");
    }
    if (x_max - x_min).abs() < 1e-300 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-300 {
        y_max = y_min + 1.0;
    }
    let mut canvas = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            if !finite(x) || !finite(y) {
                continue;
            }
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            canvas[height - 1 - cy][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{y_max:>10.3} ┤{}", String::from_iter(&canvas[0]));
    for row in canvas.iter().take(height - 1).skip(1) {
        let _ = writeln!(out, "{:>10} │{}", "", String::from_iter(row));
    }
    let _ = writeln!(
        out,
        "{y_min:>10.3} ┤{}",
        String::from_iter(&canvas[height - 1])
    );
    let _ = writeln!(out, "{:>10} └{}", "", "─".repeat(width));
    // Axis labels: x_min at the origin, x_max right-aligned to the axis
    // end, always separated by at least one space — a fixed-width field
    // pair would jam them together (or misalign x_max) whenever a label
    // outgrows its field.
    let lo_label = format!("{x_min:.2}");
    let hi_label = format!("{x_max:.2}");
    let gap = width.saturating_sub(lo_label.len() + hi_label.len()).max(1);
    let _ = writeln!(out, "{:>11}{lo_label}{:gap$}{hi_label}", "", "");
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "    {} {}", GLYPHS[si % GLYPHS.len()], s.label);
    }
    out
}

/// Renders a typed particle configuration as an ASCII scatter plot; each
/// particle is drawn as its type digit (types ≥ 10 wrap). Non-finite
/// positions are skipped — like [`line_chart`] — rather than cast to a
/// spurious glyph at the bottom-left corner (`NaN as usize` is `0`).
pub fn scatter_plot(
    title: &str,
    points: &[Vec2],
    types: &[u16],
    width: usize,
    height: usize,
) -> String {
    assert_eq!(points.len(), types.len());
    let width = width.max(8);
    let height = height.max(4);
    let mut lo = Vec2::new(f64::INFINITY, f64::INFINITY);
    let mut hi = Vec2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in points {
        if p.is_finite() {
            lo = lo.min(*p);
            hi = hi.max(*p);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return format!("{title}\n  (no data)\n");
    }
    let span_x = (hi.x - lo.x).max(1e-9);
    let span_y = (hi.y - lo.y).max(1e-9);
    let mut canvas = vec![vec![' '; width]; height];
    for (p, &t) in points.iter().zip(types) {
        if !p.is_finite() {
            continue;
        }
        let cx = ((p.x - lo.x) / span_x * (width - 1) as f64).round() as usize;
        let cy = ((p.y - lo.y) / span_y * (height - 1) as f64).round() as usize;
        canvas[height - 1 - cy][cx.min(width - 1)] = char::from_digit((t % 10) as u32, 10).unwrap();
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for row in &canvas {
        let _ = writeln!(out, "  {}", String::from_iter(row));
    }
    out
}

/// Formats a simple aligned two-column table (label, value).
pub fn kv_table(rows: &[(String, String)]) -> String {
    let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (k, v) in rows {
        let _ = writeln!(out, "  {k:<w$}  {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("sops_report_test");
        let path = dir.join("series.csv");
        write_csv(&path, &["t", "mi"], &[vec![0.0, 1.5], vec![10.0, f64::NAN]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("t,mi"));
        assert!(lines.next().unwrap().starts_with("0.000000000,1.5"));
        assert!(lines.next().unwrap().ends_with("nan"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_writers_round_trip() {
        use crate::pipeline::{MiSeries, PipelineResult};
        use crate::scenario::{CellStatus, SweepCell, SweepReport};
        use sops_info::MeasureConfig;
        let cell = |measure: MeasureConfig, values: Vec<f64>| SweepCell {
            scenario: "a".into(),
            measure,
            measure_label: measure.label().into(),
            seed: 1,
            status: CellStatus::Ok,
            provenance: crate::scenario::CellProvenance::Computed,
            result: PipelineResult {
                mi: MiSeries {
                    times: vec![0, 10],
                    values,
                },
                mean_icp_cost: vec![0.5, 0.25],
                equilibrated_fraction: 1.0,
            },
        };
        let report = SweepReport {
            cells: vec![
                cell(MeasureConfig::default(), vec![0.0, 2.0]),
                cell(MeasureConfig::Gaussian, vec![f64::NAN, 1.0]),
            ],
        };
        let dir = std::env::temp_dir().join("sops_sweep_report_test");
        let csv_path = dir.join("sweep.csv");
        let json_path = dir.join("sweep.json");
        write_sweep_csv(&csv_path, &report).unwrap();
        write_sweep_json(&json_path, &report).unwrap();
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("scenario,measure,seed,time,mi_bits,mean_icp_cost"));
        assert_eq!(csv.lines().count(), 1 + 4, "one row per cell per step");
        assert!(csv.contains("a,ksg,1,10,2.000000000,0.250000000"), "{csv}");
        assert!(csv.contains("a,gaussian,1,0,nan,"), "{csv}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"scenario\": \"a\""), "{json}");
        assert!(json.contains("\"measure\": \"gaussian\""), "{json}");
        assert!(json.contains("\"status\": \"ok\""), "{json}");
        assert!(
            json.contains("\"mi_bits\": [null, 1.000000000]"),
            "NaN must serialize as null: {json}"
        );

        // A quarantined cell is written with its status and reason, and
        // excluded from the CSV (which has no row to give it).
        let mut quarantined = report.clone();
        quarantined.cells[1].status = CellStatus::Failed {
            reason: "panicked on all 2 attempt(s): boom".into(),
        };
        quarantined.cells[1].result = PipelineResult::empty();
        write_sweep_csv(&csv_path, &quarantined).unwrap();
        write_sweep_json(&json_path, &quarantined).unwrap();
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert_eq!(csv.lines().count(), 1 + 2, "failed cell has no CSV rows");
        assert!(!csv.contains("gaussian"), "{csv}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"status\": \"failed\""), "{json}");
        assert!(json.contains("\"reason\": \"panicked"), "{json}");

        // A registered scenario name is arbitrary: commas and quotes must
        // not corrupt the CSV structure.
        let mut tricky = report.clone();
        tricky.cells[0].scenario = "sorting, \"v2\"".into();
        write_sweep_csv(&csv_path, &tricky).unwrap();
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        let row = csv.lines().nth(1).unwrap();
        assert!(
            row.starts_with("\"sorting, \"\"v2\"\"\",ksg,1,0,"),
            "name must be RFC-4180 quoted: {row}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn line_chart_renders_monotone_series() {
        let s = Series::from_xy("mi", &[0.0, 1.0, 2.0, 3.0], &[0.0, 1.0, 2.0, 3.0]);
        let chart = line_chart("test", &[s], 40, 10);
        assert!(chart.contains("test"));
        assert!(chart.contains('*'));
        // Rising series: glyph in the top row (after the title line).
        let top_row = chart.lines().nth(1).unwrap();
        assert!(top_row.contains('*'), "top row: {top_row}");
    }

    #[test]
    fn line_chart_handles_empty_and_constant() {
        let empty = line_chart("e", &[Series::from_xy("x", &[], &[])], 30, 8);
        assert!(empty.contains("no finite data"));
        let flat = Series::from_xy("f", &[0.0, 1.0], &[2.0, 2.0]);
        let chart = line_chart("flat", &[flat], 30, 8);
        assert!(chart.contains('*'));
    }

    #[test]
    fn scatter_draws_type_digits() {
        let pts = [Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0)];
        let types = [0u16, 3];
        let plot = scatter_plot("cfg", &pts, &types, 20, 8);
        assert!(plot.contains('0'));
        assert!(plot.contains('3'));
    }

    #[test]
    fn scatter_skips_non_finite_points() {
        // Regression: a NaN point used to cast to canvas cell (0, 0) and
        // draw a spurious glyph at the bottom-left corner.
        let pts = [
            Vec2::new(1.0, 1.0),
            Vec2::new(f64::NAN, 0.5),
            Vec2::new(0.5, f64::INFINITY),
        ];
        let types = [7u16, 8, 9];
        let plot = scatter_plot("cfg", &pts, &types, 20, 8);
        assert!(plot.contains('7'), "{plot}");
        assert!(!plot.contains('8'), "NaN point must be skipped: {plot}");
        assert!(
            !plot.contains('9'),
            "infinite point must be skipped: {plot}"
        );
        // All-non-finite degenerates to the no-data banner, and bounds
        // ignore non-finite coordinates entirely.
        let bad = [Vec2::new(f64::NAN, 0.0), Vec2::new(f64::INFINITY, 1.0)];
        assert!(scatter_plot("cfg", &bad, &[1, 2], 20, 8).contains("no data"));
        assert!(scatter_plot("cfg", &[], &[], 20, 8).contains("no data"));
    }

    #[test]
    fn line_chart_axis_labels_never_collide() {
        // Regression: the old fixed-width label pair jammed x_max against
        // (or into) the x_min field once a label outgrew its slot on a
        // narrow canvas.
        let s = Series::from_xy("s", &[-1_234_567_890.12, 9_876_543_210.99], &[0.0, 1.0]);
        let chart = line_chart("narrow", &[s], 8, 4); // clamped to 16 wide
        let axis_line = chart
            .lines()
            .find(|l| l.contains("-1234567890.12"))
            .expect("x_min label printed in full");
        assert!(
            axis_line.contains("-1234567890.12 ") || axis_line.contains(".12 "),
            "labels must be space-separated: {axis_line}"
        );
        assert!(
            axis_line.contains("9876543210.99"),
            "x_max label printed in full: {axis_line}"
        );
        let lo_end = axis_line.find("-1234567890.12").unwrap() + "-1234567890.12".len();
        let hi_start = axis_line.find("9876543210.99").unwrap();
        assert!(
            hi_start > lo_end && axis_line[lo_end..hi_start].chars().all(|c| c == ' '),
            "at least one space between the axis labels: {axis_line}"
        );
    }

    #[test]
    fn write_csv_spells_non_finite_like_the_sweep_writer() {
        let dir = std::env::temp_dir().join("sops_report_inf_test");
        let path = dir.join("inf.csv");
        write_csv(
            &path,
            &["a", "b", "c"],
            &[vec![f64::INFINITY, f64::NEG_INFINITY, f64::NAN]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().nth(1), Some("inf,-inf,nan"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summary_writers_round_trip() {
        use crate::pipeline::{MiSeries, PipelineResult};
        use crate::scenario::{CellStatus, SweepCell, SweepReport};
        use crate::summary::SweepSummary;
        use sops_info::MeasureConfig;
        let mk = |scenario: &str, seed: u64, delta: f64| SweepCell {
            scenario: scenario.into(),
            measure: MeasureConfig::default(),
            measure_label: "ksg".into(),
            seed,
            status: CellStatus::Ok,
            provenance: crate::scenario::CellProvenance::Computed,
            result: PipelineResult {
                mi: MiSeries {
                    times: vec![0, 10],
                    values: vec![0.0, delta],
                },
                mean_icp_cost: vec![0.0, 0.0],
                equilibrated_fraction: 1.0,
            },
        };
        let report = SweepReport {
            cells: vec![
                mk("rise", 1, 2.0),
                mk("rise", 2, 2.2),
                mk("rise", 3, 1.8),
                mk("rise", 4, 2.1),
                mk("rise", 5, 1.9),
                mk("rise", 6, 2.05),
                mk("mixing_null", 1, 0.02),
                mk("mixing_null", 2, -0.01),
                mk("mixing_null", 3, 0.01),
                mk("mixing_null", 4, -0.02),
                mk("mixing_null", 5, 0.005),
                mk("mixing_null", 6, 0.015),
            ],
        };
        let summary = SweepSummary::from_report(&report);
        let dir = std::env::temp_dir().join("sops_summary_writers_test");
        let csv_path = dir.join("sweep_summary.csv");
        let json_path = dir.join("sweep_summary.json");
        write_summary_csv(&csv_path, &summary).unwrap();
        write_summary_json(&json_path, &summary).unwrap();
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("scenario,measure,n,mean_delta_mi"), "{csv}");
        assert_eq!(csv.lines().count(), 1 + 2, "one row per group");
        let rise_row = csv.lines().find(|l| l.starts_with("rise,")).unwrap();
        assert!(rise_row.contains(",6,"), "n column: {rise_row}");
        assert!(rise_row.ends_with(",true"), "verdict column: {rise_row}");
        let null_row = csv.lines().find(|l| l.starts_with("mixing_null,")).unwrap();
        assert!(null_row.ends_with(",false"), "{null_row}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(
            json.contains("\"null_scenario\": \"mixing_null\""),
            "{json}"
        );
        assert!(json.contains("\"seeds\": [1, 2, 3, 4, 5, 6]"), "{json}");
        assert!(json.contains("\"significant\": true"), "{json}");
        assert!(json.contains("\"significant\": false"), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kv_table_aligns() {
        let t = kv_table(&[
            ("short".into(), "1".into()),
            ("much longer key".into(), "2".into()),
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2);
        let c1 = lines[0].rfind('1').unwrap();
        let c2 = lines[1].rfind('2').unwrap();
        assert_eq!(c1, c2, "values aligned");
    }
}
