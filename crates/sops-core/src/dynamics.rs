//! Particle-level information dynamics (paper §7.3, future work).
//!
//! The paper proposes measuring information *transfer* between individual
//! particles over time. This module implements that proposal on top of
//! the workspace's ensembles: for a pair of particles `(a, b)`, the
//! transfer entropy
//!
//! ```text
//! T_{b→a}(t) = I( Z_a(t+lag) ; Z_b(t) | Z_a(t) )
//! ```
//!
//! estimated *across ensemble runs* with the Frenzel–Pompe conditional-MI
//! estimator. Per §5.2, this uses the raw trajectories — particle
//! identity over time is only meaningful before permutation reduction.
//!
//! To remove the shared translation/rotation drift (which would register
//! as spurious transfer), positions are expressed relative to each run's
//! instantaneous centroid.

use sops_info::conditional::{CmiConfig, CmiWorkspace};
use sops_math::Vec2;
use sops_sim::ensemble::Ensemble;

/// Configuration for ensemble transfer-entropy estimates.
#[derive(Debug, Clone, Copy)]
pub struct TransferConfig {
    /// Time lag between past and successor state (recorded steps).
    pub lag: usize,
    /// Neighbour order of the underlying CMI estimator.
    pub k: usize,
    /// Worker threads (0 = default).
    pub threads: usize,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            lag: 1,
            k: 4,
            threads: 0,
        }
    }
}

/// Extracts particle `i`'s centred position at time `t` across all runs
/// as a `samples × 2` row-major matrix.
fn centred_positions(ensemble: &Ensemble, i: usize, t: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(ensemble.samples() * 2);
    for run in &ensemble.runs {
        let frame = &run.frames[t];
        let c = Vec2::centroid(frame);
        let p = frame[i] - c;
        out.push(p.x);
        out.push(p.y);
    }
    out
}

/// Transfer entropy `T_{b→a}` (bits) at time `t` across the ensemble.
///
/// Convenience shim over [`particle_transfer_entropy_with`]; repeated
/// callers (lag sweeps, [`transfer_matrix`]) should hold a
/// [`CmiWorkspace`].
///
/// # Panics
///
/// Panics if `t + cfg.lag` exceeds the recorded horizon or the particle
/// indices are out of range.
pub fn particle_transfer_entropy(
    ensemble: &Ensemble,
    a: usize,
    b: usize,
    t: usize,
    cfg: &TransferConfig,
) -> f64 {
    particle_transfer_entropy_with(&mut CmiWorkspace::new(), ensemble, a, b, t, cfg)
}

/// [`particle_transfer_entropy`] with a caller-provided estimator
/// workspace — the form sweeps use so the Frenzel–Pompe scratch (joint
/// gather, kd-trees, span buffers) is reused across estimates. Results
/// are identical.
pub fn particle_transfer_entropy_with(
    ws: &mut CmiWorkspace,
    ensemble: &Ensemble,
    a: usize,
    b: usize,
    t: usize,
    cfg: &TransferConfig,
) -> f64 {
    assert!(a < ensemble.particles() && b < ensemble.particles());
    assert!(
        t + cfg.lag < ensemble.frames(),
        "particle_transfer_entropy: t + lag beyond horizon"
    );
    let x_next = centred_positions(ensemble, a, t + cfg.lag);
    let x_past = centred_positions(ensemble, a, t);
    let y_past = centred_positions(ensemble, b, t);
    ws.transfer_entropy(
        &x_next,
        &y_past,
        &x_past,
        ensemble.samples(),
        (2, 2, 2),
        &CmiConfig {
            k: cfg.k,
            threads: cfg.threads,
            ..CmiConfig::default()
        },
    )
}

/// The full pairwise transfer matrix at time `t`: entry `(a, b)` is
/// `T_{b→a}` (information flowing *into* `a` *from* `b`); the diagonal is
/// zero by convention. All `n(n−1)` estimates share one [`CmiWorkspace`],
/// and each particle's centred past/successor positions are gathered once
/// for the whole sweep rather than once per pair.
pub fn transfer_matrix(ensemble: &Ensemble, t: usize, cfg: &TransferConfig) -> Vec<Vec<f64>> {
    let n = ensemble.particles();
    assert!(
        t + cfg.lag < ensemble.frames(),
        "transfer_matrix: t + lag beyond horizon"
    );
    let past: Vec<Vec<f64>> = (0..n).map(|i| centred_positions(ensemble, i, t)).collect();
    let next: Vec<Vec<f64>> = (0..n)
        .map(|i| centred_positions(ensemble, i, t + cfg.lag))
        .collect();
    let cmi_cfg = CmiConfig {
        k: cfg.k,
        threads: cfg.threads,
        ..CmiConfig::default()
    };
    let mut ws = CmiWorkspace::new();
    let mut out = vec![vec![0.0; n]; n];
    for (a, row) in out.iter_mut().enumerate() {
        for (b, cell) in row.iter_mut().enumerate() {
            if a != b {
                *cell = ws.transfer_entropy(
                    &next[a],
                    &past[b],
                    &past[a],
                    ensemble.samples(),
                    (2, 2, 2),
                    &cmi_cfg,
                );
            }
        }
    }
    out
}

/// Net directed flow `T_{b→a} − T_{a→b}` summed over all partners — a
/// per-particle "information source/sink" score.
pub fn net_flow(matrix: &[Vec<f64>]) -> Vec<f64> {
    let n = matrix.len();
    (0..n)
        .map(|a| (0..n).map(|b| matrix[a][b] - matrix[b][a]).sum::<f64>())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sops_math::PairMatrix;
    use sops_sim::ensemble::{run_ensemble, EnsembleSpec};
    use sops_sim::force::{ForceModel, LinearForce};
    use sops_sim::{IntegratorConfig, Model};

    fn interacting_ensemble(n: usize, force_scale: f64, cutoff: f64, samples: usize) -> Ensemble {
        let law = ForceModel::Linear(LinearForce::new(
            PairMatrix::constant(1, force_scale),
            PairMatrix::constant(1, 2.0),
        ));
        let spec = EnsembleSpec {
            model: Model::balanced(n, law, cutoff),
            integrator: IntegratorConfig::default(),
            init_radius: 2.0,
            t_max: 12,
            samples,
            seed: 77,
            criterion: None,
        };
        run_ensemble(&spec, 0)
    }

    #[test]
    fn interacting_particles_transfer_information() {
        // Small, strongly coupled collective during the transient: the
        // neighbour's past visibly shapes the successor state.
        let ensemble = interacting_ensemble(3, 5.0, f64::INFINITY, 800);
        let te = particle_transfer_entropy(
            &ensemble,
            0,
            1,
            1,
            &TransferConfig {
                lag: 3,
                ..TransferConfig::default()
            },
        );
        assert!(
            te > 0.3,
            "coupled particles must show positive transfer: {te}"
        );
    }

    #[test]
    fn decoupled_particles_show_no_transfer() {
        // Cut-off far below the typical separation: particles diffuse
        // independently, so no information flows between them.
        let ensemble = interacting_ensemble(3, 5.0, 0.05, 800);
        let te = particle_transfer_entropy(
            &ensemble,
            0,
            1,
            1,
            &TransferConfig {
                lag: 3,
                ..TransferConfig::default()
            },
        );
        assert!(te.abs() < 0.1, "decoupled particles: TE = {te}");
    }

    #[test]
    fn transfer_entropy_finite_and_symmetric_setup_near_symmetric_values() {
        let ensemble = interacting_ensemble(3, 5.0, f64::INFINITY, 300);
        let cfg = TransferConfig {
            lag: 3,
            ..TransferConfig::default()
        };
        let ab = particle_transfer_entropy(&ensemble, 0, 1, 1, &cfg);
        let ba = particle_transfer_entropy(&ensemble, 1, 0, 1, &cfg);
        assert!(ab.is_finite() && ba.is_finite());
        // Identical roles => similar (not necessarily equal) transfer.
        assert!((ab - ba).abs() < 0.3, "{ab} vs {ba}");
    }

    #[test]
    fn transfer_matrix_shape_and_net_flow_antisymmetry() {
        let ensemble = interacting_ensemble(6, 1.0, f64::INFINITY, 150);
        let m = transfer_matrix(
            &ensemble,
            3,
            &TransferConfig {
                k: 3,
                ..TransferConfig::default()
            },
        );
        assert_eq!(m.len(), 6);
        assert!(m.iter().enumerate().all(|(i, row)| row[i] == 0.0));
        let flow = net_flow(&m);
        // Net flows sum to ~0 by antisymmetry of the construction.
        let total: f64 = flow.iter().sum();
        assert!(total.abs() < 1e-9, "net flow total {total}");
    }

    #[test]
    #[should_panic(expected = "beyond horizon")]
    fn lag_beyond_horizon_panics() {
        let ensemble = interacting_ensemble(6, 1.0, f64::INFINITY, 50);
        particle_transfer_entropy(
            &ensemble,
            0,
            1,
            12,
            &TransferConfig {
                lag: 1,
                ..TransferConfig::default()
            },
        );
    }
}
