//! Seed-axis statistics over a sweep: from per-seed point estimates to
//! ensemble claims.
//!
//! The paper's ΔI = I(t_last) − I(t_0) statements are *ensemble*
//! statistics, but a [`SweepReport`] cell is a single-seed point
//! estimate — nothing in it distinguishes real organization from seed
//! luck. A [`SweepSummary`] closes that gap: it groups the report's
//! cells by (scenario, measure) over the seed axis and equips each group
//! with
//!
//! * the sample aggregates — mean, standard deviation, standard error —
//!   of the per-seed ΔI values,
//! * a Student-t confidence interval and a percentile-bootstrap interval
//!   for the mean (the `± ci` of the variance-aware grid, and the
//!   tolerance of the persisted [`crate::baseline`] regression gate),
//! * a significance verdict calibrated against the plan's negative
//!   control: a two-sample permutation test of the group's ΔI values
//!   against the `mixing_null` scenario's values for the same measure.
//!
//! Everything is computed sequentially in report (= plan) order from
//! deterministic seeded resamplers, so a summary is bit-identical for
//! any worker count driving the underlying sweep — the property pinned
//! by `tests/seed_axis_stats.rs`.

use crate::scenario::SweepReport;
use sops_math::rng::derive_seed;
use sops_math::stats::{
    self, bootstrap_mean_interval, permutation_test_mean_diff, t_confidence_interval, Interval,
};
use std::fmt::Write as _;

/// Parameters of the seed-axis aggregation.
#[derive(Debug, Clone)]
pub struct SummaryConfig {
    /// Two-sided confidence level of the t and bootstrap intervals.
    pub confidence: f64,
    /// Significance level for the verdict against the null scenario.
    pub alpha: f64,
    /// Name of the negative-control scenario the permutation test
    /// calibrates against ([`crate::scenario::mixing_null`] by default).
    pub null_scenario: String,
    /// Bootstrap redraws per group.
    pub bootstrap_resamples: usize,
    /// Permutation re-splits per (group, null) comparison.
    pub permutation_resamples: usize,
    /// Master seed of the deterministic resampler streams; each group
    /// derives its own decorrelated child streams from it.
    pub seed: u64,
}

impl Default for SummaryConfig {
    fn default() -> Self {
        SummaryConfig {
            confidence: 0.95,
            alpha: 0.05,
            null_scenario: "mixing_null".into(),
            bootstrap_resamples: 1000,
            permutation_resamples: 9999,
            seed: 0x5EED_57A7,
        }
    }
}

/// One (scenario, measure) group aggregated over the seed axis.
#[derive(Debug, Clone)]
pub struct SummaryGroup {
    /// Scenario name.
    pub scenario: String,
    /// Plan-unique measure label.
    pub measure: String,
    /// Seeds contributing to the group, in plan order.
    pub seeds: Vec<u64>,
    /// Per-seed ΔI values, parallel to `seeds`.
    pub delta_mis: Vec<f64>,
    /// Mean ΔI over the seed axis.
    pub mean: f64,
    /// Sample standard deviation of ΔI (`NaN` for n < 2).
    pub std: f64,
    /// Standard error of the mean (`NaN` for n < 2).
    pub se: f64,
    /// Student-t confidence interval for the mean.
    pub ci: Interval,
    /// Percentile-bootstrap confidence interval for the mean.
    pub boot: Interval,
    /// Two-sided permutation p-value against the null scenario's ΔI
    /// sample for the same measure; `None` when the report carries no
    /// null group for this measure. The null scenario is compared
    /// against itself, which yields `p = 1` by construction — trivially,
    /// and correctly, "not significant".
    pub p_vs_null: Option<f64>,
}

impl SummaryGroup {
    /// Number of seeds in the group.
    pub fn n(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the group's ΔI sample differs significantly from the
    /// null control at level `alpha`; `None` without a null comparison.
    pub fn significant(&self, alpha: f64) -> Option<bool> {
        self.p_vs_null.map(|p| p <= alpha)
    }
}

/// Seed-axis summary of a [`SweepReport`]: one [`SummaryGroup`] per
/// (scenario, measure) pair, in first-appearance (= plan) order.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Aggregated groups.
    pub groups: Vec<SummaryGroup>,
    /// Confidence level the intervals were computed at.
    pub confidence: f64,
    /// Significance level of [`SweepSummary::grid_table`] verdicts.
    pub alpha: f64,
    /// Null-control scenario name the verdicts are calibrated against.
    pub null_scenario: String,
}

impl SweepSummary {
    /// Aggregates `report` under the default [`SummaryConfig`].
    pub fn from_report(report: &SweepReport) -> Self {
        SweepSummary::with_config(report, &SummaryConfig::default())
    }

    /// Aggregates `report` under `cfg`.
    pub fn with_config(report: &SweepReport, cfg: &SummaryConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&cfg.confidence),
            "SweepSummary: confidence must be in [0, 1), got {}",
            cfg.confidence
        );
        // Group cells by (scenario, measure) in first-appearance order;
        // inside a group, cells keep plan order, so the ΔI vectors (and
        // every resampler stream derived from the group index) are
        // independent of the worker count that produced the report.
        // Quarantined cells are skipped explicitly — a failed cell has no
        // ΔI and must not drag a NaN into its group's statistics.
        let mut keys: Vec<(String, String)> = Vec::new();
        let mut seeds: Vec<Vec<u64>> = Vec::new();
        let mut deltas: Vec<Vec<f64>> = Vec::new();
        for cell in report.cells.iter().filter(|c| c.status.is_ok()) {
            let key = (cell.scenario.clone(), cell.measure_label.clone());
            let gi = match keys.iter().position(|k| *k == key) {
                Some(gi) => gi,
                None => {
                    keys.push(key);
                    seeds.push(Vec::new());
                    deltas.push(Vec::new());
                    keys.len() - 1
                }
            };
            seeds[gi].push(cell.seed);
            deltas[gi].push(cell.result.mi.increase());
        }
        let groups: Vec<SummaryGroup> = keys
            .iter()
            .zip(seeds.iter().zip(&deltas))
            .enumerate()
            .map(|(gi, ((scenario, measure), (seeds, delta_mis)))| {
                let boot_seed = derive_seed(cfg.seed, 2 * gi as u64);
                SummaryGroup {
                    scenario: scenario.clone(),
                    measure: measure.clone(),
                    seeds: seeds.clone(),
                    delta_mis: delta_mis.clone(),
                    mean: stats::mean(delta_mis),
                    std: stats::variance(delta_mis).sqrt(),
                    se: stats::std_error(delta_mis),
                    ci: t_confidence_interval(delta_mis, cfg.confidence),
                    boot: bootstrap_mean_interval(
                        delta_mis,
                        cfg.confidence,
                        cfg.bootstrap_resamples,
                        boot_seed,
                    ),
                    p_vs_null: None,
                }
            })
            .collect();
        let mut summary = SweepSummary {
            groups,
            confidence: cfg.confidence,
            alpha: cfg.alpha,
            null_scenario: cfg.null_scenario.clone(),
        };
        // Second pass: permutation verdicts against the null scenario's
        // ΔI sample for the same measure (needs all groups collected).
        let null_samples: Vec<(String, Vec<f64>)> = summary
            .groups
            .iter()
            .filter(|g| g.scenario == cfg.null_scenario)
            .map(|g| (g.measure.clone(), g.delta_mis.clone()))
            .collect();
        for (gi, group) in summary.groups.iter_mut().enumerate() {
            if let Some((_, null)) = null_samples.iter().find(|(m, _)| *m == group.measure) {
                let perm_seed = derive_seed(cfg.seed, 2 * gi as u64 + 1);
                group.p_vs_null = Some(permutation_test_mean_diff(
                    &group.delta_mis,
                    null,
                    cfg.permutation_resamples,
                    perm_seed,
                ));
            }
        }
        summary
    }

    /// The group for (scenario, measure label), if present.
    pub fn get(&self, scenario: &str, measure: &str) -> Option<&SummaryGroup> {
        self.groups
            .iter()
            .find(|g| g.scenario == scenario && g.measure == measure)
    }

    /// Renders the variance-aware ΔI grid: one row per scenario, one
    /// column per measure, each cell `mean ± ci` (the t-interval
    /// half-width) with a trailing `*` when the group is significant
    /// against the null control at the summary's `alpha`.
    pub fn grid_table(&self) -> String {
        let mut rows: Vec<&str> = Vec::new();
        let mut cols: Vec<&str> = Vec::new();
        for g in &self.groups {
            if !rows.contains(&g.scenario.as_str()) {
                rows.push(&g.scenario);
            }
            if !cols.contains(&g.measure.as_str()) {
                cols.push(&g.measure);
            }
        }
        let ns: Vec<usize> = self.groups.iter().map(|g| g.n()).collect();
        let uniform_n = ns.windows(2).all(|w| w[0] == w[1]);
        let cell_text = |g: &SummaryGroup| {
            let star = match g.significant(self.alpha) {
                Some(true) => "*",
                _ => "",
            };
            let n_note = if uniform_n {
                String::new()
            } else {
                format!(" (n={})", g.n())
            };
            format!("{:.3} ± {:.3}{star}{n_note}", g.mean, g.ci.half_width())
        };
        let pct = (self.confidence * 100.0).round() as u32;
        let mut out = format!(
            "ΔI (bits) — mean ± {pct}% CI over {}; * = significant vs {} (α = {})\n",
            if uniform_n {
                format!("n = {} seeds", ns.first().copied().unwrap_or(0))
            } else {
                "the seed axis".into()
            },
            self.null_scenario,
            self.alpha
        );
        let w = rows
            .iter()
            .map(|r| r.len())
            .chain(["scenario".len()])
            .max()
            .unwrap_or(8);
        let col_widths: Vec<usize> = cols
            .iter()
            .map(|c| {
                self.groups
                    .iter()
                    .filter(|g| g.measure == **c)
                    .map(|g| cell_text(g).chars().count())
                    .chain([c.chars().count()])
                    .max()
                    .unwrap_or(9)
            })
            .collect();
        let _ = write!(out, "  {:<w$}", "scenario");
        for (c, cw) in cols.iter().zip(&col_widths) {
            let _ = write!(out, "  {c:>cw$}");
        }
        out.push('\n');
        for r in &rows {
            let _ = write!(out, "  {r:<w$}");
            for (c, cw) in cols.iter().zip(&col_widths) {
                match self.get(r, c) {
                    // Pad by character count: `±` is multi-byte, so the
                    // format machinery's byte-width padding would
                    // misalign columns.
                    Some(g) => {
                        let text = cell_text(g);
                        let pad = cw.saturating_sub(text.chars().count());
                        let _ = write!(out, "  {}{text}", " ".repeat(pad));
                    }
                    None => {
                        let _ = write!(out, "  {:>cw$}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{MiSeries, PipelineResult};
    use crate::scenario::{CellStatus, SweepCell, SweepReport};
    use sops_info::MeasureConfig;

    /// A hand-built report: `rise` organizes (ΔI ≈ 3 ± noise), the null
    /// stays flat (ΔI ≈ 0 ± noise), over 6 seeds each.
    fn synthetic_report() -> SweepReport {
        let mut cells = Vec::new();
        let mk = |scenario: &str, seed: u64, delta: f64| SweepCell {
            scenario: scenario.into(),
            measure: MeasureConfig::default(),
            measure_label: "ksg".into(),
            seed,
            status: CellStatus::Ok,
            provenance: crate::scenario::CellProvenance::Computed,
            result: PipelineResult {
                mi: MiSeries {
                    times: vec![0, 10],
                    values: vec![1.0, 1.0 + delta],
                },
                mean_icp_cost: vec![0.0, 0.0],
                equilibrated_fraction: 1.0,
            },
        };
        for seed in 1..=6u64 {
            let jitter = (seed as f64).sin() * 0.05;
            cells.push(mk("rise", seed, 3.0 + jitter));
        }
        for seed in 1..=6u64 {
            let jitter = (seed as f64 + 0.5).cos() * 0.05;
            cells.push(mk("mixing_null", seed, jitter));
        }
        SweepReport { cells }
    }

    #[test]
    fn failed_cells_are_skipped_in_grouping() {
        let mut report = synthetic_report();
        report.cells[0].status = CellStatus::Failed {
            reason: "boom".into(),
        };
        let summary = SweepSummary::from_report(&report);
        let rise = summary.get("rise", "ksg").unwrap();
        assert_eq!(rise.n(), 5, "the quarantined seed is excluded");
        assert_eq!(rise.seeds, vec![2, 3, 4, 5, 6]);
        assert!(rise.mean.is_finite(), "no NaN dragged into the mean");
    }

    #[test]
    fn groups_aggregate_the_seed_axis() {
        let summary = SweepSummary::from_report(&synthetic_report());
        assert_eq!(summary.groups.len(), 2);
        let rise = summary.get("rise", "ksg").unwrap();
        assert_eq!(rise.n(), 6);
        assert_eq!(rise.seeds, vec![1, 2, 3, 4, 5, 6]);
        assert!((rise.mean - 3.0).abs() < 0.1);
        assert!(rise.std > 0.0 && rise.se > 0.0);
        assert!(rise.ci.contains(rise.mean));
        assert!(rise.ci.half_width() > 0.0);
        assert!(rise.boot.contains(rise.mean));
    }

    #[test]
    fn verdicts_calibrate_against_the_null() {
        let summary = SweepSummary::from_report(&synthetic_report());
        let rise = summary.get("rise", "ksg").unwrap();
        let null = summary.get("mixing_null", "ksg").unwrap();
        let p_rise = rise.p_vs_null.expect("null present");
        let p_null = null.p_vs_null.expect("null present");
        assert!(p_rise <= 0.05, "separated ΔI must be significant: {p_rise}");
        assert_eq!(p_null, 1.0, "null vs itself is never significant");
        assert_eq!(rise.significant(0.05), Some(true));
        assert_eq!(null.significant(0.05), Some(false));
    }

    #[test]
    fn missing_null_leaves_verdicts_undefined() {
        let mut report = synthetic_report();
        report.cells.retain(|c| c.scenario != "mixing_null");
        let summary = SweepSummary::from_report(&report);
        let rise = summary.get("rise", "ksg").unwrap();
        assert_eq!(rise.p_vs_null, None);
        assert_eq!(rise.significant(0.05), None);
    }

    #[test]
    fn summary_is_deterministic() {
        let report = synthetic_report();
        let a = SweepSummary::from_report(&report);
        let b = SweepSummary::from_report(&report);
        for (x, y) in a.groups.iter().zip(&b.groups) {
            assert_eq!(x.mean.to_bits(), y.mean.to_bits());
            assert_eq!(x.ci.lo.to_bits(), y.ci.lo.to_bits());
            assert_eq!(x.boot.lo.to_bits(), y.boot.lo.to_bits());
            assert_eq!(x.p_vs_null, y.p_vs_null);
        }
    }

    #[test]
    fn grid_table_shows_mean_ci_and_verdict() {
        let summary = SweepSummary::from_report(&synthetic_report());
        let grid = summary.grid_table();
        assert!(grid.contains("mean ± 95% CI"), "{grid}");
        assert!(grid.contains("n = 6 seeds"), "{grid}");
        assert!(grid.contains("rise") && grid.contains("mixing_null"));
        // The organizing row carries the significance star; the null
        // row must not.
        let rise_row = grid.lines().find(|l| l.contains("rise")).unwrap();
        let null_row = grid
            .lines()
            .find(|l| l.trim_start().starts_with("mixing_null"))
            .unwrap();
        assert!(rise_row.contains('*'), "{rise_row}");
        assert!(!null_row.contains('*'), "{null_row}");
        assert!(rise_row.contains('±'));
    }

    #[test]
    fn single_seed_groups_degrade_gracefully() {
        let mut report = synthetic_report();
        report.cells.retain(|c| c.seed == 1);
        let summary = SweepSummary::from_report(&report);
        let rise = summary.get("rise", "ksg").unwrap();
        assert_eq!(rise.n(), 1);
        assert_eq!(rise.ci.half_width(), 0.0, "zero-width single-seed CI");
        assert!(rise.std.is_nan() && rise.se.is_nan());
        // Grid still renders.
        assert!(summary.grid_table().contains("n = 1 seeds"));
    }
}
