//! The typed error spine of the sweep layer.
//!
//! Public entry points of the scenario/sweep/checkpoint/baseline stack
//! return [`SweepError`] instead of panicking (or stringly-typed
//! `Result<_, String>`): callers like the `sops-repro` CLI map each
//! variant to a one-line diagnostic and a documented exit code, and the
//! fault-tolerant runner can distinguish a drifted checkpoint from a
//! torn file from an I/O failure. Cell-level *panics* are not errors —
//! they are quarantined into the report as
//! [`crate::scenario::CellStatus::Failed`] so one poisoned cell can
//! never abort a sweep.

use std::path::PathBuf;

/// Everything that can go wrong on the sweep layer's fallible surfaces.
#[derive(Debug)]
pub enum SweepError {
    /// The plan grid itself is unusable (empty axes, unnamed scenario).
    InvalidPlan(String),
    /// Two grid cells share the (scenario, seed) coordinate — a
    /// duplicate seed-axis entry, or two scenarios sharing a name.
    DuplicateCell {
        /// Scenario name of the colliding cells.
        scenario: String,
        /// Seed of the colliding cells.
        seed: u64,
    },
    /// A scenario name not present in the registry.
    UnknownScenario {
        /// The requested name.
        name: String,
        /// The names the registry does know, in registration order.
        known: Vec<String>,
    },
    /// The plan cannot be serialized to the stable wire format (e.g. a
    /// [`sops_sim::ForceModel::Custom`] law, which is an opaque
    /// closure) — checkpointing is unavailable for such plans.
    Unserializable(String),
    /// An I/O operation on a persisted artifact failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// What was being attempted (`"read"`, `"write"`, `"rename"`).
        op: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A persisted artifact does not parse (torn write, truncation,
    /// hand-editing).
    Parse {
        /// Which artifact (e.g. `"checkpoint results/ckpt.json"`).
        what: String,
        /// Parser detail.
        detail: String,
    },
    /// A persisted artifact carries a schema tag this build does not
    /// understand.
    SchemaMismatch {
        /// The schema this build expected.
        expected: String,
        /// The schema tag found in the file.
        found: String,
    },
    /// A checkpoint was written for a different plan — resuming it would
    /// silently mix results from two different experiments, so it is
    /// rejected outright.
    FingerprintMismatch {
        /// Fingerprint of the plan being run (hex).
        plan: String,
        /// Fingerprint stored in the checkpoint (hex).
        checkpoint: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::InvalidPlan(reason) => write!(f, "invalid sweep plan: {reason}"),
            SweepError::DuplicateCell { scenario, seed } => write!(
                f,
                "duplicate grid cell {scenario}#{seed} (duplicate seed in the seed axis, \
                 or two scenarios sharing a name)"
            ),
            SweepError::UnknownScenario { name, known } => {
                write!(f, "unknown scenario '{name}' (known: {})", known.join(", "))
            }
            SweepError::Unserializable(what) => {
                write!(f, "plan cannot be serialized: {what}")
            }
            SweepError::Io { path, op, source } => {
                write!(f, "cannot {op} {}: {source}", path.display())
            }
            SweepError::Parse { what, detail } => write!(f, "malformed {what}: {detail}"),
            SweepError::SchemaMismatch { expected, found } => {
                write!(
                    f,
                    "unsupported schema '{found}' (this build reads '{expected}')"
                )
            }
            SweepError::FingerprintMismatch { plan, checkpoint } => write!(
                f,
                "checkpoint fingerprint {checkpoint} does not match this plan's {plan} \
                 (the plan drifted since the checkpoint was written; delete it or \
                 re-run the original plan)"
            ),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line_and_names_the_offender() {
        let cases: Vec<SweepError> = vec![
            SweepError::InvalidPlan("no scenarios".into()),
            SweepError::DuplicateCell {
                scenario: "a".into(),
                seed: 7,
            },
            SweepError::UnknownScenario {
                name: "bogus".into(),
                known: vec!["cell_sorting".into()],
            },
            SweepError::Unserializable("custom force law".into()),
            SweepError::Io {
                path: "x/y.json".into(),
                op: "read",
                source: std::io::Error::new(std::io::ErrorKind::NotFound, "nope"),
            },
            SweepError::Parse {
                what: "checkpoint c.json".into(),
                detail: "unterminated string".into(),
            },
            SweepError::SchemaMismatch {
                expected: "sops-sweep-checkpoint/v1".into(),
                found: "other/v9".into(),
            },
            SweepError::FingerprintMismatch {
                plan: "00aa".into(),
                checkpoint: "00bb".into(),
            },
        ];
        for e in &cases {
            let msg = e.to_string();
            assert!(!msg.contains('\n'), "one line: {msg}");
            assert!(!msg.is_empty());
        }
        assert!(cases[1].to_string().contains("a#7"));
        assert!(cases[2].to_string().contains("bogus"));
        assert!(std::error::Error::source(&cases[4]).is_some());
    }
}
