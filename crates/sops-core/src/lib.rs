//! End-to-end self-organization measurement (the paper's contribution,
//! assembled).
//!
//! The pipeline chains the substrate crates into the procedure of §5:
//!
//! 1. simulate an ensemble of `m` independent runs (`sops-sim`),
//! 2. per recorded time step, factor out translation, rotation and
//!    same-type permutation across the ensemble (`sops-shape`),
//! 3. estimate the multi-information between the reduced observer
//!    variables (`sops-info`), optionally after the k-means
//!    coarse-observer approximation (`sops-cluster`),
//! 4. report the time series `I(W₁⁽ᵗ⁾, …, W_n⁽ᵗ⁾)` whose *increase* is
//!    the paper's definition of self-organization (§3.1).
//!
//! [`scenario`] generalizes the procedure into a registry of named
//! scenarios and a one-pass sweep engine ([`scenario::SweepRunner`])
//! that fans each simulated ensemble over any number of measure
//! selections — `run_pipeline` is its one-cell special case.
//! [`figures`] packages one generator per figure of the paper's
//! evaluation; the `sops-repro` binary drives them and `EXPERIMENTS.md`
//! records paper-vs-measured outcomes. [`dynamics`] implements the §7.3
//! future-work proposal: transfer entropy between individual particles.
//! [`summary`] folds a sweep's seed axis into per-(scenario, measure)
//! statistics with confidence intervals and significance verdicts, and
//! [`baseline`] persists those numbers as a CI regression gate.
//!
//! The sweep layer is fault-tolerant: public entry points return the
//! typed [`error::SweepError`], poisoned cells are quarantined under
//! panic isolation as [`scenario::CellStatus::Failed`], and
//! [`checkpoint`] persists completed cells (schema
//! `sops-sweep-checkpoint/v1`, shared [`wire`] machinery) so an
//! interrupted sweep resumes bit-identically.
//!
//! Determinism also makes every cell memoizable: [`cache`] is a
//! content-addressed on-disk cell store (keyed by
//! [`checkpoint::cell_key`]) that [`SweepRunner::run_with_cache`]
//! consults before simulating, and [`broker`] coalesces concurrent sweep
//! requests over it — same-cell requests dedupe to one computation,
//! same-ensemble requests batch into one simulation pass. The
//! `sops-serve` crate puts an HTTP front end on the broker.

pub mod baseline;
pub mod broker;
pub mod cache;
pub mod checkpoint;
pub mod dynamics;
pub mod error;
pub mod figures;
pub mod metrics;
pub mod observers;
pub mod pipeline;
pub mod report;
pub mod scenario;
pub mod summary;
pub mod wire;

pub use baseline::SweepBaseline;
pub use broker::{BrokerStats, SweepBroker};
pub use cache::{CacheStats, CellCache};
pub use checkpoint::SweepCheckpoint;
pub use error::SweepError;
pub use observers::ObserverMode;
pub use pipeline::{evaluate_ensemble, run_pipeline, MiSeries, Pipeline, PipelineResult};
pub use scenario::{
    run_sweep, CellProvenance, CellStatus, EnsembleStorage, RetryPolicy, ScenarioRegistry,
    ScenarioSpec, SweepCell, SweepPlan, SweepReport, SweepRunner,
};
pub use summary::{SummaryConfig, SummaryGroup, SweepSummary};

/// Options shared by every figure generator.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Reduced sample counts / horizons for smoke-level runs (CI and the
    /// Criterion benches use this; the recorded EXPERIMENTS.md numbers use
    /// `fast = false`).
    pub fast: bool,
    /// Master seed for everything downstream.
    pub seed: u64,
    /// Worker threads (0 = default).
    pub threads: usize,
    /// Directory for CSV output (`None` = don't write files).
    pub out_dir: Option<std::path::PathBuf>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            fast: false,
            seed: 0x5005_2012,
            threads: 0,
            out_dir: None,
        }
    }
}

impl RunOptions {
    /// Picks `full` or `fast` depending on the mode.
    pub fn scale<T>(&self, full: T, fast: T) -> T {
        if self.fast {
            fast
        } else {
            full
        }
    }
}
