//! Contracts of the persistent information-estimation engine:
//!
//! * every `InfoWorkspace` entry point is **bit-identical** to the
//!   pre-refactor reference implementation (frozen below) for all three
//!   `KsgVariant`s, across both k-NN paths and worker counts 1/8;
//! * `pairwise_mi_matrix` equals per-pair reference estimates over merged
//!   views, and `decompose` equals the reference term-by-term recipe;
//! * a warmed-up workspace performs zero heap allocations across 100
//!   mixed calls (buffer-capacity stability, à la
//!   `crates/sops-sim/tests/workspace_forces.rs`).

use proptest::prelude::*;
use sops_info::gaussian::{equicorrelated_cov, sample_gaussian};
use sops_info::{Grouping, InfoWorkspace, KnnMode, KsgConfig, KsgVariant, SampleView};
use sops_math::special::digamma;
use sops_math::NATS_TO_BITS;
use sops_spatial::block_max::{knn_block_max, BlockPoints};
use sops_spatial::KdTree;

/// The pre-`InfoWorkspace` estimator, verbatim (single-threaded path):
/// per-view kd-trees for every block, brute-force joint k-NN, per-sample
/// allocations, flat left-to-right ψ fold. The workspace must reproduce
/// its output bit for bit.
///
/// Two deviations from the historical code, both confined to degenerate
/// inputs: (a) the Ksg2 count is clamped at 1 and the Ksg1
/// self-subtraction saturates, matching the workspace's guards — no-ops
/// except where the historical code fed ψ(0) (a debug panic / −∞ in
/// release) or underflowed a `usize`; (b) `knn_block_max` now resolves
/// distance ties canonically (lexicographic `(distance, index)`), where
/// the historical sorted-buffer insertion depended on eviction dynamics —
/// identical on tie-free (continuous) data, and the canonical order is
/// what makes the scan and tree searches agree on quantized data (see
/// `quantized_data_paths_agree` below).
fn reference_multi_information(view: &SampleView<'_>, k: usize, variant: KsgVariant) -> f64 {
    let n = view.blocks();
    if n < 2 {
        return 0.0;
    }
    let m = view.rows;
    let points = BlockPoints::new(view.data, m, view.block_sizes);
    let trees: Vec<KdTree> = (0..n)
        .map(|b| KdTree::build(view.block_sizes[b], &view.block_columns(b)))
        .collect();
    let psi_sum = (0..m).fold(0.0f64, |acc, i| {
        let neighbours = knn_block_max(&points, i, k);
        let kth = neighbours.last().expect("reference: k-th neighbour").0;
        let mut local = 0.0;
        match variant {
            KsgVariant::Paper => {
                let radii = points.block_dists(i, kth);
                for (b, tree) in trees.iter().enumerate() {
                    let q = points.block(i, b);
                    let c = tree
                        .count_within(q, radii[b], true)
                        .saturating_sub(1)
                        .max(1);
                    local += digamma(c as f64);
                }
            }
            KsgVariant::Ksg2 => {
                let mut radii = vec![0.0f64; n];
                for &(j, _) in &neighbours {
                    for (b, r) in points.block_dists(i, j).into_iter().enumerate() {
                        if r > radii[b] {
                            radii[b] = r;
                        }
                    }
                }
                for (b, tree) in trees.iter().enumerate() {
                    let q = points.block(i, b);
                    let c = tree
                        .count_within(q, radii[b], false)
                        .saturating_sub(1)
                        .max(1);
                    local += digamma(c as f64);
                }
            }
            KsgVariant::Ksg1 => {
                let eps = neighbours.last().unwrap().1;
                for (b, tree) in trees.iter().enumerate() {
                    let q = points.block(i, b);
                    let c = tree.count_within(q, eps, true).saturating_sub(1);
                    local += digamma((c + 1) as f64);
                }
            }
        }
        acc + local
    });
    let mean_psi = psi_sum / m as f64;
    let nm1 = (n - 1) as f64;
    let nats = match variant {
        KsgVariant::Paper | KsgVariant::Ksg1 => {
            digamma(k as f64) + nm1 * digamma(m as f64) - mean_psi
        }
        KsgVariant::Ksg2 => digamma(k as f64) - nm1 / k as f64 + nm1 * digamma(m as f64) - mean_psi,
    };
    nats * NATS_TO_BITS
}

/// A correlated-Gaussian fixture with mixed scalar/vector blocks.
fn fixture(rows: usize, block_sizes: &[usize], seed: u64) -> Vec<f64> {
    let dim: usize = block_sizes.iter().sum();
    sample_gaussian(&equicorrelated_cov(dim, 0.4), rows, seed)
}

const VARIANTS: [KsgVariant; 3] = [KsgVariant::Ksg1, KsgVariant::Ksg2, KsgVariant::Paper];
const KNN_PATHS: [KnnMode; 2] = [KnnMode::BruteForce, KnnMode::KdTree];

#[test]
fn multi_information_bit_identical_to_reference_all_variants_and_paths() {
    let sizes = [1usize, 2, 1, 1];
    let data = fixture(220, &sizes, 11);
    let view = SampleView::new(&data, 220, &sizes);
    let mut ws = InfoWorkspace::new();
    for variant in VARIANTS {
        let want = reference_multi_information(&view, 4, variant);
        for knn in KNN_PATHS {
            for threads in [1usize, 8] {
                let got = ws.multi_information(
                    &view,
                    &KsgConfig {
                        k: 4,
                        variant,
                        threads,
                        knn,
                    },
                );
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{variant:?}/{knn:?}/t{threads}: {got} vs {want}"
                );
            }
        }
    }
}

#[test]
fn all_scalar_lanes_scan_bit_identical_at_remainder_sizes() {
    // All-scalar blocks with the scan path forced route the joint k-NN
    // through the lane-transposed SoA tile
    // (`sops_spatial::block_max::ScalarLanes`). Row counts straddling
    // the 8-lane group width exercise the padded final group; threads
    // 1/8 pin the span-ordered ψ reduction on top of the lane kernel.
    let sizes = [1usize; 6];
    let mut ws = InfoWorkspace::new();
    for rows in [127usize, 128, 129] {
        let data = fixture(rows, &sizes, 21);
        let view = SampleView::new(&data, rows, &sizes);
        for variant in VARIANTS {
            let want = reference_multi_information(&view, 4, variant);
            for threads in [1usize, 8] {
                let got = ws.multi_information(
                    &view,
                    &KsgConfig {
                        k: 4,
                        variant,
                        threads,
                        knn: KnnMode::BruteForce,
                    },
                );
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "m{rows}/{variant:?}/t{threads}: {got} vs {want}"
                );
            }
        }
    }
}

#[test]
fn all_scalar_lanes_scan_handles_quantized_ties() {
    // Quantizing onto a coarse value grid forces duplicate Chebyshev
    // distances; the lane scan must resolve them with the same canonical
    // lexicographic (distance, index) order as the reference scan.
    let sizes = [1usize; 6];
    let rows = 65; // 8·8 + 1: ties AND a remainder lane group
    let mut data = fixture(rows, &sizes, 22);
    for v in &mut data {
        *v = (*v * 4.0).round() / 4.0;
    }
    let view = SampleView::new(&data, rows, &sizes);
    let mut ws = InfoWorkspace::new();
    for variant in VARIANTS {
        let want = reference_multi_information(&view, 4, variant);
        for threads in [1usize, 8] {
            let got = ws.multi_information(
                &view,
                &KsgConfig {
                    k: 4,
                    variant,
                    threads,
                    knn: KnnMode::BruteForce,
                },
            );
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{variant:?}/t{threads}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn pairwise_matrix_bit_identical_to_reference_pairs() {
    let sizes = [1usize, 1, 2, 1];
    let data = fixture(180, &sizes, 7);
    let view = SampleView::new(&data, 180, &sizes);
    let mut ws = InfoWorkspace::new();
    for variant in VARIANTS {
        for knn in KNN_PATHS {
            for threads in [1usize, 8] {
                let cfg = KsgConfig {
                    k: 3,
                    variant,
                    threads,
                    knn,
                };
                let matrix = ws.pairwise_mi_matrix(&view, &cfg);
                for i in 0..sizes.len() {
                    for j in (i + 1)..sizes.len() {
                        let merged = view.merged_blocks(&[i, j]);
                        let pair_sizes = [sizes[i], sizes[j]];
                        let pair_view = SampleView::new(&merged, 180, &pair_sizes);
                        let want = reference_multi_information(&pair_view, 3, variant);
                        assert_eq!(
                            matrix.get(i, j).to_bits(),
                            want.to_bits(),
                            "pair ({i},{j}) {variant:?}/{knn:?}/t{threads}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn decompose_bit_identical_to_reference_terms() {
    let sizes = [1usize; 6];
    let data = fixture(200, &sizes, 3);
    let view = SampleView::new(&data, 200, &sizes);
    let grouping = Grouping::from_labels(&[0, 0, 1, 1, 1, 2]);
    let mut ws = InfoWorkspace::new();
    for variant in VARIANTS {
        // Reference recipe: total over the fine view, between over the
        // group-merged coarse view, within over each group's merged view.
        let total = reference_multi_information(&view, 4, variant);
        let coarse_sizes: Vec<usize> = grouping
            .groups
            .iter()
            .map(|ms| ms.iter().map(|&b| sizes[b]).sum())
            .collect();
        let merged: Vec<Vec<f64>> = grouping
            .groups
            .iter()
            .map(|ms| view.merged_blocks(ms))
            .collect();
        let mut coarse_data = Vec::new();
        for r in 0..view.rows {
            for (g, w) in coarse_sizes.iter().enumerate() {
                coarse_data.extend_from_slice(&merged[g][r * w..(r + 1) * w]);
            }
        }
        let coarse_view = SampleView::new(&coarse_data, view.rows, &coarse_sizes);
        let between = reference_multi_information(&coarse_view, 4, variant);
        let within: Vec<f64> = grouping
            .groups
            .iter()
            .enumerate()
            .map(|(g, ms)| {
                if ms.len() < 2 {
                    return 0.0;
                }
                let sub_sizes: Vec<usize> = ms.iter().map(|&b| sizes[b]).collect();
                let sub_view = SampleView::new(&merged[g], view.rows, &sub_sizes);
                reference_multi_information(&sub_view, 4, variant)
            })
            .collect();

        for knn in KNN_PATHS {
            for threads in [1usize, 8] {
                let cfg = KsgConfig {
                    k: 4,
                    variant,
                    threads,
                    knn,
                };
                let d = ws.decompose(&view, &grouping, &cfg);
                assert_eq!(d.total.to_bits(), total.to_bits(), "{variant:?} total");
                assert_eq!(
                    d.between.to_bits(),
                    between.to_bits(),
                    "{variant:?} between"
                );
                assert_eq!(d.within.len(), within.len());
                for (got, want) in d.within.iter().zip(&within) {
                    assert_eq!(got.to_bits(), want.to_bits(), "{variant:?} within");
                }
            }
        }
    }
}

#[test]
fn auto_path_equals_forced_paths() {
    // Auto must route to one of the two explicit paths, never to novel
    // numerics — and both paths agree bitwise anyway.
    for (rows, sizes) in [(300usize, vec![1usize, 1]), (150, vec![1usize; 12])] {
        let data = fixture(rows, &sizes, 5);
        let view = SampleView::new(&data, rows, &sizes);
        let mut ws = InfoWorkspace::new();
        let run = |ws: &mut InfoWorkspace, knn| {
            ws.multi_information(
                &view,
                &KsgConfig {
                    knn,
                    ..KsgConfig::default()
                },
            )
        };
        let auto = run(&mut ws, KnnMode::Auto);
        let brute = run(&mut ws, KnnMode::BruteForce);
        let tree = run(&mut ws, KnnMode::KdTree);
        assert_eq!(auto.to_bits(), brute.to_bits());
        assert_eq!(auto.to_bits(), tree.to_bits());
    }
}

#[test]
fn quantized_data_paths_agree() {
    // Quantized samples (duplicated joint points, massive distance ties)
    // are where non-canonical tie-breaking would make the two k-NN paths
    // diverge — the Paper and Ksg2 variants read per-block radii off the
    // *identity* of the retained neighbours, not just their distances.
    // All three variants must agree bitwise across paths and threads.
    let rows = 120;
    let sizes = [1usize, 1];
    let mut rng = sops_math::SplitMix64::new(99);
    let data: Vec<f64> = (0..rows * 2)
        .map(|_| rng.next_range(-2.0, 2.0).round())
        .collect();
    let view = SampleView::new(&data, rows, &sizes);
    let mut ws = InfoWorkspace::new();
    for variant in VARIANTS {
        let want = reference_multi_information(&view, 4, variant);
        assert!(want.is_finite());
        for knn in [KnnMode::BruteForce, KnnMode::KdTree, KnnMode::Auto] {
            for threads in [1usize, 8] {
                let got = ws.multi_information(
                    &view,
                    &KsgConfig {
                        k: 4,
                        variant,
                        threads,
                        knn,
                    },
                );
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{variant:?}/{knn:?}/t{threads}: {got} vs {want}"
                );
            }
        }
    }
}

#[test]
fn warmed_up_workspace_is_allocation_free_over_100_calls() {
    // One workspace drives the full mixed workload (joint MI, pairwise
    // matrix, decomposition) on a fixed shape: after warm-up, every
    // internal buffer capacity must stay frozen — the estimator-side
    // analogue of `workspace_forces::warmed_up_step_is_allocation_free`.
    let sizes = [1usize, 1, 2, 1, 1];
    let grouping = Grouping::from_labels(&[0, 0, 1, 1, 2]);
    let cfg = KsgConfig::default();
    let mut ws = InfoWorkspace::new();
    let data0 = fixture(160, &sizes, 42);
    let view0 = SampleView::new(&data0, 160, &sizes);
    for _ in 0..3 {
        ws.multi_information(&view0, &cfg);
        ws.pairwise_mi_matrix(&view0, &cfg);
        ws.decompose(&view0, &grouping, &cfg);
    }
    let sig = ws.capacity_signature();
    for call in 0..100 {
        // Fresh data every call (capacities depend on shape, not values).
        let data = fixture(160, &sizes, 1000 + call);
        let view = SampleView::new(&data, 160, &sizes);
        match call % 3 {
            0 => {
                ws.multi_information(&view, &cfg);
            }
            1 => {
                ws.pairwise_mi_matrix(&view, &cfg);
            }
            _ => {
                ws.decompose(&view, &grouping, &cfg);
            }
        }
        assert_eq!(
            ws.capacity_signature(),
            sig,
            "workspace allocated at call {call}"
        );
    }
}

#[test]
fn workspace_survives_shape_changes_between_calls() {
    // Shrinking and growing the view must never corrupt results: compare
    // against a fresh workspace every time.
    let shapes: [(usize, Vec<usize>); 4] = [
        (150, vec![1, 1, 1, 1]),
        (90, vec![2, 2]),
        (200, vec![1; 8]),
        (70, vec![1, 2]),
    ];
    let mut ws = InfoWorkspace::new();
    for (round, (rows, sizes)) in shapes.iter().enumerate() {
        let data = fixture(*rows, sizes, round as u64);
        let view = SampleView::new(&data, *rows, sizes);
        let got = ws.multi_information(&view, &KsgConfig::default());
        let want = InfoWorkspace::new().multi_information(&view, &KsgConfig::default());
        assert_eq!(got.to_bits(), want.to_bits(), "round {round}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The workspace is bit-identical to the frozen reference for random
    /// shapes, all variants, both k-NN paths and 1/8 workers.
    #[test]
    fn workspace_bit_identical_to_reference(
        rows in 20usize..120,
        nblocks in 2usize..7,
        vector_block in 0usize..2,
        k in 1usize..6,
        variant_idx in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let mut sizes = vec![1usize; nblocks];
        if vector_block == 1 {
            sizes[0] = 2;
        }
        let k = k.min(rows - 1);
        let data = fixture(rows, &sizes, seed);
        let view = SampleView::new(&data, rows, &sizes);
        let variant = VARIANTS[variant_idx];
        let want = reference_multi_information(&view, k, variant);
        let mut ws = InfoWorkspace::new();
        for knn in KNN_PATHS {
            for threads in [1usize, 8] {
                let got = ws.multi_information(
                    &view,
                    &KsgConfig { k, variant, threads, knn },
                );
                prop_assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{:?}/{:?}/t{}: {} vs {}",
                    variant, knn, threads, got, want
                );
            }
        }
    }
}
