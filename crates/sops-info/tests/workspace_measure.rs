//! Contracts of the unified measurement engine (`MeasureWorkspace` and
//! the per-family engines behind it), mirroring
//! `crates/sops-info/tests/workspace_info.rs`:
//!
//! * the migrated KDE, binning and CMI paths are **bit-identical** to
//!   their pre-refactor reference implementations (frozen below) for
//!   worker counts 1 and 8 and (for CMI) both joint k-NN paths;
//! * a warmed-up `MeasureWorkspace` performs zero heap allocations across
//!   100 mixed calls spanning every estimator family (buffer-capacity
//!   stability).
//!
//! Documented deviations of the frozen references from the historical
//! free functions — both confined to reduction order, neither observable
//! beyond the last ulp:
//!
//! * **binning**: the historical `HashMap` histograms summed counts in a
//!   randomized iteration order (`RandomState`), so the same input could
//!   produce different last-ulp entropies across *runs of the same
//!   binary*. The engine and the reference both emit counts in canonical
//!   lexicographic bin-tuple order.
//! * **CMI**: the historical fold accumulated the three ψ terms directly
//!   into the running sum (`((acc + ψ_z) − ψ_xz) − ψ_yz`); the engine
//!   (like the KSG engine before it) computes each sample's local term
//!   first and reduces in sample order — the association the span
//!   partition needs for any-thread bit-identity.
//!
//! The KDE reference is the historical code verbatim (sequential path);
//! its per-sample term was already a local value, so the engine matches
//! it exactly for any worker count.

use proptest::prelude::*;
use sops_info::gaussian::{equicorrelated_cov, sample_gaussian};
use sops_info::measure::discrete_plugin_config;
use sops_info::{
    BinnedWorkspace, BinningConfig, CmiConfig, CmiWorkspace, Grouping, KdeConfig, KdeWorkspace,
    KnnMode, KsgConfig, MeasureConfig, MeasureWorkspace, SampleView, SupportModel,
};
use sops_math::special::digamma;
use sops_math::{stats, NATS_TO_BITS};
use sops_spatial::block_max::{knn_block_max, BlockPoints};
use sops_spatial::KdTree;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Frozen pre-workspace references
// ---------------------------------------------------------------------------

/// The pre-`KdeWorkspace` estimator, verbatim (sequential path):
/// per-call bandwidth vectors, a fresh log buffer per (sample, term),
/// flat left-to-right fold of the per-sample log ratios.
fn reference_kde(view: &SampleView<'_>, cfg: &KdeConfig) -> f64 {
    fn loo_log_density(
        view: &SampleView<'_>,
        bandwidths: &[f64],
        i: usize,
        start: usize,
        end: usize,
    ) -> f64 {
        let mut acc = 0.0f64;
        let ri = view.row(i);
        let mut max_log = f64::NEG_INFINITY;
        let mut logs: Vec<f64> = Vec::with_capacity(view.rows - 1);
        for j in 0..view.rows {
            if j == i {
                continue;
            }
            let rj = view.row(j);
            let mut e = 0.0;
            for c in start..end {
                let z = (ri[c] - rj[c]) / bandwidths[c];
                e -= 0.5 * z * z;
            }
            logs.push(e);
            if e > max_log {
                max_log = e;
            }
        }
        for &e in &logs {
            acc += (e - max_log).exp();
        }
        let d = (end - start) as f64;
        let log_norm: f64 = bandwidths[start..end].iter().map(|h| h.ln()).sum::<f64>()
            + 0.5 * d * (2.0 * std::f64::consts::PI).ln();
        max_log + acc.ln() - ((view.rows - 1) as f64).ln() - log_norm
    }

    if view.blocks() < 2 {
        return 0.0;
    }
    assert!(view.rows >= 3);
    let d = view.stride();
    let m = view.rows as f64;
    let exponent = 1.0 / (d as f64 + 4.0);
    let scale = (4.0 / ((d as f64 + 2.0) * m)).powf(exponent) * cfg.bandwidth_factor;
    let bandwidths: Vec<f64> = (0..d)
        .map(|col| {
            let column: Vec<f64> = (0..view.rows).map(|r| view.row(r)[col]).collect();
            let sd = stats::variance(&column).sqrt();
            (sd * scale).max(1e-12)
        })
        .collect();
    let mut ranges = Vec::with_capacity(view.blocks());
    let mut off = 0;
    for &b in view.block_sizes {
        ranges.push((off, off + b));
        off += b;
    }
    let total = (0..view.rows).fold(0.0f64, |acc, i| {
        let joint = loo_log_density(view, &bandwidths, i, 0, view.stride());
        let marginals: f64 = ranges
            .iter()
            .map(|&(s, e)| loo_log_density(view, &bandwidths, i, s, e))
            .sum();
        acc + (joint - marginals)
    });
    total / view.rows as f64 * NATS_TO_BITS
}

/// The pre-`BinnedWorkspace` estimator with `HashMap` histograms, counts
/// canonicalized to lexicographic bin-tuple order (see module docs).
fn reference_binned(view: &SampleView<'_>, cfg: &BinningConfig) -> f64 {
    fn discretize(view: &SampleView<'_>, bins: usize) -> Vec<u16> {
        let d = view.stride();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for r in 0..view.rows {
            for (c, &v) in view.row(r).iter().enumerate() {
                lo[c] = lo[c].min(v);
                hi[c] = hi[c].max(v);
            }
        }
        let mut out = Vec::with_capacity(view.rows * d);
        for r in 0..view.rows {
            for (c, &v) in view.row(r).iter().enumerate() {
                let width = hi[c] - lo[c];
                let idx = if width <= 0.0 {
                    0
                } else {
                    (((v - lo[c]) / width * bins as f64) as usize).min(bins - 1)
                };
                out.push(idx as u16);
            }
        }
        out
    }

    /// Canonical-order histogram: HashMap counting (the historical data
    /// structure), then sort by bin tuple.
    fn histogram(binned: &[u16], rows: usize, stride: usize, start: usize, end: usize) -> Vec<u64> {
        let mut counts: HashMap<&[u16], u64> = HashMap::with_capacity(rows);
        for r in 0..rows {
            let key = &binned[r * stride + start..r * stride + end];
            *counts.entry(key).or_insert(0) += 1;
        }
        let mut pairs: Vec<(&[u16], u64)> = counts.into_iter().collect();
        pairs.sort_unstable_by(|a, b| a.0.cmp(b.0));
        pairs.into_iter().map(|(_, c)| c).collect()
    }

    assert!(cfg.bins >= 2);
    if view.blocks() < 2 {
        return 0.0;
    }
    let stride = view.stride();
    let binned = discretize(view, cfg.bins);
    let alphabet = |dims: usize, support: SupportModel, observed: usize| -> f64 {
        match support {
            SupportModel::Full => (cfg.bins as f64).powi(dims as i32),
            SupportModel::Observed => observed as f64,
        }
    };
    let mut sum_marginals = 0.0;
    let mut off = 0;
    for &b in view.block_sizes {
        let counts = histogram(&binned, view.rows, stride, off, off + b);
        let a = alphabet(b, cfg.marginal_support, counts.len());
        sum_marginals += sops_info::binning::shrink_entropy(&counts, a, cfg.shrinkage);
        off += b;
    }
    let joint_counts = histogram(&binned, view.rows, stride, 0, stride);
    let a = alphabet(stride, cfg.joint_support, joint_counts.len());
    let joint = sops_info::binning::shrink_entropy(&joint_counts, a, cfg.shrinkage);
    sum_marginals - joint
}

/// The pre-`CmiWorkspace` Frenzel–Pompe estimator, verbatim (sequential
/// path, brute-force joint k-NN), with the per-sample ψ terms localized
/// (see module docs).
fn reference_cmi(
    x: &[f64],
    y: &[f64],
    z: &[f64],
    rows: usize,
    dims: (usize, usize, usize),
    k: usize,
) -> f64 {
    let (dx, dy, dz) = dims;
    assert!(k >= 1 && k < rows);
    let mut joint = Vec::with_capacity(rows * (dx + dy + dz));
    for r in 0..rows {
        joint.extend_from_slice(&x[r * dx..(r + 1) * dx]);
        joint.extend_from_slice(&y[r * dy..(r + 1) * dy]);
        joint.extend_from_slice(&z[r * dz..(r + 1) * dz]);
    }
    let sizes = [dx, dy, dz];
    let points = BlockPoints::new(&joint, rows, &sizes);
    let tree_z = KdTree::build(dz, z);
    let psi_sum = (0..rows).fold(0.0f64, |acc, i| {
        let neighbours = knn_block_max(&points, i, k);
        let eps = neighbours.last().expect("reference_cmi: kth neighbour").1;
        let zq = &z[i * dz..(i + 1) * dz];
        let z_candidates = tree_z.range_indices(zq, eps);
        let mut c_z = 0usize;
        let mut c_xz = 0usize;
        let mut c_yz = 0usize;
        let xq = &x[i * dx..(i + 1) * dx];
        let yq = &y[i * dy..(i + 1) * dy];
        for &j in &z_candidates {
            if j == i {
                continue;
            }
            let zd = sops_spatial::dist_sq(&z[j * dz..(j + 1) * dz], zq).sqrt();
            if zd >= eps {
                continue;
            }
            c_z += 1;
            let xd = sops_spatial::dist_sq(&x[j * dx..(j + 1) * dx], xq).sqrt();
            if xd < eps {
                c_xz += 1;
            }
            let yd = sops_spatial::dist_sq(&y[j * dy..(j + 1) * dy], yq).sqrt();
            if yd < eps {
                c_yz += 1;
            }
        }
        acc + (digamma((c_z + 1) as f64) - digamma((c_xz + 1) as f64) - digamma((c_yz + 1) as f64))
    });
    let nats = digamma(k as f64) + psi_sum / rows as f64;
    nats * NATS_TO_BITS
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// A correlated-Gaussian fixture with mixed scalar/vector blocks.
fn fixture(rows: usize, block_sizes: &[usize], seed: u64) -> Vec<f64> {
    let dim: usize = block_sizes.iter().sum();
    sample_gaussian(&equicorrelated_cov(dim, 0.4), rows, seed)
}

fn cmi_fixture(
    rows: usize,
    dims: (usize, usize, usize),
    seed: u64,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut rng = sops_math::SplitMix64::new(seed);
    let (dx, dy, dz) = dims;
    let mut x = Vec::with_capacity(rows * dx);
    let mut y = Vec::with_capacity(rows * dy);
    let mut z = Vec::with_capacity(rows * dz);
    for _ in 0..rows {
        let shared = rng.next_standard_normal();
        for _ in 0..dx {
            x.push(0.7 * shared + 0.5 * rng.next_standard_normal());
        }
        for _ in 0..dy {
            y.push(0.7 * shared + 0.5 * rng.next_standard_normal());
        }
        for _ in 0..dz {
            z.push(shared + 0.3 * rng.next_standard_normal());
        }
    }
    (x, y, z)
}

// ---------------------------------------------------------------------------
// Bit-identity
// ---------------------------------------------------------------------------

#[test]
fn kde_bit_identical_to_reference_threads_1_and_8() {
    let mut ws = KdeWorkspace::new();
    for (rows, sizes, seed) in [
        (180usize, vec![1usize, 1], 3u64),
        (140, vec![1usize, 2, 1], 5),
        (120, vec![2usize, 2], 7),
        (100, vec![1usize; 6], 9),
    ] {
        let data = fixture(rows, &sizes, seed);
        let view = SampleView::new(&data, rows, &sizes);
        let want = reference_kde(&view, &KdeConfig::default());
        for threads in [1usize, 8] {
            let got = ws.multi_information(
                &view,
                &KdeConfig {
                    threads,
                    ..KdeConfig::default()
                },
            );
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "rows={rows} t{threads}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn kde_bandwidth_factor_propagates_bit_identically() {
    let sizes = [1usize, 1, 1];
    let data = fixture(150, &sizes, 11);
    let view = SampleView::new(&data, 150, &sizes);
    for factor in [0.5, 1.0, 2.0] {
        let cfg = KdeConfig {
            bandwidth_factor: factor,
            ..KdeConfig::default()
        };
        let want = reference_kde(&view, &cfg);
        let got = KdeWorkspace::new().multi_information(&view, &cfg);
        assert_eq!(got.to_bits(), want.to_bits(), "factor {factor}");
    }
}

#[test]
fn binned_bit_identical_to_reference_all_support_models() {
    let mut ws = BinnedWorkspace::new();
    for (rows, sizes, seed) in [
        (400usize, vec![1usize, 1], 1u64),
        (300, vec![1usize, 2, 1], 2),
        (250, vec![1usize; 8], 3),
        (150, vec![2usize, 2], 4),
    ] {
        let data = fixture(rows, &sizes, seed);
        let view = SampleView::new(&data, rows, &sizes);
        for shrinkage in [true, false] {
            for marginal_support in [SupportModel::Full, SupportModel::Observed] {
                for joint_support in [SupportModel::Full, SupportModel::Observed] {
                    // Skip the Full-joint overflow regime here (covered by
                    // the binning unit tests): 8^8 is still finite.
                    let cfg = BinningConfig {
                        bins: 8,
                        shrinkage,
                        marginal_support,
                        joint_support,
                    };
                    let want = reference_binned(&view, &cfg);
                    let got = ws.multi_information(&view, &cfg);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "rows={rows} shrink={shrinkage} m={marginal_support:?} j={joint_support:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn binned_bit_identical_across_bin_counts() {
    let sizes = [1usize, 1];
    let data = fixture(600, &sizes, 21);
    let view = SampleView::new(&data, 600, &sizes);
    let mut ws = BinnedWorkspace::new();
    // 65 bins pushes the joint histogram (65² = 4225 cells) onto the
    // sort path; 8 stays dense — both must match the reference.
    for bins in [2usize, 8, 65] {
        let cfg = BinningConfig {
            bins,
            ..BinningConfig::default()
        };
        let want = reference_binned(&view, &cfg);
        let got = ws.multi_information(&view, &cfg);
        assert_eq!(got.to_bits(), want.to_bits(), "bins={bins}");
    }
}

#[test]
fn cmi_bit_identical_to_reference_threads_and_knn_paths() {
    let mut ws = CmiWorkspace::new();
    for (rows, dims, seed) in [
        (300usize, (1usize, 1usize, 1usize), 3u64),
        (200, (2, 2, 2), 5),
        (150, (1, 2, 1), 7),
    ] {
        let (x, y, z) = cmi_fixture(rows, dims, seed);
        let want = reference_cmi(&x, &y, &z, rows, dims, 4);
        for knn in [KnnMode::BruteForce, KnnMode::KdTree, KnnMode::Auto] {
            for threads in [1usize, 8] {
                let got = ws.conditional_mutual_information(
                    &x,
                    &y,
                    &z,
                    rows,
                    dims,
                    &CmiConfig { k: 4, threads, knn },
                );
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "rows={rows} dims={dims:?} {knn:?}/t{threads}: {got} vs {want}"
                );
            }
        }
    }
}

#[test]
fn cmi_quantized_data_paths_agree() {
    // Duplicated joint points and massive distance ties: where
    // non-canonical k-NN tie-breaking would make scan and tree diverge.
    let rows = 150;
    let mut rng = sops_math::SplitMix64::new(99);
    let x: Vec<f64> = (0..rows)
        .map(|_| rng.next_range(-2.0, 2.0).round())
        .collect();
    let y: Vec<f64> = (0..rows)
        .map(|_| rng.next_range(-2.0, 2.0).round())
        .collect();
    let z: Vec<f64> = (0..rows)
        .map(|_| rng.next_range(-2.0, 2.0).round())
        .collect();
    let want = reference_cmi(&x, &y, &z, rows, (1, 1, 1), 4);
    assert!(want.is_finite());
    let mut ws = CmiWorkspace::new();
    for knn in [KnnMode::BruteForce, KnnMode::KdTree, KnnMode::Auto] {
        for threads in [1usize, 8] {
            let got = ws.conditional_mutual_information(
                &x,
                &y,
                &z,
                rows,
                (1, 1, 1),
                &CmiConfig { k: 4, threads, knn },
            );
            assert_eq!(got.to_bits(), want.to_bits(), "{knn:?}/t{threads}");
        }
    }
}

#[test]
fn measure_workspace_dispatch_bit_identical_to_references() {
    // The trait-driven surface must add nothing numeric on top of the
    // engines — and therefore match the frozen references too.
    let sizes = [1usize, 1, 2];
    let data = fixture(200, &sizes, 13);
    let view = SampleView::new(&data, 200, &sizes);
    let mut ws = MeasureWorkspace::new();
    let kde = ws.multi_information(&view, &MeasureConfig::Kde(KdeConfig::default()));
    assert_eq!(
        kde.to_bits(),
        reference_kde(&view, &KdeConfig::default()).to_bits()
    );
    let binned = ws.multi_information(&view, &MeasureConfig::Binned(BinningConfig::default()));
    assert_eq!(
        binned.to_bits(),
        reference_binned(&view, &BinningConfig::default()).to_bits()
    );
    let plugin = ws.multi_information(&view, &MeasureConfig::DiscretePlugin { bins: 8 });
    assert_eq!(
        plugin.to_bits(),
        reference_binned(&view, &discrete_plugin_config(8)).to_bits()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// KDE and binning engines are bit-identical to the frozen references
    /// for random shapes and both worker counts.
    #[test]
    fn engines_bit_identical_to_references(
        rows in 20usize..100,
        nblocks in 2usize..6,
        vector_block in 0usize..2,
        seed in 0u64..10_000,
    ) {
        let mut sizes = vec![1usize; nblocks];
        if vector_block == 1 {
            sizes[0] = 2;
        }
        let data = fixture(rows, &sizes, seed);
        let view = SampleView::new(&data, rows, &sizes);

        let want_kde = reference_kde(&view, &KdeConfig::default());
        let want_bin = reference_binned(&view, &BinningConfig::default());
        let mut kde_ws = KdeWorkspace::new();
        let mut bin_ws = BinnedWorkspace::new();
        for threads in [1usize, 8] {
            let got = kde_ws.multi_information(
                &view,
                &KdeConfig { threads, ..KdeConfig::default() },
            );
            prop_assert_eq!(got.to_bits(), want_kde.to_bits(), "kde t{}", threads);
        }
        let got = bin_ws.multi_information(&view, &BinningConfig::default());
        prop_assert_eq!(got.to_bits(), want_bin.to_bits(), "binned");
    }

    /// The CMI engine is bit-identical to the frozen reference for random
    /// shapes, both k-NN paths and 1/8 workers.
    #[test]
    fn cmi_engine_bit_identical_to_reference(
        rows in 20usize..120,
        dim_sel in 0usize..3,
        k in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let dims = [(1usize, 1usize, 1usize), (2, 2, 2), (1, 2, 1)][dim_sel];
        let k = k.min(rows - 1);
        let (x, y, z) = cmi_fixture(rows, dims, seed);
        let want = reference_cmi(&x, &y, &z, rows, dims, k);
        let mut ws = CmiWorkspace::new();
        for knn in [KnnMode::BruteForce, KnnMode::KdTree] {
            for threads in [1usize, 8] {
                let got = ws.conditional_mutual_information(
                    &x, &y, &z, rows, dims,
                    &CmiConfig { k, threads, knn },
                );
                prop_assert_eq!(
                    got.to_bits(), want.to_bits(),
                    "{:?}/t{}: {} vs {}", knn, threads, got, want
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Zero steady-state allocations
// ---------------------------------------------------------------------------

#[test]
fn warmed_up_measure_workspace_is_allocation_free_over_100_calls() {
    // One workspace drives the full mixed workload — every estimator
    // family plus CMI — on fixed shapes: after warm-up, every internal
    // buffer capacity must stay frozen. (The Gaussian baseline's per-call
    // covariance matrix is documented out of the contract and not part of
    // the signature; its prepared-view buffers are.)
    let sizes = [1usize, 1, 2, 1];
    let grouping = Grouping::from_labels(&[0, 0, 1, 1]);
    let mut ws = MeasureWorkspace::new();
    let selections = [
        MeasureConfig::Ksg(KsgConfig::default()),
        MeasureConfig::Kde(KdeConfig {
            threads: 8,
            ..KdeConfig::default()
        }),
        MeasureConfig::Binned(BinningConfig::default()),
        MeasureConfig::DiscretePlugin { bins: 8 },
        MeasureConfig::Gaussian,
    ];
    let warm_data = fixture(120, &sizes, 42);
    let warm_view = SampleView::new(&warm_data, 120, &sizes);
    let (wx, wy, wz) = cmi_fixture(120, (1, 1, 1), 42);
    for _ in 0..3 {
        for cfg in &selections {
            // Both surfaces: the direct one-call dispatch and the
            // two-phase trait path the pipeline workers drive (the
            // latter warms the prepared-view buffers).
            ws.multi_information(&warm_view, cfg);
            let estimator = ws.estimator_mut(cfg);
            estimator.prepare(&warm_view);
            estimator.estimate();
        }
        ws.decompose(&warm_view, &grouping, &KsgConfig::default());
        for threads in [1usize, 8] {
            ws.conditional_mutual_information(
                &wx,
                &wy,
                &wz,
                120,
                (1, 1, 1),
                &CmiConfig {
                    threads,
                    ..CmiConfig::default()
                },
            );
        }
    }
    let sig = ws.capacity_signature();
    for call in 0..100u64 {
        // Fresh data every call (capacities depend on shape, not values).
        let data = fixture(120, &sizes, 1000 + call);
        let view = SampleView::new(&data, 120, &sizes);
        match call % 7 {
            0 | 5 => {
                // Alternate the two dispatch surfaces across calls.
                let cfg = &selections[(call % 5) as usize];
                if call % 2 == 0 {
                    ws.multi_information(&view, cfg);
                } else {
                    let estimator = ws.estimator_mut(cfg);
                    estimator.prepare(&view);
                    estimator.estimate();
                }
            }
            1 => {
                ws.multi_information(
                    &view,
                    &MeasureConfig::Kde(KdeConfig {
                        threads: if call % 2 == 0 { 1 } else { 8 },
                        ..KdeConfig::default()
                    }),
                );
            }
            2 => {
                ws.multi_information(&view, &MeasureConfig::Binned(BinningConfig::default()));
            }
            3 => {
                let (x, y, z) = cmi_fixture(120, (1, 1, 1), 2000 + call);
                ws.conditional_mutual_information(
                    &x,
                    &y,
                    &z,
                    120,
                    (1, 1, 1),
                    &CmiConfig {
                        threads: if call % 2 == 0 { 1 } else { 8 },
                        ..CmiConfig::default()
                    },
                );
            }
            4 => {
                ws.decompose(&view, &grouping, &KsgConfig::default());
            }
            _ => {
                ws.multi_information(&view, &MeasureConfig::Gaussian);
            }
        }
        assert_eq!(
            ws.capacity_signature(),
            sig,
            "measure workspace allocated at call {call}"
        );
    }
}

#[test]
fn engines_survive_shape_changes_between_calls() {
    // Shrinking and growing the view must never corrupt results: compare
    // against a fresh workspace every time.
    let shapes: [(usize, Vec<usize>); 4] = [
        (100, vec![1, 1, 1]),
        (60, vec![2, 2]),
        (150, vec![1; 6]),
        (50, vec![1, 2]),
    ];
    let mut ws = MeasureWorkspace::new();
    for (round, (rows, sizes)) in shapes.iter().enumerate() {
        let data = fixture(*rows, sizes, round as u64);
        let view = SampleView::new(&data, *rows, sizes);
        for cfg in [
            MeasureConfig::Kde(KdeConfig::default()),
            MeasureConfig::Binned(BinningConfig::default()),
        ] {
            let got = ws.multi_information(&view, &cfg);
            let want = MeasureWorkspace::new().multi_information(&view, &cfg);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "round {round} {}",
                cfg.label()
            );
        }
    }
}
