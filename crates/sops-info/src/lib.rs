//! Information-theoretic estimators (paper §2, §3.1, §5.3).
//!
//! The paper quantifies self-organization as an increase over time of the
//! multi-information
//!
//! ```text
//! I(W₁, …, W_n) = Σᵢ H(Wᵢ) − H(W₁, …, W_n)
//! ```
//!
//! between observer variables (the aligned, permutation-reduced particle
//! positions), estimated from `m` ensemble samples with the
//! Kraskov–Stögbauer–Grassberger (KSG) k-NN estimator. This crate
//! implements:
//!
//! * [`measure`] — the unified measurement engine: the [`Estimator`]
//!   trait (`prepare`/`estimate`), [`MeasureConfig`] selection enum, and
//!   [`MeasureWorkspace`], one persistent engine per estimator family
//!   behind a single polymorphic surface — what the pipeline's evaluation
//!   workers own;
//! * [`ksg`] — the paper's exact formula (Eq. 18–20) plus the two
//!   canonical KSG variants as ablations;
//! * [`workspace`] — [`InfoWorkspace`], the persistent allocation-free
//!   engine behind every KSG entry point (shared per-block indexes,
//!   adaptive joint k-NN, bit-identical for any worker count);
//! * [`kde`] — the kernel-density baseline the paper found "multiple
//!   orders of magnitudes slower" with larger variance (§5.3), behind the
//!   persistent [`kde::KdeWorkspace`];
//! * [`binning`] — the James–Stein shrinkage binning baseline the paper
//!   found to overestimate in high dimension (§5.3), behind the
//!   persistent, hash-free [`binning::BinnedWorkspace`];
//! * [`entropy`] — Kozachenko–Leonenko differential entropy, used for the
//!   marginal/joint entropy evolution discussion (§6, §7.1);
//! * [`gaussian`] — analytic Gaussian multi-information + correlated
//!   samplers (validation ground truth), plus the empirical-covariance
//!   Gaussian baseline estimator;
//! * [`decomposition`] — the coarse-graining decomposition of Eq. 4–5;
//! * [`conditional`] — Frenzel–Pompe conditional mutual information and
//!   transfer entropy (§7.3 tooling), behind the persistent
//!   [`conditional::CmiWorkspace`] with adaptive joint k-NN;
//! * [`discrete`] — plug-in entropy / mutual information over counts
//!   (test substrate and building block for the binning estimator).
//!
//! All public estimators report **bits**.

pub mod binning;
pub mod conditional;
pub mod decomposition;
pub mod discrete;
pub mod entropy;
pub mod gaussian;
pub mod kde;
pub mod ksg;
pub mod measure;
pub mod workspace;

pub use binning::{BinnedWorkspace, BinningConfig, SupportModel};
pub use conditional::{transfer_entropy, CmiConfig, CmiWorkspace};
pub use decomposition::{decompose, Decomposition, Grouping};
pub use kde::{KdeConfig, KdeWorkspace};
pub use ksg::{multi_information, pairwise_mi_matrix, KnnMode, KsgConfig, KsgVariant};
pub use measure::{
    BinnedEstimator, Estimator, GaussianEstimator, KdeEstimator, KsgEstimator, MeasureConfig,
    MeasureWorkspace, StridedEstimator, StridedFamily,
};
pub use workspace::InfoWorkspace;

/// Deprecated shim re-exports (see each function's migration note).
#[allow(deprecated)]
pub use conditional::conditional_mutual_information;

/// A borrowed view of `rows` joint samples, each a concatenation of
/// observer blocks with the given sizes — the common input format of every
/// estimator in this crate.
///
/// For `n` particles in 2-D, `block_sizes = [2; n]` and a row is
/// `(x₀, y₀, x₁, y₁, …)`.
#[derive(Debug, Clone, Copy)]
pub struct SampleView<'a> {
    /// Row-major data, `rows × Σ block_sizes` values.
    pub data: &'a [f64],
    /// Number of samples `m`.
    pub rows: usize,
    /// Dimensions of each observer variable.
    pub block_sizes: &'a [usize],
}

impl<'a> SampleView<'a> {
    /// Creates a view, validating the layout.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent sizes, zero rows or zero blocks.
    pub fn new(data: &'a [f64], rows: usize, block_sizes: &'a [usize]) -> Self {
        assert!(rows > 0, "SampleView: no samples");
        assert!(!block_sizes.is_empty(), "SampleView: no blocks");
        let stride: usize = block_sizes.iter().sum();
        assert!(stride > 0, "SampleView: zero total dimension");
        assert_eq!(
            data.len(),
            rows * stride,
            "SampleView: data length {} != rows {rows} × stride {stride}",
            data.len()
        );
        SampleView {
            data,
            rows,
            block_sizes,
        }
    }

    /// Joint dimension (row stride).
    pub fn stride(&self) -> usize {
        self.block_sizes.iter().sum()
    }

    /// Number of observer blocks.
    pub fn blocks(&self) -> usize {
        self.block_sizes.len()
    }

    /// One row.
    pub fn row(&self, r: usize) -> &[f64] {
        let s = self.stride();
        &self.data[r * s..(r + 1) * s]
    }

    /// Extracts the columns of block `b` as a contiguous `rows × size_b`
    /// matrix (copies).
    pub fn block_columns(&self, b: usize) -> Vec<f64> {
        let s = self.stride();
        let start: usize = self.block_sizes[..b].iter().sum();
        let len = self.block_sizes[b];
        let mut out = Vec::with_capacity(self.rows * len);
        for r in 0..self.rows {
            out.extend_from_slice(&self.data[r * s + start..r * s + start + len]);
        }
        out
    }

    /// Extracts several blocks merged into one contiguous matrix, in the
    /// given order — used by the decomposition to form coarse observers.
    pub fn merged_blocks(&self, blocks: &[usize]) -> Vec<f64> {
        let s = self.stride();
        let offsets: Vec<usize> = self
            .block_sizes
            .iter()
            .scan(0, |acc, &b| {
                let off = *acc;
                *acc += b;
                Some(off)
            })
            .collect();
        let total: usize = blocks.iter().map(|&b| self.block_sizes[b]).sum();
        let mut out = Vec::with_capacity(self.rows * total);
        for r in 0..self.rows {
            let row = &self.data[r * s..(r + 1) * s];
            for &b in blocks {
                out.extend_from_slice(&row[offsets[b]..offsets[b] + self.block_sizes[b]]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_accessors() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let sizes = [2usize, 1];
        let v = SampleView::new(&data, 2, &sizes);
        assert_eq!(v.stride(), 3);
        assert_eq!(v.blocks(), 2);
        assert_eq!(v.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(v.block_columns(0), vec![1.0, 2.0, 4.0, 5.0]);
        assert_eq!(v.block_columns(1), vec![3.0, 6.0]);
        assert_eq!(v.merged_blocks(&[1, 0]), vec![3.0, 1.0, 2.0, 6.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn view_rejects_bad_layout() {
        SampleView::new(&[1.0, 2.0, 3.0], 2, &[2]);
    }
}
