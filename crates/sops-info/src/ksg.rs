//! Kraskov–Stögbauer–Grassberger multi-information estimation
//! (paper Eq. 18–20).
//!
//! The estimator for `m` samples of `n` observer variables is
//!
//! ```text
//! I(W₁,…,W_n) = ψ(k) + (n−1) ψ(m) − ⟨ψ(c₁) + … + ψ(c_n)⟩
//! ```
//!
//! where for each sample the `k`-th nearest neighbour is found under the
//! max-over-blocks metric `‖w′ − w‖ = maxᵢ ‖w′ᵢ − wᵢ‖₂` (Eq. 19) and `cᵢ`
//! counts, per observer `i`, the samples strictly closer than the `i`-th
//! block of that `k`-th neighbour (Eq. 20).
//!
//! Three variants are provided:
//!
//! * [`KsgVariant::Paper`] — Eq. 18–20 exactly as printed: *per-block*
//!   radii equal to the distance from `wᵢ` to the k-th neighbour's block
//!   `i`, strict counts, self included then subtracted, no correction
//!   term. Measured on independent Gaussians this literal transcription
//!   carries a positive bias of several bits that grows with `n` — the
//!   printed equation is a loose rendering of Kraskov's estimator 2,
//!   whose radii span the *rectangle over all k neighbours*. Since the
//!   paper's own figures start near zero at `t = 0` (i.i.d. initial
//!   conditions), the authors clearly ran a calibrated estimator; we keep
//!   the literal formula for fidelity but default to KSG1.
//! * [`KsgVariant::Ksg1`] (default) — Kraskov's estimator 1 generalized
//!   to `n` variables: one joint radius `ε` per sample, strict counts,
//!   `⟨Σ ψ(cᵢ + 1)⟩`. Bias ≈ 0 on independent data at all tested `n`.
//! * [`KsgVariant::Ksg2`] — Kraskov's estimator 2: rectangle per-block
//!   radii over all `k` neighbours, inclusive counts, `−(n−1)/k`
//!   correction.
//!
//! The `estimators` bench and `estimator_shootout` example reproduce the
//! calibration comparison.
//!
//! All variants share the SoA joint-kNN kernels of
//! `sops_spatial::block_max` (lane-transposed pruned scan in high joint
//! dimension, batched leaf kd-tree descent in low) — routing between
//! them changes throughput only, never bits.

use crate::workspace::InfoWorkspace;
use crate::SampleView;
use sops_math::PairMatrix;

/// Which KSG formula to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KsgVariant {
    /// Paper Eq. 18–20, verbatim (per-block radii from the k-th neighbour
    /// alone, strict counts, no correction term). Carries a large positive
    /// bias that grows with the number of observers — kept for
    /// transcription fidelity and exercised by the `estimators` bench; see
    /// the module docs for why the calibrated variants are preferred.
    Paper,
    /// Kraskov estimator 1 generalized to n variables (single joint
    /// radius, strict counts, `ψ(c+1)` terms). Well calibrated — the
    /// pipeline default.
    #[default]
    Ksg1,
    /// Kraskov estimator 2 (rectangle per-block radii over all k
    /// neighbours, inclusive counts, `−(n−1)/k` correction).
    Ksg2,
}

/// How the joint-space k-NN search is performed.
///
/// Both paths return identical results (the tree descent computes the
/// same block-max distances); the choice is purely a performance
/// trade-off on the joint dimension, which [`KnnMode::Auto`] makes per
/// term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KnnMode {
    /// Kd-tree descent for small joint dimensions (pairwise scalar MI),
    /// pruned brute-force scan where trees degenerate (high-dimensional
    /// joint spaces). The default.
    #[default]
    Auto,
    /// Always the pruned brute-force scan.
    BruteForce,
    /// The iterative kd-tree descent whenever structurally possible
    /// (joint dimension within the kd-tree's 255-dim limit; wider joint
    /// spaces fall back to the scan).
    KdTree,
}

/// KSG configuration.
#[derive(Debug, Clone, Copy)]
pub struct KsgConfig {
    /// Neighbour order `k`. The paper quotes `k = 5` in §5.3 and `k = 4`
    /// in §6; results are insensitive in `k ∈ [2, 10]` (§5.3). Default 4.
    pub k: usize,
    /// Formula variant.
    pub variant: KsgVariant,
    /// Worker threads (0 = default). Results are bit-identical for any
    /// thread count.
    pub threads: usize,
    /// Joint k-NN strategy (default: adaptive).
    pub knn: KnnMode,
}

impl Default for KsgConfig {
    fn default() -> Self {
        KsgConfig {
            k: 4,
            variant: KsgVariant::default(),
            threads: 0,
            knn: KnnMode::default(),
        }
    }
}

/// Estimates the multi-information (bits) between the observer blocks of
/// `view`.
///
/// Returns 0 for a single block (multi-information of one variable is 0 by
/// convention).
///
/// ```
/// use sops_info::{multi_information, KsgConfig, SampleView};
/// use sops_info::gaussian::{equicorrelated_cov, sample_gaussian};
/// // 600 samples of two correlated scalars (ρ = 0.8).
/// let data = sample_gaussian(&equicorrelated_cov(2, 0.8), 600, 7);
/// let view = SampleView::new(&data, 600, &[1, 1]);
/// let i = multi_information(&view, &KsgConfig::default());
/// assert!((i - 0.74).abs() < 0.25); // truth: −½·log2(1 − 0.64) ≈ 0.74 bits
/// ```
///
/// # Panics
///
/// Panics if `cfg.k == 0` or `cfg.k >= rows`.
///
/// This is a convenience shim over [`InfoWorkspace::multi_information`]
/// that spins up a throwaway workspace; repeated callers (the pipeline's
/// evaluation loop, parameter sweeps) should hold an [`InfoWorkspace`]
/// and reuse it.
pub fn multi_information(view: &SampleView<'_>, cfg: &KsgConfig) -> f64 {
    InfoWorkspace::new().multi_information(view, cfg)
}

/// Estimates pairwise mutual information (bits) between two blocks — a
/// convenience wrapper equivalent to `multi_information` with two blocks.
pub fn mutual_information(
    x: &[f64],
    y: &[f64],
    rows: usize,
    dim_x: usize,
    dim_y: usize,
    cfg: &KsgConfig,
) -> f64 {
    assert_eq!(x.len(), rows * dim_x, "mutual_information: x shape");
    assert_eq!(y.len(), rows * dim_y, "mutual_information: y shape");
    let mut data = Vec::with_capacity(rows * (dim_x + dim_y));
    for r in 0..rows {
        data.extend_from_slice(&x[r * dim_x..(r + 1) * dim_x]);
        data.extend_from_slice(&y[r * dim_y..(r + 1) * dim_y]);
    }
    let sizes = [dim_x, dim_y];
    let view = SampleView::new(&data, rows, &sizes);
    multi_information(&view, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{
        bivariate_gaussian_mi, equicorrelated_cov, gaussian_multi_information, sample_gaussian,
    };
    use sops_math::Matrix;

    const M: usize = 1500;

    fn estimate_on_gaussian(cov: &Matrix, block_sizes: &[usize], variant: KsgVariant) -> f64 {
        let data = sample_gaussian(cov, M, 2024);
        let view = SampleView::new(&data, M, block_sizes);
        multi_information(
            &view,
            &KsgConfig {
                k: 4,
                variant,
                ..KsgConfig::default()
            },
        )
    }

    #[test]
    fn independent_gaussians_give_near_zero() {
        let cov = Matrix::identity(4);
        for variant in [KsgVariant::Ksg1, KsgVariant::Ksg2] {
            let i = estimate_on_gaussian(&cov, &[1, 1, 1, 1], variant);
            assert!(i.abs() < 0.12, "{variant:?}: {i} should be ~0");
        }
    }

    #[test]
    fn paper_literal_variant_carries_documented_positive_bias() {
        // The verbatim Eq. 18-20 transcription over-counts (module docs);
        // its bias on independent data is large, positive, and grows with
        // the number of observers.
        let bias2 = estimate_on_gaussian(&Matrix::identity(2), &[1, 1], KsgVariant::Paper);
        let bias4 = estimate_on_gaussian(&Matrix::identity(4), &[1, 1, 1, 1], KsgVariant::Paper);
        assert!(bias2 > 0.5, "n=2 bias {bias2}");
        assert!(
            bias4 > bias2 + 0.5,
            "bias must grow with n: {bias2} -> {bias4}"
        );
    }

    #[test]
    fn bivariate_gaussian_mi_recovered() {
        for rho in [0.5, 0.8] {
            let truth = bivariate_gaussian_mi(rho);
            let cov = equicorrelated_cov(2, rho);
            for variant in [KsgVariant::Ksg1, KsgVariant::Ksg2] {
                let est = estimate_on_gaussian(&cov, &[1, 1], variant);
                assert!(
                    (est - truth).abs() < 0.15,
                    "{variant:?} rho={rho}: est {est} vs truth {truth}"
                );
            }
        }
    }

    #[test]
    fn trivariate_equicorrelated_recovered() {
        let cov = equicorrelated_cov(3, 0.6);
        let truth = gaussian_multi_information(&cov, &[1, 1, 1]);
        let est = estimate_on_gaussian(&cov, &[1, 1, 1], KsgVariant::Ksg1);
        assert!((est - truth).abs() < 0.2, "est {est} vs truth {truth}");
    }

    #[test]
    fn vector_blocks_recovered() {
        // Two 2-d blocks with cross-correlation only between dims (0,2):
        // like two particles whose x-coordinates are correlated.
        let mut cov = Matrix::identity(4);
        cov[(0, 2)] = 0.7;
        cov[(2, 0)] = 0.7;
        let truth = gaussian_multi_information(&cov, &[2, 2]);
        let est = estimate_on_gaussian(&cov, &[2, 2], KsgVariant::Ksg1);
        assert!((est - truth).abs() < 0.15, "est {est} vs truth {truth}");
    }

    #[test]
    fn stronger_coupling_increases_estimate() {
        let weak = estimate_on_gaussian(&equicorrelated_cov(2, 0.3), &[1, 1], KsgVariant::Ksg1);
        let strong = estimate_on_gaussian(&equicorrelated_cov(2, 0.9), &[1, 1], KsgVariant::Ksg1);
        assert!(strong > weak + 0.5);
    }

    #[test]
    fn invariant_under_rigid_shift_and_scale_of_all_samples() {
        // MI is invariant under any invertible per-block transform; check
        // shift + uniform scale.
        let cov = equicorrelated_cov(2, 0.7);
        let data = sample_gaussian(&cov, 800, 55);
        let sizes = [1usize, 1];
        let base = multi_information(&SampleView::new(&data, 800, &sizes), &KsgConfig::default());
        let transformed: Vec<f64> = data
            .chunks(2)
            .flat_map(|r| [3.0 * r[0] + 10.0, 3.0 * r[1] - 5.0])
            .collect();
        let shifted = multi_information(
            &SampleView::new(&transformed, 800, &sizes),
            &KsgConfig::default(),
        );
        assert!(
            (base - shifted).abs() < 1e-9,
            "uniform scaling + shift must not change the estimate: {base} vs {shifted}"
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let cov = equicorrelated_cov(3, 0.4);
        let data = sample_gaussian(&cov, 300, 77);
        let sizes = [1usize, 1, 1];
        let view = SampleView::new(&data, 300, &sizes);
        let one = multi_information(
            &view,
            &KsgConfig {
                threads: 1,
                ..KsgConfig::default()
            },
        );
        let many = multi_information(
            &view,
            &KsgConfig {
                threads: 8,
                ..KsgConfig::default()
            },
        );
        assert!((one - many).abs() < 1e-12);
    }

    #[test]
    fn insensitive_to_k_in_paper_range() {
        // The paper reports similar results for k in {2, 5, 10}.
        let cov = equicorrelated_cov(2, 0.6);
        let data = sample_gaussian(&cov, M, 31);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, M, &sizes);
        let estimates: Vec<f64> = [2, 5, 10]
            .iter()
            .map(|&k| {
                multi_information(
                    &view,
                    &KsgConfig {
                        k,
                        ..KsgConfig::default()
                    },
                )
            })
            .collect();
        let spread = estimates.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - estimates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 0.12, "k-sensitivity too high: {estimates:?}");
    }

    #[test]
    fn single_block_returns_zero() {
        let data = vec![1.0, 2.0, 3.0, 4.0];
        let sizes = [1usize];
        let view = SampleView::new(&data, 4, &sizes);
        assert_eq!(multi_information(&view, &KsgConfig::default()), 0.0);
    }

    #[test]
    fn pairwise_wrapper_matches_two_block_call() {
        let cov = equicorrelated_cov(2, 0.5);
        let data = sample_gaussian(&cov, 400, 13);
        let x: Vec<f64> = data.iter().step_by(2).copied().collect();
        let y: Vec<f64> = data.iter().skip(1).step_by(2).copied().collect();
        let via_wrapper = mutual_information(&x, &y, 400, 1, 1, &KsgConfig::default());
        let sizes = [1usize, 1];
        let direct = multi_information(&SampleView::new(&data, 400, &sizes), &KsgConfig::default());
        assert!((via_wrapper - direct).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn k_must_be_less_than_rows() {
        let data = vec![0.0; 6];
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 3, &sizes);
        multi_information(
            &view,
            &KsgConfig {
                k: 3,
                ..KsgConfig::default()
            },
        );
    }
}

/// Pairwise mutual-information matrix between all observer blocks of
/// `view`: entry `(i, j)` is `I(Wᵢ; Wⱼ)` in bits, diagonal 0, returned
/// as a flat symmetric [`PairMatrix`] (upper triangle only — half the
/// storage of the old `Vec<Vec<f64>>` and symmetric by construction).
///
/// §7.3 points at interaction-structure analyses (Kahle et al.); the
/// pairwise matrix is their first-order ingredient and a useful
/// diagnostic of *where* in the collective the correlation sits.
/// Parallelized over pairs; per-block count indexes are built once and
/// shared by every pair (see [`InfoWorkspace::pairwise_mi_matrix`], of
/// which this is a throwaway-workspace shim).
pub fn pairwise_mi_matrix(view: &SampleView<'_>, cfg: &KsgConfig) -> PairMatrix {
    InfoWorkspace::new().pairwise_mi_matrix(view, cfg)
}

#[cfg(test)]
mod pairwise_tests {
    use super::*;
    use crate::gaussian::{bivariate_gaussian_mi, sample_gaussian};
    use sops_math::Matrix;

    #[test]
    fn matrix_matches_bivariate_truths() {
        // Three scalars: (0,1) strongly coupled, (0,2)/(1,2) independent.
        let mut cov = Matrix::identity(3);
        cov[(0, 1)] = 0.8;
        cov[(1, 0)] = 0.8;
        let data = sample_gaussian(&cov, 1200, 41);
        let sizes = [1usize, 1, 1];
        let view = SampleView::new(&data, 1200, &sizes);
        let m = pairwise_mi_matrix(&view, &KsgConfig::default());
        let truth = bivariate_gaussian_mi(0.8);
        assert!(
            (m.get(0, 1) - truth).abs() < 0.12,
            "{} vs {truth}",
            m.get(0, 1)
        );
        assert!(
            m.get(0, 2).abs() < 0.08,
            "independent pair: {}",
            m.get(0, 2)
        );
        assert!(m.get(1, 2).abs() < 0.08);
        // Symmetry by construction + zero diagonal.
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn single_block_gives_empty_structure() {
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let sizes = [1usize];
        let view = SampleView::new(&data, 6, &sizes);
        let m = pairwise_mi_matrix(&view, &KsgConfig::default());
        assert_eq!(m.types(), 1);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn pairwise_matches_per_pair_multi_information() {
        // The flat matrix must agree exactly with independent two-block
        // estimates over merged pair views (the old implementation).
        let mut cov = Matrix::identity(4);
        cov[(0, 3)] = 0.6;
        cov[(3, 0)] = 0.6;
        let data = sample_gaussian(&cov, 350, 23);
        let sizes = [1usize, 2, 1];
        let view = SampleView::new(&data, 350, &sizes);
        let cfg = KsgConfig {
            threads: 1,
            ..KsgConfig::default()
        };
        let m = pairwise_mi_matrix(&view, &cfg);
        for i in 0..3 {
            for j in (i + 1)..3 {
                let merged = view.merged_blocks(&[i, j]);
                let pair_sizes = [sizes[i], sizes[j]];
                let pair_view = SampleView::new(&merged, 350, &pair_sizes);
                let want = multi_information(&pair_view, &cfg);
                assert_eq!(
                    m.get(i, j).to_bits(),
                    want.to_bits(),
                    "pair ({i},{j}): {} vs {want}",
                    m.get(i, j)
                );
            }
        }
    }
}
