//! Kraskov–Stögbauer–Grassberger multi-information estimation
//! (paper Eq. 18–20).
//!
//! The estimator for `m` samples of `n` observer variables is
//!
//! ```text
//! I(W₁,…,W_n) = ψ(k) + (n−1) ψ(m) − ⟨ψ(c₁) + … + ψ(c_n)⟩
//! ```
//!
//! where for each sample the `k`-th nearest neighbour is found under the
//! max-over-blocks metric `‖w′ − w‖ = maxᵢ ‖w′ᵢ − wᵢ‖₂` (Eq. 19) and `cᵢ`
//! counts, per observer `i`, the samples strictly closer than the `i`-th
//! block of that `k`-th neighbour (Eq. 20).
//!
//! Three variants are provided:
//!
//! * [`KsgVariant::Paper`] — Eq. 18–20 exactly as printed: *per-block*
//!   radii equal to the distance from `wᵢ` to the k-th neighbour's block
//!   `i`, strict counts, self included then subtracted, no correction
//!   term. Measured on independent Gaussians this literal transcription
//!   carries a positive bias of several bits that grows with `n` — the
//!   printed equation is a loose rendering of Kraskov's estimator 2,
//!   whose radii span the *rectangle over all k neighbours*. Since the
//!   paper's own figures start near zero at `t = 0` (i.i.d. initial
//!   conditions), the authors clearly ran a calibrated estimator; we keep
//!   the literal formula for fidelity but default to KSG1.
//! * [`KsgVariant::Ksg1`] (default) — Kraskov's estimator 1 generalized
//!   to `n` variables: one joint radius `ε` per sample, strict counts,
//!   `⟨Σ ψ(cᵢ + 1)⟩`. Bias ≈ 0 on independent data at all tested `n`.
//! * [`KsgVariant::Ksg2`] — Kraskov's estimator 2: rectangle per-block
//!   radii over all `k` neighbours, inclusive counts, `−(n−1)/k`
//!   correction.
//!
//! The `estimators` bench and `estimator_shootout` example reproduce the
//! calibration comparison.

use crate::SampleView;
use sops_math::special::digamma;
use sops_math::NATS_TO_BITS;
use sops_spatial::block_max::{knn_block_max, BlockPoints};
use sops_spatial::KdTree;

/// Which KSG formula to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KsgVariant {
    /// Paper Eq. 18–20, verbatim (per-block radii from the k-th neighbour
    /// alone, strict counts, no correction term). Carries a large positive
    /// bias that grows with the number of observers — kept for
    /// transcription fidelity and exercised by the `estimators` bench; see
    /// the module docs for why the calibrated variants are preferred.
    Paper,
    /// Kraskov estimator 1 generalized to n variables (single joint
    /// radius, strict counts, `ψ(c+1)` terms). Well calibrated — the
    /// pipeline default.
    #[default]
    Ksg1,
    /// Kraskov estimator 2 (rectangle per-block radii over all k
    /// neighbours, inclusive counts, `−(n−1)/k` correction).
    Ksg2,
}

/// KSG configuration.
#[derive(Debug, Clone, Copy)]
pub struct KsgConfig {
    /// Neighbour order `k`. The paper quotes `k = 5` in §5.3 and `k = 4`
    /// in §6; results are insensitive in `k ∈ [2, 10]` (§5.3). Default 4.
    pub k: usize,
    /// Formula variant.
    pub variant: KsgVariant,
    /// Worker threads (0 = default).
    pub threads: usize,
}

impl Default for KsgConfig {
    fn default() -> Self {
        KsgConfig {
            k: 4,
            variant: KsgVariant::default(),
            threads: 0,
        }
    }
}

/// Estimates the multi-information (bits) between the observer blocks of
/// `view`.
///
/// Returns 0 for a single block (multi-information of one variable is 0 by
/// convention).
///
/// ```
/// use sops_info::{multi_information, KsgConfig, SampleView};
/// use sops_info::gaussian::{equicorrelated_cov, sample_gaussian};
/// // 600 samples of two correlated scalars (ρ = 0.8).
/// let data = sample_gaussian(&equicorrelated_cov(2, 0.8), 600, 7);
/// let view = SampleView::new(&data, 600, &[1, 1]);
/// let i = multi_information(&view, &KsgConfig::default());
/// assert!((i - 0.74).abs() < 0.25); // truth: −½·log2(1 − 0.64) ≈ 0.74 bits
/// ```
///
/// # Panics
///
/// Panics if `cfg.k == 0` or `cfg.k >= rows`.
pub fn multi_information(view: &SampleView<'_>, cfg: &KsgConfig) -> f64 {
    let n = view.blocks();
    if n < 2 {
        return 0.0;
    }
    assert!(cfg.k >= 1, "KSG: k must be >= 1");
    assert!(
        cfg.k < view.rows,
        "KSG: k = {} needs more than {} samples",
        cfg.k,
        view.rows
    );
    let m = view.rows;
    let points = BlockPoints::new(view.data, m, view.block_sizes);

    // Per-block kd-trees for the range counts.
    let trees: Vec<KdTree> = (0..n)
        .map(|b| KdTree::build(view.block_sizes[b], &view.block_columns(b)))
        .collect();

    let threads = if cfg.threads == 0 {
        sops_par::default_threads()
    } else {
        cfg.threads
    };

    // ⟨Σ_b ψ(count_b)⟩ accumulated over samples, in parallel.
    let psi_sum = sops_par::parallel_reduce(
        m,
        threads,
        || 0.0f64,
        |acc, i| {
            let neighbours = knn_block_max(&points, i, cfg.k);
            let kth = neighbours.last().expect("KSG: k-th neighbour must exist").0;
            let mut local = 0.0;
            match cfg.variant {
                KsgVariant::Paper => {
                    // Literal Eq. 20: per-block radius taken from the k-th
                    // neighbour alone, strict count, self subtracted.
                    let radii = points.block_dists(i, kth);
                    for (b, tree) in trees.iter().enumerate() {
                        let q = points.block(i, b);
                        // Strict count includes self (distance 0), then −1
                        // removes it. Clamped at 1: a zero count occurs
                        // when the k-th neighbour's block coincides with
                        // the nearest, where ψ would diverge.
                        let c = tree
                            .count_within(q, radii[b], true)
                            .saturating_sub(1)
                            .max(1);
                        local += digamma(c as f64);
                    }
                }
                KsgVariant::Ksg2 => {
                    // Rectangle geometry of Kraskov's estimator 2: the
                    // per-block radius is the largest block-b distance over
                    // *all* k nearest neighbours, counts inclusive.
                    let mut radii = vec![0.0f64; n];
                    for &(j, _) in &neighbours {
                        for (b, r) in points.block_dists(i, j).into_iter().enumerate() {
                            if r > radii[b] {
                                radii[b] = r;
                            }
                        }
                    }
                    for (b, tree) in trees.iter().enumerate() {
                        let q = points.block(i, b);
                        // Inclusive count; the radius-realizing neighbour
                        // is always inside, so c ≥ 1 after removing self.
                        let c = tree.count_within(q, radii[b], false) - 1;
                        local += digamma(c as f64);
                    }
                }
                KsgVariant::Ksg1 => {
                    // One joint radius ε = block-max distance to the k-th
                    // neighbour; strict per-block counts, ψ(c + 1).
                    let eps = neighbours.last().unwrap().1;
                    for (b, tree) in trees.iter().enumerate() {
                        let q = points.block(i, b);
                        let c = tree.count_within(q, eps, true) - 1; // minus self
                        local += digamma((c + 1) as f64);
                    }
                }
            }
            acc + local
        },
        |a, b| a + b,
    );

    let mean_psi = psi_sum / m as f64;
    let nm1 = (n - 1) as f64;
    let nats = match cfg.variant {
        KsgVariant::Paper => digamma(cfg.k as f64) + nm1 * digamma(m as f64) - mean_psi,
        KsgVariant::Ksg1 => digamma(cfg.k as f64) + nm1 * digamma(m as f64) - mean_psi,
        KsgVariant::Ksg2 => {
            digamma(cfg.k as f64) - nm1 / cfg.k as f64 + nm1 * digamma(m as f64) - mean_psi
        }
    };
    nats * NATS_TO_BITS
}

/// Estimates pairwise mutual information (bits) between two blocks — a
/// convenience wrapper equivalent to `multi_information` with two blocks.
pub fn mutual_information(
    x: &[f64],
    y: &[f64],
    rows: usize,
    dim_x: usize,
    dim_y: usize,
    cfg: &KsgConfig,
) -> f64 {
    assert_eq!(x.len(), rows * dim_x, "mutual_information: x shape");
    assert_eq!(y.len(), rows * dim_y, "mutual_information: y shape");
    let mut data = Vec::with_capacity(rows * (dim_x + dim_y));
    for r in 0..rows {
        data.extend_from_slice(&x[r * dim_x..(r + 1) * dim_x]);
        data.extend_from_slice(&y[r * dim_y..(r + 1) * dim_y]);
    }
    let sizes = [dim_x, dim_y];
    let view = SampleView::new(&data, rows, &sizes);
    multi_information(&view, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{
        bivariate_gaussian_mi, equicorrelated_cov, gaussian_multi_information, sample_gaussian,
    };
    use sops_math::Matrix;

    const M: usize = 1500;

    fn estimate_on_gaussian(cov: &Matrix, block_sizes: &[usize], variant: KsgVariant) -> f64 {
        let data = sample_gaussian(cov, M, 2024);
        let view = SampleView::new(&data, M, block_sizes);
        multi_information(
            &view,
            &KsgConfig {
                k: 4,
                variant,
                threads: 0,
            },
        )
    }

    #[test]
    fn independent_gaussians_give_near_zero() {
        let cov = Matrix::identity(4);
        for variant in [KsgVariant::Ksg1, KsgVariant::Ksg2] {
            let i = estimate_on_gaussian(&cov, &[1, 1, 1, 1], variant);
            assert!(i.abs() < 0.12, "{variant:?}: {i} should be ~0");
        }
    }

    #[test]
    fn paper_literal_variant_carries_documented_positive_bias() {
        // The verbatim Eq. 18-20 transcription over-counts (module docs);
        // its bias on independent data is large, positive, and grows with
        // the number of observers.
        let bias2 = estimate_on_gaussian(&Matrix::identity(2), &[1, 1], KsgVariant::Paper);
        let bias4 = estimate_on_gaussian(&Matrix::identity(4), &[1, 1, 1, 1], KsgVariant::Paper);
        assert!(bias2 > 0.5, "n=2 bias {bias2}");
        assert!(
            bias4 > bias2 + 0.5,
            "bias must grow with n: {bias2} -> {bias4}"
        );
    }

    #[test]
    fn bivariate_gaussian_mi_recovered() {
        for rho in [0.5, 0.8] {
            let truth = bivariate_gaussian_mi(rho);
            let cov = equicorrelated_cov(2, rho);
            for variant in [KsgVariant::Ksg1, KsgVariant::Ksg2] {
                let est = estimate_on_gaussian(&cov, &[1, 1], variant);
                assert!(
                    (est - truth).abs() < 0.15,
                    "{variant:?} rho={rho}: est {est} vs truth {truth}"
                );
            }
        }
    }

    #[test]
    fn trivariate_equicorrelated_recovered() {
        let cov = equicorrelated_cov(3, 0.6);
        let truth = gaussian_multi_information(&cov, &[1, 1, 1]);
        let est = estimate_on_gaussian(&cov, &[1, 1, 1], KsgVariant::Ksg1);
        assert!((est - truth).abs() < 0.2, "est {est} vs truth {truth}");
    }

    #[test]
    fn vector_blocks_recovered() {
        // Two 2-d blocks with cross-correlation only between dims (0,2):
        // like two particles whose x-coordinates are correlated.
        let mut cov = Matrix::identity(4);
        cov[(0, 2)] = 0.7;
        cov[(2, 0)] = 0.7;
        let truth = gaussian_multi_information(&cov, &[2, 2]);
        let est = estimate_on_gaussian(&cov, &[2, 2], KsgVariant::Ksg1);
        assert!((est - truth).abs() < 0.15, "est {est} vs truth {truth}");
    }

    #[test]
    fn stronger_coupling_increases_estimate() {
        let weak = estimate_on_gaussian(&equicorrelated_cov(2, 0.3), &[1, 1], KsgVariant::Ksg1);
        let strong = estimate_on_gaussian(&equicorrelated_cov(2, 0.9), &[1, 1], KsgVariant::Ksg1);
        assert!(strong > weak + 0.5);
    }

    #[test]
    fn invariant_under_rigid_shift_and_scale_of_all_samples() {
        // MI is invariant under any invertible per-block transform; check
        // shift + uniform scale.
        let cov = equicorrelated_cov(2, 0.7);
        let data = sample_gaussian(&cov, 800, 55);
        let sizes = [1usize, 1];
        let base = multi_information(&SampleView::new(&data, 800, &sizes), &KsgConfig::default());
        let transformed: Vec<f64> = data
            .chunks(2)
            .flat_map(|r| [3.0 * r[0] + 10.0, 3.0 * r[1] - 5.0])
            .collect();
        let shifted = multi_information(
            &SampleView::new(&transformed, 800, &sizes),
            &KsgConfig::default(),
        );
        assert!(
            (base - shifted).abs() < 1e-9,
            "uniform scaling + shift must not change the estimate: {base} vs {shifted}"
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let cov = equicorrelated_cov(3, 0.4);
        let data = sample_gaussian(&cov, 300, 77);
        let sizes = [1usize, 1, 1];
        let view = SampleView::new(&data, 300, &sizes);
        let one = multi_information(
            &view,
            &KsgConfig {
                threads: 1,
                ..KsgConfig::default()
            },
        );
        let many = multi_information(
            &view,
            &KsgConfig {
                threads: 8,
                ..KsgConfig::default()
            },
        );
        assert!((one - many).abs() < 1e-12);
    }

    #[test]
    fn insensitive_to_k_in_paper_range() {
        // The paper reports similar results for k in {2, 5, 10}.
        let cov = equicorrelated_cov(2, 0.6);
        let data = sample_gaussian(&cov, M, 31);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, M, &sizes);
        let estimates: Vec<f64> = [2, 5, 10]
            .iter()
            .map(|&k| {
                multi_information(
                    &view,
                    &KsgConfig {
                        k,
                        ..KsgConfig::default()
                    },
                )
            })
            .collect();
        let spread = estimates.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - estimates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 0.12, "k-sensitivity too high: {estimates:?}");
    }

    #[test]
    fn single_block_returns_zero() {
        let data = vec![1.0, 2.0, 3.0, 4.0];
        let sizes = [1usize];
        let view = SampleView::new(&data, 4, &sizes);
        assert_eq!(multi_information(&view, &KsgConfig::default()), 0.0);
    }

    #[test]
    fn pairwise_wrapper_matches_two_block_call() {
        let cov = equicorrelated_cov(2, 0.5);
        let data = sample_gaussian(&cov, 400, 13);
        let x: Vec<f64> = data.iter().step_by(2).copied().collect();
        let y: Vec<f64> = data.iter().skip(1).step_by(2).copied().collect();
        let via_wrapper = mutual_information(&x, &y, 400, 1, 1, &KsgConfig::default());
        let sizes = [1usize, 1];
        let direct = multi_information(&SampleView::new(&data, 400, &sizes), &KsgConfig::default());
        assert!((via_wrapper - direct).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn k_must_be_less_than_rows() {
        let data = vec![0.0; 6];
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 3, &sizes);
        multi_information(
            &view,
            &KsgConfig {
                k: 3,
                ..KsgConfig::default()
            },
        );
    }
}

/// Pairwise mutual-information matrix between all observer blocks of
/// `view`: entry `(i, j)` is `I(Wᵢ; Wⱼ)` in bits, diagonal 0.
///
/// §7.3 points at interaction-structure analyses (Kahle et al.); the
/// pairwise matrix is their first-order ingredient and a useful
/// diagnostic of *where* in the collective the correlation sits.
/// Parallelized over pairs.
pub fn pairwise_mi_matrix(view: &SampleView<'_>, cfg: &KsgConfig) -> Vec<Vec<f64>> {
    let n = view.blocks();
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    let threads = if cfg.threads == 0 {
        sops_par::default_threads()
    } else {
        cfg.threads
    };
    let inner = KsgConfig { threads: 1, ..*cfg };
    let values = sops_par::parallel_map(pairs.len(), threads, |p| {
        let (i, j) = pairs[p];
        let data = view.merged_blocks(&[i, j]);
        let sizes = [view.block_sizes[i], view.block_sizes[j]];
        let pair_view = SampleView::new(&data, view.rows, &sizes);
        multi_information(&pair_view, &inner)
    });
    let mut out = vec![vec![0.0; n]; n];
    for (&(i, j), v) in pairs.iter().zip(&values) {
        out[i][j] = *v;
        out[j][i] = *v;
    }
    out
}

#[cfg(test)]
mod pairwise_tests {
    use super::*;
    use crate::gaussian::{bivariate_gaussian_mi, sample_gaussian};
    use sops_math::Matrix;

    #[test]
    fn matrix_matches_bivariate_truths() {
        // Three scalars: (0,1) strongly coupled, (0,2)/(1,2) independent.
        let mut cov = Matrix::identity(3);
        cov[(0, 1)] = 0.8;
        cov[(1, 0)] = 0.8;
        let data = sample_gaussian(&cov, 1200, 41);
        let sizes = [1usize, 1, 1];
        let view = SampleView::new(&data, 1200, &sizes);
        let m = pairwise_mi_matrix(&view, &KsgConfig::default());
        let truth = bivariate_gaussian_mi(0.8);
        assert!((m[0][1] - truth).abs() < 0.12, "{} vs {truth}", m[0][1]);
        assert!(m[0][2].abs() < 0.08, "independent pair: {}", m[0][2]);
        assert!(m[1][2].abs() < 0.08);
        // Symmetry + zero diagonal.
        for i in 0..3 {
            assert_eq!(m[i][i], 0.0);
            for j in 0..3 {
                assert_eq!(m[i][j], m[j][i]);
            }
        }
    }

    #[test]
    fn single_block_gives_empty_structure() {
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let sizes = [1usize];
        let view = SampleView::new(&data, 6, &sizes);
        let m = pairwise_mi_matrix(&view, &KsgConfig::default());
        assert_eq!(m.len(), 1);
        assert_eq!(m[0][0], 0.0);
    }
}
