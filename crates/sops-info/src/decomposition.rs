//! The coarse-graining decomposition of multi-information (paper Eq. 4–5).
//!
//! Grouping the `n` observers into `g` coarse observers `W̃₁, …, W̃_g`
//! decomposes the multi-information as
//!
//! ```text
//! I(W₁,…,W_n) = I(W̃₁,…,W̃_g) + Σ_j I(observers inside group j)
//! ```
//!
//! The left term is the *between-group* organization; the sum collects the
//! organization *within* each group. §6.1.1 applies this with one group
//! per particle type to ask where organization is localized (Fig. 11).
//!
//! Each term is estimated independently with the configured KSG estimator,
//! so the identity holds only in expectation — the `decomposition`
//! integration test checks the residual on analytic Gaussians.

use crate::ksg::KsgConfig;
use crate::workspace::InfoWorkspace;
use crate::SampleView;

/// A partition of observer blocks into coarse groups.
#[derive(Debug, Clone)]
pub struct Grouping {
    /// `groups[g]` lists the block indices belonging to coarse observer
    /// `g`. Every block must appear in exactly one group.
    pub groups: Vec<Vec<usize>>,
}

impl Grouping {
    /// Builds a grouping from per-block group labels (e.g. particle
    /// types): block `i` joins group `labels[i]`. Empty groups are
    /// dropped.
    pub fn from_labels(labels: &[usize]) -> Self {
        let g = labels.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut groups = vec![Vec::new(); g];
        for (block, &label) in labels.iter().enumerate() {
            groups[label].push(block);
        }
        groups.retain(|members| !members.is_empty());
        Grouping { groups }
    }

    /// Validates against a block count: the groups must partition
    /// `0..blocks` exactly.
    pub fn validate(&self, blocks: usize) {
        let mut seen = vec![false; blocks];
        for members in &self.groups {
            for &b in members {
                assert!(b < blocks, "Grouping: block {b} out of range");
                assert!(!seen[b], "Grouping: block {b} appears twice");
                seen[b] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "Grouping: not all blocks are covered"
        );
    }
}

/// The estimated terms of Eq. 5.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// `I(W₁,…,W_n)` over all fine-grained observers.
    pub total: f64,
    /// `I(W̃₁,…,W̃_g)` between the coarse observers.
    pub between: f64,
    /// Within-group multi-information, one entry per group (0 for
    /// singleton groups).
    pub within: Vec<f64>,
}

impl Decomposition {
    /// Sum of the right-hand side of Eq. 5 — equals `total` in
    /// expectation.
    pub fn reconstructed_total(&self) -> f64 {
        self.between + self.within.iter().sum::<f64>()
    }

    /// The terms normalized by the reconstructed total, in the order
    /// `(between, within…)` — the quantity plotted in Fig. 11. Returns
    /// `None` when the total is below `floor` (ratio would be noise).
    pub fn normalized(&self, floor: f64) -> Option<Vec<f64>> {
        let denom = self.reconstructed_total();
        if denom.abs() < floor {
            return None;
        }
        let mut out = Vec::with_capacity(1 + self.within.len());
        out.push(self.between / denom);
        for &w in &self.within {
            out.push(w / denom);
        }
        Some(out)
    }
}

/// Estimates every term of the Eq. 5 decomposition of `view` under
/// `grouping`.
///
/// Convenience shim over [`InfoWorkspace::decompose`], which shares the
/// per-block count indexes between the total and every within-group term
/// instead of rebuilding them per term; repeated callers should hold a
/// workspace.
pub fn decompose(view: &SampleView<'_>, grouping: &Grouping, cfg: &KsgConfig) -> Decomposition {
    InfoWorkspace::new().decompose(view, grouping, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{equicorrelated_cov, gaussian_multi_information, sample_gaussian};
    use sops_math::Matrix;

    #[test]
    fn grouping_from_labels() {
        let g = Grouping::from_labels(&[0, 1, 0, 2, 1]);
        assert_eq!(g.groups, vec![vec![0, 2], vec![1, 4], vec![3]]);
        g.validate(5);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn validate_rejects_overlap() {
        Grouping {
            groups: vec![vec![0, 1], vec![1]],
        }
        .validate(2);
    }

    #[test]
    #[should_panic(expected = "not all blocks")]
    fn validate_rejects_gaps() {
        Grouping {
            groups: vec![vec![0]],
        }
        .validate(2);
    }

    #[test]
    fn decomposition_identity_on_gaussians() {
        // 4 scalar observers, groups {0,1} and {2,3}, equicorrelated.
        let cov = equicorrelated_cov(4, 0.5);
        let data = sample_gaussian(&cov, 1500, 2025);
        let sizes = [1usize, 1, 1, 1];
        let view = SampleView::new(&data, 1500, &sizes);
        let grouping = Grouping::from_labels(&[0, 0, 1, 1]);
        let d = decompose(&view, &grouping, &KsgConfig::default());

        // Analytic values for the identity check.
        let total_truth = gaussian_multi_information(&cov, &[1, 1, 1, 1]);
        let between_truth = gaussian_multi_information(&cov, &[2, 2]);
        assert!(
            (d.total - total_truth).abs() < 0.25,
            "total {} vs {total_truth}",
            d.total
        );
        assert!(
            (d.between - between_truth).abs() < 0.2,
            "between {} vs {between_truth}",
            d.between
        );
        // Identity: total ≈ between + sum(within).
        let residual = (d.total - d.reconstructed_total()).abs();
        assert!(residual < 0.25, "Eq. 5 residual {residual}");
    }

    #[test]
    fn independent_groups_have_zero_between_term() {
        // Correlation only within groups: between-term ~ 0.
        let mut cov = Matrix::identity(4);
        cov[(0, 1)] = 0.7;
        cov[(1, 0)] = 0.7;
        cov[(2, 3)] = 0.7;
        cov[(3, 2)] = 0.7;
        let data = sample_gaussian(&cov, 1500, 11);
        let sizes = [1usize, 1, 1, 1];
        let view = SampleView::new(&data, 1500, &sizes);
        let grouping = Grouping {
            groups: vec![vec![0, 1], vec![2, 3]],
        };
        let d = decompose(&view, &grouping, &KsgConfig::default());
        assert!(d.between.abs() < 0.15, "between {}", d.between);
        assert!(d.within[0] > 0.2 && d.within[1] > 0.2);
    }

    #[test]
    fn singleton_groups_have_zero_within_term() {
        let cov = equicorrelated_cov(3, 0.4);
        let data = sample_gaussian(&cov, 600, 5);
        let sizes = [1usize, 1, 1];
        let view = SampleView::new(&data, 600, &sizes);
        let grouping = Grouping::from_labels(&[0, 1, 2]);
        let d = decompose(&view, &grouping, &KsgConfig::default());
        assert!(d.within.iter().all(|&w| w == 0.0));
        // With singleton groups, between == total by construction.
        assert!((d.between - d.total).abs() < 1e-9);
    }

    #[test]
    fn normalized_terms_sum_to_one() {
        let cov = equicorrelated_cov(4, 0.6);
        let data = sample_gaussian(&cov, 800, 99);
        let sizes = [1usize, 1, 1, 1];
        let view = SampleView::new(&data, 800, &sizes);
        let d = decompose(
            &view,
            &Grouping::from_labels(&[0, 0, 1, 1]),
            &KsgConfig::default(),
        );
        let norm = d.normalized(1e-6).expect("total is large enough");
        let sum: f64 = norm.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalized_returns_none_for_tiny_totals() {
        let d = Decomposition {
            total: 1e-9,
            between: 5e-10,
            within: vec![4e-10],
        };
        assert!(d.normalized(1e-6).is_none());
    }
}
