//! Conditional mutual information and transfer entropy (paper §7.3).
//!
//! The paper's future-work section proposes investigating "the
//! information dynamics between individual particles over time" with the
//! tools of Lizier et al. (the paper's ref. 24) — transfer entropy. It provides
//! the required estimator: the Frenzel–Pompe k-NN conditional mutual
//! information
//!
//! ```text
//! I(X;Y|Z) = ψ(k) + ⟨ψ(c_z + 1) − ψ(c_xz + 1) − ψ(c_yz + 1)⟩
//! ```
//!
//! where the counts are strict range counts in the marginal spaces
//! `(Z)`, `(X,Z)` and `(Y,Z)` using the max-norm radius to the k-th
//! neighbour in the joint `(X,Y,Z)` space. Transfer entropy is the
//! special case `T_{Y→X} = I(X′ ; Y | X)` with `X′` the successor state
//! of `X`.
//!
//! Note §5.2's caveat: statistics that track particles over time must use
//! the *raw* (non-permutation-reduced) trajectories; the shape reduction
//! deliberately destroys temporal identity.

use sops_math::special::digamma;
use sops_math::NATS_TO_BITS;
use sops_spatial::block_max::{knn_block_max, BlockPoints};
use sops_spatial::KdTree;

/// Configuration for [`conditional_mutual_information`].
#[derive(Debug, Clone, Copy)]
pub struct CmiConfig {
    /// Neighbour order `k` (default 4, like the KSG default).
    pub k: usize,
    /// Worker threads (0 = default).
    pub threads: usize,
}

impl Default for CmiConfig {
    fn default() -> Self {
        CmiConfig { k: 4, threads: 0 }
    }
}

/// Estimates `I(X;Y|Z)` in bits from `rows` joint samples.
///
/// `x`, `y`, `z` are row-major `rows × dim` matrices.
///
/// # Panics
///
/// Panics on inconsistent shapes, `k = 0`, or `k >= rows`.
pub fn conditional_mutual_information(
    x: &[f64],
    y: &[f64],
    z: &[f64],
    rows: usize,
    dims: (usize, usize, usize),
    cfg: &CmiConfig,
) -> f64 {
    let (dx, dy, dz) = dims;
    assert_eq!(x.len(), rows * dx, "CMI: x shape");
    assert_eq!(y.len(), rows * dy, "CMI: y shape");
    assert_eq!(z.len(), rows * dz, "CMI: z shape");
    assert!(cfg.k >= 1 && cfg.k < rows, "CMI: k out of range");

    // Joint (x, y, z) samples as three blocks: the block-max metric over
    // (x|y|z) blocks is the product max-norm the Frenzel-Pompe estimator
    // uses.
    let mut joint = Vec::with_capacity(rows * (dx + dy + dz));
    for r in 0..rows {
        joint.extend_from_slice(&x[r * dx..(r + 1) * dx]);
        joint.extend_from_slice(&y[r * dy..(r + 1) * dy]);
        joint.extend_from_slice(&z[r * dz..(r + 1) * dz]);
    }
    let sizes = [dx, dy, dz];
    let points = BlockPoints::new(&joint, rows, &sizes);

    // Counts in the marginal spaces (Z), (X,Z) and (Y,Z) under the
    // product max-norm: a point is within eps of the query in (X,Z) iff
    // it is within eps in X AND within eps in Z. A kd-tree over Z yields
    // the candidate superset; the conjunctions are checked by direct
    // per-block distance tests (exact, and cheap at ensemble sizes).
    let tree_z = KdTree::build(dz, z);

    let threads = if cfg.threads == 0 {
        sops_par::default_threads()
    } else {
        cfg.threads
    };
    let psi_sum = sops_par::parallel_reduce(
        rows,
        threads,
        || 0.0f64,
        |acc, i| {
            let neighbours = knn_block_max(&points, i, cfg.k);
            let eps = neighbours.last().expect("CMI: kth neighbour").1;
            // Candidates within eps in Z (strict) — superset of both
            // conjunctive counts.
            let zq = &z[i * dz..(i + 1) * dz];
            let z_candidates = tree_z.range_indices(zq, eps);
            let mut c_z = 0usize;
            let mut c_xz = 0usize;
            let mut c_yz = 0usize;
            let xq = &x[i * dx..(i + 1) * dx];
            let yq = &y[i * dy..(i + 1) * dy];
            for &j in &z_candidates {
                if j == i {
                    continue;
                }
                let zd = sops_spatial::dist_sq(&z[j * dz..(j + 1) * dz], zq).sqrt();
                if zd >= eps {
                    continue; // strict
                }
                c_z += 1;
                let xd = sops_spatial::dist_sq(&x[j * dx..(j + 1) * dx], xq).sqrt();
                if xd < eps {
                    c_xz += 1;
                }
                let yd = sops_spatial::dist_sq(&y[j * dy..(j + 1) * dy], yq).sqrt();
                if yd < eps {
                    c_yz += 1;
                }
            }
            acc + digamma((c_z + 1) as f64)
                - digamma((c_xz + 1) as f64)
                - digamma((c_yz + 1) as f64)
        },
        |a, b| a + b,
    );
    let nats = digamma(cfg.k as f64) + psi_sum / rows as f64;
    nats * NATS_TO_BITS
}

/// Transfer entropy `T_{Y→X} = I(X′ ; Y | X)` in bits across an ensemble:
/// `x_next`, `y_past`, `x_past` are `rows × dim` matrices of the successor
/// state of X, the past of Y and the past of X over independent
/// realizations.
pub fn transfer_entropy(
    x_next: &[f64],
    y_past: &[f64],
    x_past: &[f64],
    rows: usize,
    dims: (usize, usize, usize),
    cfg: &CmiConfig,
) -> f64 {
    conditional_mutual_information(x_next, y_past, x_past, rows, dims, cfg)
}

/// Analytic conditional mutual information of a Gaussian (bits):
/// `I(X;Y|Z) = ½(ln det Σ_xz + ln det Σ_yz − ln det Σ_z − ln det Σ_xyz)`.
///
/// `cov` must be ordered as (X-dims, Y-dims, Z-dims). Test/validation
/// helper.
pub fn gaussian_conditional_mi(cov: &sops_math::Matrix, dims: (usize, usize, usize)) -> f64 {
    let (dx, dy, dz) = dims;
    let d = dx + dy + dz;
    assert_eq!(cov.rows(), d);
    let sub = |idx: &[usize]| -> sops_math::Matrix {
        let mut m = sops_math::Matrix::zeros(idx.len(), idx.len());
        for (a, &i) in idx.iter().enumerate() {
            for (b, &j) in idx.iter().enumerate() {
                m[(a, b)] = cov[(i, j)];
            }
        }
        m
    };
    let xs: Vec<usize> = (0..dx).collect();
    let ys: Vec<usize> = (dx..dx + dy).collect();
    let zs: Vec<usize> = (dx + dy..d).collect();
    let xz: Vec<usize> = xs.iter().chain(&zs).copied().collect();
    let yz: Vec<usize> = ys.iter().chain(&zs).copied().collect();
    let all: Vec<usize> = (0..d).collect();
    let ld = |idx: &[usize]| {
        sub(idx)
            .ln_det_spd()
            .expect("gaussian_conditional_mi: not SPD")
    };
    let nats = 0.5 * (ld(&xz) + ld(&yz) - ld(&zs) - ld(&all));
    nats * NATS_TO_BITS
}

#[cfg(test)]
mod tests {
    use super::*;
    use sops_math::{Matrix, SplitMix64};

    /// Draws AR-style triples: Z ~ N(0,1); X = a·Z + noise; Y = b·Z + noise.
    /// X ⊥ Y | Z by construction, but I(X;Y) > 0.
    fn common_cause_samples(m: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let mut x = Vec::with_capacity(m);
        let mut y = Vec::with_capacity(m);
        let mut z = Vec::with_capacity(m);
        for _ in 0..m {
            let zi = rng.next_standard_normal();
            x.push(0.8 * zi + 0.4 * rng.next_standard_normal());
            y.push(0.8 * zi + 0.4 * rng.next_standard_normal());
            z.push(zi);
        }
        (x, y, z)
    }

    #[test]
    fn cmi_vanishes_for_conditionally_independent_data() {
        let (x, y, z) = common_cause_samples(1200, 3);
        let cmi =
            conditional_mutual_information(&x, &y, &z, 1200, (1, 1, 1), &CmiConfig::default());
        assert!(cmi.abs() < 0.1, "X⊥Y|Z must give ~0, got {cmi}");
        // Whereas the unconditional MI is clearly positive.
        let mi = crate::ksg::mutual_information(&x, &y, 1200, 1, 1, &crate::KsgConfig::default());
        assert!(mi > 0.3, "common cause must correlate X and Y: {mi}");
    }

    #[test]
    fn cmi_matches_gaussian_closed_form() {
        // X, Y directly coupled beyond Z: X = 0.6 Z + e1, Y = 0.6 Z + 0.8 X + e2.
        let m = 1500;
        let mut rng = SplitMix64::new(9);
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        for _ in 0..m {
            let zi = rng.next_standard_normal();
            let xi = 0.6 * zi + 0.5 * rng.next_standard_normal();
            let yi = 0.6 * zi + 0.8 * xi + 0.4 * rng.next_standard_normal();
            x.push(xi);
            y.push(yi);
            z.push(zi);
        }
        // Empirical covariance in (X, Y, Z) order feeds the closed form.
        let rows: Vec<Vec<f64>> = (0..m).map(|i| vec![x[i], y[i], z[i]]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let cov = Matrix::covariance_of(&refs);
        let truth = gaussian_conditional_mi(&cov, (1, 1, 1));
        let est = conditional_mutual_information(&x, &y, &z, m, (1, 1, 1), &CmiConfig::default());
        assert!(
            (est - truth).abs() < 0.12,
            "CMI est {est} vs Gaussian truth {truth}"
        );
        assert!(truth > 0.2, "construction has real conditional coupling");
    }

    #[test]
    fn transfer_entropy_detects_directed_coupling() {
        // Driven pair: X' = 0.4 X + 0.8 Y + noise; Y' = 0.9 Y + noise.
        // TE(Y→X) > 0; TE(X→Y) ≈ 0.
        let m = 1500;
        let mut rng = SplitMix64::new(17);
        let mut x_past = Vec::new();
        let mut y_past = Vec::new();
        let mut x_next = Vec::new();
        let mut y_next = Vec::new();
        for _ in 0..m {
            // Stationary-ish draws: sample a fresh (x, y) state then step it.
            let xp = rng.next_standard_normal();
            let yp = rng.next_standard_normal();
            x_past.push(xp);
            y_past.push(yp);
            x_next.push(0.4 * xp + 0.8 * yp + 0.3 * rng.next_standard_normal());
            y_next.push(0.9 * yp + 0.3 * rng.next_standard_normal());
        }
        let cfg = CmiConfig::default();
        let te_yx = transfer_entropy(&x_next, &y_past, &x_past, m, (1, 1, 1), &cfg);
        let te_xy = transfer_entropy(&y_next, &x_past, &y_past, m, (1, 1, 1), &cfg);
        assert!(te_yx > 0.5, "driver must be detected: TE(Y→X) = {te_yx}");
        assert!(te_xy.abs() < 0.1, "no reverse flow: TE(X→Y) = {te_xy}");
    }

    #[test]
    fn cmi_deterministic_across_threads() {
        let (x, y, z) = common_cause_samples(400, 5);
        let a = conditional_mutual_information(
            &x,
            &y,
            &z,
            400,
            (1, 1, 1),
            &CmiConfig { k: 4, threads: 1 },
        );
        let b = conditional_mutual_information(
            &x,
            &y,
            &z,
            400,
            (1, 1, 1),
            &CmiConfig { k: 4, threads: 8 },
        );
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn vector_valued_blocks_supported() {
        // 2-D X and Y blocks (particle positions), 2-D Z.
        let m = 600;
        let mut rng = SplitMix64::new(23);
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        for _ in 0..m {
            let z0 = rng.next_standard_normal();
            let z1 = rng.next_standard_normal();
            z.extend_from_slice(&[z0, z1]);
            x.extend_from_slice(&[
                0.7 * z0 + 0.5 * rng.next_standard_normal(),
                0.7 * z1 + 0.5 * rng.next_standard_normal(),
            ]);
            y.extend_from_slice(&[
                0.7 * z0 + 0.5 * rng.next_standard_normal(),
                0.7 * z1 + 0.5 * rng.next_standard_normal(),
            ]);
        }
        let cmi = conditional_mutual_information(&x, &y, &z, m, (2, 2, 2), &CmiConfig::default());
        assert!(
            cmi.abs() < 0.15,
            "conditionally independent 2-D blocks: {cmi}"
        );
    }

    #[test]
    fn gaussian_closed_form_reduces_to_mi_for_empty_condition_analogue() {
        // With Z independent of (X, Y), I(X;Y|Z) == I(X;Y).
        let mut cov = Matrix::identity(3);
        cov[(0, 1)] = 0.6;
        cov[(1, 0)] = 0.6;
        let cmi = gaussian_conditional_mi(&cov, (1, 1, 1));
        let mi = crate::gaussian::bivariate_gaussian_mi(0.6);
        assert!((cmi - mi).abs() < 1e-12);
    }
}
