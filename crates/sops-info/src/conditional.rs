//! Conditional mutual information and transfer entropy (paper §7.3).
//!
//! The paper's future-work section proposes investigating "the
//! information dynamics between individual particles over time" with the
//! tools of Lizier et al. (the paper's ref. 24) — transfer entropy. It provides
//! the required estimator: the Frenzel–Pompe k-NN conditional mutual
//! information
//!
//! ```text
//! I(X;Y|Z) = ψ(k) + ⟨ψ(c_z + 1) − ψ(c_xz + 1) − ψ(c_yz + 1)⟩
//! ```
//!
//! where the counts are strict range counts in the marginal spaces
//! `(Z)`, `(X,Z)` and `(Y,Z)` using the max-norm radius to the k-th
//! neighbour in the joint `(X,Y,Z)` space. Transfer entropy is the
//! special case `T_{Y→X} = I(X′ ; Y | X)` with `X′` the successor state
//! of `X`.
//!
//! The engine behind the estimate is [`CmiWorkspace`]: the joint k-NN
//! routes through the same adaptive scan/kd-tree choice as the KSG engine
//! (`CmiConfig::knn`, turning the `O(m²)` joint scan into `O(m log m)` at
//! the low joint dimensions transfer entropy lives at), all scratch is
//! persistent, and per-sample ψ terms are reduced in sample order — the
//! estimate is **bit-identical for any worker count** and to the frozen
//! sequential reference in `crates/sops-info/tests/workspace_measure.rs`.
//!
//! Note §5.2's caveat: statistics that track particles over time must use
//! the *raw* (non-permutation-reduced) trajectories; the shape reduction
//! deliberately destroys temporal identity.

use crate::ksg::KnnMode;
use crate::workspace::{resolve_threads, use_tree, INFO_CHUNKS};
use sops_math::special::digamma;
use sops_math::NATS_TO_BITS;
use sops_spatial::block_max::{knn_block_max_into, knn_block_max_tree_into, BlockPoints};
use sops_spatial::KdTree;

/// Configuration for the Frenzel–Pompe estimator.
#[derive(Debug, Clone, Copy)]
pub struct CmiConfig {
    /// Neighbour order `k` (default 4, like the KSG default).
    pub k: usize,
    /// Worker threads (0 = default). Results are bit-identical for any
    /// thread count.
    pub threads: usize,
    /// Joint k-NN strategy (default: adaptive, like [`crate::KsgConfig`]).
    /// Both paths return identical results.
    pub knn: KnnMode,
}

impl Default for CmiConfig {
    fn default() -> Self {
        CmiConfig {
            k: 4,
            threads: 0,
            knn: KnnMode::default(),
        }
    }
}

/// Per-span scratch of the CMI engine.
#[derive(Debug, Clone)]
struct CmiChunk {
    /// Per-sample ψ terms of this span, reduced in sample order.
    psi: Vec<f64>,
    /// Joint k-NN result buffer.
    neigh: Vec<(usize, f64)>,
    /// Explicit stack for the kd-tree descent.
    stack: Vec<(u32, f64)>,
}

impl CmiChunk {
    fn new() -> Self {
        CmiChunk {
            psi: Vec::new(),
            neigh: Vec::new(),
            stack: Vec::new(),
        }
    }

    fn capacity_signature(&self, sig: &mut Vec<usize>) {
        sig.push(self.psi.capacity());
        sig.push(self.neigh.capacity());
        sig.push(self.stack.capacity());
    }
}

/// Persistent buffers for Frenzel–Pompe conditional mutual information —
/// the CMI-side sibling of [`crate::InfoWorkspace`]. One workspace
/// serves repeated [`CmiWorkspace::conditional_mutual_information`] /
/// [`CmiWorkspace::transfer_entropy`] calls (a transfer-matrix sweep runs
/// `n(n−1)` of them per time step) without touching the allocator once
/// warm.
#[derive(Debug, Clone)]
pub struct CmiWorkspace {
    /// Gathered `(x | y | z)` joint samples.
    joint: Vec<f64>,
    /// Prefix-offset buffer for the joint block view.
    offsets: Vec<usize>,
    /// Kd-tree over the Z marginal (candidate superset queries).
    tree_z: KdTree,
    /// Kd-tree over the joint samples (low-dimension k-NN path).
    joint_tree: KdTree,
    /// Fixed per-span scratch.
    chunks: Vec<CmiChunk>,
}

impl Default for CmiWorkspace {
    fn default() -> Self {
        CmiWorkspace::new()
    }
}

impl CmiWorkspace {
    /// An empty workspace; buffers grow to the workload size on first use.
    pub fn new() -> Self {
        CmiWorkspace {
            joint: Vec::new(),
            offsets: Vec::new(),
            tree_z: KdTree::build(1, &[]),
            joint_tree: KdTree::build(1, &[]),
            chunks: vec![CmiChunk::new(); INFO_CHUNKS],
        }
    }

    /// Estimates `I(X;Y|Z)` in bits from `rows` joint samples — the
    /// workspace form of [`conditional_mutual_information`], identical in
    /// result, allocation-free once warm.
    ///
    /// `x`, `y`, `z` are row-major `rows × dim` matrices.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent shapes, `k = 0`, or `k >= rows`.
    pub fn conditional_mutual_information(
        &mut self,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        rows: usize,
        dims: (usize, usize, usize),
        cfg: &CmiConfig,
    ) -> f64 {
        let (dx, dy, dz) = dims;
        assert_eq!(x.len(), rows * dx, "CMI: x shape");
        assert_eq!(y.len(), rows * dy, "CMI: y shape");
        assert_eq!(z.len(), rows * dz, "CMI: z shape");
        assert!(cfg.k >= 1 && cfg.k < rows, "CMI: k out of range");

        let CmiWorkspace {
            joint,
            offsets,
            tree_z,
            joint_tree,
            chunks,
        } = self;

        // Joint (x, y, z) samples as three blocks: the block-max metric
        // over (x|y|z) blocks is the product max-norm the Frenzel-Pompe
        // estimator uses.
        joint.clear();
        for r in 0..rows {
            joint.extend_from_slice(&x[r * dx..(r + 1) * dx]);
            joint.extend_from_slice(&y[r * dy..(r + 1) * dy]);
            joint.extend_from_slice(&z[r * dz..(r + 1) * dz]);
        }
        let sizes = [dx, dy, dz];

        // Counts in the marginal spaces (Z), (X,Z) and (Y,Z) under the
        // product max-norm: a point is within eps of the query in (X,Z)
        // iff it is within eps in X AND within eps in Z. A kd-tree over Z
        // yields the candidate superset; the conjunctions are checked by
        // direct per-block distance tests (exact, and cheap at ensemble
        // sizes).
        tree_z.rebuild(dz, z);
        let joint_tree = if use_tree(cfg.knn, dx + dy + dz, rows) {
            joint_tree.rebuild(dx + dy + dz, joint);
            Some(&*joint_tree)
        } else {
            None
        };
        let points = BlockPoints::with_offset_buf(offsets, joint, rows, &sizes);

        let threads = resolve_threads(cfg.threads);
        let nchunks = chunks.len();
        let tree_z = &*tree_z;
        let k = cfg.k;
        sops_par::parallel_chunks_mut(chunks, nchunks, threads, |c, bufs| {
            let CmiChunk { psi, neigh, stack } = &mut bufs[0];
            psi.clear();
            let lo = c * rows / nchunks;
            let hi = (c + 1) * rows / nchunks;
            for i in lo..hi {
                match joint_tree {
                    Some(tree) => knn_block_max_tree_into(&points, tree, i, k, stack, neigh),
                    None => knn_block_max_into(&points, i, k, neigh),
                }
                let eps = neigh.last().expect("CMI: kth neighbour").1;
                // Candidates within eps in Z (inclusive) — superset of the
                // strict conjunctive counts below; visited in tree order
                // (the counts are order-independent integers, so no buffer
                // and no sort).
                let zq = &z[i * dz..(i + 1) * dz];
                let mut c_z = 0usize;
                let mut c_xz = 0usize;
                let mut c_yz = 0usize;
                let xq = &x[i * dx..(i + 1) * dx];
                let yq = &y[i * dy..(i + 1) * dy];
                tree_z.for_each_within(zq, eps, |j| {
                    if j == i {
                        return;
                    }
                    let zd = sops_spatial::dist_sq(&z[j * dz..(j + 1) * dz], zq).sqrt();
                    if zd >= eps {
                        return; // strict
                    }
                    c_z += 1;
                    let xd = sops_spatial::dist_sq(&x[j * dx..(j + 1) * dx], xq).sqrt();
                    if xd < eps {
                        c_xz += 1;
                    }
                    let yd = sops_spatial::dist_sq(&y[j * dy..(j + 1) * dy], yq).sqrt();
                    if yd < eps {
                        c_yz += 1;
                    }
                });
                psi.push(
                    digamma((c_z + 1) as f64)
                        - digamma((c_xz + 1) as f64)
                        - digamma((c_yz + 1) as f64),
                );
            }
        });
        // Sample-order reduction: bit-identical for any worker count.
        let mut psi_sum = 0.0;
        for chunk in chunks.iter() {
            for &v in &chunk.psi {
                psi_sum += v;
            }
        }
        let nats = digamma(cfg.k as f64) + psi_sum / rows as f64;
        nats * NATS_TO_BITS
    }

    /// Transfer entropy `T_{Y→X} = I(X′ ; Y | X)` in bits across an
    /// ensemble — the workspace form of [`transfer_entropy`].
    pub fn transfer_entropy(
        &mut self,
        x_next: &[f64],
        y_past: &[f64],
        x_past: &[f64],
        rows: usize,
        dims: (usize, usize, usize),
        cfg: &CmiConfig,
    ) -> f64 {
        self.conditional_mutual_information(x_next, y_past, x_past, rows, dims, cfg)
    }

    /// Capacities of every internal buffer — constant for a warmed-up
    /// workspace (the zero-allocation contract).
    pub fn capacity_signature(&self) -> Vec<usize> {
        let mut sig = vec![self.joint.capacity(), self.offsets.capacity()];
        sig.extend(self.tree_z.capacity_signature());
        sig.extend(self.joint_tree.capacity_signature());
        for chunk in &self.chunks {
            chunk.capacity_signature(&mut sig);
        }
        sig
    }
}

/// Estimates `I(X;Y|Z)` in bits from `rows` joint samples.
///
/// `x`, `y`, `z` are row-major `rows × dim` matrices.
///
/// Deprecated: this shim spins up a throwaway [`CmiWorkspace`] per call.
/// Repeated callers (transfer matrices, lag sweeps) should hold a
/// workspace (or a [`crate::measure::MeasureWorkspace`]) and reuse it;
/// the result is identical.
///
/// # Panics
///
/// Panics on inconsistent shapes, `k = 0`, or `k >= rows`.
#[deprecated(
    since = "0.4.0",
    note = "use CmiWorkspace::conditional_mutual_information (or MeasureWorkspace::conditional_mutual_information) — this shim rebuilds all scratch per call"
)]
pub fn conditional_mutual_information(
    x: &[f64],
    y: &[f64],
    z: &[f64],
    rows: usize,
    dims: (usize, usize, usize),
    cfg: &CmiConfig,
) -> f64 {
    CmiWorkspace::new().conditional_mutual_information(x, y, z, rows, dims, cfg)
}

/// Transfer entropy `T_{Y→X} = I(X′ ; Y | X)` in bits across an ensemble:
/// `x_next`, `y_past`, `x_past` are `rows × dim` matrices of the successor
/// state of X, the past of Y and the past of X over independent
/// realizations. Convenience shim over [`CmiWorkspace::transfer_entropy`];
/// repeated callers should hold a workspace.
pub fn transfer_entropy(
    x_next: &[f64],
    y_past: &[f64],
    x_past: &[f64],
    rows: usize,
    dims: (usize, usize, usize),
    cfg: &CmiConfig,
) -> f64 {
    CmiWorkspace::new().transfer_entropy(x_next, y_past, x_past, rows, dims, cfg)
}

/// Analytic conditional mutual information of a Gaussian (bits):
/// `I(X;Y|Z) = ½(ln det Σ_xz + ln det Σ_yz − ln det Σ_z − ln det Σ_xyz)`.
///
/// `cov` must be ordered as (X-dims, Y-dims, Z-dims). Test/validation
/// helper.
pub fn gaussian_conditional_mi(cov: &sops_math::Matrix, dims: (usize, usize, usize)) -> f64 {
    let (dx, dy, dz) = dims;
    let d = dx + dy + dz;
    assert_eq!(cov.rows(), d);
    let sub = |idx: &[usize]| -> sops_math::Matrix {
        let mut m = sops_math::Matrix::zeros(idx.len(), idx.len());
        for (a, &i) in idx.iter().enumerate() {
            for (b, &j) in idx.iter().enumerate() {
                m[(a, b)] = cov[(i, j)];
            }
        }
        m
    };
    let xs: Vec<usize> = (0..dx).collect();
    let ys: Vec<usize> = (dx..dx + dy).collect();
    let zs: Vec<usize> = (dx + dy..d).collect();
    let xz: Vec<usize> = xs.iter().chain(&zs).copied().collect();
    let yz: Vec<usize> = ys.iter().chain(&zs).copied().collect();
    let all: Vec<usize> = (0..d).collect();
    let ld = |idx: &[usize]| {
        sub(idx)
            .ln_det_spd()
            .expect("gaussian_conditional_mi: not SPD")
    };
    let nats = 0.5 * (ld(&xz) + ld(&yz) - ld(&zs) - ld(&all));
    nats * NATS_TO_BITS
}

#[cfg(test)]
mod tests {
    use super::*;
    use sops_math::{Matrix, SplitMix64};

    fn cmi(
        x: &[f64],
        y: &[f64],
        z: &[f64],
        rows: usize,
        dims: (usize, usize, usize),
        cfg: &CmiConfig,
    ) -> f64 {
        CmiWorkspace::new().conditional_mutual_information(x, y, z, rows, dims, cfg)
    }

    /// Draws AR-style triples: Z ~ N(0,1); X = a·Z + noise; Y = b·Z + noise.
    /// X ⊥ Y | Z by construction, but I(X;Y) > 0.
    fn common_cause_samples(m: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let mut x = Vec::with_capacity(m);
        let mut y = Vec::with_capacity(m);
        let mut z = Vec::with_capacity(m);
        for _ in 0..m {
            let zi = rng.next_standard_normal();
            x.push(0.8 * zi + 0.4 * rng.next_standard_normal());
            y.push(0.8 * zi + 0.4 * rng.next_standard_normal());
            z.push(zi);
        }
        (x, y, z)
    }

    #[test]
    fn cmi_vanishes_for_conditionally_independent_data() {
        let (x, y, z) = common_cause_samples(1200, 3);
        let cmi = cmi(&x, &y, &z, 1200, (1, 1, 1), &CmiConfig::default());
        assert!(cmi.abs() < 0.1, "X⊥Y|Z must give ~0, got {cmi}");
        // Whereas the unconditional MI is clearly positive.
        let mi = crate::ksg::mutual_information(&x, &y, 1200, 1, 1, &crate::KsgConfig::default());
        assert!(mi > 0.3, "common cause must correlate X and Y: {mi}");
    }

    #[test]
    fn cmi_matches_gaussian_closed_form() {
        // X, Y directly coupled beyond Z: X = 0.6 Z + e1, Y = 0.6 Z + 0.8 X + e2.
        let m = 1500;
        let mut rng = SplitMix64::new(9);
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        for _ in 0..m {
            let zi = rng.next_standard_normal();
            let xi = 0.6 * zi + 0.5 * rng.next_standard_normal();
            let yi = 0.6 * zi + 0.8 * xi + 0.4 * rng.next_standard_normal();
            x.push(xi);
            y.push(yi);
            z.push(zi);
        }
        // Empirical covariance in (X, Y, Z) order feeds the closed form.
        let rows: Vec<Vec<f64>> = (0..m).map(|i| vec![x[i], y[i], z[i]]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let cov = Matrix::covariance_of(&refs);
        let truth = gaussian_conditional_mi(&cov, (1, 1, 1));
        let est = cmi(&x, &y, &z, m, (1, 1, 1), &CmiConfig::default());
        assert!(
            (est - truth).abs() < 0.12,
            "CMI est {est} vs Gaussian truth {truth}"
        );
        assert!(truth > 0.2, "construction has real conditional coupling");
    }

    #[test]
    fn transfer_entropy_detects_directed_coupling() {
        // Driven pair: X' = 0.4 X + 0.8 Y + noise; Y' = 0.9 Y + noise.
        // TE(Y→X) > 0; TE(X→Y) ≈ 0.
        let m = 1500;
        let mut rng = SplitMix64::new(17);
        let mut x_past = Vec::new();
        let mut y_past = Vec::new();
        let mut x_next = Vec::new();
        let mut y_next = Vec::new();
        for _ in 0..m {
            // Stationary-ish draws: sample a fresh (x, y) state then step it.
            let xp = rng.next_standard_normal();
            let yp = rng.next_standard_normal();
            x_past.push(xp);
            y_past.push(yp);
            x_next.push(0.4 * xp + 0.8 * yp + 0.3 * rng.next_standard_normal());
            y_next.push(0.9 * yp + 0.3 * rng.next_standard_normal());
        }
        let cfg = CmiConfig::default();
        let mut ws = CmiWorkspace::new();
        let te_yx = ws.transfer_entropy(&x_next, &y_past, &x_past, m, (1, 1, 1), &cfg);
        let te_xy = ws.transfer_entropy(&y_next, &x_past, &y_past, m, (1, 1, 1), &cfg);
        assert!(te_yx > 0.5, "driver must be detected: TE(Y→X) = {te_yx}");
        assert!(te_xy.abs() < 0.1, "no reverse flow: TE(X→Y) = {te_xy}");
    }

    #[test]
    fn cmi_bit_identical_across_threads_and_knn_paths() {
        let (x, y, z) = common_cause_samples(400, 5);
        let mut ws = CmiWorkspace::new();
        let base = ws.conditional_mutual_information(
            &x,
            &y,
            &z,
            400,
            (1, 1, 1),
            &CmiConfig {
                k: 4,
                threads: 1,
                knn: KnnMode::BruteForce,
            },
        );
        for knn in [KnnMode::BruteForce, KnnMode::KdTree, KnnMode::Auto] {
            for threads in [1usize, 8] {
                let got = ws.conditional_mutual_information(
                    &x,
                    &y,
                    &z,
                    400,
                    (1, 1, 1),
                    &CmiConfig { k: 4, threads, knn },
                );
                assert_eq!(got.to_bits(), base.to_bits(), "{knn:?}/t{threads}");
            }
        }
    }

    #[test]
    fn deprecated_shim_matches_workspace() {
        let (x, y, z) = common_cause_samples(200, 8);
        #[allow(deprecated)]
        let shim =
            conditional_mutual_information(&x, &y, &z, 200, (1, 1, 1), &CmiConfig::default());
        let ws = cmi(&x, &y, &z, 200, (1, 1, 1), &CmiConfig::default());
        assert_eq!(shim.to_bits(), ws.to_bits());
    }

    #[test]
    fn vector_valued_blocks_supported() {
        // 2-D X and Y blocks (particle positions), 2-D Z.
        let m = 600;
        let mut rng = SplitMix64::new(23);
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        for _ in 0..m {
            let z0 = rng.next_standard_normal();
            let z1 = rng.next_standard_normal();
            z.extend_from_slice(&[z0, z1]);
            x.extend_from_slice(&[
                0.7 * z0 + 0.5 * rng.next_standard_normal(),
                0.7 * z1 + 0.5 * rng.next_standard_normal(),
            ]);
            y.extend_from_slice(&[
                0.7 * z0 + 0.5 * rng.next_standard_normal(),
                0.7 * z1 + 0.5 * rng.next_standard_normal(),
            ]);
        }
        let cmi = cmi(&x, &y, &z, m, (2, 2, 2), &CmiConfig::default());
        assert!(
            cmi.abs() < 0.15,
            "conditionally independent 2-D blocks: {cmi}"
        );
    }

    #[test]
    fn gaussian_closed_form_reduces_to_mi_for_empty_condition_analogue() {
        // With Z independent of (X, Y), I(X;Y|Z) == I(X;Y).
        let mut cov = Matrix::identity(3);
        cov[(0, 1)] = 0.6;
        cov[(1, 0)] = 0.6;
        let cmi = gaussian_conditional_mi(&cov, (1, 1, 1));
        let mi = crate::gaussian::bivariate_gaussian_mi(0.6);
        assert!((cmi - mi).abs() < 1e-12);
    }
}
