//! Shrinkage (James–Stein) binning multi-information — the second
//! baseline of §5.3, reported to "overestimate the multi-information in
//! higher dimension due to the sparse sampling, so much that almost no
//! change in information could be seen".
//!
//! Each coordinate is discretized into `bins` equal-width bins over its
//! sample range; entropies are computed from the binned histograms with
//! the Hausser–Strimmer James–Stein shrinkage toward the uniform
//! distribution, and combined as `Î = Σ_b Ĥ_b − Ĥ_joint`.
//!
//! For the *joint* histogram in high dimension the full product alphabet
//! `B^d` is astronomically larger than the sample count; shrinking toward
//! the uniform over it drives the shrinkage intensity to 1 and the
//! estimate degenerates to `log B^d`. The estimator therefore supports two
//! support models: [`SupportModel::Full`] (exact Hausser–Strimmer,
//! sensible for the low-dimensional marginals) and
//! [`SupportModel::Observed`] (alphabet = observed cells), the practical
//! choice for the sparse joint — which caps `Ĥ_joint` near `log m` and
//! reproduces exactly the overestimation-and-saturation the paper
//! describes (see the `estimator_shootout` example and `estimators`
//! bench).
//!
//! The engine behind the estimate is [`BinnedWorkspace`]: histograms are
//! built without hashing — a dense count array when the cell space is
//! small (every marginal at realistic widths), an index sort otherwise —
//! and every buffer is reused across calls. Counts are emitted in
//! **canonical (lexicographic bin-tuple) order**, making the estimate a
//! pure function of the data; the historical `HashMap` implementation
//! summed the same counts in a randomized iteration order, so its output
//! jittered at the last ulp across *runs of the same binary*.

use crate::SampleView;

/// How large the alphabet behind a histogram is assumed to be.
///
/// # Edge-case semantics (see [`shrink_entropy`])
///
/// * [`SupportModel::Full`] with many dimensions can overflow `f64`
///   (`bins^dims = ∞`); the shrunk entropy then diverges and is reported
///   as `+∞` — the honest limit of spreading shrinkage mass over an
///   unbounded alphabet.
/// * [`SupportModel::Observed`] always yields a finite alphabet (the
///   non-empty cells), so it is the safe choice for sparse joints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupportModel {
    /// The full product alphabet `bins^dims`.
    Full,
    /// Only the observed cells.
    Observed,
}

/// Binning estimator configuration.
#[derive(Debug, Clone, Copy)]
pub struct BinningConfig {
    /// Bins per coordinate.
    pub bins: usize,
    /// Apply James–Stein shrinkage (false = maximum-likelihood plug-in).
    pub shrinkage: bool,
    /// Support model for the marginal (per-block) histograms.
    pub marginal_support: SupportModel,
    /// Support model for the joint histogram.
    pub joint_support: SupportModel,
}

impl Default for BinningConfig {
    fn default() -> Self {
        BinningConfig {
            bins: 8,
            shrinkage: true,
            marginal_support: SupportModel::Full,
            joint_support: SupportModel::Observed,
        }
    }
}

/// Entropy (bits) of a count histogram under James–Stein shrinkage toward
/// the uniform distribution over an alphabet of `alphabet` cells.
///
/// With `shrinkage = false` this reduces to the ML plug-in entropy.
///
/// # Degenerate inputs
///
/// * An empty or all-zero `counts` slice yields `0.0`.
/// * Zero entries in `counts` are treated exactly like unobserved
///   alphabet cells (they carry `p̂ = 0`), so `[3, 0, 5]` and `[3, 5]`
///   give identical results for the same `alphabet`.
/// * `alphabet` is clamped up to the number of *non-zero* cells — an
///   alphabet smaller than the observed support is inconsistent (the
///   historical implementation produced garbage there in release builds).
/// * A non-finite `alphabet` (e.g. [`SupportModel::Full`] overflowing
///   `bins^dims`) yields `+∞` unless the histogram is a point mass
///   (shrinkage intensity 0): the James–Stein mass `λ` spread over an
///   unbounded alphabet has unbounded entropy. The historical code
///   returned `NaN` here.
/// * `m = 1` (a single observation) falls back to the ML plug-in, whose
///   entropy is 0 — the shrinkage intensity `λ*` divides by `m − 1`.
pub fn shrink_entropy(counts: &[u64], alphabet: f64, shrinkage: bool) -> f64 {
    let m: u64 = counts.iter().sum();
    if m == 0 {
        return 0.0;
    }
    let m_f = m as f64;
    if !shrinkage || m <= 1 {
        return crate::discrete::entropy_from_counts(counts);
    }
    let observed = counts.iter().filter(|&&c| c > 0).count() as f64;
    let alphabet = alphabet.max(observed);
    // Shrinkage intensity λ* (Hausser & Strimmer 2009, Eq. 5):
    // λ = (1 − Σ p̂²) / ((m−1) Σ (t − p̂)²), clipped to [0, 1].
    let mut sum_p_sq = 0.0;
    for &c in counts {
        let p = c as f64 / m_f;
        sum_p_sq += p * p;
    }
    if !alphabet.is_finite() {
        // t → 0: λ* → (1 − Σp̂²)/((m−1) Σp̂²). Unless the distribution is
        // a point mass (λ* = 0), shrinkage mass λ spread over an infinite
        // alphabet carries infinite entropy.
        return if sum_p_sq >= 1.0 {
            crate::discrete::entropy_from_counts(counts)
        } else {
            f64::INFINITY
        };
    }
    let t = 1.0 / alphabet;
    let mut sum_dev_sq = 0.0;
    for &c in counts {
        if c == 0 {
            continue; // zero cells join the unobserved bulk term below
        }
        let p = c as f64 / m_f;
        sum_dev_sq += (t - p) * (t - p);
    }
    sum_dev_sq += (alphabet - observed) * t * t; // unobserved cells (p̂ = 0)
    let lambda = if sum_dev_sq <= 0.0 {
        1.0
    } else {
        ((1.0 - sum_p_sq) / ((m_f - 1.0) * sum_dev_sq)).clamp(0.0, 1.0)
    };
    // Entropy of the shrunk distribution p = λ t + (1 − λ) p̂.
    let mut h = 0.0;
    for &c in counts {
        if c == 0 {
            continue;
        }
        let p = lambda * t + (1.0 - lambda) * c as f64 / m_f;
        if p > 0.0 {
            h -= p * p.log2();
        }
    }
    let unobserved = alphabet - observed;
    if unobserved > 0.0 && lambda > 0.0 {
        let q = lambda * t;
        h -= unobserved * q * q.log2();
    }
    h
}

/// Histogram cell spaces at most this large take the dense-count path;
/// larger spaces (sparse joints) take the index sort. Both emit counts in
/// the same canonical lexicographic order.
const DENSE_HISTOGRAM_MAX_CELLS: usize = 4096;

/// Persistent buffers for the shrinkage-binning estimator — the
/// binning-side sibling of [`crate::InfoWorkspace`]. A warmed-up
/// workspace allocates nothing per call (enforced by
/// `crates/sops-info/tests/workspace_measure.rs`).
#[derive(Debug, Clone, Default)]
pub struct BinnedWorkspace {
    /// Per-coordinate sample range.
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Discretized samples (`rows × stride` bin indices).
    binned: Vec<u16>,
    /// Row-index sort buffer (sparse histogram path).
    perm: Vec<u32>,
    /// Dense cell counts (dense histogram path).
    dense: Vec<u64>,
    /// Emitted non-zero counts, canonical (lexicographic cell) order.
    counts: Vec<u64>,
}

impl BinnedWorkspace {
    /// An empty workspace; buffers grow to the workload size on first use.
    pub fn new() -> Self {
        BinnedWorkspace::default()
    }

    /// Estimates the multi-information (bits) between the observer blocks
    /// of `view` with the shrinkage binning estimator — the workspace form
    /// of [`multi_information_binned`], allocation-free once warm.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.bins < 2` or `cfg.bins > 65536` (bin indices are
    /// `u16`).
    pub fn multi_information(&mut self, view: &SampleView<'_>, cfg: &BinningConfig) -> f64 {
        assert!(cfg.bins >= 2, "binning: need at least 2 bins");
        assert!(cfg.bins <= 1 << 16, "binning: bins exceed u16 indices");
        if view.blocks() < 2 {
            return 0.0;
        }
        let stride = view.stride();
        self.discretize(view, cfg.bins);

        let alphabet = |dims: usize, support: SupportModel, observed: usize| -> f64 {
            match support {
                SupportModel::Full => (cfg.bins as f64).powi(dims as i32),
                SupportModel::Observed => observed as f64,
            }
        };

        let mut sum_marginals = 0.0;
        let mut off = 0;
        for &b in view.block_sizes {
            self.histogram(view.rows, stride, off, off + b, cfg.bins);
            let a = alphabet(b, cfg.marginal_support, self.counts.len());
            sum_marginals += shrink_entropy(&self.counts, a, cfg.shrinkage);
            off += b;
        }
        self.histogram(view.rows, stride, 0, stride, cfg.bins);
        let a = alphabet(stride, cfg.joint_support, self.counts.len());
        let joint = shrink_entropy(&self.counts, a, cfg.shrinkage);
        sum_marginals - joint
    }

    /// Discretizes every coordinate of `view` into `bins` equal-width bins
    /// over its own range, into `self.binned`.
    fn discretize(&mut self, view: &SampleView<'_>, bins: usize) {
        let d = view.stride();
        self.lo.clear();
        self.lo.resize(d, f64::INFINITY);
        self.hi.clear();
        self.hi.resize(d, f64::NEG_INFINITY);
        for r in 0..view.rows {
            for (c, &v) in view.row(r).iter().enumerate() {
                self.lo[c] = self.lo[c].min(v);
                self.hi[c] = self.hi[c].max(v);
            }
        }
        self.binned.clear();
        for r in 0..view.rows {
            for (c, &v) in view.row(r).iter().enumerate() {
                let width = self.hi[c] - self.lo[c];
                let idx = if width <= 0.0 {
                    0
                } else {
                    (((v - self.lo[c]) / width * bins as f64) as usize).min(bins - 1)
                };
                self.binned.push(idx as u16);
            }
        }
    }

    /// Histogram of the bin tuples restricted to columns `[start, end)`,
    /// into `self.counts` (non-zero counts, canonical lexicographic cell
    /// order). Dense counting when the cell space is small, index sort +
    /// run-length otherwise — both orders coincide.
    fn histogram(&mut self, rows: usize, stride: usize, start: usize, end: usize, bins: usize) {
        let dims = end - start;
        self.counts.clear();
        let mut cells: usize = 1;
        for _ in 0..dims {
            cells = cells.saturating_mul(bins);
        }
        if cells <= DENSE_HISTOGRAM_MAX_CELLS {
            self.dense.clear();
            self.dense.resize(cells, 0);
            for r in 0..rows {
                let key = &self.binned[r * stride + start..r * stride + end];
                let mut idx = 0usize;
                for &b in key {
                    idx = idx * bins + b as usize;
                }
                self.dense[idx] += 1;
            }
            self.counts
                .extend(self.dense.iter().copied().filter(|&c| c > 0));
        } else {
            let binned = &self.binned;
            let key = |r: u32| {
                let r = r as usize;
                &binned[r * stride + start..r * stride + end]
            };
            self.perm.clear();
            self.perm.extend(0..rows as u32);
            self.perm.sort_unstable_by(|&a, &b| key(a).cmp(key(b)));
            let mut run_start = 0usize;
            for i in 1..=rows {
                if i == rows || key(self.perm[i]) != key(self.perm[run_start]) {
                    self.counts.push((i - run_start) as u64);
                    run_start = i;
                }
            }
        }
    }

    /// Capacities of every internal buffer — constant for a warmed-up
    /// workspace (the zero-allocation contract).
    pub fn capacity_signature(&self) -> Vec<usize> {
        vec![
            self.lo.capacity(),
            self.hi.capacity(),
            self.binned.capacity(),
            self.perm.capacity(),
            self.dense.capacity(),
            self.counts.capacity(),
        ]
    }
}

/// Estimates the multi-information (bits) between the observer blocks of
/// `view` with the shrinkage binning estimator.
///
/// Deprecated: this shim spins up a throwaway [`BinnedWorkspace`] per
/// call. Repeated callers should hold a workspace (or a
/// [`crate::measure::MeasureWorkspace`] driving the
/// [`crate::measure::Estimator`] trait) and reuse it; the result is
/// identical.
#[deprecated(
    since = "0.4.0",
    note = "use BinnedWorkspace::multi_information (or MeasureWorkspace with MeasureConfig::Binned) — this shim rebuilds all scratch per call"
)]
pub fn multi_information_binned(view: &SampleView<'_>, cfg: &BinningConfig) -> f64 {
    BinnedWorkspace::new().multi_information(view, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{bivariate_gaussian_mi, equicorrelated_cov, sample_gaussian};
    use crate::ksg::{multi_information, KsgConfig};
    use sops_math::Matrix;

    fn binned_mi(view: &SampleView<'_>, cfg: &BinningConfig) -> f64 {
        BinnedWorkspace::new().multi_information(view, cfg)
    }

    #[test]
    fn shrink_entropy_uniform_counts() {
        // Uniform observed over full alphabet: exactly log2(K) with or
        // without shrinkage.
        let h = shrink_entropy(&[10, 10, 10, 10], 4.0, true);
        assert!((h - 2.0).abs() < 1e-12);
        let h_ml = shrink_entropy(&[10, 10, 10, 10], 4.0, false);
        assert!((h_ml - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shrinkage_pulls_toward_uniform() {
        // Skewed counts over a 4-cell alphabet: shrunk entropy must lie
        // between ML entropy and log2(4).
        let counts = [97u64, 1, 1, 1];
        let ml = shrink_entropy(&counts, 4.0, false);
        let js = shrink_entropy(&counts, 4.0, true);
        assert!(js > ml);
        assert!(js < 2.0);
    }

    #[test]
    fn sparse_counts_with_huge_alphabet_saturate() {
        // All singletons, alphabet enormous: lambda -> 1 and entropy ->
        // log2(alphabet). This is the degeneracy that motivates
        // SupportModel::Observed for the joint.
        let counts = vec![1u64; 100];
        let h = shrink_entropy(&counts, 1e12, true);
        assert!(h > 30.0, "entropy {h} should approach log2(1e12) ≈ 39.9");
    }

    #[test]
    fn shrink_entropy_empty_and_all_zero_slices() {
        assert_eq!(shrink_entropy(&[], 8.0, true), 0.0);
        assert_eq!(shrink_entropy(&[], 8.0, false), 0.0);
        assert_eq!(shrink_entropy(&[0, 0, 0], 8.0, true), 0.0);
    }

    #[test]
    fn shrink_entropy_zero_cells_equal_unobserved_cells() {
        // [3, 0, 5] over alphabet 4 must equal [3, 5] over alphabet 4:
        // an explicit zero cell is the same thing as an unobserved cell.
        for shrinkage in [true, false] {
            let padded = shrink_entropy(&[3, 0, 5], 4.0, shrinkage);
            let compact = shrink_entropy(&[3, 5], 4.0, shrinkage);
            assert_eq!(padded.to_bits(), compact.to_bits(), "shrinkage={shrinkage}");
        }
    }

    #[test]
    fn shrink_entropy_clamps_undersized_alphabet() {
        // An alphabet below the observed support is inconsistent; it is
        // clamped up to the observed cell count.
        let clamped = shrink_entropy(&[1, 1, 1], 2.0, true);
        let exact = shrink_entropy(&[1, 1, 1], 3.0, true);
        assert_eq!(clamped.to_bits(), exact.to_bits());
    }

    #[test]
    fn shrink_entropy_single_observation_is_ml_plugin() {
        // m = 1: λ* divides by m − 1; falls back to plug-in (entropy 0).
        assert_eq!(shrink_entropy(&[1], 8.0, true), 0.0);
        assert_eq!(shrink_entropy(&[0, 1, 0], 1e6, true), 0.0);
    }

    #[test]
    fn shrink_entropy_infinite_alphabet_diverges_unless_point_mass() {
        // Full support overflowing f64 (bins^dims = ∞): the shrunk
        // entropy diverges — the honest limit, where the historical code
        // returned NaN.
        assert_eq!(shrink_entropy(&[5, 5], f64::INFINITY, true), f64::INFINITY);
        // A point mass has shrinkage intensity 0: stays the ML entropy.
        assert_eq!(shrink_entropy(&[7], f64::INFINITY, true), 0.0);
        // And the estimator surfaces it without NaN: 400 samples of 400
        // dims under Full joint support.
        let rows = 16;
        let d = 400; // 8^400 overflows f64
        let mut rng = sops_math::SplitMix64::new(5);
        let data: Vec<f64> = (0..rows * d).map(|_| rng.next_range(0.0, 1.0)).collect();
        let sizes = vec![1usize; d];
        let view = SampleView::new(&data, rows, &sizes);
        let cfg = BinningConfig {
            joint_support: SupportModel::Full,
            ..BinningConfig::default()
        };
        let est = binned_mi(&view, &cfg);
        assert!(est == f64::NEG_INFINITY, "Ĥ_joint = ∞ ⇒ Î = −∞, got {est}");
    }

    #[test]
    fn low_dim_gaussian_mi_roughly_recovered() {
        let rho = 0.8;
        let data = sample_gaussian(&equicorrelated_cov(2, rho), 2000, 3);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 2000, &sizes);
        let est = binned_mi(&view, &BinningConfig::default());
        let truth = bivariate_gaussian_mi(rho);
        // Binning is coarse; accept a generous band but demand the signal.
        assert!(
            (est - truth).abs() < 0.35,
            "binned est {est} vs truth {truth}"
        );
    }

    #[test]
    fn independent_low_dim_is_small() {
        let data = sample_gaussian(&Matrix::identity(2), 2000, 7);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 2000, &sizes);
        let est = binned_mi(&view, &BinningConfig::default());
        assert!(est.abs() < 0.15, "independent: {est}");
    }

    #[test]
    fn overestimates_in_high_dimension() {
        // The paper's §5.3 observation: 10 independent scalar observers,
        // 300 samples. KSG stays near 0; the binning estimate explodes
        // because every joint cell is a singleton.
        let d = 10;
        let m = 300;
        let data = sample_gaussian(&Matrix::identity(d), m, 13);
        let sizes = vec![1usize; d];
        let view = SampleView::new(&data, m, &sizes);
        let binned = binned_mi(&view, &BinningConfig::default());
        let ksg = multi_information(&view, &KsgConfig::default());
        assert!(
            binned > ksg + 5.0,
            "binned {binned} should vastly exceed KSG {ksg} in high-d"
        );
        // And it saturates: joint entropy is pinned near log2(m), so the
        // estimate is insensitive to actual coupling ("almost no change in
        // information could be seen").
        let coupled = sample_gaussian(&equicorrelated_cov(d, 0.5), m, 14);
        let view_c = SampleView::new(&coupled, m, &sizes);
        let binned_c = binned_mi(&view_c, &BinningConfig::default());
        assert!(
            (binned_c - binned).abs() < 0.15 * binned,
            "saturation: {binned} (indep) vs {binned_c} (coupled) should be close"
        );
    }

    #[test]
    fn ml_plugin_matches_discrete_reference() {
        // With shrinkage off and observed support, the estimator reduces
        // to the plug-in discrete multi-information of the bin tuples.
        let mut rng = sops_math::SplitMix64::new(21);
        let m = 400;
        let mut data = Vec::with_capacity(m * 2);
        for _ in 0..m {
            let x = rng.next_range(0.0, 1.0);
            data.push(x);
            data.push(x + rng.next_range(0.0, 0.2));
        }
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, m, &sizes);
        let cfg = BinningConfig {
            shrinkage: false,
            ..BinningConfig::default()
        };
        let est = binned_mi(&view, &cfg);

        let mut ws = BinnedWorkspace::new();
        ws.discretize(&view, cfg.bins);
        let tuples: Vec<Vec<u32>> = (0..m)
            .map(|r| vec![ws.binned[2 * r] as u32, ws.binned[2 * r + 1] as u32])
            .collect();
        let reference = crate::discrete::multi_information_from_tuples(&tuples);
        assert!((est - reference).abs() < 1e-9, "{est} vs {reference}");
    }

    #[test]
    fn histogram_paths_bit_reproducible_across_calls() {
        // bins = 64 keeps the joint space dense (64² = 4096 cells);
        // bins = 65 pushes it onto the sort path (4225 cells). Each path
        // must be a pure function of the data — bit-equal across repeat
        // calls on a reused workspace (the HashMap implementation this
        // replaced was not, across runs). Cross-path *agreement* on the
        // canonical count order is pinned against the frozen reference in
        // tests/workspace_measure.rs (`binned_bit_identical_across_bin_counts`,
        // which covers bins 8 / dense and 65 / sort).
        let m = 500;
        let mut rng = sops_math::SplitMix64::new(33);
        let data: Vec<f64> = (0..m * 2).map(|_| rng.next_range(0.0, 1.0)).collect();
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, m, &sizes);
        for bins in [64usize, 65] {
            let cfg = BinningConfig {
                bins,
                ..BinningConfig::default()
            };
            let mut ws = BinnedWorkspace::new();
            let a = ws.multi_information(&view, &cfg);
            let b = ws.multi_information(&view, &cfg);
            assert_eq!(a.to_bits(), b.to_bits(), "bins={bins}");
            assert!(a.is_finite());
        }
    }

    #[test]
    fn constant_column_handled() {
        let mut data = Vec::new();
        let mut rng = sops_math::SplitMix64::new(2);
        for _ in 0..100 {
            data.push(rng.next_range(0.0, 1.0));
            data.push(5.0);
        }
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 100, &sizes);
        let est = binned_mi(&view, &BinningConfig::default());
        assert!(est.is_finite());
    }
}
