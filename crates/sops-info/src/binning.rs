//! Shrinkage (James–Stein) binning multi-information — the second
//! baseline of §5.3, reported to "overestimate the multi-information in
//! higher dimension due to the sparse sampling, so much that almost no
//! change in information could be seen".
//!
//! Each coordinate is discretized into `bins` equal-width bins over its
//! sample range; entropies are computed from the binned histograms with
//! the Hausser–Strimmer James–Stein shrinkage toward the uniform
//! distribution, and combined as `Î = Σ_b Ĥ_b − Ĥ_joint`.
//!
//! For the *joint* histogram in high dimension the full product alphabet
//! `B^d` is astronomically larger than the sample count; shrinking toward
//! the uniform over it drives the shrinkage intensity to 1 and the
//! estimate degenerates to `log B^d`. The estimator therefore supports two
//! support models: [`SupportModel::Full`] (exact Hausser–Strimmer,
//! sensible for the low-dimensional marginals) and
//! [`SupportModel::Observed`] (alphabet = observed cells), the practical
//! choice for the sparse joint — which caps `Ĥ_joint` near `log m` and
//! reproduces exactly the overestimation-and-saturation the paper
//! describes (see the `estimator_shootout` example and `estimators`
//! bench).

use crate::SampleView;
use std::collections::HashMap;

/// How large the alphabet behind a histogram is assumed to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupportModel {
    /// The full product alphabet `bins^dims`.
    Full,
    /// Only the observed cells.
    Observed,
}

/// Binning estimator configuration.
#[derive(Debug, Clone, Copy)]
pub struct BinningConfig {
    /// Bins per coordinate.
    pub bins: usize,
    /// Apply James–Stein shrinkage (false = maximum-likelihood plug-in).
    pub shrinkage: bool,
    /// Support model for the marginal (per-block) histograms.
    pub marginal_support: SupportModel,
    /// Support model for the joint histogram.
    pub joint_support: SupportModel,
}

impl Default for BinningConfig {
    fn default() -> Self {
        BinningConfig {
            bins: 8,
            shrinkage: true,
            marginal_support: SupportModel::Full,
            joint_support: SupportModel::Observed,
        }
    }
}

/// Entropy (bits) of a count histogram under James–Stein shrinkage toward
/// the uniform distribution over an alphabet of `alphabet` cells
/// (`alphabet >= counts.len()`, the observed cells).
///
/// With `shrinkage = false` this reduces to the ML plug-in entropy.
pub fn shrink_entropy(counts: &[u64], alphabet: f64, shrinkage: bool) -> f64 {
    let m: u64 = counts.iter().sum();
    if m == 0 {
        return 0.0;
    }
    let m_f = m as f64;
    if !shrinkage || m <= 1 {
        return crate::discrete::entropy_from_counts(counts);
    }
    let observed = counts.len() as f64;
    debug_assert!(alphabet >= observed);
    let t = 1.0 / alphabet;
    // Shrinkage intensity λ* (Hausser & Strimmer 2009, Eq. 5):
    // λ = (1 − Σ p̂²) / ((m−1) Σ (t − p̂)²), clipped to [0, 1].
    let mut sum_p_sq = 0.0;
    let mut sum_dev_sq = 0.0;
    for &c in counts {
        let p = c as f64 / m_f;
        sum_p_sq += p * p;
        sum_dev_sq += (t - p) * (t - p);
    }
    sum_dev_sq += (alphabet - observed) * t * t; // unobserved cells (p̂ = 0)
    let lambda = if sum_dev_sq <= 0.0 {
        1.0
    } else {
        ((1.0 - sum_p_sq) / ((m_f - 1.0) * sum_dev_sq)).clamp(0.0, 1.0)
    };
    // Entropy of the shrunk distribution p = λ t + (1 − λ) p̂.
    let mut h = 0.0;
    for &c in counts {
        let p = lambda * t + (1.0 - lambda) * c as f64 / m_f;
        if p > 0.0 {
            h -= p * p.log2();
        }
    }
    let unobserved = alphabet - observed;
    if unobserved > 0.0 && lambda > 0.0 {
        let q = lambda * t;
        h -= unobserved * q * q.log2();
    }
    h
}

/// Discretizes every coordinate of `view` into `bins` equal-width bins
/// over its own range; returns per-sample bin tuples (`rows × stride`).
fn discretize(view: &SampleView<'_>, bins: usize) -> Vec<u16> {
    let d = view.stride();
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for r in 0..view.rows {
        for (c, &v) in view.row(r).iter().enumerate() {
            lo[c] = lo[c].min(v);
            hi[c] = hi[c].max(v);
        }
    }
    let mut out = Vec::with_capacity(view.rows * d);
    for r in 0..view.rows {
        for (c, &v) in view.row(r).iter().enumerate() {
            let width = hi[c] - lo[c];
            let idx = if width <= 0.0 {
                0
            } else {
                (((v - lo[c]) / width * bins as f64) as usize).min(bins - 1)
            };
            out.push(idx as u16);
        }
    }
    out
}

/// Histogram of the bin tuples restricted to columns `[start, end)`.
fn histogram(binned: &[u16], rows: usize, stride: usize, start: usize, end: usize) -> Vec<u64> {
    let mut counts: HashMap<&[u16], u64> = HashMap::with_capacity(rows);
    for r in 0..rows {
        let key = &binned[r * stride + start..r * stride + end];
        *counts.entry(key).or_insert(0) += 1;
    }
    counts.into_values().collect()
}

/// Estimates the multi-information (bits) between the observer blocks of
/// `view` with the shrinkage binning estimator.
pub fn multi_information_binned(view: &SampleView<'_>, cfg: &BinningConfig) -> f64 {
    assert!(cfg.bins >= 2, "binning: need at least 2 bins");
    if view.blocks() < 2 {
        return 0.0;
    }
    let stride = view.stride();
    let binned = discretize(view, cfg.bins);

    let alphabet = |dims: usize, support: SupportModel, observed: usize| -> f64 {
        match support {
            SupportModel::Full => (cfg.bins as f64).powi(dims as i32),
            SupportModel::Observed => observed as f64,
        }
    };

    let mut sum_marginals = 0.0;
    let mut off = 0;
    for &b in view.block_sizes {
        let counts = histogram(&binned, view.rows, stride, off, off + b);
        let a = alphabet(b, cfg.marginal_support, counts.len());
        sum_marginals += shrink_entropy(&counts, a, cfg.shrinkage);
        off += b;
    }
    let joint_counts = histogram(&binned, view.rows, stride, 0, stride);
    let a = alphabet(stride, cfg.joint_support, joint_counts.len());
    let joint = shrink_entropy(&joint_counts, a, cfg.shrinkage);
    sum_marginals - joint
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{bivariate_gaussian_mi, equicorrelated_cov, sample_gaussian};
    use crate::ksg::{multi_information, KsgConfig};
    use sops_math::Matrix;

    #[test]
    fn shrink_entropy_uniform_counts() {
        // Uniform observed over full alphabet: exactly log2(K) with or
        // without shrinkage.
        let h = shrink_entropy(&[10, 10, 10, 10], 4.0, true);
        assert!((h - 2.0).abs() < 1e-12);
        let h_ml = shrink_entropy(&[10, 10, 10, 10], 4.0, false);
        assert!((h_ml - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shrinkage_pulls_toward_uniform() {
        // Skewed counts over a 4-cell alphabet: shrunk entropy must lie
        // between ML entropy and log2(4).
        let counts = [97u64, 1, 1, 1];
        let ml = shrink_entropy(&counts, 4.0, false);
        let js = shrink_entropy(&counts, 4.0, true);
        assert!(js > ml);
        assert!(js < 2.0);
    }

    #[test]
    fn sparse_counts_with_huge_alphabet_saturate() {
        // All singletons, alphabet enormous: lambda -> 1 and entropy ->
        // log2(alphabet). This is the degeneracy that motivates
        // SupportModel::Observed for the joint.
        let counts = vec![1u64; 100];
        let h = shrink_entropy(&counts, 1e12, true);
        assert!(h > 30.0, "entropy {h} should approach log2(1e12) ≈ 39.9");
    }

    #[test]
    fn low_dim_gaussian_mi_roughly_recovered() {
        let rho = 0.8;
        let data = sample_gaussian(&equicorrelated_cov(2, rho), 2000, 3);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 2000, &sizes);
        let est = multi_information_binned(&view, &BinningConfig::default());
        let truth = bivariate_gaussian_mi(rho);
        // Binning is coarse; accept a generous band but demand the signal.
        assert!(
            (est - truth).abs() < 0.35,
            "binned est {est} vs truth {truth}"
        );
    }

    #[test]
    fn independent_low_dim_is_small() {
        let data = sample_gaussian(&Matrix::identity(2), 2000, 7);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 2000, &sizes);
        let est = multi_information_binned(&view, &BinningConfig::default());
        assert!(est.abs() < 0.15, "independent: {est}");
    }

    #[test]
    fn overestimates_in_high_dimension() {
        // The paper's §5.3 observation: 10 independent scalar observers,
        // 300 samples. KSG stays near 0; the binning estimate explodes
        // because every joint cell is a singleton.
        let d = 10;
        let m = 300;
        let data = sample_gaussian(&Matrix::identity(d), m, 13);
        let sizes = vec![1usize; d];
        let view = SampleView::new(&data, m, &sizes);
        let binned = multi_information_binned(&view, &BinningConfig::default());
        let ksg = multi_information(&view, &KsgConfig::default());
        assert!(
            binned > ksg + 5.0,
            "binned {binned} should vastly exceed KSG {ksg} in high-d"
        );
        // And it saturates: joint entropy is pinned near log2(m), so the
        // estimate is insensitive to actual coupling ("almost no change in
        // information could be seen").
        let coupled = sample_gaussian(&equicorrelated_cov(d, 0.5), m, 14);
        let view_c = SampleView::new(&coupled, m, &sizes);
        let binned_c = multi_information_binned(&view_c, &BinningConfig::default());
        assert!(
            (binned_c - binned).abs() < 0.15 * binned,
            "saturation: {binned} (indep) vs {binned_c} (coupled) should be close"
        );
    }

    #[test]
    fn ml_plugin_matches_discrete_reference() {
        // With shrinkage off and observed support, the estimator reduces
        // to the plug-in discrete multi-information of the bin tuples.
        let mut rng = sops_math::SplitMix64::new(21);
        let m = 400;
        let mut data = Vec::with_capacity(m * 2);
        for _ in 0..m {
            let x = rng.next_range(0.0, 1.0);
            data.push(x);
            data.push(x + rng.next_range(0.0, 0.2));
        }
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, m, &sizes);
        let cfg = BinningConfig {
            shrinkage: false,
            ..BinningConfig::default()
        };
        let est = multi_information_binned(&view, &cfg);

        let binned = discretize(&view, cfg.bins);
        let tuples: Vec<Vec<u32>> = (0..m)
            .map(|r| vec![binned[2 * r] as u32, binned[2 * r + 1] as u32])
            .collect();
        let reference = crate::discrete::multi_information_from_tuples(&tuples);
        assert!((est - reference).abs() < 1e-9, "{est} vs {reference}");
    }

    #[test]
    fn constant_column_handled() {
        let mut data = Vec::new();
        let mut rng = sops_math::SplitMix64::new(2);
        for _ in 0..100 {
            data.push(rng.next_range(0.0, 1.0));
            data.push(5.0);
        }
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 100, &sizes);
        let est = multi_information_binned(&view, &BinningConfig::default());
        assert!(est.is_finite());
    }
}
