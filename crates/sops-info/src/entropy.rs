//! Kozachenko–Leonenko k-NN differential entropy.
//!
//! The paper's discussion of *why* multi-information rises (§6: "the
//! marginal entropies decrease, however the overall entropy decreases even
//! faster") needs direct estimates of marginal and joint differential
//! entropies. The Kozachenko–Leonenko estimator is the entropy-side
//! sibling of the KSG family:
//!
//! ```text
//! ĥ = −ψ(k) + ψ(m) + ln V_d + (d/m) Σᵢ ln εᵢ      (nats)
//! ```
//!
//! with `εᵢ` the distance from sample `i` to its k-th nearest neighbour
//! and `V_d` the unit-ball volume of the chosen norm.

use sops_math::special::{digamma, unit_ball_volume_l2};
use sops_math::NATS_TO_BITS;
use sops_spatial::block_max::{kth_dist_block_max, BlockPoints};

/// Estimates the differential entropy (bits) of `rows` samples of a
/// `dim`-dimensional variable under the L2 norm.
///
/// # Panics
///
/// Panics if `k == 0` or `k >= rows` or the data layout is inconsistent.
pub fn kl_entropy(data: &[f64], rows: usize, dim: usize, k: usize) -> f64 {
    assert!(k >= 1, "kl_entropy: k must be >= 1");
    assert!(k < rows, "kl_entropy: need more than k samples");
    assert_eq!(data.len(), rows * dim, "kl_entropy: data shape");
    // Single block of size `dim` makes block-max == plain L2.
    let sizes = [dim];
    let points = BlockPoints::new(data, rows, &sizes);
    let mut log_sum = 0.0;
    for i in 0..rows {
        let eps = kth_dist_block_max(&points, i, k);
        // Duplicated samples give eps = 0; floor at a tiny value so the
        // estimate stays finite (standard practical guard).
        log_sum += eps.max(1e-300).ln();
    }
    let d = dim as f64;
    let nats = -digamma(k as f64)
        + digamma(rows as f64)
        + unit_ball_volume_l2(dim).ln()
        + d / rows as f64 * log_sum;
    nats * NATS_TO_BITS
}

/// Marginal and joint entropies of a blocked sample set, plus the implied
/// multi-information `Σ h(Wᵢ) − h(W)` — the entropy-based cross-check of
/// the KSG estimate used by the `estimator_shootout` example.
#[derive(Debug, Clone)]
pub struct EntropyBreakdown {
    /// Per-block marginal differential entropies (bits).
    pub marginals: Vec<f64>,
    /// Joint differential entropy (bits).
    pub joint: f64,
}

impl EntropyBreakdown {
    /// `Σ h(Wᵢ) − h(W₁,…,W_n)` in bits.
    pub fn multi_information(&self) -> f64 {
        self.marginals.iter().sum::<f64>() - self.joint
    }
}

/// Computes [`EntropyBreakdown`] for a blocked view with the given `k`.
pub fn entropy_breakdown(view: &crate::SampleView<'_>, k: usize) -> EntropyBreakdown {
    let marginals: Vec<f64> = (0..view.blocks())
        .map(|b| {
            let cols = view.block_columns(b);
            kl_entropy(&cols, view.rows, view.block_sizes[b], k)
        })
        .collect();
    let joint = kl_entropy(view.data, view.rows, view.stride(), k);
    EntropyBreakdown { marginals, joint }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{equicorrelated_cov, gaussian_entropy, sample_gaussian};
    use crate::SampleView;
    use sops_math::Matrix;

    #[test]
    fn standard_normal_entropy_recovered() {
        let data = sample_gaussian(&Matrix::identity(1), 4000, 3);
        let est = kl_entropy(&data, 4000, 1, 4);
        let truth = gaussian_entropy(&Matrix::identity(1));
        assert!((est - truth).abs() < 0.05, "est {est} vs {truth}");
    }

    #[test]
    fn uniform_entropy_recovered() {
        // h(U[0, 2]) = log2(2) = 1 bit.
        let mut rng = sops_math::SplitMix64::new(8);
        let data: Vec<f64> = (0..4000).map(|_| rng.next_range(0.0, 2.0)).collect();
        let est = kl_entropy(&data, 4000, 1, 4);
        assert!((est - 1.0).abs() < 0.05, "est {est} vs 1.0");
    }

    #[test]
    fn bivariate_gaussian_entropy_recovered() {
        let cov = equicorrelated_cov(2, 0.6);
        let data = sample_gaussian(&cov, 4000, 5);
        let est = kl_entropy(&data, 4000, 2, 4);
        let truth = gaussian_entropy(&cov);
        assert!((est - truth).abs() < 0.1, "est {est} vs {truth}");
    }

    #[test]
    fn scaling_shifts_entropy_by_log_scale() {
        // h(aX) = h(X) + log2 a.
        let data = sample_gaussian(&Matrix::identity(1), 3000, 17);
        let scaled: Vec<f64> = data.iter().map(|x| 4.0 * x).collect();
        let base = kl_entropy(&data, 3000, 1, 4);
        let shifted = kl_entropy(&scaled, 3000, 1, 4);
        assert!(
            (shifted - base - 2.0).abs() < 0.05,
            "{shifted} - {base} should be 2 bits"
        );
    }

    #[test]
    fn breakdown_mi_matches_ksg_roughly() {
        let cov = equicorrelated_cov(2, 0.7);
        let data = sample_gaussian(&cov, 2000, 29);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 2000, &sizes);
        let breakdown = entropy_breakdown(&view, 4);
        let via_entropies = breakdown.multi_information();
        let via_ksg = crate::ksg::multi_information(&view, &crate::KsgConfig::default());
        assert!(
            (via_entropies - via_ksg).abs() < 0.2,
            "entropy route {via_entropies} vs KSG {via_ksg}"
        );
    }

    #[test]
    fn duplicated_points_stay_finite() {
        let data = vec![1.0; 50];
        let est = kl_entropy(&data, 50, 1, 4);
        assert!(est.is_finite());
    }
}
