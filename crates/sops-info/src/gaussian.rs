//! Analytic Gaussian multi-information and correlated Gaussian sampling.
//!
//! For a multivariate Gaussian with covariance `Σ` partitioned into blocks
//! `Σ_bb`, the multi-information has the closed form
//!
//! ```text
//! I = ½ (Σ_b ln det Σ_bb − ln det Σ)  nats
//! ```
//!
//! This is the ground truth every continuous estimator in this crate is
//! validated against, and the generator produces the test ensembles.

use sops_math::{Matrix, SplitMix64, NATS_TO_BITS};

/// Analytic multi-information (bits) of a Gaussian with covariance `cov`
/// under the given block partition.
///
/// # Panics
///
/// Panics if the block sizes don't tile the covariance or `cov` is not
/// symmetric positive definite.
pub fn gaussian_multi_information(cov: &Matrix, block_sizes: &[usize]) -> f64 {
    let d: usize = block_sizes.iter().sum();
    assert_eq!(cov.rows(), d, "gaussian_multi_information: size mismatch");
    assert_eq!(cov.cols(), d);
    let ln_det_joint = cov
        .ln_det_spd()
        .expect("gaussian_multi_information: covariance not SPD");
    let mut sum_blocks = 0.0;
    let mut off = 0;
    for &b in block_sizes {
        let mut sub = Matrix::zeros(b, b);
        for i in 0..b {
            for j in 0..b {
                sub[(i, j)] = cov[(off + i, off + j)];
            }
        }
        sum_blocks += sub
            .ln_det_spd()
            .expect("gaussian_multi_information: block not SPD");
        off += b;
    }
    0.5 * (sum_blocks - ln_det_joint) * NATS_TO_BITS
}

/// Analytic mutual information (bits) of a bivariate Gaussian with
/// correlation `rho`: `I = −½ log₂(1 − ρ²)`.
pub fn bivariate_gaussian_mi(rho: f64) -> f64 {
    assert!(rho.abs() < 1.0, "bivariate_gaussian_mi: |rho| must be < 1");
    -0.5 * (1.0 - rho * rho).log2()
}

/// Differential entropy (bits) of a d-dimensional Gaussian:
/// `h = ½ ln((2πe)^d det Σ)`.
pub fn gaussian_entropy(cov: &Matrix) -> f64 {
    let d = cov.rows() as f64;
    let ln_det = cov.ln_det_spd().expect("gaussian_entropy: not SPD");
    0.5 * (d * (1.0 + (2.0 * std::f64::consts::PI).ln()) + ln_det) * NATS_TO_BITS
}

/// Draws `rows` samples from `N(0, cov)` via the Cholesky factor,
/// returning a row-major `rows × d` matrix.
///
/// # Panics
///
/// Panics if `cov` is not SPD.
pub fn sample_gaussian(cov: &Matrix, rows: usize, seed: u64) -> Vec<f64> {
    let d = cov.rows();
    let l = cov.cholesky().expect("sample_gaussian: covariance not SPD");
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(rows * d);
    let mut z = vec![0.0f64; d];
    for _ in 0..rows {
        for v in z.iter_mut() {
            *v = rng.next_standard_normal();
        }
        for i in 0..d {
            let mut acc = 0.0;
            for j in 0..=i {
                acc += l[(i, j)] * z[j];
            }
            out.push(acc);
        }
    }
    out
}

/// Estimates the multi-information (bits) between the observer blocks of
/// `view` under a Gaussian model: the empirical covariance is plugged
/// into the closed form `½ (Σ_b ln det Σ_bb − ln det Σ)`.
///
/// This is the parametric baseline of the estimator comparison — exact
/// when the ensemble really is Gaussian, blind to any non-linear
/// dependence, and `O(m d² + d³)` (by far the cheapest continuous
/// estimator). Driven through the [`crate::measure::Estimator`] trait via
/// [`crate::measure::MeasureConfig::Gaussian`].
///
/// Returns `NaN` when the empirical covariance (or a block of it) is not
/// positive definite — fewer samples than joint dimensions, or
/// degenerate coordinates — where the Gaussian model is undefined. A
/// pipeline worker driving this selection therefore reports `NaN` for
/// the affected step instead of aborting the run (mirroring
/// [`crate::binning::shrink_entropy`]'s defined degenerate semantics).
///
/// # Panics
///
/// Panics if `view.rows < 2`.
pub fn multi_information_gaussian(view: &crate::SampleView<'_>) -> f64 {
    if view.blocks() < 2 {
        return 0.0;
    }
    let m = view.rows;
    assert!(m >= 2, "gaussian estimator: need at least 2 samples");
    let d = view.stride();
    let mut mean = vec![0.0f64; d];
    for r in 0..m {
        for (acc, &v) in mean.iter_mut().zip(view.row(r)) {
            *acc += v;
        }
    }
    for v in &mut mean {
        *v /= m as f64;
    }
    let mut cov = Matrix::zeros(d, d);
    for r in 0..m {
        let row = view.row(r);
        for i in 0..d {
            let di = row[i] - mean[i];
            for j in i..d {
                cov[(i, j)] += di * (row[j] - mean[j]);
            }
        }
    }
    let denom = (m - 1) as f64;
    for i in 0..d {
        for j in i..d {
            cov[(i, j)] /= denom;
            cov[(j, i)] = cov[(i, j)];
        }
    }
    // Same closed form as `gaussian_multi_information`, but a singular
    // empirical covariance yields NaN instead of a panic (doc above).
    let Some(ln_det_joint) = cov.ln_det_spd() else {
        return f64::NAN;
    };
    let mut sum_blocks = 0.0;
    let mut off = 0;
    for &b in view.block_sizes {
        let mut sub = Matrix::zeros(b, b);
        for i in 0..b {
            for j in 0..b {
                sub[(i, j)] = cov[(off + i, off + j)];
            }
        }
        let Some(ln_det) = sub.ln_det_spd() else {
            return f64::NAN;
        };
        sum_blocks += ln_det;
        off += b;
    }
    0.5 * (sum_blocks - ln_det_joint) * NATS_TO_BITS
}

/// Convenience: an equicorrelated covariance (unit variances, constant
/// correlation `rho` off the diagonal).
pub fn equicorrelated_cov(d: usize, rho: f64) -> Matrix {
    let mut cov = Matrix::identity(d);
    for i in 0..d {
        for j in 0..d {
            if i != j {
                cov[(i, j)] = rho;
            }
        }
    }
    cov
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bivariate_formula_matches_block_formula() {
        for rho in [0.0, 0.3, -0.6, 0.9] {
            let cov = equicorrelated_cov(2, rho);
            let via_blocks = gaussian_multi_information(&cov, &[1, 1]);
            let direct = bivariate_gaussian_mi(rho);
            assert!(
                (via_blocks - direct).abs() < 1e-12,
                "rho={rho}: {via_blocks} vs {direct}"
            );
        }
    }

    #[test]
    fn independence_gives_zero() {
        let cov = Matrix::identity(5);
        assert!(gaussian_multi_information(&cov, &[2, 2, 1]).abs() < 1e-12);
    }

    #[test]
    fn multi_information_grows_with_correlation() {
        let low = gaussian_multi_information(&equicorrelated_cov(4, 0.2), &[1, 1, 1, 1]);
        let high = gaussian_multi_information(&equicorrelated_cov(4, 0.6), &[1, 1, 1, 1]);
        assert!(high > low && low > 0.0);
    }

    #[test]
    fn block_partition_ignores_within_block_correlation() {
        // Correlation only *within* the single 2-d block: no
        // multi-information across blocks of sizes [2, 1].
        let mut cov = Matrix::identity(3);
        cov[(0, 1)] = 0.8;
        cov[(1, 0)] = 0.8;
        let i = gaussian_multi_information(&cov, &[2, 1]);
        assert!(i.abs() < 1e-12, "within-block correlation leaked: {i}");
        // The same covariance under scalar observers does see it.
        let scalar = gaussian_multi_information(&cov, &[1, 1, 1]);
        assert!(scalar > 0.5);
    }

    #[test]
    fn entropy_of_standard_normal() {
        // h = 0.5 log2(2*pi*e) ≈ 2.0471 bits per dimension.
        let h1 = gaussian_entropy(&Matrix::identity(1));
        assert!((h1 - 2.047_095_585_180_641).abs() < 1e-9);
        let h3 = gaussian_entropy(&Matrix::identity(3));
        assert!((h3 - 3.0 * h1).abs() < 1e-9);
    }

    #[test]
    fn sampler_matches_target_covariance() {
        let cov = equicorrelated_cov(3, 0.5);
        let data = sample_gaussian(&cov, 50_000, 123);
        let rows: Vec<&[f64]> = data.chunks(3).collect();
        let emp = Matrix::covariance_of(&rows);
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (emp[(i, j)] - cov[(i, j)]).abs() < 0.03,
                    "cov[{i}{j}] = {} vs {}",
                    emp[(i, j)],
                    cov[(i, j)]
                );
            }
        }
    }

    #[test]
    fn empirical_estimator_recovers_gaussian_truth() {
        let cov = equicorrelated_cov(3, 0.5);
        let truth = gaussian_multi_information(&cov, &[1, 1, 1]);
        let data = sample_gaussian(&cov, 3000, 42);
        let sizes = [1usize, 1, 1];
        let view = crate::SampleView::new(&data, 3000, &sizes);
        let est = multi_information_gaussian(&view);
        assert!((est - truth).abs() < 0.05, "est {est} vs truth {truth}");
        // Single block: zero by convention.
        let one = [3usize];
        let view1 = crate::SampleView::new(&data, 3000, &one);
        assert_eq!(multi_information_gaussian(&view1), 0.0);
    }

    #[test]
    fn empirical_estimator_degenerate_covariance_is_nan_not_panic() {
        // Fewer samples than joint dimensions: rank-deficient covariance.
        let cov = equicorrelated_cov(6, 0.3);
        let data = sample_gaussian(&cov, 4, 1);
        let sizes = [1usize; 6];
        let view = crate::SampleView::new(&data, 4, &sizes);
        assert!(multi_information_gaussian(&view).is_nan());
        // A constant coordinate degenerates a block the same way.
        let flat: Vec<f64> = (0..20).flat_map(|i| [i as f64, 7.0]).collect();
        let two = [1usize, 1];
        let view2 = crate::SampleView::new(&flat, 20, &two);
        assert!(multi_information_gaussian(&view2).is_nan());
    }

    #[test]
    fn sampler_deterministic_in_seed() {
        let cov = equicorrelated_cov(2, 0.3);
        assert_eq!(sample_gaussian(&cov, 10, 7), sample_gaussian(&cov, 10, 7));
        assert_ne!(sample_gaussian(&cov, 10, 7), sample_gaussian(&cov, 10, 8));
    }
}
