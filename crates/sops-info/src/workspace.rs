//! The persistent, allocation-free information-estimation engine.
//!
//! The KSG estimator is the measurement loop's hottest kernel: the
//! pipeline runs it at every evaluation step, `pairwise_mi_matrix` runs
//! it once per block pair, and the Eq. 5 decomposition once per grouping
//! term. The free-function implementations rebuilt every per-block
//! kd-tree, copied `merged_blocks` matrices per pair, and allocated three
//! vectors per *sample* (k-NN result, per-block distances, Ksg2 radii).
//! [`InfoWorkspace`] — the information-stack sibling of
//! `sops_sim::ForceWorkspace` — removes all of that:
//!
//! * **Shared per-block indexes** — the strict/inclusive range-count
//!   structure of every observer block (a sorted column for scalar
//!   blocks, a [`KdTree`] for vector blocks) is built once per sample
//!   view and shared across the joint term, all `n(n−1)/2` pairs of the
//!   MI matrix, and every within-group term of [`decompose`]: block `b`'s
//!   index is no longer rebuilt `n−1` times per matrix.
//! * **Adaptive joint k-NN** — high joint dimension keeps the pruned
//!   brute-force scan (where space partitioning degenerates, per the
//!   `sops_spatial::block_max` docs), run over a lane-transposed SoA
//!   tile ([`sops_spatial::block_max::ScalarLanes`]) when every block is
//!   scalar; low joint dimension (pairwise scalar MI is dim-2) routes
//!   through an iterative kd-tree descent under the block-max metric
//!   ([`sops_spatial::block_max::knn_block_max_tree_into`]) whose leaves
//!   are scanned as contiguous row slabs, turning each pair's `O(m²)`
//!   scan into `O(m log m)`. All paths are bit-identical.
//! * **Per-worker scratch, zero steady-state allocations** — samples are
//!   partitioned into [`INFO_CHUNKS`] fixed spans; each span owns its
//!   scratch (neighbour buffer, radii, traversal stack, per-sample ψ
//!   terms, per-pair gather + joint tree) and is reused across calls. A
//!   warmed-up workspace allocates nothing per call beyond its return
//!   value (enforced by `tests/workspace_info.rs`).
//! * **Determinism** — per-sample ψ terms are written into span slots and
//!   reduced in sample order, so results are **bit-identical for any
//!   worker count** and equal to the sequential reference — a stronger
//!   contract than the old `parallel_reduce` path, which reassociated
//!   the sum under parallelism. The pipeline's bit-identity suite rides
//!   on this.

use crate::decomposition::{Decomposition, Grouping};
use crate::ksg::{KnnMode, KsgConfig, KsgVariant};
use crate::SampleView;
use sops_math::special::digamma;
use sops_math::{PairMatrix, NATS_TO_BITS};
use sops_spatial::block_max::{
    knn_block_max_into, knn_block_max_lanes_into, knn_block_max_tree_into, BlockPoints,
    ScalarLanes, LANES,
};
use sops_spatial::KdTree;

/// Number of fixed sample spans the estimator loop is partitioned into
/// — and therefore the maximum useful estimator worker count.
///
/// The span partition only decides which scratch buffer serves which
/// sample; the ψ reduction always runs in global sample order, so the
/// result is bit-identical for *any* span count or thread count (unlike
/// the force engine, whose chunk partition fixes the accumulation
/// order). 64 spans keep many-core machines busy while per-span scratch
/// stays tiny.
pub const INFO_CHUNKS: usize = 64;

/// Joint dimensions up to this use the kd-tree k-NN descent under
/// [`KnnMode::Auto`]; beyond it the pruned scan wins. Measured with the
/// `estimators` bench on correlated-Gaussian fixtures: at joint dim 10
/// the tree is ~1.6× faster than the scan (`ksg_scaling/m500_n10`), at
/// dim 40 it is ~1.1× slower (`ksg_scaling/m1000_n40`) — the boundary
/// sits between, and 16 keeps both regimes on their winning path.
const MAX_TREE_JOINT_DIM: usize = 16;

/// Minimum sample count for the tree path to amortize its build.
const MIN_TREE_ROWS: usize = 64;

/// Minimum sample count for the scan path to amortize the [`ScalarLanes`]
/// transpose (one pass over the data, repaid across the `m` queries that
/// share the tile).
const MIN_LANES_ROWS: usize = 2 * LANES;

pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        sops_par::default_threads()
    } else {
        threads
    }
}

/// [`KdTree::build`] supports at most this many dimensions; joint spaces
/// beyond it always take the scan, even under [`KnnMode::KdTree`].
const KDTREE_MAX_DIM: usize = 255;

pub(crate) fn use_tree(mode: KnnMode, joint_dim: usize, rows: usize) -> bool {
    match mode {
        KnnMode::BruteForce => false,
        KnnMode::KdTree => joint_dim <= KDTREE_MAX_DIM,
        KnnMode::Auto => joint_dim <= MAX_TREE_JOINT_DIM && rows >= MIN_TREE_ROWS,
    }
}

/// Strict/inclusive range-count index over one observer block's columns:
/// a sorted value array for scalar blocks (two binary searches per
/// count), a kd-tree for vector blocks. Counts are bit-identical to
/// [`KdTree::count_within`] — both compare the same floating-point
/// squared distance against `radius²`.
#[derive(Debug, Clone)]
struct CountIndex {
    dim: usize,
    /// Gathered `rows × dim` column matrix (tree input; unused for
    /// scalar blocks).
    cols: Vec<f64>,
    /// Scalar blocks: the column values, sorted ascending.
    sorted: Vec<f64>,
    /// Vector blocks: kd-tree over `cols`.
    tree: KdTree,
}

impl CountIndex {
    fn new() -> Self {
        CountIndex {
            dim: 0,
            cols: Vec::new(),
            sorted: Vec::new(),
            tree: KdTree::build(1, &[]),
        }
    }

    /// Re-indexes the block at `offset` (width `dim`) of the row-major
    /// `data` matrix. Allocation-free once warm.
    fn prepare(&mut self, data: &[f64], rows: usize, stride: usize, offset: usize, dim: usize) {
        self.dim = dim;
        if dim == 1 {
            self.sorted.clear();
            self.sorted
                .extend((0..rows).map(|r| data[r * stride + offset]));
            self.sorted
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("CountIndex: NaN sample"));
        } else {
            self.cols.clear();
            for r in 0..rows {
                self.cols
                    .extend_from_slice(&data[r * stride + offset..r * stride + offset + dim]);
            }
            self.tree.rebuild(dim, &self.cols);
        }
    }

    /// Number of block points within `radius` of `q` (strict or
    /// inclusive).
    #[inline]
    fn count_within(&self, q: &[f64], radius: f64, strict: bool) -> usize {
        if self.dim == 1 {
            count_sorted(&self.sorted, q[0], radius, strict)
        } else {
            self.tree.count_within(q, radius, strict)
        }
    }

    fn capacity_signature(&self, sig: &mut Vec<usize>) {
        sig.push(self.cols.capacity());
        sig.push(self.sorted.capacity());
        sig.extend(self.tree.capacity_signature());
    }
}

/// Range count on a sorted scalar column. The qualifying set
/// `{x : (x−q)² ⋚ r²}` is contiguous in sorted order ( `(x−q)²` is
/// monotone in `|x−q|`, and floating-point squaring preserves the
/// ordering), so two binary searches bound it exactly — the same
/// comparison the kd-tree leaf performs, hence identical counts.
fn count_sorted(sorted: &[f64], q: f64, radius: f64, strict: bool) -> usize {
    if radius < 0.0 {
        return 0;
    }
    let r2 = radius * radius;
    let qualify = |x: f64| {
        let d = x - q;
        let d2 = d * d;
        if strict {
            d2 < r2
        } else {
            d2 <= r2
        }
    };
    let pos = sorted.partition_point(|&x| x < q);
    let lo = sorted[..pos].partition_point(|&x| !qualify(x));
    let hi = pos + sorted[pos..].partition_point(|&x| qualify(x));
    hi - lo
}

/// Per-span scratch: everything one worker needs to evaluate samples (or
/// whole pairs) without touching the allocator.
#[derive(Debug, Clone)]
struct ChunkScratch {
    /// Per-sample ψ terms for this span, reduced in sample order.
    psi: Vec<f64>,
    /// k-NN result buffer.
    neigh: Vec<(usize, f64)>,
    /// Per-block radii (Paper / Ksg2 variants).
    radii: Vec<f64>,
    /// Per-block distance scratch (Ksg2 rectangle update).
    dists: Vec<f64>,
    /// Explicit stack for the kd-tree descent.
    stack: Vec<(u32, f64)>,
    /// Gathered joint columns of the pair under evaluation.
    gather: Vec<f64>,
    /// Prefix-offset buffer for the pair view.
    offsets: Vec<usize>,
    /// Joint kd-tree over `gather`.
    tree: KdTree,
    /// Per-pair MI values produced by this span.
    values: Vec<f64>,
}

impl ChunkScratch {
    fn new() -> Self {
        ChunkScratch {
            psi: Vec::new(),
            neigh: Vec::new(),
            radii: Vec::new(),
            dists: Vec::new(),
            stack: Vec::new(),
            gather: Vec::new(),
            offsets: Vec::new(),
            tree: KdTree::build(1, &[]),
            values: Vec::new(),
        }
    }

    fn capacity_signature(&self, sig: &mut Vec<usize>) {
        sig.push(self.psi.capacity());
        sig.push(self.neigh.capacity());
        sig.push(self.radii.capacity());
        sig.push(self.dists.capacity());
        sig.push(self.stack.capacity());
        sig.push(self.gather.capacity());
        sig.push(self.offsets.capacity());
        sig.push(self.values.capacity());
        sig.extend(self.tree.capacity_signature());
    }
}

/// Persistent buffers and shared indexes for the KSG estimator family.
///
/// One workspace serves [`InfoWorkspace::multi_information`],
/// [`InfoWorkspace::pairwise_mi_matrix`] and [`InfoWorkspace::decompose`]
/// back to back; the free functions in [`crate::ksg`] and
/// [`crate::decomposition`] are thin shims that spin up a throwaway
/// workspace. Long-running callers (the pipeline's evaluation workers)
/// hold one per worker:
///
/// ```
/// use sops_info::{InfoWorkspace, KsgConfig, SampleView};
/// use sops_info::gaussian::{equicorrelated_cov, sample_gaussian};
///
/// let data = sample_gaussian(&equicorrelated_cov(2, 0.8), 600, 7);
/// let view = SampleView::new(&data, 600, &[1, 1]);
/// let mut ws = InfoWorkspace::new();
/// let i = ws.multi_information(&view, &KsgConfig::default());
/// assert!((i - 0.74).abs() < 0.25);
/// ```
#[derive(Debug, Clone)]
pub struct InfoWorkspace {
    /// Per-block count indexes of the current view.
    fine: Vec<CountIndex>,
    /// Per-coarse-block indexes (decomposition between-term).
    coarse: Vec<CountIndex>,
    /// Joint kd-tree shared by the spans of a chunked term.
    joint_tree: KdTree,
    /// Lane-transposed joint samples for the SoA pruned scan (all-scalar
    /// block sets on the brute-force path), shared by the spans of a
    /// chunked term.
    scan_lanes: ScalarLanes,
    /// Identity block→index maps.
    identity_map: Vec<usize>,
    coarse_map: Vec<usize>,
    /// Prefix offsets of the view's blocks (pair/group gathering).
    view_offsets: Vec<usize>,
    /// Flattened (i, j) pair list of the MI matrix.
    pairs: Vec<(usize, usize)>,
    /// Fixed per-span scratch.
    chunks: Vec<ChunkScratch>,
    /// Decomposition gathers.
    coarse_data: Vec<f64>,
    coarse_sizes: Vec<usize>,
    coarse_offsets: Vec<usize>,
    group_data: Vec<f64>,
    group_sizes: Vec<usize>,
    group_offsets: Vec<usize>,
}

impl Default for InfoWorkspace {
    fn default() -> Self {
        InfoWorkspace::new()
    }
}

impl InfoWorkspace {
    /// An empty workspace. Buffers grow to the workload size on first use
    /// and are reused afterwards.
    pub fn new() -> Self {
        InfoWorkspace {
            fine: Vec::new(),
            coarse: Vec::new(),
            joint_tree: KdTree::build(1, &[]),
            scan_lanes: ScalarLanes::new(),
            identity_map: Vec::new(),
            coarse_map: Vec::new(),
            view_offsets: Vec::new(),
            pairs: Vec::new(),
            chunks: vec![ChunkScratch::new(); INFO_CHUNKS],
            coarse_data: Vec::new(),
            coarse_sizes: Vec::new(),
            coarse_offsets: Vec::new(),
            group_data: Vec::new(),
            group_sizes: Vec::new(),
            group_offsets: Vec::new(),
        }
    }

    /// Multi-information (bits) between the observer blocks of `view` —
    /// the workspace form of [`crate::multi_information`], identical in
    /// result, allocation-free once warm.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.k == 0` or `cfg.k >= view.rows`.
    pub fn multi_information(&mut self, view: &SampleView<'_>, cfg: &KsgConfig) -> f64 {
        let n = view.blocks();
        if n < 2 {
            return 0.0;
        }
        assert_ksg_bounds(cfg, view.rows);
        let m = view.rows;
        let stride = view.stride();
        let threads = resolve_threads(cfg.threads);
        let InfoWorkspace {
            fine,
            joint_tree,
            scan_lanes,
            identity_map,
            chunks,
            ..
        } = self;
        prepare_indexes(fine, view.data, m, stride, view.block_sizes);
        identity_map.clear();
        identity_map.extend(0..n);
        let points = BlockPoints::new(view.data, m, view.block_sizes);
        let tree = if use_tree(cfg.knn, stride, m) {
            joint_tree.rebuild(stride, view.data);
            Some(&*joint_tree)
        } else {
            None
        };
        let lanes = prepare_lanes(scan_lanes, &points, tree.is_some());
        let psi_sum = chunked_psi_sum(
            &points,
            fine,
            identity_map,
            tree,
            lanes,
            cfg.k,
            cfg.variant,
            m,
            chunks,
            threads,
        );
        mi_bits(psi_sum, m, n, cfg.k, cfg.variant)
    }

    /// Pairwise mutual-information matrix between all observer blocks:
    /// entry `(i, j)` is `I(Wᵢ; Wⱼ)` in bits, diagonal 0. The workspace
    /// form of [`crate::ksg::pairwise_mi_matrix`] — per-block indexes are
    /// built once and shared by every pair, and each pair's joint search
    /// takes the kd-tree path (its joint dimension is small).
    pub fn pairwise_mi_matrix(&mut self, view: &SampleView<'_>, cfg: &KsgConfig) -> PairMatrix {
        let n = view.blocks();
        let mut out = PairMatrix::constant(n, 0.0);
        if n < 2 {
            return out;
        }
        assert_ksg_bounds(cfg, view.rows);
        let m = view.rows;
        let stride = view.stride();
        let threads = resolve_threads(cfg.threads);
        let InfoWorkspace {
            fine,
            view_offsets,
            pairs,
            chunks,
            ..
        } = self;
        prepare_indexes(fine, view.data, m, stride, view.block_sizes);
        fill_prefix_offsets(view.block_sizes, view_offsets);
        pairs.clear();
        for i in 0..n {
            for j in (i + 1)..n {
                pairs.push((i, j));
            }
        }
        let npairs = pairs.len();
        let nchunks = chunks.len();
        let fine = &*fine;
        let pairs = &*pairs;
        let view_offsets = &*view_offsets;
        let data = view.data;
        let sizes = view.block_sizes;
        sops_par::parallel_chunks_mut(chunks, nchunks, threads, |c, bufs| {
            let scratch = &mut bufs[0];
            scratch.values.clear();
            let lo = c * npairs / nchunks;
            let hi = (c + 1) * npairs / nchunks;
            let ChunkScratch {
                psi,
                neigh,
                radii,
                dists,
                stack,
                gather,
                offsets,
                tree,
                values,
            } = scratch;
            for &(bi, bj) in &pairs[lo..hi] {
                let (oi, di) = (view_offsets[bi], sizes[bi]);
                let (oj, dj) = (view_offsets[bj], sizes[bj]);
                gather.clear();
                for r in 0..m {
                    let row = &data[r * stride..(r + 1) * stride];
                    gather.extend_from_slice(&row[oi..oi + di]);
                    gather.extend_from_slice(&row[oj..oj + dj]);
                }
                let pair_sizes = [di, dj];
                let pair_stride = di + dj;
                let tree_ref = if use_tree(cfg.knn, pair_stride, m) {
                    tree.rebuild(pair_stride, gather);
                    Some(&*tree)
                } else {
                    None
                };
                let points = BlockPoints::with_offset_buf(offsets, gather, m, &pair_sizes);
                let map = [bi, bj];
                term_psi_span(
                    &points,
                    fine,
                    &map,
                    tree_ref,
                    None,
                    cfg.k,
                    cfg.variant,
                    0,
                    m,
                    neigh,
                    radii,
                    dists,
                    stack,
                    psi,
                );
                let psi_sum = psi.iter().fold(0.0, |a, &v| a + v);
                values.push(mi_bits(psi_sum, m, 2, cfg.k, cfg.variant));
            }
        });
        for (c, scratch) in self.chunks.iter().enumerate() {
            let lo = c * npairs / nchunks;
            for (off, &v) in scratch.values.iter().enumerate() {
                let (i, j) = self.pairs[lo + off];
                out.set(i, j, v);
            }
        }
        out
    }

    /// Every term of the Eq. 5 decomposition of `view` under `grouping` —
    /// the workspace form of [`crate::decompose`]. The total and every
    /// within-group term share the fine per-block indexes; only the
    /// between-group term builds (reusable) coarse indexes.
    pub fn decompose(
        &mut self,
        view: &SampleView<'_>,
        grouping: &Grouping,
        cfg: &KsgConfig,
    ) -> Decomposition {
        grouping.validate(view.blocks());
        let total = self.multi_information(view, cfg);

        let m = view.rows;
        let stride = view.stride();
        let threads = resolve_threads(cfg.threads);
        let InfoWorkspace {
            fine,
            coarse,
            joint_tree,
            scan_lanes,
            coarse_map,
            view_offsets,
            chunks,
            coarse_data,
            coarse_sizes,
            coarse_offsets,
            group_data,
            group_sizes,
            group_offsets,
            ..
        } = self;
        fill_prefix_offsets(view.block_sizes, view_offsets);

        // Between-group term: merge each group's blocks into one coarse
        // block (same row layout as the old `decompose`, gathered into a
        // reusable buffer). A single group has a between-term of 0 by
        // convention, so the gather is skipped entirely.
        let g = grouping.groups.len();
        let between = if g < 2 {
            0.0
        } else {
            coarse_sizes.clear();
            coarse_sizes.extend(
                grouping
                    .groups
                    .iter()
                    .map(|members| members.iter().map(|&b| view.block_sizes[b]).sum::<usize>()),
            );
            coarse_data.clear();
            for r in 0..m {
                let row = &view.data[r * stride..(r + 1) * stride];
                for members in &grouping.groups {
                    for &b in members {
                        coarse_data.extend_from_slice(
                            &row[view_offsets[b]..view_offsets[b] + view.block_sizes[b]],
                        );
                    }
                }
            }
            prepare_indexes(coarse, coarse_data, m, stride, coarse_sizes);
            coarse_map.clear();
            coarse_map.extend(0..g);
            let tree = if use_tree(cfg.knn, stride, m) {
                joint_tree.rebuild(stride, coarse_data);
                Some(&*joint_tree)
            } else {
                None
            };
            let points = BlockPoints::with_offset_buf(coarse_offsets, coarse_data, m, coarse_sizes);
            let lanes = prepare_lanes(scan_lanes, &points, tree.is_some());
            let psi_sum = chunked_psi_sum(
                &points,
                coarse,
                coarse_map,
                tree,
                lanes,
                cfg.k,
                cfg.variant,
                m,
                chunks,
                threads,
            );
            mi_bits(psi_sum, m, g, cfg.k, cfg.variant)
        };

        // Within-group terms share the fine indexes built by the total.
        let mut within = Vec::with_capacity(g);
        for members in &grouping.groups {
            if members.len() < 2 {
                within.push(0.0);
                continue;
            }
            group_sizes.clear();
            group_sizes.extend(members.iter().map(|&b| view.block_sizes[b]));
            let gstride: usize = group_sizes.iter().sum();
            group_data.clear();
            for r in 0..m {
                let row = &view.data[r * stride..(r + 1) * stride];
                for &b in members {
                    group_data.extend_from_slice(
                        &row[view_offsets[b]..view_offsets[b] + view.block_sizes[b]],
                    );
                }
            }
            let tree = if use_tree(cfg.knn, gstride, m) {
                joint_tree.rebuild(gstride, group_data);
                Some(&*joint_tree)
            } else {
                None
            };
            let points = BlockPoints::with_offset_buf(group_offsets, group_data, m, group_sizes);
            let lanes = prepare_lanes(scan_lanes, &points, tree.is_some());
            let psi_sum = chunked_psi_sum(
                &points,
                fine,
                members,
                tree,
                lanes,
                cfg.k,
                cfg.variant,
                m,
                chunks,
                threads,
            );
            within.push(mi_bits(psi_sum, m, members.len(), cfg.k, cfg.variant));
        }

        Decomposition {
            total,
            between,
            within,
        }
    }

    /// Capacities of every internal buffer. A warmed-up workspace driving
    /// a bounded workload must keep this signature constant — the
    /// zero-allocation contract tested in
    /// `crates/sops-info/tests/workspace_info.rs`.
    pub fn capacity_signature(&self) -> Vec<usize> {
        let mut sig = vec![
            self.fine.len(),
            self.coarse.len(),
            self.identity_map.capacity(),
            self.coarse_map.capacity(),
            self.view_offsets.capacity(),
            self.pairs.capacity(),
            self.coarse_data.capacity(),
            self.coarse_sizes.capacity(),
            self.coarse_offsets.capacity(),
            self.group_data.capacity(),
            self.group_sizes.capacity(),
            self.group_offsets.capacity(),
        ];
        sig.extend(self.joint_tree.capacity_signature());
        sig.push(self.scan_lanes.capacity_signature());
        for idx in self.fine.iter().chain(&self.coarse) {
            idx.capacity_signature(&mut sig);
        }
        for chunk in &self.chunks {
            chunk.capacity_signature(&mut sig);
        }
        sig
    }
}

/// Retiles `scan_lanes` for a term that will take the pruned scan:
/// all-scalar block sets with enough rows to amortize the transpose get
/// the SoA lane kernel; everything else keeps the row-at-a-time scan.
/// Results are bit-identical either way (`sops_spatial::block_max` pins
/// this), so the routing is purely a throughput decision.
fn prepare_lanes<'l>(
    scan_lanes: &'l mut ScalarLanes,
    points: &BlockPoints<'_>,
    has_tree: bool,
) -> Option<&'l ScalarLanes> {
    if has_tree || !points.all_scalar() || points.rows() < MIN_LANES_ROWS {
        return None;
    }
    scan_lanes.rebuild(points);
    Some(scan_lanes)
}

fn assert_ksg_bounds(cfg: &KsgConfig, rows: usize) {
    assert!(cfg.k >= 1, "KSG: k must be >= 1");
    assert!(
        cfg.k < rows,
        "KSG: k = {} needs more than {} samples",
        cfg.k,
        rows
    );
}

/// Ensures `indexes` holds (at least) one prepared index per block of the
/// row-major `data` matrix. Never shrinks, so capacities persist across
/// heterogeneous workloads.
fn prepare_indexes(
    indexes: &mut Vec<CountIndex>,
    data: &[f64],
    rows: usize,
    stride: usize,
    block_sizes: &[usize],
) {
    while indexes.len() < block_sizes.len() {
        indexes.push(CountIndex::new());
    }
    let mut offset = 0;
    for (idx, &dim) in indexes.iter_mut().zip(block_sizes) {
        idx.prepare(data, rows, stride, offset, dim);
        offset += dim;
    }
}

/// Prefix offsets of a block-size list (no trailing stride entry).
fn fill_prefix_offsets(block_sizes: &[usize], out: &mut Vec<usize>) {
    out.clear();
    let mut acc = 0;
    for &s in block_sizes {
        out.push(acc);
        acc += s;
    }
}

/// Evaluates one KSG term over the fixed span partition, reducing the
/// per-sample ψ terms in sample order (bit-identical for any `threads`).
#[allow(clippy::too_many_arguments)]
fn chunked_psi_sum(
    points: &BlockPoints<'_>,
    indexes: &[CountIndex],
    index_map: &[usize],
    joint_tree: Option<&KdTree>,
    lanes: Option<&ScalarLanes>,
    k: usize,
    variant: KsgVariant,
    m: usize,
    chunks: &mut [ChunkScratch],
    threads: usize,
) -> f64 {
    let nchunks = chunks.len();
    sops_par::parallel_chunks_mut(chunks, nchunks, threads, |c, bufs| {
        let ChunkScratch {
            psi,
            neigh,
            radii,
            dists,
            stack,
            ..
        } = &mut bufs[0];
        let lo = c * m / nchunks;
        let hi = (c + 1) * m / nchunks;
        term_psi_span(
            points, indexes, index_map, joint_tree, lanes, k, variant, lo, hi, neigh, radii, dists,
            stack, psi,
        );
    });
    let mut sum = 0.0;
    for chunk in chunks.iter() {
        for &v in &chunk.psi {
            sum += v;
        }
    }
    sum
}

/// The per-sample KSG kernel for samples `lo..hi` of a term: joint k-NN
/// (scan or tree descent), then the variant's per-block ψ counts. One ψ
/// value per sample is pushed into `psi` (cleared first); the numeric
/// semantics are exactly those of the pre-workspace implementation.
#[allow(clippy::too_many_arguments)]
fn term_psi_span(
    points: &BlockPoints<'_>,
    indexes: &[CountIndex],
    index_map: &[usize],
    joint_tree: Option<&KdTree>,
    lanes: Option<&ScalarLanes>,
    k: usize,
    variant: KsgVariant,
    lo: usize,
    hi: usize,
    neigh: &mut Vec<(usize, f64)>,
    radii: &mut Vec<f64>,
    dists: &mut Vec<f64>,
    stack: &mut Vec<(u32, f64)>,
    psi: &mut Vec<f64>,
) {
    let n = index_map.len();
    psi.clear();
    for i in lo..hi {
        match (joint_tree, lanes) {
            (Some(tree), _) => knn_block_max_tree_into(points, tree, i, k, stack, neigh),
            (None, Some(lanes)) => knn_block_max_lanes_into(points, lanes, i, k, neigh),
            (None, None) => knn_block_max_into(points, i, k, neigh),
        }
        let kth = neigh.last().expect("KSG: k-th neighbour must exist").0;
        let mut local = 0.0;
        match variant {
            KsgVariant::Paper => {
                // Literal Eq. 20: per-block radius taken from the k-th
                // neighbour alone, strict count, self subtracted.
                radii.clear();
                radii.resize(n, 0.0);
                points.block_dists_into(i, kth, radii);
                for (b, &bi) in index_map.iter().enumerate() {
                    let q = points.block(i, b);
                    // Strict count includes self (distance 0), then −1
                    // removes it. Clamped at 1: a zero count occurs when
                    // the k-th neighbour's block coincides with the
                    // nearest, where ψ would diverge.
                    let c = indexes[bi]
                        .count_within(q, radii[b], true)
                        .saturating_sub(1)
                        .max(1);
                    local += digamma(c as f64);
                }
            }
            KsgVariant::Ksg2 => {
                // Rectangle geometry of Kraskov's estimator 2: the
                // per-block radius is the largest block-b distance over
                // *all* k nearest neighbours, counts inclusive.
                radii.clear();
                radii.resize(n, 0.0);
                dists.clear();
                dists.resize(n, 0.0);
                for &(j, _) in neigh.iter() {
                    points.block_dists_into(i, j, dists);
                    for (r, d) in radii.iter_mut().zip(dists.iter()) {
                        if *d > *r {
                            *r = *d;
                        }
                    }
                }
                for (b, &bi) in index_map.iter().enumerate() {
                    let q = points.block(i, b);
                    // Inclusive count; the radius-realizing neighbour is
                    // inside except in one rounding edge (√d² re-squared
                    // can land just below d²), where the clamp keeps ψ
                    // finite — the pre-workspace code fed ψ(0) there.
                    let c = indexes[bi]
                        .count_within(q, radii[b], false)
                        .saturating_sub(1)
                        .max(1);
                    local += digamma(c as f64);
                }
            }
            KsgVariant::Ksg1 => {
                // One joint radius ε = block-max distance to the k-th
                // neighbour; strict per-block counts, ψ(c + 1). The
                // saturating self-subtraction only differs from the plain
                // `- 1` when ε = 0 (duplicated joint samples), where the
                // old code underflowed.
                let eps = neigh.last().unwrap().1;
                for (b, &bi) in index_map.iter().enumerate() {
                    let q = points.block(i, b);
                    let c = indexes[bi].count_within(q, eps, true).saturating_sub(1);
                    local += digamma((c + 1) as f64);
                }
            }
        }
        psi.push(local);
    }
}

/// The KSG closed form from a ψ sum — shared by every term so the
/// floating-point expression matches the pre-workspace implementation
/// exactly.
fn mi_bits(psi_sum: f64, m: usize, n: usize, k: usize, variant: KsgVariant) -> f64 {
    let mean_psi = psi_sum / m as f64;
    let nm1 = (n - 1) as f64;
    let nats = match variant {
        KsgVariant::Paper => digamma(k as f64) + nm1 * digamma(m as f64) - mean_psi,
        KsgVariant::Ksg1 => digamma(k as f64) + nm1 * digamma(m as f64) - mean_psi,
        KsgVariant::Ksg2 => digamma(k as f64) - nm1 / k as f64 + nm1 * digamma(m as f64) - mean_psi,
    };
    nats * NATS_TO_BITS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{equicorrelated_cov, sample_gaussian};

    #[test]
    fn count_sorted_matches_tree_semantics() {
        let mut vals = vec![0.0, 1.0, 1.0, 2.5, -3.0, 0.5, 4.0];
        let tree_input = vals.clone();
        let tree = KdTree::build(1, &tree_input);
        vals.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [-3.5, -3.0, 0.0, 0.75, 1.0, 5.0] {
            for r in [0.0, 0.5, 1.0, 2.0, 10.0, -1.0] {
                for strict in [true, false] {
                    assert_eq!(
                        count_sorted(&vals, q, r, strict),
                        tree.count_within(&[q], r, strict),
                        "q={q} r={r} strict={strict}"
                    );
                }
            }
        }
    }

    #[test]
    fn forced_tree_mode_falls_back_to_scan_beyond_kdtree_dim_limit() {
        assert!(use_tree(KnnMode::KdTree, 255, 1000));
        assert!(
            !use_tree(KnnMode::KdTree, 256, 1000),
            "joint spaces beyond the kd-tree dim limit must take the scan"
        );
        // End to end: a 300-dim joint view under forced KdTree must not
        // panic and must match the scan.
        let rows = 40;
        let blocks = 300;
        let mut rng = sops_math::SplitMix64::new(4);
        let data: Vec<f64> = (0..rows * blocks)
            .map(|_| rng.next_range(-1.0, 1.0))
            .collect();
        let sizes = vec![1usize; blocks];
        let view = SampleView::new(&data, rows, &sizes);
        let mut ws = InfoWorkspace::new();
        let run = |ws: &mut InfoWorkspace, knn| {
            ws.multi_information(
                &view,
                &KsgConfig {
                    knn,
                    ..KsgConfig::default()
                },
            )
        };
        let tree = run(&mut ws, KnnMode::KdTree);
        let brute = run(&mut ws, KnnMode::BruteForce);
        assert_eq!(tree.to_bits(), brute.to_bits());
    }

    #[test]
    fn workspace_reuse_across_shapes_matches_fresh() {
        let mut ws = InfoWorkspace::new();
        let cfg = KsgConfig::default();
        for (blocks, rows, seed) in [(4usize, 300usize, 1u64), (2, 500, 2), (6, 200, 3)] {
            let data = sample_gaussian(&equicorrelated_cov(blocks, 0.4), rows, seed);
            let sizes = vec![1usize; blocks];
            let view = SampleView::new(&data, rows, &sizes);
            let reused = ws.multi_information(&view, &cfg);
            let fresh = InfoWorkspace::new().multi_information(&view, &cfg);
            assert_eq!(reused.to_bits(), fresh.to_bits());
        }
    }

    #[test]
    fn auto_routes_low_dim_through_tree_and_matches_brute() {
        let data = sample_gaussian(&equicorrelated_cov(2, 0.6), 400, 9);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 400, &sizes);
        let mut ws = InfoWorkspace::new();
        let run = |ws: &mut InfoWorkspace, knn| {
            ws.multi_information(
                &view,
                &KsgConfig {
                    knn,
                    ..KsgConfig::default()
                },
            )
        };
        let auto = run(&mut ws, KnnMode::Auto);
        let brute = run(&mut ws, KnnMode::BruteForce);
        let tree = run(&mut ws, KnnMode::KdTree);
        assert_eq!(auto.to_bits(), brute.to_bits());
        assert_eq!(auto.to_bits(), tree.to_bits());
        assert!(use_tree(KnnMode::Auto, 2, 400), "dim-2 must take the tree");
        assert!(
            !use_tree(KnnMode::Auto, 40, 1000),
            "high joint dimension keeps the scan"
        );
    }
}
