//! Kernel-density multi-information — the baseline the paper compared
//! against (§5.3: "multiple orders of magnitudes slower and showed a
//! larger variance in higher dimensions").
//!
//! Leave-one-out Gaussian-product-kernel estimate:
//!
//! ```text
//! Î = (1/m) Σᵢ log [ p̂(wᵢ) / Π_b p̂_b(wᵢ_b) ]
//! p̂(wᵢ)   = 1/(m−1) Σ_{j≠i} K_H(wᵢ − w_j)
//! ```
//!
//! with per-dimension Silverman bandwidths. `O(m² d)` with a large
//! constant — the `estimators` bench reproduces the paper's speed
//! comparison against KSG.

use crate::SampleView;
use sops_math::stats;
use sops_math::NATS_TO_BITS;

/// KDE configuration.
#[derive(Debug, Clone, Copy)]
pub struct KdeConfig {
    /// Multiplier on the Silverman rule-of-thumb bandwidth (1.0 = rule of
    /// thumb).
    pub bandwidth_factor: f64,
    /// Worker threads (0 = default).
    pub threads: usize,
}

impl Default for KdeConfig {
    fn default() -> Self {
        KdeConfig {
            bandwidth_factor: 1.0,
            threads: 0,
        }
    }
}

/// Per-dimension Silverman bandwidth: `h_d = σ_d (4/((d+2) m))^{1/(d+4)}`.
fn silverman_bandwidths(view: &SampleView<'_>, factor: f64) -> Vec<f64> {
    let d = view.stride();
    let m = view.rows as f64;
    let exponent = 1.0 / (d as f64 + 4.0);
    let scale = (4.0 / ((d as f64 + 2.0) * m)).powf(exponent) * factor;
    (0..d)
        .map(|col| {
            let column: Vec<f64> = (0..view.rows).map(|r| view.row(r)[col]).collect();
            let sd = stats::variance(&column).sqrt();
            // Degenerate (constant) dimensions get a tiny positive
            // bandwidth so the density stays proper.
            (sd * scale).max(1e-12)
        })
        .collect()
}

/// Leave-one-out log-density (nats, up to the normalization constant
/// cancelled in the MI ratio) of row `i` over the dimensions in
/// `[start, end)`.
#[inline]
fn loo_log_density(
    view: &SampleView<'_>,
    bandwidths: &[f64],
    i: usize,
    start: usize,
    end: usize,
) -> f64 {
    let mut acc = 0.0f64;
    let ri = view.row(i);
    // log-sum-exp over j != i for numerical stability.
    let mut max_log = f64::NEG_INFINITY;
    let mut logs: Vec<f64> = Vec::with_capacity(view.rows - 1);
    for j in 0..view.rows {
        if j == i {
            continue;
        }
        let rj = view.row(j);
        let mut e = 0.0;
        for c in start..end {
            let z = (ri[c] - rj[c]) / bandwidths[c];
            e -= 0.5 * z * z;
        }
        logs.push(e);
        if e > max_log {
            max_log = e;
        }
    }
    for &e in &logs {
        acc += (e - max_log).exp();
    }
    // Normalization by bandwidth product and (2π)^{d/2} cancels between
    // joint and marginals only partially; keep it exact:
    let d = (end - start) as f64;
    let log_norm: f64 = bandwidths[start..end].iter().map(|h| h.ln()).sum::<f64>()
        + 0.5 * d * (2.0 * std::f64::consts::PI).ln();
    max_log + acc.ln() - ((view.rows - 1) as f64).ln() - log_norm
}

/// Estimates the multi-information (bits) between the observer blocks of
/// `view` with the leave-one-out KDE ratio.
pub fn multi_information_kde(view: &SampleView<'_>, cfg: &KdeConfig) -> f64 {
    if view.blocks() < 2 {
        return 0.0;
    }
    assert!(view.rows >= 3, "KDE: need at least 3 samples");
    let bandwidths = silverman_bandwidths(view, cfg.bandwidth_factor);
    // Block column ranges.
    let mut ranges = Vec::with_capacity(view.blocks());
    let mut off = 0;
    for &b in view.block_sizes {
        ranges.push((off, off + b));
        off += b;
    }
    let threads = if cfg.threads == 0 {
        sops_par::default_threads()
    } else {
        cfg.threads
    };
    let total = sops_par::parallel_reduce(
        view.rows,
        threads,
        || 0.0f64,
        |acc, i| {
            let joint = loo_log_density(view, &bandwidths, i, 0, view.stride());
            let marginals: f64 = ranges
                .iter()
                .map(|&(s, e)| loo_log_density(view, &bandwidths, i, s, e))
                .sum();
            acc + (joint - marginals)
        },
        |a, b| a + b,
    );
    total / view.rows as f64 * NATS_TO_BITS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{bivariate_gaussian_mi, equicorrelated_cov, sample_gaussian};
    use sops_math::Matrix;

    #[test]
    fn independent_gaussians_near_zero() {
        let data = sample_gaussian(&Matrix::identity(2), 600, 3);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 600, &sizes);
        let i = multi_information_kde(&view, &KdeConfig::default());
        assert!(i.abs() < 0.1, "KDE on independent data: {i}");
    }

    #[test]
    fn correlated_gaussians_recovered_roughly() {
        let rho = 0.8;
        let data = sample_gaussian(&equicorrelated_cov(2, rho), 800, 5);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 800, &sizes);
        let est = multi_information_kde(&view, &KdeConfig::default());
        let truth = bivariate_gaussian_mi(rho);
        // KDE carries more bias than KSG — the paper's point; accept ±0.25.
        assert!((est - truth).abs() < 0.25, "KDE est {est} vs truth {truth}");
    }

    #[test]
    fn monotone_in_coupling() {
        let sizes = [1usize, 1];
        let weak_data = sample_gaussian(&equicorrelated_cov(2, 0.2), 500, 7);
        let strong_data = sample_gaussian(&equicorrelated_cov(2, 0.9), 500, 7);
        let weak = multi_information_kde(
            &SampleView::new(&weak_data, 500, &sizes),
            &KdeConfig::default(),
        );
        let strong = multi_information_kde(
            &SampleView::new(&strong_data, 500, &sizes),
            &KdeConfig::default(),
        );
        assert!(strong > weak + 0.3);
    }

    #[test]
    fn deterministic_across_threads() {
        let data = sample_gaussian(&equicorrelated_cov(2, 0.5), 300, 9);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 300, &sizes);
        let one = multi_information_kde(
            &view,
            &KdeConfig {
                threads: 1,
                ..KdeConfig::default()
            },
        );
        let many = multi_information_kde(
            &view,
            &KdeConfig {
                threads: 8,
                ..KdeConfig::default()
            },
        );
        assert!((one - many).abs() < 1e-9);
    }

    #[test]
    fn constant_dimension_does_not_blow_up() {
        // One coordinate constant: degenerate bandwidth path.
        let mut data = Vec::new();
        let mut rng = sops_math::SplitMix64::new(4);
        for _ in 0..200 {
            data.push(rng.next_range(-1.0, 1.0));
            data.push(7.0);
        }
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 200, &sizes);
        let est = multi_information_kde(&view, &KdeConfig::default());
        assert!(est.is_finite());
    }
}
