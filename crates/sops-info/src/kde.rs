//! Kernel-density multi-information — the baseline the paper compared
//! against (§5.3: "multiple orders of magnitudes slower and showed a
//! larger variance in higher dimensions").
//!
//! Leave-one-out Gaussian-product-kernel estimate:
//!
//! ```text
//! Î = (1/m) Σᵢ log [ p̂(wᵢ) / Π_b p̂_b(wᵢ_b) ]
//! p̂(wᵢ)   = 1/(m−1) Σ_{j≠i} K_H(wᵢ − w_j)
//! ```
//!
//! with per-dimension Silverman bandwidths. `O(m² d)` with a large
//! constant — the `estimators` bench reproduces the paper's speed
//! comparison against KSG.
//!
//! The engine behind the estimate is [`KdeWorkspace`]: persistent
//! log-sum-exp scratch partitioned into the same fixed sample spans as
//! `InfoWorkspace`, per-sample log ratios reduced in sample order —
//! allocation-free once warm and **bit-identical for any worker count**
//! to the sequential pre-workspace implementation (frozen in
//! `crates/sops-info/tests/workspace_measure.rs`).

use crate::workspace::{resolve_threads, INFO_CHUNKS};
use crate::SampleView;
use sops_math::stats;
use sops_math::NATS_TO_BITS;

/// KDE configuration.
#[derive(Debug, Clone, Copy)]
pub struct KdeConfig {
    /// Multiplier on the Silverman rule-of-thumb bandwidth (1.0 = rule of
    /// thumb).
    pub bandwidth_factor: f64,
    /// Worker threads (0 = default). Results are bit-identical for any
    /// thread count.
    pub threads: usize,
}

impl Default for KdeConfig {
    fn default() -> Self {
        KdeConfig {
            bandwidth_factor: 1.0,
            threads: 0,
        }
    }
}

/// Per-span scratch of the KDE engine: one log-sum-exp buffer plus the
/// span's per-sample log ratios.
#[derive(Debug, Clone, Default)]
struct KdeChunk {
    /// Per-sample `log p̂(wᵢ) − Σ_b log p̂_b(wᵢ_b)` values of this span.
    vals: Vec<f64>,
    /// Kernel log-weights of the current (sample, term) pair.
    logs: Vec<f64>,
}

impl KdeChunk {
    fn capacity_signature(&self, sig: &mut Vec<usize>) {
        sig.push(self.vals.capacity());
        sig.push(self.logs.capacity());
    }
}

/// Persistent buffers for the leave-one-out KDE estimator — the
/// KDE-side sibling of [`crate::InfoWorkspace`]. One workspace serves
/// repeated calls over views of any shape; all scratch is reused, so a
/// warmed-up workspace allocates nothing per call (enforced by
/// `crates/sops-info/tests/workspace_measure.rs`).
#[derive(Debug, Clone)]
pub struct KdeWorkspace {
    /// Per-dimension Silverman bandwidths of the current view.
    bandwidths: Vec<f64>,
    /// Column gather scratch for the bandwidth pass.
    column: Vec<f64>,
    /// Block column ranges `[start, end)` of the current view.
    ranges: Vec<(usize, usize)>,
    /// Fixed per-span scratch.
    chunks: Vec<KdeChunk>,
}

impl Default for KdeWorkspace {
    fn default() -> Self {
        KdeWorkspace::new()
    }
}

impl KdeWorkspace {
    /// An empty workspace; buffers grow to the workload size on first use.
    pub fn new() -> Self {
        KdeWorkspace {
            bandwidths: Vec::new(),
            column: Vec::new(),
            ranges: Vec::new(),
            chunks: vec![KdeChunk::default(); INFO_CHUNKS],
        }
    }

    /// Estimates the multi-information (bits) between the observer blocks
    /// of `view` with the leave-one-out KDE ratio — the workspace form of
    /// [`multi_information_kde`], identical in result, allocation-free
    /// once warm.
    ///
    /// # Panics
    ///
    /// Panics if `view.rows < 3`.
    pub fn multi_information(&mut self, view: &SampleView<'_>, cfg: &KdeConfig) -> f64 {
        if view.blocks() < 2 {
            return 0.0;
        }
        assert!(view.rows >= 3, "KDE: need at least 3 samples");
        let stride = view.stride();
        self.bandwidths.clear();
        silverman_bandwidths_into(
            view,
            cfg.bandwidth_factor,
            &mut self.column,
            &mut self.bandwidths,
        );
        self.ranges.clear();
        let mut off = 0;
        for &b in view.block_sizes {
            self.ranges.push((off, off + b));
            off += b;
        }
        let threads = resolve_threads(cfg.threads);
        let m = view.rows;
        let nchunks = self.chunks.len();
        let bandwidths = &self.bandwidths;
        let ranges = &self.ranges;
        sops_par::parallel_chunks_mut(&mut self.chunks, nchunks, threads, |c, bufs| {
            let KdeChunk { vals, logs } = &mut bufs[0];
            vals.clear();
            let lo = c * m / nchunks;
            let hi = (c + 1) * m / nchunks;
            for i in lo..hi {
                let joint = loo_log_density(view, bandwidths, i, 0, stride, logs);
                let marginals: f64 = ranges
                    .iter()
                    .map(|&(s, e)| loo_log_density(view, bandwidths, i, s, e, logs))
                    .sum();
                vals.push(joint - marginals);
            }
        });
        // Sample-order reduction: bit-identical to the sequential fold for
        // any worker count.
        let mut total = 0.0;
        for chunk in &self.chunks {
            for &v in &chunk.vals {
                total += v;
            }
        }
        total / m as f64 * NATS_TO_BITS
    }

    /// Capacities of every internal buffer — constant for a warmed-up
    /// workspace (the zero-allocation contract).
    pub fn capacity_signature(&self) -> Vec<usize> {
        let mut sig = vec![
            self.bandwidths.capacity(),
            self.column.capacity(),
            self.ranges.capacity(),
        ];
        for chunk in &self.chunks {
            chunk.capacity_signature(&mut sig);
        }
        sig
    }
}

/// Per-dimension Silverman bandwidth, `h_d = σ_d (4/((d+2) m))^{1/(d+4)}`,
/// written into `out` (`column` is gather scratch).
fn silverman_bandwidths_into(
    view: &SampleView<'_>,
    factor: f64,
    column: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    let d = view.stride();
    let m = view.rows as f64;
    let exponent = 1.0 / (d as f64 + 4.0);
    let scale = (4.0 / ((d as f64 + 2.0) * m)).powf(exponent) * factor;
    for col in 0..d {
        column.clear();
        column.extend((0..view.rows).map(|r| view.row(r)[col]));
        let sd = stats::variance(column).sqrt();
        // Degenerate (constant) dimensions get a tiny positive
        // bandwidth so the density stays proper.
        out.push((sd * scale).max(1e-12));
    }
}

/// Leave-one-out log-density (nats, up to the normalization constant
/// cancelled in the MI ratio) of row `i` over the dimensions in
/// `[start, end)`. `logs` is the log-sum-exp scratch (cleared first).
#[inline]
fn loo_log_density(
    view: &SampleView<'_>,
    bandwidths: &[f64],
    i: usize,
    start: usize,
    end: usize,
    logs: &mut Vec<f64>,
) -> f64 {
    let mut acc = 0.0f64;
    let ri = view.row(i);
    // log-sum-exp over j != i for numerical stability.
    let mut max_log = f64::NEG_INFINITY;
    logs.clear();
    for j in 0..view.rows {
        if j == i {
            continue;
        }
        let rj = view.row(j);
        let mut e = 0.0;
        for c in start..end {
            let z = (ri[c] - rj[c]) / bandwidths[c];
            e -= 0.5 * z * z;
        }
        logs.push(e);
        if e > max_log {
            max_log = e;
        }
    }
    for &e in logs.iter() {
        acc += (e - max_log).exp();
    }
    // Normalization by bandwidth product and (2π)^{d/2} cancels between
    // joint and marginals only partially; keep it exact:
    let d = (end - start) as f64;
    let log_norm: f64 = bandwidths[start..end].iter().map(|h| h.ln()).sum::<f64>()
        + 0.5 * d * (2.0 * std::f64::consts::PI).ln();
    max_log + acc.ln() - ((view.rows - 1) as f64).ln() - log_norm
}

/// Estimates the multi-information (bits) between the observer blocks of
/// `view` with the leave-one-out KDE ratio.
///
/// Deprecated: this shim spins up a throwaway [`KdeWorkspace`] per call.
/// Repeated callers should hold a workspace (or a
/// [`crate::measure::MeasureWorkspace`] driving the
/// [`crate::measure::Estimator`] trait) and reuse it; the result is
/// identical.
#[deprecated(
    since = "0.4.0",
    note = "use KdeWorkspace::multi_information (or MeasureWorkspace with MeasureConfig::Kde) — this shim rebuilds all scratch per call"
)]
pub fn multi_information_kde(view: &SampleView<'_>, cfg: &KdeConfig) -> f64 {
    KdeWorkspace::new().multi_information(view, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{bivariate_gaussian_mi, equicorrelated_cov, sample_gaussian};
    use sops_math::Matrix;

    fn kde(view: &SampleView<'_>, cfg: &KdeConfig) -> f64 {
        KdeWorkspace::new().multi_information(view, cfg)
    }

    #[test]
    fn independent_gaussians_near_zero() {
        let data = sample_gaussian(&Matrix::identity(2), 600, 3);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 600, &sizes);
        let i = kde(&view, &KdeConfig::default());
        assert!(i.abs() < 0.1, "KDE on independent data: {i}");
    }

    #[test]
    fn correlated_gaussians_recovered_roughly() {
        let rho = 0.8;
        let data = sample_gaussian(&equicorrelated_cov(2, rho), 800, 5);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 800, &sizes);
        let est = kde(&view, &KdeConfig::default());
        let truth = bivariate_gaussian_mi(rho);
        // KDE carries more bias than KSG — the paper's point; accept ±0.25.
        assert!((est - truth).abs() < 0.25, "KDE est {est} vs truth {truth}");
    }

    #[test]
    fn monotone_in_coupling() {
        let sizes = [1usize, 1];
        let weak_data = sample_gaussian(&equicorrelated_cov(2, 0.2), 500, 7);
        let strong_data = sample_gaussian(&equicorrelated_cov(2, 0.9), 500, 7);
        let weak = kde(
            &SampleView::new(&weak_data, 500, &sizes),
            &KdeConfig::default(),
        );
        let strong = kde(
            &SampleView::new(&strong_data, 500, &sizes),
            &KdeConfig::default(),
        );
        assert!(strong > weak + 0.3);
    }

    #[test]
    fn bit_identical_across_threads() {
        let data = sample_gaussian(&equicorrelated_cov(2, 0.5), 300, 9);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 300, &sizes);
        let mut ws = KdeWorkspace::new();
        let one = ws.multi_information(
            &view,
            &KdeConfig {
                threads: 1,
                ..KdeConfig::default()
            },
        );
        let many = ws.multi_information(
            &view,
            &KdeConfig {
                threads: 8,
                ..KdeConfig::default()
            },
        );
        assert_eq!(one.to_bits(), many.to_bits());
    }

    #[test]
    fn deprecated_shim_matches_workspace() {
        let data = sample_gaussian(&equicorrelated_cov(2, 0.6), 200, 11);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 200, &sizes);
        #[allow(deprecated)]
        let shim = multi_information_kde(&view, &KdeConfig::default());
        let ws = kde(&view, &KdeConfig::default());
        assert_eq!(shim.to_bits(), ws.to_bits());
    }

    #[test]
    fn workspace_reuse_across_shapes_matches_fresh() {
        let mut ws = KdeWorkspace::new();
        for (blocks, rows, seed) in [(2usize, 300usize, 1u64), (4, 150, 2), (3, 220, 3)] {
            let data = sample_gaussian(&equicorrelated_cov(blocks, 0.4), rows, seed);
            let sizes = vec![1usize; blocks];
            let view = SampleView::new(&data, rows, &sizes);
            let reused = ws.multi_information(&view, &KdeConfig::default());
            let fresh = KdeWorkspace::new().multi_information(&view, &KdeConfig::default());
            assert_eq!(reused.to_bits(), fresh.to_bits());
        }
    }

    #[test]
    fn constant_dimension_does_not_blow_up() {
        // One coordinate constant: degenerate bandwidth path.
        let mut data = Vec::new();
        let mut rng = sops_math::SplitMix64::new(4);
        for _ in 0..200 {
            data.push(rng.next_range(-1.0, 1.0));
            data.push(7.0);
        }
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 200, &sizes);
        let est = kde(&view, &KdeConfig::default());
        assert!(est.is_finite());
    }
}
