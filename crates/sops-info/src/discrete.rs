//! Plug-in (maximum-likelihood) information measures over discrete counts.
//!
//! Building block for the binning estimator and the test substrate for the
//! continuous estimators: discrete identities (chain rule, bounds,
//! symmetry) are exact here, so they validate the shared conventions
//! (bits, multi-information definition) independently of k-NN machinery.

/// Shannon entropy in bits of an (unnormalized) count histogram.
///
/// Zero counts contribute nothing. Returns 0 for an all-zero histogram.
pub fn entropy_from_counts(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Shannon entropy in bits of a probability vector (entries must be
/// non-negative; zeros allowed; need not be exactly normalized — they are
/// renormalized defensively).
pub fn entropy_from_probs(probs: &[f64]) -> f64 {
    let total: f64 = probs.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &p in probs {
        if p > 0.0 {
            let q = p / total;
            h -= q * q.log2();
        }
    }
    h
}

/// Mutual information in bits of a joint count table (`rows × cols`,
/// row-major): `I(X;Y) = H(X) + H(Y) − H(X,Y)`.
pub fn mutual_information_from_counts(rows: usize, cols: usize, joint: &[u64]) -> f64 {
    assert_eq!(joint.len(), rows * cols, "mutual_information: table shape");
    let mut row_margin = vec![0u64; rows];
    let mut col_margin = vec![0u64; cols];
    for r in 0..rows {
        for c in 0..cols {
            row_margin[r] += joint[r * cols + c];
            col_margin[c] += joint[r * cols + c];
        }
    }
    entropy_from_counts(&row_margin) + entropy_from_counts(&col_margin) - entropy_from_counts(joint)
}

/// Multi-information in bits of jointly observed discrete variables:
/// `samples[s]` is the tuple of symbols observed in sample `s`.
///
/// `I = Σᵢ H(Xᵢ) − H(X₁,…,X_n)`, all entropies plug-in estimates.
pub fn multi_information_from_tuples(samples: &[Vec<u32>]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let n = samples[0].len();
    assert!(
        samples.iter().all(|s| s.len() == n),
        "multi_information_from_tuples: ragged samples"
    );
    use std::collections::HashMap;
    // Marginals.
    let mut sum_marginals = 0.0;
    for i in 0..n {
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for s in samples {
            *counts.entry(s[i]).or_insert(0) += 1;
        }
        let c: Vec<u64> = counts.values().copied().collect();
        sum_marginals += entropy_from_counts(&c);
    }
    // Joint.
    let mut joint: HashMap<&[u32], u64> = HashMap::new();
    for s in samples {
        *joint.entry(s.as_slice()).or_insert(0) += 1;
    }
    let jc: Vec<u64> = joint.values().copied().collect();
    sum_marginals - entropy_from_counts(&jc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform_and_point_mass() {
        assert!((entropy_from_counts(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        assert_eq!(entropy_from_counts(&[7, 0, 0]), 0.0);
        assert_eq!(entropy_from_counts(&[0, 0]), 0.0);
    }

    #[test]
    fn entropy_probs_matches_counts() {
        let h1 = entropy_from_counts(&[1, 2, 3]);
        let h2 = entropy_from_probs(&[1.0 / 6.0, 2.0 / 6.0, 3.0 / 6.0]);
        assert!((h1 - h2).abs() < 1e-12);
        // Unnormalized probabilities are renormalized.
        let h3 = entropy_from_probs(&[1.0, 2.0, 3.0]);
        assert!((h1 - h3).abs() < 1e-12);
    }

    #[test]
    fn mi_of_independent_table_is_zero() {
        // Product of uniform marginals.
        let joint = [1u64, 1, 1, 1];
        assert!(mutual_information_from_counts(2, 2, &joint).abs() < 1e-12);
    }

    #[test]
    fn mi_of_identity_coupling_is_one_bit() {
        let joint = [5u64, 0, 0, 5];
        assert!((mutual_information_from_counts(2, 2, &joint) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mi_is_symmetric() {
        let joint = [3u64, 1, 2, 4, 0, 5];
        let transposed = [3u64, 4, 1, 0, 2, 5];
        let a = mutual_information_from_counts(2, 3, &joint);
        let b = mutual_information_from_counts(3, 2, &transposed);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn multi_info_pairwise_matches_mi() {
        // Two variables: multi-information == mutual information.
        let samples: Vec<Vec<u32>> = vec![
            vec![0, 0],
            vec![0, 0],
            vec![1, 1],
            vec![1, 1],
            vec![0, 1],
            vec![1, 0],
        ];
        let joint = [2u64, 1, 1, 2];
        let expect = mutual_information_from_counts(2, 2, &joint);
        let got = multi_information_from_tuples(&samples);
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn multi_info_of_copies_is_additive() {
        // X uniform on {0,1}; Y = Z = X: I(X,Y,Z) = 2H(X) = 2 bits.
        let samples: Vec<Vec<u32>> = (0..8).map(|i| vec![i % 2, i % 2, i % 2]).collect();
        assert!((multi_information_from_tuples(&samples) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn multi_info_nonnegative_on_random_tuples() {
        let mut rng = sops_math::SplitMix64::new(9);
        let samples: Vec<Vec<u32>> = (0..200)
            .map(|_| vec![rng.next_below(4) as u32, rng.next_below(3) as u32])
            .collect();
        assert!(multi_information_from_tuples(&samples) >= -1e-12);
    }
}
